"""Trace continuity through the durable job queue and the agent.

The end-to-end story: a traced request whose observed error crosses the
drift line enqueues a rebuild carrying the originating trace ID; the
agent re-joins that trace when it executes the job, so the rebuild's
``agent.job`` span assembles into the same trace as the probe batch
that caused it — across the queue's crash/replay boundary.
"""

from __future__ import annotations

import pytest

from repro.engine.catalog import StatsCatalog
from repro.maint.agent import (
    OUTCOME_DONE,
    AgentContext,
    DriftPolicy,
    MaintenanceAgent,
)
from repro.maint.queue import DurableJobQueue, QueueFormatError
from repro.obs import runtime, tracing
from repro.obs.accuracy import AccuracyMonitor
from repro.obs.tracing import TraceContext, clear_span_sinks, span
from repro.serve import EqualityProbe

from tests.maint.test_agent import FakeClock, fresh_source, put_entry

TRACE = "ab" * 8


@pytest.fixture(autouse=True)
def fresh_obs():
    runtime.reset()
    clear_span_sinks()
    yield
    runtime.reset()
    clear_span_sinks()


def make_queue(tmp_path, clock=None):
    return DurableJobQueue(
        tmp_path / "queue.jsonl",
        lease_duration=30.0,
        clock=clock or FakeClock(),
        rng=7,
    )


class TestQueueTraceField:
    def test_explicit_trace_id_persists_and_replays(self, tmp_path):
        queue = make_queue(tmp_path)
        job = queue.enqueue("checkpoint", trace_id=TRACE)
        assert job.trace_id == TRACE
        (state,) = queue.jobs()
        assert state["trace_id"] == TRACE
        # Crash/replay: a fresh open rebuilds the trace link from the log.
        reopened = make_queue(tmp_path)
        (state,) = reopened.jobs()
        assert state["trace_id"] == TRACE

    def test_enqueue_auto_captures_the_active_trace(self, tmp_path):
        queue = make_queue(tmp_path)
        with span("serve.batch") as outer:
            job = queue.enqueue("checkpoint")
        assert job.trace_id == outer.context.trace_id

    def test_untraced_enqueue_carries_no_trace(self, tmp_path):
        queue = make_queue(tmp_path)
        job = queue.enqueue("checkpoint")
        assert job.trace_id == ""
        # Absent, not null/empty, in the durable log record.
        log_text = (tmp_path / "queue.jsonl").read_text()
        assert '"trace"' not in log_text

    def test_non_string_trace_id_is_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(TypeError, match="trace_id"):
            queue.enqueue("checkpoint", trace_id=123)

    def test_corrupt_trace_field_fails_validation(self, tmp_path):
        """A checksum-intact enqueue record with a non-string trace is
        rejected by domain validation (not just by the CRC layer): the
        validator raises, and recovery treats the record as torn —
        truncated away rather than replayed into a half-valid job."""
        from repro.engine.eventlog import encode_payload
        from repro.maint.queue import _validate_event

        bad = {
            "seq": 1,
            "event": "enqueue",
            "job": "job-0000000000000001",
            "kind": "checkpoint",
            "params": {},
            "at": 1000.0,
            "trace": 17,
        }
        with pytest.raises(QueueFormatError, match="trace"):
            _validate_event(bad)
        path = tmp_path / "queue.jsonl"
        path.write_bytes(encode_payload(bad))
        queue = DurableJobQueue(path, lease_duration=30.0)
        assert queue.jobs() == []
        assert path.read_bytes() == b""  # the bad record was truncated


class TestAgentTraceContinuity:
    def build_context(self, tmp_path, monitor=None):
        catalog = StatsCatalog()
        put_entry(catalog, "R", "a")
        return AgentContext(
            queue=make_queue(tmp_path),
            catalog=catalog,
            source=fresh_source,
            monitor=monitor,
            drift=DriftPolicy(max_relative_error=0.5, min_observations=5),
        )

    def test_agent_job_span_joins_the_recorded_trace(self, tmp_path):
        context = self.build_context(tmp_path)
        context.queue.enqueue(
            "rebuild", {"relation": "R", "attribute": "a"}, trace_id=TRACE
        )
        records = []
        tracing.add_span_sink(records.append)
        agent = MaintenanceAgent(context)
        assert agent.run_once() == OUTCOME_DONE
        job_spans = [r for r in records if r.name == "agent.job"]
        assert job_spans and all(r.trace_id == TRACE for r in job_spans)

    def test_untraced_job_starts_its_own_trace(self, tmp_path):
        context = self.build_context(tmp_path)
        context.queue.enqueue("rebuild", {"relation": "R", "attribute": "a"})
        records = []
        tracing.add_span_sink(records.append)
        agent = MaintenanceAgent(context)
        assert agent.run_once() == OUTCOME_DONE
        (job_span,) = [r for r in records if r.name == "agent.job"]
        assert job_span.trace_id not in ("", TRACE)

    def test_drift_audit_links_rebuild_to_the_observed_trace(self, tmp_path):
        """The full feedback loop: observations recorded under a trace →
        drift audit → rebuild job carrying that trace → agent.job span
        in the originating trace."""
        monitor = AccuracyMonitor()
        context = self.build_context(tmp_path, monitor=monitor)
        observed = TraceContext(trace_id=TRACE)
        token = tracing.attach(observed)
        try:
            for _ in range(10):
                monitor.record_observation(EqualityProbe("R", "a", 0), 5.0, 50.0)
        finally:
            tracing.detach(token)
        context.queue.enqueue("drift-audit")
        records = []
        tracing.add_span_sink(records.append)
        agent = MaintenanceAgent(context)
        assert agent.drain() == 2  # the audit plus the triggered rebuild
        rebuild = next(
            j for j in context.queue.jobs() if j["kind"] == "rebuild"
        )
        assert rebuild["trace_id"] == TRACE
        rebuild_spans = [
            r
            for r in records
            if r.name == "agent.job" and r.tags.get("kind") == "rebuild"
        ]
        assert rebuild_spans and rebuild_spans[0].trace_id == TRACE

    def test_handler_enqueues_inherit_the_job_trace(self, tmp_path):
        """Work a traced job spawns (here: via the attached context)
        carries the same trace forward — the chain does not break at one
        hop."""
        context = self.build_context(tmp_path)

        def chaining_handler(ctx, job):
            follow_up = ctx.queue.enqueue("checkpoint")
            return {"enqueued": follow_up.id}

        context.queue.enqueue(
            "rebuild", {"relation": "R", "attribute": "a"}, trace_id=TRACE
        )
        agent = MaintenanceAgent(
            context, handlers={"rebuild": chaining_handler}
        )
        assert agent.run_once() == OUTCOME_DONE
        follow_up = next(
            j for j in context.queue.jobs() if j["kind"] == "checkpoint"
        )
        assert follow_up["trace_id"] == TRACE
