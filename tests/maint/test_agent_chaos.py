"""Chaos suite for the durable job queue and the maintenance agent.

Three layers of crash testing, mirroring the persistence chaos suite in
``tests/engine/test_chaos.py``:

* **every queue injection point**: a workload that exercises every
  queue-log event type crashes at each registered point in turn; the
  reopened queue must replay to a state where every *acknowledged*
  transition survives and the in-flight one either landed whole or not
  at all — never half;
* **mid-rebuild kill**: the agent dies between publishing a rebuild and
  logging its ack; after the lease expires, a restarted agent reclaims
  the job, re-runs the idempotent rebuild, and resolves it exactly once;
* **seeded crash-restart storm**: hundreds of randomized
  crash-and-restart schedules (pure functions of their seed) must each
  end with every enqueued job completed exactly once.
"""

import pytest

from repro.core.frequency import AttributeDistribution
from repro.engine.catalog import StatsCatalog
from repro.engine.persist import load_catalog
from repro.maint.agent import (
    OUTCOME_DONE,
    AgentContext,
    MaintenanceAgent,
)
from repro.maint.queue import DurableJobQueue, RetryPolicy
from repro.testing.faults import (
    QUEUE_INJECTION_POINTS,
    POINT_QUEUE_ACK,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
)

from tests.maint.test_agent import FakeClock, fresh_source, put_entry

#: Statuses a job can replay into (plus "absent" after compaction).
ABSENT = "absent"


def make_queue(path, clock):
    return DurableJobQueue(
        path,
        lease_duration=5.0,
        retry=RetryPolicy(base=0.1, jitter=0.0, max_attempts=2),
        clock=clock,
        rng=5,
    )


class Driver:
    """Runs the every-event-type workload one step at a time."""

    def __init__(self, path, clock):
        self.queue = make_queue(path, clock)
        self.clock = clock
        self.lease_a = None
        self.lease_b = None

    # Each step returns {job_id: status_after_this_step}.

    def enqueue_a(self):
        self.queue.enqueue("rebuild", {"relation": "R", "attribute": "a"})
        return {"job-1": "pending"}

    def claim_a(self):
        self.lease_a = self.queue.claim("w")
        return {"job-1": "claimed"}

    def renew_a(self):
        self.lease_a = self.queue.renew(self.lease_a)
        return {"job-1": "claimed"}

    def ack_a(self):
        self.queue.ack(self.lease_a)
        return {"job-1": "done"}

    def enqueue_b(self):
        self.queue.enqueue("checkpoint")
        return {"job-5": "pending"}

    def claim_b(self):
        self.lease_b = self.queue.claim("w")
        return {"job-5": "claimed"}

    def fail_b_transient(self):
        assert self.queue.fail(self.lease_b, "transient") == "pending"
        return {"job-5": "pending"}

    def reclaim_b(self):
        self.clock.advance(1.0)  # past the 0.1 s backoff deadline
        self.lease_b = self.queue.claim("w")
        return {"job-5": "claimed"}

    def fail_b_fatal(self):
        assert self.queue.fail(self.lease_b, "fatal") == "dead"
        return {"job-5": "dead"}

    def checkpoint(self):
        self.queue.checkpoint()
        return {"job-1": ABSENT}

    STEPS = (
        enqueue_a,
        claim_a,
        renew_a,
        ack_a,
        enqueue_b,
        claim_b,
        fail_b_transient,
        reclaim_b,
        fail_b_fatal,
        checkpoint,
    )


@pytest.mark.parametrize("point", QUEUE_INJECTION_POINTS)
def test_crash_at_every_queue_point_is_replayable(point, tmp_path):
    """Crash at *point*; the reopened queue must hold every acked event."""
    clock = FakeClock()
    driver = Driver(tmp_path / "queue.jsonl", clock)

    #: job -> set of statuses the post-crash replay is allowed to show.
    allowed: dict = {}
    crashed = None
    injector = FaultInjector().fail_at(point)
    with injector:
        try:
            for step in Driver.STEPS:
                effects = step(driver)
                for job, status in effects.items():
                    allowed[job] = {status}
        except InjectedFault:
            crashed = step  # the loop variable at raise time
    assert injector.triggered, f"injection point {point} never fired"
    if crashed is not None:
        # The in-flight step may have landed (crash after the write, e.g.
        # at queue.flush) or not (crash before it) — both are legal
        # outcomes; half-landing is not.
        for job, status in _step_effects(crashed).items():
            allowed.setdefault(job, {ABSENT}).add(status)

    reopened = make_queue(driver.queue.path, clock)
    states = {j["id"]: j["status"] for j in reopened.jobs()}
    for job, statuses in allowed.items():
        actual = states.get(job, ABSENT)
        assert actual in statuses, (
            f"after crash at {point}, {job} replayed to {actual!r}; "
            f"allowed {sorted(statuses)}"
        )
    # The queue stays fully operational after recovery.
    job = reopened.enqueue("drift-audit")
    lease = reopened.claim("after-crash")
    # Claim order is FIFO over eligible jobs; resolve until our probe job
    # is done, proving claims/acks still work end to end.
    for _ in range(len(reopened.jobs())):
        if lease is None:
            break
        reopened.ack(lease)
        if lease.job.id == job.id:
            break
        lease = reopened.claim("after-crash")
    assert states_get(reopened, job.id) == "done"


def _step_effects(step):
    """A step's declared effects without running it (status targets)."""
    return {
        Driver.enqueue_a: {"job-1": "pending"},
        Driver.claim_a: {"job-1": "claimed"},
        Driver.renew_a: {"job-1": "claimed"},
        Driver.ack_a: {"job-1": "done"},
        Driver.enqueue_b: {"job-5": "pending"},
        Driver.claim_b: {"job-5": "claimed"},
        Driver.fail_b_transient: {"job-5": "pending"},
        Driver.reclaim_b: {"job-5": "claimed"},
        Driver.fail_b_fatal: {"job-5": "dead"},
        Driver.checkpoint: {"job-1": ABSENT},
    }[step]


def states_get(queue, job_id):
    for job in queue.jobs():
        if job["id"] == job_id:
            return job["status"]
    return ABSENT


def build_agent(tmp_path, clock, queue=None):
    if queue is None:
        queue = make_queue(tmp_path / "queue.jsonl", clock)
    snapshot = tmp_path / "catalog.json"
    if snapshot.exists():
        catalog = load_catalog(snapshot)
    else:
        catalog = StatsCatalog()
        put_entry(catalog)
    context = AgentContext(
        queue=queue,
        catalog=catalog,
        snapshot_path=snapshot,
        source=fresh_source,
    )
    return MaintenanceAgent(context), context


def test_agent_killed_mid_rebuild_completes_exactly_once(tmp_path):
    """Kill the agent between the rebuild's publish and its ack.

    The first incarnation publishes the rebuilt snapshot but dies before
    the ack event lands; its lease expires, the restarted agent reclaims
    the job, re-runs the idempotent rebuild, and wins the one ack.
    """
    clock = FakeClock()
    agent, context = build_agent(tmp_path, clock)
    context.queue.enqueue(
        "rebuild", {"relation": "R", "attribute": "a"}, dedupe_key="rebuild:R.a"
    )

    injector = FaultInjector().fail_at(POINT_QUEUE_ACK)
    with injector:
        with pytest.raises(InjectedCrash):
            agent.run_once()  # the simulated process death
    assert injector.triggered
    # The publish happened (idempotent effect), the ack did not.
    assert load_catalog(tmp_path / "catalog.json").get("R", "a") is not None
    assert states_get(context.queue, "job-1") == "claimed"

    # Restart: a fresh process over the same log.  Before the lease
    # expires the job is untouchable; afterwards it is reclaimed.
    restarted = make_queue(context.queue.path, clock)
    assert restarted.claim("second-agent") is None
    clock.advance(6.0)
    agent2, context2 = build_agent(tmp_path, clock, queue=restarted)
    assert agent2.run_once() == OUTCOME_DONE
    state = [j for j in restarted.jobs() if j["id"] == "job-1"][0]
    assert state["status"] == "done"
    assert state["attempts"] == 2  # two executions, exactly one completion
    assert context2.catalog.get("R", "a").total_tuples == pytest.approx(500.0)
    # A third reopen replays to the same resolved state: nothing lost,
    # nothing double-applied.
    assert states_get(make_queue(restarted.path, clock), "job-1") == "done"


#: Storm scale: the acceptance gate asks for >= 200 seeded runs.
STORM_RUNS = 200
STORM_JOBS = 3
STORM_FAULT_RATE = 0.12


def run_storm(seed, base_dir):
    """One randomized crash-and-restart schedule; pure in *seed*."""
    clock = FakeClock()
    queue_path = base_dir / "queue.jsonl"
    queue = DurableJobQueue(
        queue_path,
        lease_duration=5.0,
        retry=RetryPolicy(base=0.1, jitter=0.0, max_attempts=1_000),
        clock=clock,
        rng=seed,
    )
    catalog = StatsCatalog()
    for index in range(STORM_JOBS):
        put_entry(catalog, f"R{index}", "a")

    def fresh_context(queue):
        return AgentContext(
            queue=queue,
            catalog=catalog,
            source=fresh_source,
        )

    agent = MaintenanceAgent(fresh_context(queue))
    enqueued = []
    restarts = 0

    with FaultInjector().fail_randomly(
        rate=STORM_FAULT_RATE, seed=seed, points=QUEUE_INJECTION_POINTS
    ):
        for index in range(STORM_JOBS):
            while True:
                try:
                    job = queue.enqueue(
                        "rebuild",
                        {"relation": f"R{index}", "attribute": "a"},
                        dedupe_key=f"rebuild:R{index}.a",
                    )
                    enqueued.append(job.id)
                    break
                except InjectedFault:
                    restarts += 1
                    queue = DurableJobQueue(
                        queue_path,
                        lease_duration=5.0,
                        retry=RetryPolicy(
                            base=0.1, jitter=0.0, max_attempts=1_000
                        ),
                        clock=clock,
                        rng=seed,
                    )
                    agent = MaintenanceAgent(fresh_context(queue))
        for _ in range(400):
            if queue.depth("done") == STORM_JOBS:
                break
            try:
                outcome = agent.run_once()
            except InjectedFault:
                restarts += 1
                clock.advance(6.0)  # the dead worker's lease expires
                queue = DurableJobQueue(
                    queue_path,
                    lease_duration=5.0,
                    retry=RetryPolicy(base=0.1, jitter=0.0, max_attempts=1_000),
                    clock=clock,
                    rng=seed,
                )
                agent = MaintenanceAgent(fresh_context(queue))
                continue
            if outcome is None:
                clock.advance(1.0)  # pass any backoff deadline

    # Storm over: every enqueued job completed exactly once.
    states = {j["id"]: j for j in queue.jobs()}
    assert len(enqueued) == STORM_JOBS
    done = [job_id for job_id in enqueued if states[job_id]["status"] == "done"]
    assert sorted(done) == sorted(enqueued), (
        f"seed {seed}: {len(done)}/{STORM_JOBS} jobs completed "
        f"after {restarts} restarts"
    )
    # And a final restart replays to the identical resolved state.
    replayed = DurableJobQueue(queue_path, clock=clock)
    assert {j["id"]: j["status"] for j in replayed.jobs()} == {
        job_id: "done" for job_id in enqueued
    }
    return restarts


def test_crash_restart_storm_completes_every_job_exactly_once(tmp_path):
    total_restarts = 0
    for seed in range(STORM_RUNS):
        run_dir = tmp_path / f"storm-{seed}"
        run_dir.mkdir()
        total_restarts += run_storm(seed, run_dir)
    # Sanity on the storm itself: with ~12% fault rate over hundreds of
    # runs a schedule with zero crashes everywhere would mean the
    # injector never armed — the gate requires real crashes.
    assert total_restarts >= STORM_RUNS


def test_fresh_source_is_deterministic():
    """The storm's idempotence argument rests on a deterministic source."""
    first = fresh_source("R0", "a")
    second = fresh_source("R0", "a")
    assert isinstance(first, AttributeDistribution)
    assert list(first.frequencies) == list(second.frequencies)
