"""Unit tests for the durable maintenance job queue.

Every behavioural claim in ``repro/maint/queue.py`` gets a direct test
here: idempotent enqueue, FIFO claims, lease fencing and reclaim,
backoff-with-jitter retries, the dead-letter lane, checkpoint
compaction, and — the durability core — that a reopened queue replays to
exactly the state the acknowledged events built.  Crash-at-every-point
coverage lives in ``tests/maint/test_agent_chaos.py``.
"""

import pytest

from repro.maint.queue import (
    JOB_KINDS,
    DurableJobQueue,
    LeaseLostError,
    RetryPolicy,
)


class FakeClock:
    """Deterministic wall clock the tests advance by hand."""

    def __init__(self, now: float = 1_000.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def queue(tmp_path, clock):
    return DurableJobQueue(
        tmp_path / "queue.jsonl", lease_duration=30.0, clock=clock, rng=7
    )


def reopen(queue, clock, **kwargs):
    """A 'process restart': a fresh queue over the same log file."""
    return DurableJobQueue(queue.path, clock=clock, rng=7, **kwargs)


class TestEnqueue:
    def test_ids_are_sequential_and_params_copied(self, queue):
        params = {"relation": "R", "attribute": "a"}
        first = queue.enqueue("rebuild", params)
        second = queue.enqueue("checkpoint")
        params["relation"] = "mutated"
        assert first.id == "job-1"
        assert second.id == "job-2"
        assert first.params == {"relation": "R", "attribute": "a"}
        assert queue.depth() == 2
        assert queue.depth("pending") == 2

    def test_rejects_unknown_kind_and_bad_params(self, queue):
        with pytest.raises(ValueError, match="job kind"):
            queue.enqueue("vacuum")
        with pytest.raises((TypeError, ValueError)):
            queue.enqueue("rebuild", {"relation": object()})
        with pytest.raises(TypeError, match="dedupe_key"):
            queue.enqueue("rebuild", dedupe_key=7)
        assert queue.depth() == 0

    def test_dedupe_returns_live_job(self, queue):
        first = queue.enqueue("rebuild", {"relation": "R"}, dedupe_key="k")
        again = queue.enqueue("rebuild", {"relation": "R"}, dedupe_key="k")
        assert again.id == first.id
        assert queue.depth() == 1

    def test_dedupe_covers_claimed_but_not_resolved(self, queue):
        job = queue.enqueue("rebuild", {"relation": "R"}, dedupe_key="k")
        lease = queue.claim("w")
        assert queue.enqueue("rebuild", dedupe_key="k").id == job.id
        queue.ack(lease)
        fresh = queue.enqueue("rebuild", dedupe_key="k")
        assert fresh.id != job.id

    def test_enqueued_at_uses_injected_clock(self, queue, clock):
        clock.advance(5.0)
        job = queue.enqueue("drift-audit")
        assert job.enqueued_at == pytest.approx(1_005.0)


class TestClaimAndLease:
    def test_fifo_order(self, queue):
        ids = [queue.enqueue(kind).id for kind in JOB_KINDS]
        claimed = [queue.claim("w").job.id for _ in ids]
        assert claimed == ids
        assert queue.claim("w") is None

    def test_claim_validates_owner(self, queue):
        with pytest.raises(TypeError, match="owner"):
            queue.claim("")

    def test_lease_blocks_second_claimer_until_expiry(self, queue, clock):
        queue.enqueue("rebuild")
        first = queue.claim("alpha")
        assert queue.claim("beta") is None
        clock.advance(30.0)  # exactly the lease duration: expired
        second = queue.claim("beta")
        assert second is not None
        assert second.reclaimed is True
        assert second.job.id == first.job.id
        # The fenced-out token can no longer resolve the job.
        with pytest.raises(LeaseLostError):
            queue.ack(first)
        queue.ack(second)
        assert queue.depth("done") == 1

    def test_renew_extends_the_deadline(self, queue, clock):
        queue.enqueue("rebuild")
        lease = queue.claim("w")
        clock.advance(20.0)
        renewed = queue.renew(lease)
        assert renewed.expires == pytest.approx(clock.now + 30.0)
        clock.advance(20.0)  # 40s after claim, 20s after renew: still held
        assert queue.claim("thief") is None
        queue.ack(renewed)

    def test_renew_after_reclaim_raises(self, queue, clock):
        queue.enqueue("rebuild")
        stale = queue.claim("w")
        clock.advance(31.0)
        queue.claim("thief")
        with pytest.raises(LeaseLostError):
            queue.renew(stale)

    def test_ack_is_single_shot(self, queue):
        queue.enqueue("rebuild")
        lease = queue.claim("w")
        queue.ack(lease)
        with pytest.raises(LeaseLostError):
            queue.ack(lease)

    def test_lease_type_checked(self, queue):
        with pytest.raises(TypeError, match="lease"):
            queue.ack("job-1")


class TestRetryAndDeadLetter:
    def test_retry_schedules_jittered_backoff(self, tmp_path, clock):
        retry = RetryPolicy(base=8.0, cap=300.0, jitter=0.25, max_attempts=5)
        queue = DurableJobQueue(
            tmp_path / "q.jsonl", retry=retry, clock=clock, rng=3
        )
        queue.enqueue("rebuild")
        lease = queue.claim("w")
        assert queue.fail(lease, "boom") == "pending"
        state = queue.jobs()[0]
        assert state["status"] == "pending"
        assert state["last_error"] == "boom"
        delay = state["not_before"] - clock.now
        assert 8.0 * 0.75 <= delay <= 8.0 * 1.25
        # Not claimable until the backoff deadline passes.
        assert queue.claim("w") is None
        clock.advance(delay)
        second = queue.claim("w")
        assert second is not None
        # Second failure backs off exponentially from 2 * base.
        queue.fail(second, "boom again")
        delay2 = queue.jobs()[0]["not_before"] - clock.now
        assert 16.0 * 0.75 <= delay2 <= 16.0 * 1.25

    def test_dead_letter_after_max_attempts(self, tmp_path, clock):
        queue = DurableJobQueue(
            tmp_path / "q.jsonl",
            retry=RetryPolicy(base=0.1, max_attempts=2),
            clock=clock,
            rng=1,
        )
        queue.enqueue("rebuild", dedupe_key="k")
        outcomes = []
        for _ in range(2):
            clock.advance(10.0)
            lease = queue.claim("w")
            outcomes.append(queue.fail(lease, "no source"))
        assert outcomes == ["pending", "dead"]
        lane = queue.dead_letters()
        assert [j["id"] for j in lane] == ["job-1"]
        assert lane[0]["last_error"] == "no source"
        # Dead jobs do not hold their dedupe key.
        assert queue.enqueue("rebuild", dedupe_key="k").id != "job-1"

    def test_requeue_dead_resets_attempts(self, tmp_path, clock):
        queue = DurableJobQueue(
            tmp_path / "q.jsonl",
            retry=RetryPolicy(base=0.1, max_attempts=1),
            clock=clock,
        )
        queue.enqueue("rebuild")
        queue.fail(queue.claim("w"), "x")
        assert queue.depth("dead") == 1
        job = queue.requeue_dead("job-1")
        assert job.id == "job-1"
        state = queue.jobs()[0]
        assert state["status"] == "pending"
        assert state["attempts"] == 0

    def test_requeue_rejects_non_dead(self, queue):
        queue.enqueue("rebuild")
        with pytest.raises(ValueError, match="dead-letter"):
            queue.requeue_dead("job-1")
        with pytest.raises(ValueError, match="dead-letter"):
            queue.requeue_dead("job-99")

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base=2.0, cap=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestDurability:
    def test_restart_replays_identical_state(self, queue, clock):
        queue.enqueue("rebuild", {"relation": "R", "attribute": "a"})
        queue.enqueue("checkpoint", dedupe_key="ckpt")
        queue.enqueue("drift-audit")
        queue.ack(queue.claim("w"))
        queue.fail(queue.claim("w"), "transient")
        queue.claim("w")  # drift-audit held under a live lease
        before = queue.jobs()
        reopened = reopen(queue, clock)
        assert reopened.jobs() == before
        assert reopened.depth("done") == 1
        assert reopened.depth("claimed") == 1

    def test_lease_survives_restart_until_wall_deadline(self, queue, clock):
        queue.enqueue("rebuild")
        queue.claim("w")
        reopened = reopen(queue, clock)
        # The worker may still be alive: its lease holds across a queue
        # reopen until the wall-clock deadline actually passes.
        assert reopened.claim("thief") is None
        clock.advance(31.0)
        lease = reopened.claim("thief")
        assert lease is not None and lease.reclaimed

    def test_durable_renew_respected_after_restart(self, queue, clock):
        queue.enqueue("rebuild")
        lease = queue.claim("w")
        clock.advance(25.0)
        queue.renew(lease)
        reopened = reopen(queue, clock)
        clock.advance(10.0)  # 35s after claim, 10s after the logged renew
        assert reopened.claim("thief") is None

    def test_dedupe_index_rebuilt_on_restart(self, queue, clock):
        job = queue.enqueue("rebuild", dedupe_key="k")
        reopened = reopen(queue, clock)
        assert reopened.enqueue("rebuild", dedupe_key="k").id == job.id

    def test_checkpoint_drops_done_keeps_live_and_dead(self, tmp_path, clock):
        queue = DurableJobQueue(
            tmp_path / "q.jsonl",
            retry=RetryPolicy(base=0.1, max_attempts=1),
            clock=clock,
        )
        queue.enqueue("rebuild")  # -> done
        queue.enqueue("checkpoint")  # -> dead
        queue.enqueue("drift-audit")  # stays pending
        queue.ack(queue.claim("w"))
        queue.fail(queue.claim("w"), "x")
        dropped = queue.checkpoint()
        assert dropped == 3  # the done job's enqueue + claim + ack
        assert queue.depth("done") == 0
        assert queue.depth("dead") == 1
        assert queue.depth("pending") == 1
        reopened = reopen(queue, clock, retry=RetryPolicy(base=0.1, max_attempts=1))
        assert reopened.jobs() == queue.jobs()
        # Attempt counters replay exactly for surviving jobs.
        assert reopened.dead_letters()[0]["attempts"] == 1

    def test_job_ids_never_collide_after_checkpoint(self, queue, clock):
        queue.enqueue("rebuild")
        queue.ack(queue.claim("w"))
        queue.checkpoint()
        fresh = queue.enqueue("checkpoint")
        # The header carries the seq high-water mark across the rewrite.
        assert int(fresh.id.split("-")[1]) > 1
        reopened = reopen(queue, clock)
        assert reopened.enqueue("drift-audit").id != fresh.id


class TestIntrospection:
    def test_depth_validates_status(self, queue):
        with pytest.raises(ValueError, match="status"):
            queue.depth("zombie")

    def test_oldest_pending_age(self, queue, clock):
        assert queue.oldest_pending_age() == 0.0
        queue.enqueue("rebuild")
        clock.advance(12.5)
        queue.enqueue("checkpoint")
        assert queue.oldest_pending_age() == pytest.approx(12.5)
