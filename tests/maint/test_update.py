"""Tests for repro.maint.update — incremental end-biased maintenance."""

import numpy as np
import pytest

from repro.core.frequency import AttributeDistribution
from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.maint.update import MaintainedEndBiased, MaintenancePolicy


@pytest.fixture
def distribution():
    freqs = quantize_to_integers(zipf_frequencies(1000, 30, 1.2)).astype(float)
    return AttributeDistribution(list(range(30)), freqs)


@pytest.fixture
def maintained(distribution):
    return MaintainedEndBiased(distribution, 6)


class TestInitialState:
    def test_matches_optimal_histogram(self, distribution, maintained):
        from repro.core.biased import v_opt_bias_hist

        hist = v_opt_bias_hist(distribution.frequencies, 6, values=distribution.values)
        assert maintained.self_join_estimate() == pytest.approx(hist.self_join_estimate())

    def test_totals(self, distribution, maintained):
        assert maintained.total == pytest.approx(distribution.total)
        assert maintained.distinct_count == 30

    def test_estimate_explicit_value(self, distribution, maintained):
        top = max(distribution.values, key=distribution.frequency_of)
        assert maintained.estimate(top) == pytest.approx(distribution.frequency_of(top))

    def test_no_rebuild_needed_fresh(self, maintained):
        assert not maintained.needs_rebuild()


class TestInserts:
    def test_insert_explicit_value(self, distribution, maintained):
        top = max(distribution.values, key=distribution.frequency_of)
        before = maintained.estimate(top)
        maintained.insert(top)
        assert maintained.estimate(top) == before + 1

    def test_insert_remainder_value(self, distribution, maintained):
        values_by_freq = sorted(distribution.values, key=distribution.frequency_of)
        low = values_by_freq[len(values_by_freq) // 2]
        total_before = maintained.total
        maintained.insert(low)
        assert maintained.total == pytest.approx(total_before + 1)

    def test_insert_new_domain_value(self, maintained):
        distinct_before = maintained.distinct_count
        maintained.insert("brand-new")
        assert maintained.distinct_count == distinct_before + 1
        assert maintained.estimate("brand-new") > 0

    def test_total_tracks_inserts(self, maintained):
        before = maintained.total
        for _ in range(10):
            maintained.insert("v")
        assert maintained.total == pytest.approx(before + 10)


class TestDeletes:
    def test_delete_explicit(self, distribution, maintained):
        top = max(distribution.values, key=distribution.frequency_of)
        before = maintained.estimate(top)
        maintained.delete(top)
        assert maintained.estimate(top) == before - 1

    def test_delete_remainder(self, distribution, maintained):
        values_by_freq = sorted(distribution.values, key=distribution.frequency_of)
        low = values_by_freq[0]
        before = maintained.total
        maintained.delete(low)
        assert maintained.total == pytest.approx(before - 1)

    def test_delete_unknown_value_rejected(self, maintained):
        with pytest.raises(ValueError, match="domain"):
            maintained.delete("never-seen")

    def test_delete_below_zero_rejected(self, distribution):
        tiny = AttributeDistribution(["a", "b"], [2.0, 1.0])
        maintained = MaintainedEndBiased(tiny, 2)
        maintained.delete("a")
        maintained.delete("a")
        with pytest.raises(ValueError):
            maintained.delete("a")


class TestRebuildPolicy:
    def test_update_fraction_trigger(self, distribution):
        maintained = MaintainedEndBiased(
            distribution, 6, policy=MaintenancePolicy(update_fraction=0.05)
        )
        for _ in range(49):
            maintained.insert(0)
        assert not maintained.needs_rebuild()
        maintained.insert(0)
        assert maintained.needs_rebuild()

    def test_promotion_trigger(self, distribution):
        """A remainder value outgrowing an explicit one forces a rebuild."""
        maintained = MaintainedEndBiased(
            distribution, 6, policy=MaintenancePolicy(update_fraction=10.0)
        )
        values_by_freq = sorted(distribution.values, key=distribution.frequency_of)
        cold = values_by_freq[0]
        floor = min(maintained.explicit.values())
        for _ in range(int(floor) + 5):
            maintained.insert(cold)
        assert maintained.needs_rebuild()

    def test_promotions_can_be_disabled(self, distribution):
        maintained = MaintainedEndBiased(
            distribution,
            6,
            policy=MaintenancePolicy(update_fraction=10.0, watch_promotions=False),
        )
        values_by_freq = sorted(distribution.values, key=distribution.frequency_of)
        cold = values_by_freq[0]
        for _ in range(200):
            maintained.insert(cold)
        assert not maintained.needs_rebuild()

    def test_rebuild_resets(self, distribution, maintained):
        for _ in range(200):
            maintained.insert(0)
        fresh_freqs = maintained.as_compact()
        new_dist = AttributeDistribution(
            list(distribution.values),
            distribution.frequencies + np.where(np.array(distribution.values) == 0, 200.0, 0.0),
        )
        maintained.rebuild(new_dist)
        assert maintained.updates_since_build == 0
        assert not maintained.needs_rebuild()
        assert maintained.total == pytest.approx(new_dist.total)

    def test_drift_increases_self_join_error(self, distribution, maintained):
        """Stale histograms accrue error — the paper's Section 2.3 warning."""
        true_freqs = dict(zip(distribution.values, distribution.frequencies))
        gen = np.random.default_rng(0)
        values_by_freq = sorted(distribution.values, key=distribution.frequency_of)
        cold_values = values_by_freq[:10]
        for _ in range(400):
            value = cold_values[gen.integers(0, len(cold_values))]
            maintained.insert(value)
            true_freqs[value] += 1
        truth = sum(f * f for f in true_freqs.values())
        stale_error = abs(truth - maintained.self_join_estimate())
        rebuilt = MaintainedEndBiased(
            AttributeDistribution(list(true_freqs), list(true_freqs.values())), 6
        )
        fresh_error = abs(truth - rebuilt.self_join_estimate())
        assert fresh_error <= stale_error


class TestPublish:
    def test_publish_creates_catalog_entry(self, distribution, maintained):
        from repro.engine.catalog import StatsCatalog

        catalog = StatsCatalog()
        entry = maintained.publish(catalog, "R", "a")
        assert catalog.get("R", "a") is entry
        assert entry.kind == "maintained-end-biased"
        assert entry.total_tuples == pytest.approx(maintained.total)
        assert entry.distinct_count == maintained.distinct_count
        top = max(distribution.values, key=distribution.frequency_of)
        assert entry.estimate_frequency(top) == pytest.approx(
            maintained.estimate(top)
        )

    def test_publish_invalidates_service_tables(self, maintained):
        from repro.engine.catalog import StatsCatalog
        from repro.serve import EstimationService

        catalog = StatsCatalog()
        maintained.publish(catalog, "R", "a")
        service = EstimationService(catalog)
        before = service.estimate_equality("R", "a", 0)
        assert service.stats().table_misses == 1

        for _ in range(50):
            maintained.insert(0)
        maintained.publish(catalog, "R", "a")
        after = service.estimate_equality("R", "a", 0)
        # The republished snapshot forced a recompile and a fresh answer.
        assert service.stats().table_misses == 2
        assert after == pytest.approx(before + 50)


class TestCounterOnlyMode:
    def test_unknown_values_assumed_in_domain(self, distribution):
        maintained = MaintainedEndBiased(distribution, 6, track_values=False)
        assert maintained.estimate("anything") == pytest.approx(
            maintained.remainder_average
        )

    def test_insert_unseen(self, distribution):
        maintained = MaintainedEndBiased(distribution, 6, track_values=False)
        before = maintained.total
        maintained.insert("new")
        assert maintained.total == pytest.approx(before + 1)
