"""Unit tests for the maintenance agent: handlers, runner, heartbeat.

The end-to-end contract under test: drift observed by the accuracy
monitor turns into a rebuild job, the rebuild republishes fresh
statistics through the catalog + WAL while serving keeps answering from
the prior snapshot, and every job resolves to exactly one of
done/retry/dead/lost.
"""

import time

import pytest

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import AttributeDistribution
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.journal import MaintenanceJournal
from repro.engine.persist import load_catalog
from repro.maint.agent import (
    OUTCOME_DEAD,
    OUTCOME_DONE,
    OUTCOME_RETRY,
    AgentContext,
    DriftPolicy,
    MaintenanceAgent,
)
from repro.maint.queue import DurableJobQueue, RetryPolicy
from repro.obs.accuracy import AccuracyMonitor
from repro.serve import (
    REASON_QUARANTINED,
    REASON_REBUILD_IN_PROGRESS,
    EqualityProbe,
    EstimationService,
)


class FakeClock:
    def __init__(self, now: float = 1_000.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


def put_entry(catalog, relation="R", attribute="a", freq=5.0, domain=10):
    """Seed one (stale) uniform end-biased entry the tests rebuild over."""
    distribution = AttributeDistribution(
        list(range(domain)), [float(freq)] * domain
    )
    histogram = v_opt_bias_hist(
        distribution.frequencies, 4, values=distribution.values
    )
    compact = CompactEndBiased.from_histogram(histogram)
    catalog.put(
        CatalogEntry(
            relation=relation,
            attribute=attribute,
            kind="end-biased",
            histogram=None,
            compact=compact,
            distinct_count=len(compact.explicit) + compact.remainder_count,
            total_tuples=distribution.total,
        )
    )


def fresh_source(relation, attribute):
    """The 'rescan': every value now occurs 50 times."""
    return AttributeDistribution(list(range(10)), [50.0] * 10)


def build_context(tmp_path, clock, **overrides):
    queue = overrides.pop(
        "queue",
        DurableJobQueue(
            tmp_path / "queue.jsonl",
            lease_duration=30.0,
            retry=RetryPolicy(base=0.1, max_attempts=2),
            clock=clock,
            rng=11,
        ),
    )
    catalog = overrides.pop("catalog", None)
    if catalog is None:
        catalog = StatsCatalog()
        put_entry(catalog)
    defaults = dict(
        queue=queue,
        catalog=catalog,
        snapshot_path=tmp_path / "catalog.json",
        journal=MaintenanceJournal(tmp_path / "wal.jsonl"),
        source=fresh_source,
    )
    defaults.update(overrides)
    return AgentContext(**defaults)


class TestContextValidation:
    def test_queue_and_catalog_are_type_checked(self, tmp_path):
        with pytest.raises(TypeError, match="queue"):
            AgentContext(queue=object(), catalog=StatsCatalog())
        queue = DurableJobQueue(tmp_path / "q.jsonl")
        with pytest.raises(TypeError, match="catalog"):
            AgentContext(queue=queue, catalog={})
        with pytest.raises(ValueError, match="buckets"):
            AgentContext(queue=queue, catalog=StatsCatalog(), buckets=0)

    def test_drift_policy_validation(self):
        with pytest.raises(ValueError):
            DriftPolicy(max_relative_error=0.0)
        with pytest.raises(ValueError):
            DriftPolicy(min_observations=0)

    def test_agent_validation(self, tmp_path):
        context = build_context(tmp_path, FakeClock())
        with pytest.raises(TypeError, match="context"):
            MaintenanceAgent("nope")
        with pytest.raises(TypeError, match="name"):
            MaintenanceAgent(context, name="")
        with pytest.raises(ValueError, match="poll_interval"):
            MaintenanceAgent(context, poll_interval=0.0)


class TestRebuild:
    def test_rebuild_republishes_through_catalog_and_snapshot(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock)
        service = EstimationService(context.catalog)
        context.service = service
        assert service.estimate_equality("R", "a", 0) == pytest.approx(5.0)
        version_before = context.catalog.version

        context.queue.enqueue(
            "rebuild",
            {"relation": "R", "attribute": "a"},
            dedupe_key="rebuild:R.a",
        )
        agent = MaintenanceAgent(context)
        assert agent.run_once() == OUTCOME_DONE
        assert context.catalog.version > version_before
        # Serving now answers from the rebuilt statistics.
        assert service.estimate_equality("R", "a", 0) == pytest.approx(50.0)
        # And the snapshot on disk carries the rebuilt entry.
        reloaded = load_catalog(context.snapshot_path)
        entry = reloaded.get("R", "a")
        assert entry is not None
        assert entry.kind == "maintained-end-biased"
        assert entry.total_tuples == pytest.approx(500.0)

    def test_rebuild_fences_acknowledged_journal_deltas(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock)
        context.journal.append_insert("R", "a", 3)
        context.queue.enqueue("rebuild", {"relation": "R", "attribute": "a"})
        assert MaintenanceAgent(context).run_once() == OUTCOME_DONE
        # The rebuilt entry's fence covers the pre-rebuild delta, so
        # recovery replay cannot double-apply it.
        report = load_catalog(
            context.snapshot_path, recover=True, journal=context.journal.path
        )
        assert report.clean
        assert report.catalog.get("R", "a").total_tuples == pytest.approx(500.0)

    def test_rebuild_without_source_retries_then_dead_letters(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock, source=None)
        context.queue.enqueue("rebuild", {"relation": "R", "attribute": "a"})
        agent = MaintenanceAgent(context)
        assert agent.run_once() == OUTCOME_RETRY
        clock.advance(10.0)
        assert agent.run_once() == OUTCOME_DEAD
        lane = context.queue.dead_letters()
        assert len(lane) == 1
        assert "statistics source" in lane[0]["last_error"]

    def test_rebuild_requires_target_params(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock)
        context.queue.enqueue("rebuild", {"relation": "R"})
        assert MaintenanceAgent(context).run_once() == OUTCOME_RETRY
        assert "attribute" in context.queue.jobs()[0]["last_error"]


class TestServingDegradation:
    def collect_reason(self, service):
        traces = []
        service.estimate_equality("R", "a", 0, trace=traces.append)
        return traces[0].reason

    def test_rebuilding_refines_quarantined_reason_only(self, tmp_path):
        catalog = StatsCatalog()
        put_entry(catalog)
        service = EstimationService(catalog)
        # Healthy pair: marking a rebuild never degrades it.
        service.mark_rebuilding("R", "a")
        traces = []
        estimate = service.estimate_equality("R", "a", 0, trace=traces.append)
        assert estimate == pytest.approx(5.0)
        assert traces == []  # no degradation trace for a healthy pair
        # Quarantined pair: the reason refines to rebuild-in-progress.
        service.quarantine("R", "a")
        assert self.collect_reason(service) == REASON_REBUILD_IN_PROGRESS
        service.clear_rebuilding("R", "a")
        assert self.collect_reason(service) == REASON_QUARANTINED

    def test_rebuild_job_clears_quarantine(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock)
        service = EstimationService(context.catalog)
        context.service = service
        service.quarantine("R", "a")
        assert self.collect_reason(service) == REASON_QUARANTINED
        context.queue.enqueue("rebuild", {"relation": "R", "attribute": "a"})
        assert MaintenanceAgent(context).run_once() == OUTCOME_DONE
        assert service.quarantined == frozenset()
        assert service.rebuilding == frozenset()
        assert service.estimate_equality("R", "a", 0) == pytest.approx(50.0)


class TestDriftAudit:
    def feed(self, monitor, probe, estimated, actual, times):
        for _ in range(times):
            monitor.record_observation(probe, estimated, actual)

    def test_drift_audit_enqueues_rebuilds_past_threshold(self, tmp_path):
        clock = FakeClock()
        monitor = AccuracyMonitor()
        catalog = StatsCatalog()
        put_entry(catalog, "R", "a")
        put_entry(catalog, "S", "b")
        context = build_context(
            tmp_path,
            clock,
            catalog=catalog,
            monitor=monitor,
            drift=DriftPolicy(max_relative_error=0.5, min_observations=20),
        )
        # R.a drifted badly (est 5 vs actual 50); S.b is accurate;
        # T.c drifted but is not cataloged; U.d drifted but has too few
        # observations to trust.
        self.feed(monitor, EqualityProbe("R", "a", 0), 5.0, 50.0, 25)
        self.feed(monitor, EqualityProbe("S", "b", 0), 50.0, 50.0, 25)
        self.feed(monitor, EqualityProbe("T", "c", 0), 5.0, 50.0, 25)
        self.feed(monitor, EqualityProbe("U", "d", 0), 5.0, 50.0, 5)

        context.queue.enqueue("drift-audit")
        agent = MaintenanceAgent(context)
        resolved = agent.drain()
        assert resolved == 2  # the audit plus exactly one triggered rebuild
        states = {j["id"]: j for j in context.queue.jobs()}
        kinds = sorted(
            (j["kind"], j["status"]) for j in states.values()
        )
        assert kinds == [("drift-audit", "done"), ("rebuild", "done")]
        assert context.catalog.get("R", "a").kind == "maintained-end-biased"
        # The accurate pair was left alone.
        assert context.catalog.get("S", "b").kind == "end-biased"

    def test_drift_audit_is_idempotent_via_dedupe(self, tmp_path):
        clock = FakeClock()
        monitor = AccuracyMonitor()
        context = build_context(tmp_path, clock, monitor=monitor)
        self.feed(monitor, EqualityProbe("R", "a", 0), 5.0, 50.0, 25)
        context.queue.enqueue("drift-audit", dedupe_key="audit")
        agent = MaintenanceAgent(context)
        assert agent.run_once() == OUTCOME_DONE  # audit enqueues rebuild:R.a
        # A second audit before the rebuild runs adds nothing.
        context.queue.enqueue("drift-audit", dedupe_key="audit")
        assert agent.run_once() == OUTCOME_DONE
        rebuilds = [
            j for j in context.queue.jobs() if j["kind"] == "rebuild"
        ]
        assert len(rebuilds) == 1

    def test_threshold_param_overrides_policy(self, tmp_path):
        clock = FakeClock()
        monitor = AccuracyMonitor()
        context = build_context(tmp_path, clock, monitor=monitor)
        # Mean relative error is (50-45)/50 = 0.1: under the default 0.5.
        self.feed(monitor, EqualityProbe("R", "a", 0), 45.0, 50.0, 25)
        context.queue.enqueue("drift-audit", {"threshold": 0.05})
        assert MaintenanceAgent(context).run_once() == OUTCOME_DONE
        assert any(j["kind"] == "rebuild" for j in context.queue.jobs())

    def test_bad_threshold_is_a_job_failure(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock, monitor=AccuracyMonitor())
        context.queue.enqueue("drift-audit", {"threshold": -1.0})
        assert MaintenanceAgent(context).run_once() == OUTCOME_RETRY


class TestQuarantineRepair:
    def test_relation_wide_hold_narrows_to_attributes(self, tmp_path):
        clock = FakeClock()
        catalog = StatsCatalog()
        put_entry(catalog, "R", "a")
        put_entry(catalog, "R", "b")
        context = build_context(tmp_path, clock, catalog=catalog)
        service = EstimationService(catalog)
        context.service = service
        service.quarantine("R", None)
        context.queue.enqueue("quarantine-repair")
        agent = MaintenanceAgent(context)
        assert agent.run_once() == OUTCOME_DONE
        # The coarse hold became per-attribute holds plus rebuild jobs.
        assert ("R", None) not in service.quarantined
        assert {("R", "a"), ("R", "b")} <= set(service.quarantined)
        rebuilds = [j for j in context.queue.jobs() if j["kind"] == "rebuild"]
        assert sorted(j["params"]["attribute"] for j in rebuilds) == ["a", "b"]
        # Draining the rebuilds releases everything.
        agent.drain()
        assert service.quarantined == frozenset()

    def test_repair_without_service_is_a_noop(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock, service=None)
        context.queue.enqueue("quarantine-repair")
        assert MaintenanceAgent(context).run_once() == OUTCOME_DONE
        assert context.queue.depth("pending") == 0


class TestRunnerLifecycle:
    def test_checkpoint_job_compacts_queue_and_snapshots(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock)
        context.queue.enqueue("rebuild", {"relation": "R", "attribute": "a"})
        agent = MaintenanceAgent(context)
        assert agent.run_once() == OUTCOME_DONE
        context.queue.enqueue("checkpoint")
        assert agent.run_once() == OUTCOME_DONE
        # The finished rebuild's events were compacted away; only the
        # checkpoint job itself remains (it was live during compaction).
        assert context.queue.depth() == 1
        assert context.snapshot_path.exists()

    def test_unknown_kind_fails_through_retry_policy(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock)
        context.queue.enqueue("checkpoint")
        agent = MaintenanceAgent(context, handlers={})
        assert agent.run_once() == OUTCOME_RETRY
        assert "no handler" in context.queue.jobs()[0]["last_error"]

    def test_run_with_max_jobs_drains_and_exits(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock)
        for _ in range(3):
            context.queue.enqueue("checkpoint")
        agent = MaintenanceAgent(context)
        assert agent.run(max_jobs=10) == 3  # empty queue ends drain mode
        assert context.queue.depth("pending") == 0
        # Each checkpoint job compacts its predecessors away, so only the
        # last one survives in the log.
        assert context.queue.depth("done") == 1

    def test_stop_prevents_further_claims(self, tmp_path):
        clock = FakeClock()
        context = build_context(tmp_path, clock)
        context.queue.enqueue("checkpoint")
        agent = MaintenanceAgent(context)
        agent.stop()
        assert agent.run() == 0
        assert context.queue.depth("pending") == 1

    def test_heartbeat_keeps_slow_job_leased(self, tmp_path):
        # Real clocks on purpose: the heartbeat thread renews against
        # wall time while the handler outlives several lease durations.
        queue = DurableJobQueue(tmp_path / "q.jsonl", lease_duration=0.09)
        catalog = StatsCatalog()
        put_entry(catalog)
        context = build_context(
            tmp_path, FakeClock(), queue=queue, catalog=catalog
        )

        def slow_checkpoint(ctx, job):
            time.sleep(0.35)  # ~4 lease durations
            return {}

        agent = MaintenanceAgent(context, handlers={"checkpoint": slow_checkpoint})
        queue.enqueue("checkpoint")
        assert agent.run_once() == OUTCOME_DONE
        state = queue.jobs()[0]
        assert state["status"] == "done"
        assert state["attempts"] == 1  # never reclaimed mid-run
