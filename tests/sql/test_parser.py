"""Tests for repro.sql.parser."""

import pytest

from repro.sql.ast import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    InPredicate,
    Literal,
    TableRef,
)
from repro.sql.parser import SqlParseError, parse_select


class TestSelectClause:
    def test_star(self):
        stmt = parse_select("SELECT * FROM r")
        assert stmt.is_star
        assert stmt.tables == (TableRef("r"),)

    def test_column_list(self):
        stmt = parse_select("SELECT a, r.b FROM r")
        assert stmt.columns == (ColumnRef("a"), ColumnRef("b", table="r"))

    def test_missing_from(self):
        with pytest.raises(SqlParseError, match="FROM"):
            parse_select("SELECT a")


class TestFromClause:
    def test_multiple_tables(self):
        stmt = parse_select("SELECT * FROM r, s, t")
        assert [t.name for t in stmt.tables] == ["r", "s", "t"]

    def test_alias_with_as(self):
        stmt = parse_select("SELECT * FROM orders AS o")
        assert stmt.tables[0] == TableRef("orders", "o")
        assert stmt.tables[0].binding == "o"

    def test_bare_alias(self):
        stmt = parse_select("SELECT * FROM orders o")
        assert stmt.tables[0].alias == "o"

    def test_duplicate_bindings_rejected(self):
        with pytest.raises(SqlParseError, match="duplicate"):
            parse_select("SELECT * FROM r, r")

    def test_self_join_via_aliases(self):
        stmt = parse_select("SELECT * FROM r a, r b WHERE a.x = b.x")
        assert [t.binding for t in stmt.tables] == ["a", "b"]


class TestWhereClause:
    def test_equality_with_literal(self):
        stmt = parse_select("SELECT * FROM r WHERE a = 5")
        (pred,) = stmt.predicates
        assert pred == Comparison(ColumnRef("a"), "=", Literal(5))

    def test_string_literal(self):
        stmt = parse_select("SELECT * FROM r WHERE name = 'east'")
        (pred,) = stmt.predicates
        assert pred.right == Literal("east")

    def test_float_literal(self):
        stmt = parse_select("SELECT * FROM r WHERE a < 2.5")
        (pred,) = stmt.predicates
        assert pred.right == Literal(2.5)

    def test_join_predicate(self):
        stmt = parse_select("SELECT * FROM r, s WHERE r.a = s.b")
        (pred,) = stmt.predicates
        assert pred.is_join()

    def test_conjunction(self):
        stmt = parse_select("SELECT * FROM r WHERE a = 1 AND b > 2 AND c <> 3")
        assert len(stmt.predicates) == 3

    def test_in_predicate(self):
        stmt = parse_select("SELECT * FROM r WHERE a IN (1, 2, 3)")
        (pred,) = stmt.predicates
        assert pred == InPredicate(
            ColumnRef("a"), (Literal(1), Literal(2), Literal(3))
        )

    def test_not_in(self):
        stmt = parse_select("SELECT * FROM r WHERE a NOT IN (1)")
        (pred,) = stmt.predicates
        assert pred.negated

    def test_between(self):
        stmt = parse_select("SELECT * FROM r WHERE a BETWEEN 2 AND 7")
        (pred,) = stmt.predicates
        assert pred == BetweenPredicate(ColumnRef("a"), Literal(2), Literal(7))

    def test_literal_first_comparison(self):
        stmt = parse_select("SELECT * FROM r WHERE 5 < a")
        (pred,) = stmt.predicates
        assert pred == Comparison(Literal(5), "<", ColumnRef("a"))

    def test_all_operators(self):
        for operator in ("=", "<>", "!=", "<", "<=", ">", ">="):
            stmt = parse_select(f"SELECT * FROM r WHERE a {operator} 1")
            assert stmt.predicates[0].operator == operator

    def test_missing_operator(self):
        with pytest.raises(SqlParseError, match="comparison operator"):
            parse_select("SELECT * FROM r WHERE a 5")

    def test_unclosed_in_list(self):
        with pytest.raises(SqlParseError):
            parse_select("SELECT * FROM r WHERE a IN (1, 2")

    def test_trailing_tokens_rejected(self):
        # "extra" is consumed as a bare alias; "garbage" must then fail.
        with pytest.raises(SqlParseError):
            parse_select("SELECT * FROM r extra garbage trailing")

    def test_between_requires_and(self):
        with pytest.raises(SqlParseError, match="AND"):
            parse_select("SELECT * FROM r WHERE a BETWEEN 1 2")


class TestAstValidation:
    def test_comparison_operator_validated(self):
        with pytest.raises(ValueError, match="unsupported operator"):
            Comparison(ColumnRef("a"), "LIKE", Literal(1))
