"""Unit tests for repro.sql.planner internals (resolution, selectivities)."""

import numpy as np
import pytest

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.sql.ast import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    InPredicate,
    Literal,
)
from repro.sql.planner import (
    DEFAULT_RANGE_SELECTIVITY,
    SqlPlanError,
    _resolve_column,
    _resolve_predicate,
    _selection_selectivity,
    plan_query,
)
from repro.sql.parser import parse_select
from repro.serve import EstimationService


@pytest.fixture
def bindings(rng):
    r = Relation.from_columns("r", {"a": [1, 2, 3], "b": [4, 5, 6]})
    s = Relation.from_columns("s", {"c": [1, 2, 3]})
    return {"r": r, "s": s}


class TestResolveColumn:
    def test_qualified(self, bindings):
        ref = _resolve_column(ColumnRef("a", table="r"), bindings)
        assert ref == ColumnRef("a", table="r")

    def test_unqualified_unique(self, bindings):
        ref = _resolve_column(ColumnRef("c"), bindings)
        assert ref.table == "s"

    def test_unknown_table(self, bindings):
        with pytest.raises(SqlPlanError, match="unknown table"):
            _resolve_column(ColumnRef("a", table="zzz"), bindings)

    def test_unknown_column_on_table(self, bindings):
        with pytest.raises(SqlPlanError, match="no column"):
            _resolve_column(ColumnRef("zzz", table="r"), bindings)

    def test_unknown_column_anywhere(self, bindings):
        with pytest.raises(SqlPlanError, match="unknown column"):
            _resolve_column(ColumnRef("zzz"), bindings)

    def test_ambiguous_between_tables(self, rng):
        r = Relation.from_columns("r", {"a": [1]})
        s = Relation.from_columns("s", {"a": [1]})
        with pytest.raises(SqlPlanError, match="ambiguous"):
            _resolve_column(ColumnRef("a"), {"r": r, "s": s})


class TestResolvePredicate:
    def test_literal_first_flipped(self, bindings):
        pred = _resolve_predicate(
            Comparison(Literal(5), "<", ColumnRef("a")), bindings
        )
        assert pred == Comparison(ColumnRef("a", table="r"), ">", Literal(5))

    def test_equality_flip_keeps_operator(self, bindings):
        pred = _resolve_predicate(
            Comparison(Literal(5), "=", ColumnRef("a")), bindings
        )
        assert pred.operator == "="

    def test_in_resolved(self, bindings):
        pred = _resolve_predicate(InPredicate(ColumnRef("c"), (Literal(1),)), bindings)
        assert pred.column.table == "s"

    def test_between_resolved(self, bindings):
        pred = _resolve_predicate(
            BetweenPredicate(ColumnRef("b"), Literal(1), Literal(9)), bindings
        )
        assert pred.column.table == "r"


class TestSelectionSelectivity:
    @pytest.fixture
    def entry(self, rng):
        freqs = quantize_to_integers(zipf_frequencies(1000, 20, 1.2))
        column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        rng.shuffle(column)
        relation = Relation.from_columns("R", {"a": column})
        catalog = StatsCatalog()
        analyze_relation(relation, "a", catalog, kind="serial", buckets=8)
        service = EstimationService(catalog)
        return catalog.require("R", "a"), relation, service

    @staticmethod
    def _selectivity(pred, catalog_entry, service):
        return _selection_selectivity(pred, "R", "a", catalog_entry, service)

    def test_equality(self, entry):
        catalog_entry, relation, service = entry
        column = relation.column("a")
        hot = max(set(column), key=column.count)
        pred = Comparison(ColumnRef("a", "R"), "=", Literal(hot))
        sel = self._selectivity(pred, catalog_entry, service)
        assert sel == pytest.approx(column.count(hot) / len(column), rel=0.01)

    def test_not_equals_complement(self, entry):
        catalog_entry, _, service = entry
        eq = self._selectivity(
            Comparison(ColumnRef("a", "R"), "=", Literal(3)), catalog_entry, service
        )
        ne = self._selectivity(
            Comparison(ColumnRef("a", "R"), "<>", Literal(3)), catalog_entry, service
        )
        assert eq + ne == pytest.approx(1.0)

    def test_range_bounds_partition(self, entry):
        catalog_entry, _, service = entry
        below = self._selectivity(
            Comparison(ColumnRef("a", "R"), "<", Literal(10)), catalog_entry, service
        )
        at_or_above = self._selectivity(
            Comparison(ColumnRef("a", "R"), ">=", Literal(10)), catalog_entry, service
        )
        assert below + at_or_above == pytest.approx(1.0)

    def test_between_vs_range_composition(self, entry):
        catalog_entry, _, service = entry
        between = self._selectivity(
            BetweenPredicate(ColumnRef("a", "R"), Literal(5), Literal(10)),
            catalog_entry,
            service,
        )
        assert 0.0 <= between <= 1.0

    def test_in_sums(self, entry):
        catalog_entry, _, service = entry
        single = self._selectivity(
            InPredicate(ColumnRef("a", "R"), (Literal(3),)), catalog_entry, service
        )
        double = self._selectivity(
            InPredicate(ColumnRef("a", "R"), (Literal(3), Literal(4))),
            catalog_entry,
            service,
        )
        assert double >= single

    def test_in_duplicates_collapse(self, entry):
        catalog_entry, _, service = entry
        single = self._selectivity(
            InPredicate(ColumnRef("a", "R"), (Literal(3),)), catalog_entry, service
        )
        repeated = self._selectivity(
            InPredicate(ColumnRef("a", "R"), (Literal(3), Literal(3))),
            catalog_entry,
            service,
        )
        assert repeated == single

    def test_not_in(self, entry):
        catalog_entry, _, service = entry
        contained = self._selectivity(
            InPredicate(ColumnRef("a", "R"), (Literal(3),)), catalog_entry, service
        )
        negated = self._selectivity(
            InPredicate(ColumnRef("a", "R"), (Literal(3),), negated=True),
            catalog_entry,
            service,
        )
        assert contained + negated == pytest.approx(1.0)

    def test_missing_entry_defaults(self):
        pred = Comparison(ColumnRef("a", "R"), ">", Literal(3))
        service = EstimationService(StatsCatalog())
        sel = _selection_selectivity(pred, "R", "a", None, service)
        assert sel == DEFAULT_RANGE_SELECTIVITY

    def test_selectivity_clamped_to_one(self, entry):
        catalog_entry, _, service = entry
        wide = self._selectivity(
            BetweenPredicate(ColumnRef("a", "R"), Literal(-100), Literal(100)),
            catalog_entry,
            service,
        )
        assert wide <= 1.0


class TestPlanQueryEstimates:
    def test_selection_scales_estimate(self, rng):
        relation = Relation.from_columns("r", {"a": [1] * 50 + [2] * 50})
        catalog = StatsCatalog()
        analyze_relation(relation, "a", catalog, kind="end-biased", buckets=2)
        stmt = parse_select("SELECT * FROM r WHERE a = 1")
        planned = plan_query(stmt, {"r": relation}, catalog)
        assert planned.estimated_rows == pytest.approx(50.0)

    def test_join_plus_selection_compose(self, rng):
        r = Relation.from_columns("r", {"a": list(rng.integers(0, 5, 100))})
        s = Relation.from_columns("s", {"a": list(rng.integers(0, 5, 100)), "b": list(rng.integers(0, 2, 100))})
        catalog = StatsCatalog()
        for rel in (r, s):
            for attr in rel.schema.names:
                analyze_relation(rel, attr, catalog, kind="end-biased", buckets=5)
        stmt = parse_select("SELECT * FROM r, s WHERE r.a = s.a AND s.b = 0")
        planned = plan_query(stmt, {"r": r, "s": s}, catalog)
        without_sel = plan_query(
            parse_select("SELECT * FROM r, s WHERE r.a = s.a"), {"r": r, "s": s}, catalog
        )
        fraction = planned.estimated_rows / without_sel.estimated_rows
        truth_fraction = s.column("b").count(0) / 100
        assert fraction == pytest.approx(truth_fraction, rel=0.01)
