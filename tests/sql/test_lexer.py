"""Tests for repro.sql.lexer."""

import pytest

from repro.sql.lexer import SqlLexError, Token, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where") == [
            ("keyword", "SELECT"),
            ("keyword", "FROM"),
            ("keyword", "WHERE"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("Orders my_col") == [
            ("identifier", "Orders"),
            ("identifier", "my_col"),
        ]

    def test_numbers(self):
        assert kinds("42 3.14 -7") == [
            ("number", "42"),
            ("number", "3.14"),
            ("number", "-7"),
        ]

    def test_qualified_number_boundary(self):
        # "r.5" style is not a float: the dot belongs to qualification only
        # when not followed by digits; "1.x" keeps "1" then "." then "x".
        assert kinds("1.x") == [
            ("number", "1"),
            ("symbol", "."),
            ("identifier", "x"),
        ]

    def test_strings(self):
        assert kinds("'east'") == [("string", "east")]

    def test_string_escape(self):
        assert kinds("'o''brien'") == [("string", "o'brien")]

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError, match="unterminated"):
            tokenize("'oops")

    def test_operators(self):
        assert kinds("= <> != < <= > >=") == [
            ("symbol", "="),
            ("symbol", "<>"),
            ("symbol", "!="),
            ("symbol", "<"),
            ("symbol", "<="),
            ("symbol", ">"),
            ("symbol", ">="),
        ]

    def test_punctuation(self):
        assert kinds("( , ) . *") == [
            ("symbol", "("),
            ("symbol", ","),
            ("symbol", ")"),
            ("symbol", "."),
            ("symbol", "*"),
        ]

    def test_end_token(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].kind == "end"

    def test_unexpected_character(self):
        with pytest.raises(SqlLexError, match="unexpected character"):
            tokenize("SELECT @")

    def test_positions_recorded(self):
        tokens = tokenize("a  b")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_matches_helper(self):
        token = Token("keyword", "SELECT", 0)
        assert token.matches("keyword")
        assert token.matches("keyword", "SELECT")
        assert not token.matches("keyword", "FROM")
        assert not token.matches("identifier")
