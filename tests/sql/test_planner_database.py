"""Tests for repro.sql.planner and repro.sql.database."""

import numpy as np
import pytest

from repro.sql import Database
from repro.sql.planner import SqlPlanError


@pytest.fixture
def db(rng):
    database = Database()
    database.create(
        "orders",
        {
            "cust": list(rng.integers(0, 10, 300)),
            "item": list(rng.integers(0, 8, 300)),
            "qty": list(rng.integers(1, 5, 300)),
        },
    )
    database.create(
        "customers",
        {"cust": list(range(10)), "region": ["east", "west"] * 5},
    )
    database.create("items", {"item": list(rng.integers(0, 8, 80))})
    database.analyze()
    return database


def brute_join_count(db, where):
    orders = list(
        zip(
            db.relation("orders").column("cust"),
            db.relation("orders").column("item"),
            db.relation("orders").column("qty"),
        )
    )
    customers = list(
        zip(db.relation("customers").column("cust"), db.relation("customers").column("region"))
    )
    return sum(
        1
        for order in orders
        for customer in customers
        if where(order, customer)
    )


class TestSingleTableQueries:
    def test_select_star_no_where(self, db):
        result = db.execute("SELECT * FROM orders")
        assert result.cardinality == 300
        assert result.schema.names == ("cust", "item", "qty")

    def test_equality_selection(self, db):
        result = db.execute("SELECT * FROM orders WHERE cust = 3")
        truth = db.relation("orders").column("cust").count(3)
        assert result.cardinality == truth

    def test_projection(self, db):
        result = db.execute("SELECT item FROM orders WHERE cust = 3")
        assert result.schema.names == ("item",)

    def test_range_selection(self, db):
        result = db.execute("SELECT * FROM orders WHERE item >= 5")
        truth = sum(1 for item in db.relation("orders").column("item") if item >= 5)
        assert result.cardinality == truth

    def test_between(self, db):
        result = db.execute("SELECT * FROM orders WHERE item BETWEEN 2 AND 4")
        truth = sum(1 for item in db.relation("orders").column("item") if 2 <= item <= 4)
        assert result.cardinality == truth

    def test_in_and_not_in(self, db):
        items = db.relation("orders").column("item")
        hits = db.execute("SELECT * FROM orders WHERE item IN (0, 7)").cardinality
        misses = db.execute("SELECT * FROM orders WHERE item NOT IN (0, 7)").cardinality
        assert hits == sum(1 for item in items if item in (0, 7))
        assert hits + misses == len(items)

    def test_conjunction(self, db):
        result = db.execute("SELECT * FROM orders WHERE item = 2 AND qty > 2")
        rows = zip(db.relation("orders").column("item"), db.relation("orders").column("qty"))
        assert result.cardinality == sum(1 for i, q in rows if i == 2 and q > 2)

    def test_string_predicate(self, db):
        result = db.execute("SELECT * FROM customers WHERE region = 'east'")
        assert result.cardinality == 5

    def test_same_table_column_comparison(self, db):
        result = db.execute("SELECT * FROM orders WHERE item = qty")
        rows = zip(db.relation("orders").column("item"), db.relation("orders").column("qty"))
        assert result.cardinality == sum(1 for i, q in rows if i == q)

    def test_constant_false(self, db):
        assert db.execute("SELECT * FROM orders WHERE 1 = 2").cardinality == 0

    def test_constant_true(self, db):
        assert db.execute("SELECT * FROM orders WHERE 1 = 1").cardinality == 300


class TestJoinQueries:
    def test_two_way_join_exact(self, db):
        result = db.execute(
            "SELECT * FROM orders o, customers c WHERE o.cust = c.cust"
        )
        truth = brute_join_count(db, lambda o, c: o[0] == c[0])
        assert result.cardinality == truth

    def test_join_with_selection(self, db):
        result = db.execute(
            "SELECT * FROM orders o, customers c "
            "WHERE o.cust = c.cust AND c.region = 'west'"
        )
        truth = brute_join_count(db, lambda o, c: o[0] == c[0] and c[1] == "west")
        assert result.cardinality == truth

    def test_three_way_join(self, db):
        result = db.execute(
            "SELECT o.item FROM orders o, customers c, items i "
            "WHERE o.cust = c.cust AND o.item = i.item"
        )
        items = db.relation("items").column("item")
        orders = list(
            zip(db.relation("orders").column("cust"), db.relation("orders").column("item"))
        )
        customers = db.relation("customers").column("cust")
        truth = sum(
            1
            for cust, item in orders
            for c in customers
            if cust == c
            for i in items
            if item == i
        )
        assert result.cardinality == truth

    def test_self_join_with_aliases(self, db):
        result = db.execute(
            "SELECT * FROM customers a, customers b WHERE a.cust = b.cust"
        )
        assert result.cardinality == 10  # cust is a key

    def test_unqualified_unique_column_resolves(self, db):
        result = db.execute(
            "SELECT region FROM orders o, customers c WHERE o.cust = c.cust"
        )
        assert result.schema.names == ("region",)

    def test_estimate_close_to_truth(self, db):
        sql = "SELECT * FROM orders o, customers c WHERE o.cust = c.cust"
        truth = db.execute(sql).cardinality
        assert db.estimate(sql) == pytest.approx(truth, rel=0.3)

    def test_explain_has_plan(self, db):
        explanation = db.explain(
            "SELECT * FROM orders o, customers c WHERE o.cust = c.cust"
        )
        assert explanation.join_plan is not None
        assert "HashJoin" in explanation.pretty()

    def test_multi_table_constant_false(self, db):
        result = db.execute(
            "SELECT * FROM orders o, customers c "
            "WHERE o.cust = c.cust AND 1 = 0"
        )
        assert result.cardinality == 0


class TestPlanErrors:
    def test_unknown_table(self, db):
        with pytest.raises(SqlPlanError, match="unknown table"):
            db.execute("SELECT * FROM nope")

    def test_unknown_column(self, db):
        with pytest.raises(SqlPlanError, match="unknown column"):
            db.execute("SELECT * FROM orders WHERE missing = 1")

    def test_ambiguous_column(self, db):
        with pytest.raises(SqlPlanError, match="ambiguous"):
            db.execute(
                "SELECT * FROM orders o, customers c "
                "WHERE o.cust = c.cust AND cust = 3"
            )

    def test_cross_product_rejected(self, db):
        with pytest.raises(SqlPlanError, match="tree"):
            db.execute("SELECT * FROM orders, customers")

    def test_non_equality_join_rejected(self, db):
        with pytest.raises(SqlPlanError, match="non-equality join"):
            db.execute("SELECT * FROM orders o, items i WHERE o.item < i.item")

    def test_cyclic_joins_rejected(self, db):
        with pytest.raises(SqlPlanError, match="tree"):
            db.execute(
                "SELECT * FROM orders o, customers c "
                "WHERE o.cust = c.cust AND o.qty = c.cust"
            )


class TestSelectionEstimates:
    def test_equality_estimate_uses_histogram(self, db):
        column = db.relation("orders").column("cust")
        hot = max(set(column), key=column.count)
        estimate = db.estimate(f"SELECT * FROM orders WHERE cust = {hot}")
        assert estimate == pytest.approx(column.count(hot), rel=0.1)

    def test_between_estimate_tracks_truth(self, db):
        truth = sum(1 for i in db.relation("orders").column("item") if 2 <= i <= 5)
        estimate = db.estimate("SELECT * FROM orders WHERE item BETWEEN 2 AND 5")
        assert estimate == pytest.approx(truth, rel=0.5)

    def test_not_equals_complement(self, db):
        eq = db.estimate("SELECT * FROM orders WHERE cust = 3")
        ne = db.estimate("SELECT * FROM orders WHERE cust <> 3")
        assert eq + ne == pytest.approx(300.0)


class TestDatabaseManagement:
    def test_relation_names(self, db):
        assert db.relation_names == ["customers", "items", "orders"]

    def test_unknown_relation_lookup(self, db):
        with pytest.raises(KeyError):
            db.relation("ghost")

    def test_analyze_counts_attributes(self, db):
        fresh = Database()
        fresh.create("r", {"a": [1, 2], "b": [3, 4]})
        assert fresh.analyze() == 2

    def test_analyze_subset(self, db):
        fresh = Database()
        fresh.create("r", {"a": [1, 2]})
        fresh.create("s", {"b": [1, 2]})
        assert fresh.analyze(["r"]) == 1


class TestCountStar:
    def test_single_table(self, db):
        result = db.execute("SELECT COUNT(*) FROM orders WHERE cust = 3")
        assert result.schema.names == ("count",)
        truth = db.relation("orders").column("cust").count(3)
        assert list(result.rows()) == [(truth,)]

    def test_join(self, db):
        sql = "SELECT COUNT(*) FROM orders o, customers c WHERE o.cust = c.cust"
        (count,), = db.execute(sql).rows()
        truth = brute_join_count(db, lambda o, c: o[0] == c[0])
        assert count == truth

    def test_estimate_equals_plain_estimate(self, db):
        plain = db.estimate("SELECT * FROM orders WHERE cust = 3")
        counted = db.estimate("SELECT COUNT(*) FROM orders WHERE cust = 3")
        assert counted == plain

    def test_parse(self):
        from repro.sql.parser import parse_select

        stmt = parse_select("SELECT COUNT(*) FROM r")
        assert stmt.count_star
        assert not stmt.is_star


class TestWithoutStatistics:
    def test_execution_works_unanalyzed(self):
        fresh = Database()
        fresh.create("r", {"a": [1, 1, 2]})
        fresh.create("s", {"a": [1, 2, 2]})
        result = fresh.execute("SELECT * FROM r, s WHERE r.a = s.a")
        assert result.cardinality == 2 + 2  # 1x1 twice? (1,1),(1,1),(2,2),(2,2)

    def test_uniform_estimates_without_analyze(self):
        fresh = Database()
        fresh.create("r", {"a": [1, 1, 2, 3]})
        estimate = fresh.estimate("SELECT * FROM r WHERE a = 1")
        # No histogram: equality falls back to T / distinct-style defaults.
        assert estimate > 0

    def test_join_estimate_uses_distinct_counts(self):
        fresh = Database()
        fresh.create("r", {"a": [1, 1, 2, 3]})
        fresh.create("s", {"a": [1, 2, 3, 3]})
        estimate = fresh.estimate("SELECT * FROM r, s WHERE r.a = s.a")
        # Uniform model: |r|*|s| / max(d_r, d_s) = 16/3.
        assert estimate == pytest.approx(16 / 3)


class TestGroupBy:
    def test_group_counts_single_table(self, db):
        result = db.execute("SELECT cust, COUNT(*) FROM orders GROUP BY cust")
        assert result.schema.names == ("cust", "count")
        column = db.relation("orders").column("cust")
        truth = {value: column.count(value) for value in set(column)}
        assert dict(result.rows()) == truth

    def test_group_without_count_dedupes(self, db):
        result = db.execute("SELECT item FROM orders GROUP BY item")
        values = [v for (v,) in result.rows()]
        assert sorted(values) == sorted(set(db.relation("orders").column("item")))

    def test_group_with_where(self, db):
        result = db.execute(
            "SELECT cust, COUNT(*) FROM orders WHERE qty > 2 GROUP BY cust"
        )
        rows = zip(db.relation("orders").column("cust"), db.relation("orders").column("qty"))
        truth = {}
        for cust, qty in rows:
            if qty > 2:
                truth[cust] = truth.get(cust, 0) + 1
        assert dict(result.rows()) == truth

    def test_group_over_join(self, db):
        result = db.execute(
            "SELECT c.region, COUNT(*) FROM orders o, customers c "
            "WHERE o.cust = c.cust GROUP BY c.region"
        )
        truth = {}
        region_of = dict(
            zip(db.relation("customers").column("cust"), db.relation("customers").column("region"))
        )
        for cust in db.relation("orders").column("cust"):
            if cust in region_of:
                truth[region_of[cust]] = truth.get(region_of[cust], 0) + 1
        assert dict(result.rows()) == truth

    def test_estimated_groups_uses_distinct_count(self, db):
        estimate = db.estimate("SELECT cust, COUNT(*) FROM orders GROUP BY cust")
        assert estimate == db.relation("orders").distinct_count("cust")

    def test_estimated_groups_capped_by_rows(self, db):
        estimate = db.estimate(
            "SELECT cust, COUNT(*) FROM orders WHERE cust = 3 GROUP BY cust"
        )
        truth = db.relation("orders").column("cust").count(3)
        # Group estimate cannot exceed the (estimated) surviving tuples.
        assert estimate <= truth * 1.2 + 1

    def test_selected_columns_must_be_grouped(self, db):
        with pytest.raises(SqlPlanError, match="GROUP BY"):
            db.execute("SELECT item, COUNT(*) FROM orders GROUP BY cust")

    def test_group_by_star_rejected(self, db):
        from repro.sql.parser import SqlParseError

        with pytest.raises(SqlParseError, match="GROUP BY"):
            db.execute("SELECT * FROM orders GROUP BY cust")

    def test_multi_column_grouping(self, db):
        result = db.execute(
            "SELECT cust, item, COUNT(*) FROM orders GROUP BY cust, item"
        )
        pairs = list(
            zip(db.relation("orders").column("cust"), db.relation("orders").column("item"))
        )
        truth = {}
        for pair in pairs:
            truth[pair] = truth.get(pair, 0) + 1
        assert {(c, i): n for c, i, n in result.rows()} == truth

    def test_count_appears_once_only(self, db):
        from repro.sql.parser import SqlParseError

        with pytest.raises(SqlParseError, match="at most once"):
            db.execute("SELECT COUNT(*), COUNT(*) FROM orders")


class TestOutputNaming:
    def test_colliding_projection_uses_qualified_names(self, db):
        result = db.execute(
            "SELECT o.item, i.item FROM orders o, items i WHERE o.item = i.item"
        )
        assert result.schema.names == ("o.item", "i.item")

    def test_star_over_join_keeps_qualified_names(self, db):
        result = db.execute(
            "SELECT * FROM orders o, items i WHERE o.item = i.item"
        )
        assert "o.item" in result.schema.names
        assert "i.item" in result.schema.names

    def test_rows_align_with_names(self, db):
        result = db.execute(
            "SELECT o.item, i.item FROM orders o, items i WHERE o.item = i.item"
        )
        for left_item, right_item in result.rows():
            assert left_item == right_item


class TestExplainGrouped:
    def test_explain_reports_groups(self, db):
        explanation = db.explain("SELECT cust, COUNT(*) FROM orders GROUP BY cust")
        assert explanation.estimated_groups == db.relation("orders").distinct_count("cust")
        assert "estimated groups" in explanation.pretty()

    def test_explain_ungrouped_has_no_groups(self, db):
        explanation = db.explain("SELECT * FROM orders")
        assert explanation.estimated_groups is None
        assert "estimated groups" not in explanation.pretty()
