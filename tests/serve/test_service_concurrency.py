"""Threaded stress test: concurrent readers against a publishing writer.

The serving contract under concurrency (see ``EstimationService``):

* **no lost updates** — every probe issued by every thread is counted
  exactly once in the metrics;
* **no stale-version serves** — once a catalog ``put`` (an ANALYZE /
  maintenance publish) completes, no later probe is answered from the
  previously compiled table;
* **bounded cache** — ``cached_tables <= max_tables`` at every observable
  point, even while many threads compile concurrently.

Run by CI alongside the ``bench_serve_batch`` smoke to catch
lock-contention and cache-coherence regressions.
"""

import threading

from repro.core.biased import v_opt_bias_hist
from repro.engine.catalog import CatalogEntry, StatsCatalog
from repro.serve import EstimationService

N_READERS = 4
N_PROBES = 300
N_PUBLISHES = 200
MAX_TABLES = 4
N_HOT_RELATIONS = 8  # twice the LRU bound, to force constant eviction


def _published_entry(relation: str, total: int) -> CatalogEntry:
    """A publishable entry whose equality answer equals its publish number."""
    hist = v_opt_bias_hist([float(total)], 1, values=[1])
    return CatalogEntry(relation, "a", "biased", hist, None, 1, float(total))


def test_concurrent_readers_with_publishing_writer():
    catalog = StatsCatalog()
    catalog.put(_published_entry("W", 1))
    for index in range(N_HOT_RELATIONS):
        catalog.put(_published_entry(f"R{index}", 10 + index))
    service = EstimationService(catalog, max_tables=MAX_TABLES)

    errors: list[BaseException] = []
    start = threading.Barrier(N_READERS + 1)

    def writer():
        start.wait()
        try:
            # Publishes with strictly growing totals: 2, 3, ..., N+1.
            for publish in range(2, N_PUBLISHES + 2):
                catalog.put(_published_entry("W", publish))
        except BaseException as exc:
            errors.append(exc)

    def reader():
        start.wait()
        try:
            last = 0.0
            for index in range(N_PROBES):
                seen = service.estimate_equality("W", "a", 1)
                # Published totals only ever grow, so an answer smaller than
                # one already observed means a stale table was served.
                assert seen >= last, f"stale serve: {seen} after {last}"
                last = seen
                # Churn the LRU across more relations than it can hold.
                service.estimate_equality(f"R{index % N_HOT_RELATIONS}", "a", 1)
                assert service.cached_tables <= MAX_TABLES
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=writer)]
    threads += [threading.Thread(target=reader) for _ in range(N_READERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    # The quiesced service must serve the final published version.
    assert service.estimate_equality("W", "a", 1) == float(N_PUBLISHES + 1)
    stats = service.stats()
    # No lost metric updates: every probe counted exactly once.
    assert stats.probes_served == N_READERS * N_PROBES * 2 + 1
    assert stats.probes_served == stats.probe_type_total()
    assert service.cached_tables <= MAX_TABLES
