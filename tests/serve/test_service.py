"""Tests for repro.serve.service — the batched estimation service."""

import math

import numpy as np
import pytest

from repro.core.biased import v_opt_bias_hist
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import CatalogEntry, StatsCatalog
from repro.engine.relation import Relation
from repro.serve import (
    EqualityProbe,
    EstimationService,
    JoinProbe,
    ProbeTrace,
    RangeProbe,
)


def assert_metrics_invariants(stats):
    """The counter invariants every estimation path must preserve."""
    assert stats.probes_served == stats.probe_type_total()
    assert stats.degraded_probes == sum(stats.degradation_reasons.values())


@pytest.fixture
def catalog(rng):
    catalog = StatsCatalog()
    r = Relation.from_columns(
        "R", {"a": [1] * 40 + [2] * 25 + [3] * 20 + [4] * 10 + [5] * 5}
    )
    s = Relation.from_columns("S", {"a": [1] * 10 + [2] * 10 + [3] * 10})
    analyze_relation(r, "a", catalog, kind="serial", buckets=3)
    analyze_relation(s, "a", catalog, kind="end-biased", buckets=2)
    return catalog


@pytest.fixture
def service(catalog):
    return EstimationService(catalog)


class TestConstruction:
    def test_requires_catalog(self):
        with pytest.raises(TypeError, match="StatsCatalog"):
            EstimationService({"not": "a catalog"})

    def test_max_tables_validated(self, catalog):
        with pytest.raises(ValueError):
            EstimationService(catalog, max_tables=0)


class TestScalarEstimates:
    def test_scan_cardinality(self, service):
        assert service.scan_cardinality("R") == 100.0

    def test_scan_unknown_relation(self, service):
        with pytest.raises(KeyError, match="ANALYZE"):
            service.scan_cardinality("ZZZ")

    def test_equality_without_statistics_uses_magic_constant(self, service):
        # Attribute unseen by ANALYZE but relation known: System R 0.1.
        estimate = service.estimate_equality("R", "zzz", 1)
        assert estimate == pytest.approx(100.0 * 0.1)

    def test_range_mass_partitioned(self, service):
        below = service.estimate_range("R", "a", None, 2)
        above = service.estimate_range("R", "a", 2, None, include_low=False)
        total = service.estimate_range("R", "a")
        assert below + above == pytest.approx(total)

    def test_not_equal_complement(self, service):
        eq = service.estimate_equality("R", "a", 1)
        ne = service.estimate_not_equal("R", "a", 1)
        total = service.estimate_range("R", "a")
        assert eq + ne == pytest.approx(total)

    def test_membership_dedup(self, service):
        single = service.estimate_membership("R", "a", [1])
        repeated = service.estimate_membership("R", "a", [1, 1, 1])
        assert repeated == single

    def test_join_symmetric(self, service):
        forward = service.estimate_join("R", "a", "S", "a")
        backward = service.estimate_join("S", "a", "R", "a")
        assert forward == pytest.approx(backward)
        assert forward > 0


class TestBatchInterface:
    def test_batch_matches_scalars_bitwise(self, service):
        probes = [
            EqualityProbe("R", "a", 1),
            RangeProbe("R", "a", 2, 4),
            EqualityProbe("S", "a", 3),
            JoinProbe("R", "a", "S", "a"),
            RangeProbe("S", "a", None, 2, include_high=False),
            EqualityProbe("R", "a", 99),
        ]
        batch = service.estimate_batch(probes)
        scalar = np.asarray(
            [
                service.estimate_equality("R", "a", 1),
                service.estimate_range("R", "a", 2, 4),
                service.estimate_equality("S", "a", 3),
                service.estimate_join("R", "a", "S", "a"),
                service.estimate_range("S", "a", None, 2, include_high=False),
                service.estimate_equality("R", "a", 99),
            ]
        )
        assert np.array_equal(batch, scalar)

    def test_empty_batch(self, service):
        out = service.estimate_batch([])
        assert out.shape == (0,)

    def test_unknown_probe_type_rejected(self, service):
        with pytest.raises(TypeError, match="probe"):
            service.estimate_batch(["not a probe"])

    def test_batch_counts_metrics(self, service):
        service.estimate_batch([EqualityProbe("R", "a", 1)] * 5)
        stats = service.stats()
        assert stats.batches_served == 1
        assert stats.probes_served == 5


class TestCacheInvalidation:
    def test_repeat_probes_hit_cache(self, service):
        service.estimate_equality("R", "a", 1)
        service.estimate_equality("R", "a", 2)
        service.estimate_equality("R", "a", 3)
        stats = service.stats()
        assert stats.table_misses == 1
        assert stats.table_hits == 2

    def test_flat_misses_on_repeated_batches(self, service):
        probes = [EqualityProbe("R", "a", v) for v in range(5)]
        service.estimate_batch(probes)
        misses_after_first = service.stats().table_misses
        for _ in range(10):
            service.estimate_batch(probes)
        assert service.stats().table_misses == misses_after_first

    def test_analyze_invalidates(self, catalog, service, rng):
        before = service.estimate_equality("R", "a", 1)
        bigger = Relation.from_columns("R", {"a": [1] * 80 + [2] * 20})
        analyze_relation(bigger, "a", catalog, kind="serial", buckets=2)
        after = service.estimate_equality("R", "a", 1)
        assert service.stats().table_misses == 2
        assert after != before
        assert after == pytest.approx(80.0)

    def test_drop_removes_statistics(self, catalog, service):
        service.estimate_equality("R", "a", 1)
        catalog.drop("R")
        # The cached table must not answer for a dropped relation: the
        # default policy degrades the probe to the documented 0.0 fallback…
        assert service.estimate_equality("R", "a", 1) == 0.0
        assert service.stats().degradation_reasons["unknown-relation"] == 1
        # …and the strict policy preserves the legacy KeyError.
        with pytest.raises(KeyError, match="ANALYZE"):
            service.estimate_equality("R", "a", 1, on_error="raise")

    def test_lru_eviction(self, rng):
        catalog = StatsCatalog()
        for index in range(4):
            rel = Relation.from_columns(f"R{index}", {"a": [1, 2, 3]})
            analyze_relation(rel, "a", catalog, kind="end-biased", buckets=2)
        service = EstimationService(catalog, max_tables=2)
        for index in range(4):
            service.estimate_equality(f"R{index}", "a", 1)
        assert service.cached_tables == 2
        assert service.stats().tables_evicted == 2

    def test_invalidate_clears(self, service):
        service.estimate_equality("R", "a", 1)
        assert service.cached_tables == 1
        assert service.invalidate() == 1
        assert service.cached_tables == 0

    def test_version_property_monotonic(self, catalog):
        start = catalog.version
        entry = catalog.get("R", "a")
        catalog.put(
            CatalogEntry(
                relation="R",
                attribute="a",
                kind=entry.kind,
                histogram=entry.histogram,
                compact=entry.compact,
                distinct_count=entry.distinct_count,
                total_tuples=entry.total_tuples,
            )
        )
        assert catalog.version == start + 1


class TestFallbackLadder:
    def test_compact_only_entry(self):
        from repro.engine.catalog import CompactEndBiased

        catalog = StatsCatalog()
        compact = CompactEndBiased(
            explicit={1: 40.0}, remainder_count=3, remainder_average=5.0
        )
        catalog.put(
            CatalogEntry("R", "a", "sampled", None, compact, 4, 55.0)
        )
        service = EstimationService(catalog)
        assert service.estimate_equality("R", "a", 1) == 40.0
        assert service.estimate_equality("R", "a", 7) == 5.0

    def test_statistics_free_entry_uniform(self):
        catalog = StatsCatalog()
        catalog.put(CatalogEntry("R", "a", "none", None, None, 10, 200.0))
        service = EstimationService(catalog)
        assert service.estimate_equality("R", "a", 1) == pytest.approx(20.0)

    def test_range_without_histogram_uses_system_r(self):
        catalog = StatsCatalog()
        catalog.put(CatalogEntry("R", "a", "none", None, None, 10, 300.0))
        service = EstimationService(catalog)
        assert service.estimate_range("R", "a", 1, 5) == pytest.approx(100.0)

    def test_join_without_any_statistics(self):
        catalog = StatsCatalog()
        catalog.put(CatalogEntry("R", "a", "none", None, None, 10, 100.0))
        catalog.put(CatalogEntry("S", "a", "none", None, None, 20, 50.0))
        service = EstimationService(catalog)
        # Uniform |L|·|R| / max(d) containment estimate.
        assert service.estimate_join("R", "a", "S", "a") == pytest.approx(
            100.0 * 50.0 / 20
        )

    def test_fallbacks_counted(self, service):
        service.estimate_equality("R", "zzz", 1)  # known relation, no stats
        service.estimate_range("R", "zzz", 1, 5)
        stats = service.stats()
        assert stats.fallback_probes == 2
        assert stats.degraded_probes == 0
        assert_metrics_invariants(stats)


@pytest.fixture
def unorderable_catalog():
    """A relation whose histogram domain is not mutually comparable."""
    catalog = StatsCatalog()
    hist = v_opt_bias_hist([5.0, 3.0, 2.0], 2, values=[1, "x", 2.5])
    catalog.put(CatalogEntry("M", "a", "biased", hist, None, 3, 10.0))
    return catalog


class TestErrorPolicy:
    def test_invalid_service_policy_rejected(self, catalog):
        with pytest.raises(ValueError, match="on_error"):
            EstimationService(catalog, on_error="explode")

    def test_invalid_override_rejected(self, service):
        with pytest.raises(ValueError, match="on_error"):
            service.estimate_equality("R", "a", 1, on_error="explode")

    def test_unknown_relation_fallback_default(self, service):
        assert service.estimate_equality("ZZZ", "a", 1) == 0.0
        assert service.estimate_range("ZZZ", "a", 1, 5) == 0.0
        assert service.estimate_not_equal("ZZZ", "a", 1) == 0.0
        assert service.estimate_join("ZZZ", "a", "R", "a") == 0.0
        stats = service.stats()
        assert stats.degraded_probes == 4
        assert stats.degradation_reasons == {"unknown-relation": 4}
        assert_metrics_invariants(stats)

    def test_unknown_relation_nan(self, service):
        assert math.isnan(service.estimate_equality("ZZZ", "a", 1, on_error="nan"))
        assert service.stats().degradation_reasons == {"unknown-relation": 1}

    def test_unknown_relation_raise(self, service):
        with pytest.raises(KeyError, match="ANALYZE"):
            service.estimate_range("ZZZ", "a", 1, 5, on_error="raise")

    def test_service_wide_policy(self, catalog):
        service = EstimationService(catalog, on_error="nan")
        assert service.on_error == "nan"
        assert math.isnan(service.estimate_equality("ZZZ", "a", 1))
        # A per-call override still wins.
        assert service.estimate_equality("ZZZ", "a", 1, on_error="fallback") == 0.0

    def test_unhashable_value_degrades(self, service):
        assert service.estimate_equality("R", "a", [1, 2]) == 0.0
        assert service.stats().degradation_reasons == {"unhashable-value": 1}
        with pytest.raises(TypeError, match="unhashable"):
            service.estimate_equality("R", "a", [1, 2], on_error="raise")

    def test_unorderable_domain_range_degrades(self, unorderable_catalog):
        service = EstimationService(unorderable_catalog)
        # Known relation, histogram present, but the domain cannot answer a
        # range: the System R |R|/3 guess via the policy.
        assert service.estimate_range("M", "a", 0, 9) == pytest.approx(10.0 / 3.0)
        assert service.stats().degradation_reasons == {"unorderable-domain": 1}
        with pytest.raises(ValueError, match="orderable"):
            service.estimate_range("M", "a", 0, 9, on_error="raise")
        # Equality over the same domain stays first-class.
        assert service.estimate_equality("M", "a", 1) == pytest.approx(5.0)

    def test_incomparable_bound_degrades(self):
        catalog = StatsCatalog()
        hist = v_opt_bias_hist([6.0, 3.0, 1.0], 2, values=["a", "b", "c"])
        catalog.put(CatalogEntry("T", "s", "biased", hist, None, 3, 10.0))
        service = EstimationService(catalog)
        good = service.estimate_range("T", "s", "a", "b")
        # An int bound over a string domain is isolated, not fatal…
        out = service.estimate_ranges("T", "s", [1, "a"], [None, "b"])
        assert out[0] == pytest.approx(10.0 / 3.0)
        # …and the comparable probe in the same batch answers first-class.
        assert out[1] == good
        assert service.stats().degradation_reasons == {"incomparable-bound": 1}


class TestClamping:
    def test_membership_overshoot_clamped(self, service):
        # 20 no-statistics IN values would naively estimate 20·0.1·|R| = 2·|R|.
        assert service.estimate_membership("R", "zzz", range(20)) == 100.0

    def test_membership_boundary(self, service):
        # Exactly at the clamp boundary: 10 values · 0.1·|R| == |R|.
        assert service.estimate_membership("R", "zzz", range(10)) == pytest.approx(
            100.0
        )
        assert service.estimate_membership("R", "zzz", range(9)) == pytest.approx(
            90.0
        )

    def test_not_equal_no_stats_counted_and_bounded(self, service):
        ne = service.estimate_not_equal("R", "zzz", 1)
        assert ne == pytest.approx(100.0 * 0.9)
        assert ne <= service.scan_cardinality("R")
        stats = service.stats()
        assert stats.not_equal_probes == 1
        assert stats.fallback_probes == 1
        assert_metrics_invariants(stats)


class TestMetricsInvariants:
    def test_probe_mix_sums_to_served(self, service):
        service.estimate_equality("R", "a", 1)
        service.estimate_range("R", "a", 1, 3)
        service.estimate_join("R", "a", "S", "a")
        service.estimate_membership("R", "a", [1, 2])
        service.estimate_not_equal("R", "a", 1)
        stats = service.stats()
        assert stats.equality_probes == 1
        assert stats.range_probes == 1
        assert stats.join_probes == 1
        assert stats.membership_probes == 1
        assert stats.not_equal_probes == 1
        assert stats.probes_served == 5
        assert_metrics_invariants(stats)

    def test_failed_batch_counted_as_failed(self, service):
        probes = [EqualityProbe("R", "a", 1), EqualityProbe("ZZZ", "a", 1)]
        with pytest.raises(KeyError):
            service.estimate_batch(probes, on_error="raise")
        stats = service.stats()
        assert stats.batches_failed == 1
        assert stats.batches_served == 0
        assert_metrics_invariants(stats)

    def test_batch_latency_recorded(self, service):
        service.estimate_batch([EqualityProbe("R", "a", 1)])
        assert sum(service.stats().latency_counts) == 1

    def test_snapshot_is_independent(self, service):
        before = service.stats()
        service.estimate_equality("R", "a", 1)
        assert before.probes_served == 0
        assert service.stats().probes_served == 1

    def test_snapshot_copies_future_container_counters(self, service):
        # The generic __dict__ copy must detach any container a later
        # change adds — including sets (e.g. sanitizer-observed sites).
        live = service.metrics
        live.observed_sites = {"a"}  # type: ignore[attr-defined]
        try:
            frozen = live.snapshot()
            live.observed_sites.add("b")
            assert frozen.observed_sites == {"a"}
        finally:
            del live.observed_sites


class TestFaultIsolatedBatches:
    def test_mixed_known_unknown_relation_batch(self, service):
        """Regression: one unknown relation used to abort the whole batch."""
        probes = [
            EqualityProbe("R", "a", 1),
            EqualityProbe("ZZZ", "a", 1),
            RangeProbe("R", "a", 2, 4),
            RangeProbe("ZZZ", "a", 2, 4),
            JoinProbe("R", "a", "ZZZ", "a"),
        ]
        out = service.estimate_batch(probes)
        assert out[0] == service.estimate_equality("R", "a", 1)
        assert out[1] == 0.0
        assert out[2] == service.estimate_range("R", "a", 2, 4)
        assert out[3] == 0.0
        assert out[4] == 0.0
        stats = service.stats()
        assert stats.degradation_reasons == {"unknown-relation": 3}
        assert stats.batches_served == 1
        assert stats.batches_failed == 0
        assert_metrics_invariants(stats)

    def test_nan_policy_marks_only_bad_positions(self, service):
        probes = [
            EqualityProbe("R", "a", 1),
            EqualityProbe("ZZZ", "a", 1),
            EqualityProbe("R", "a", 2),
        ]
        out = service.estimate_batch(probes, on_error="nan")
        assert not math.isnan(out[0]) and not math.isnan(out[2])
        assert math.isnan(out[1])

    def test_trace_hook_reports_positions(self, service):
        traces = []
        probes = [
            EqualityProbe("R", "a", 1),
            EqualityProbe("ZZZ", "a", 1),
            RangeProbe("R", "zzz", 1, 5),
        ]
        service.estimate_batch(probes, trace=traces.append)
        assert all(isinstance(t, ProbeTrace) for t in traces)
        by_position = {t.position: t for t in traces}
        assert set(by_position) == {1, 2}
        assert by_position[1].reason == "unknown-relation"
        assert by_position[1].degraded is True
        assert by_position[2].reason == "no-statistics"
        assert by_position[2].degraded is False

    def test_trace_hook_scalar_paths(self, service):
        traces = []
        service.estimate_equality("ZZZ", "a", 1, trace=traces.append)
        assert len(traces) == 1
        assert traces[0].kind == "equality"
        assert traces[0].position is None

    def test_10k_probe_batch_acceptance(self, service, unorderable_catalog):
        """The ISSUE acceptance batch: 10k probes with poisoned positions."""
        for entry in unorderable_catalog.entries():
            service.catalog.put(entry)
        probes = []
        poisoned = {"unknown-relation": 0, "unorderable-domain": 0,
                    "unhashable-value": 0}
        for index in range(10_000):
            shape = index % 5
            if shape == 0:
                probes.append(EqualityProbe("R", "a", (index % 7) + 1))
            elif shape == 1:
                probes.append(RangeProbe("R", "a", index % 3, (index % 3) + 2))
            elif shape == 2 and index % 25 == 2:
                probes.append(EqualityProbe("GONE", "a", 1))
                poisoned["unknown-relation"] += 1
            elif shape == 3 and index % 25 == 3:
                probes.append(RangeProbe("M", "a", 0, 9))
                poisoned["unorderable-domain"] += 1
            elif shape == 4 and index % 25 == 4:
                probes.append(EqualityProbe("R", "a", [index]))
                poisoned["unhashable-value"] += 1
            else:
                probes.append(EqualityProbe("S", "a", (index % 4) + 1))
        out = service.estimate_batch(probes)
        assert out.shape == (10_000,)
        assert np.all(np.isfinite(out))
        # Bit-identical answers at every healthy position.
        for index, probe in enumerate(probes):
            if isinstance(probe, EqualityProbe) and probe.relation in ("R", "S"):
                try:
                    hash(probe.value)
                except TypeError:
                    assert out[index] == 0.0
                    continue
                assert out[index] == service.estimate_equality(
                    probe.relation, probe.attribute, probe.value
                )
        stats = service.stats()
        assert stats.degradation_reasons == poisoned
        assert stats.degraded_probes == sum(poisoned.values())
        assert stats.probes_served >= 10_000
        assert_metrics_invariants(stats)
