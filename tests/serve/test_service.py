"""Tests for repro.serve.service — the batched estimation service."""

import numpy as np
import pytest

from repro.engine.analyze import analyze_relation
from repro.engine.catalog import CatalogEntry, StatsCatalog
from repro.engine.relation import Relation
from repro.serve import (
    EqualityProbe,
    EstimationService,
    JoinProbe,
    RangeProbe,
)


@pytest.fixture
def catalog(rng):
    catalog = StatsCatalog()
    r = Relation.from_columns(
        "R", {"a": [1] * 40 + [2] * 25 + [3] * 20 + [4] * 10 + [5] * 5}
    )
    s = Relation.from_columns("S", {"a": [1] * 10 + [2] * 10 + [3] * 10})
    analyze_relation(r, "a", catalog, kind="serial", buckets=3)
    analyze_relation(s, "a", catalog, kind="end-biased", buckets=2)
    return catalog


@pytest.fixture
def service(catalog):
    return EstimationService(catalog)


class TestConstruction:
    def test_requires_catalog(self):
        with pytest.raises(TypeError, match="StatsCatalog"):
            EstimationService({"not": "a catalog"})

    def test_max_tables_validated(self, catalog):
        with pytest.raises(ValueError):
            EstimationService(catalog, max_tables=0)


class TestScalarEstimates:
    def test_scan_cardinality(self, service):
        assert service.scan_cardinality("R") == 100.0

    def test_scan_unknown_relation(self, service):
        with pytest.raises(KeyError, match="ANALYZE"):
            service.scan_cardinality("ZZZ")

    def test_equality_without_statistics_uses_magic_constant(self, service):
        # Attribute unseen by ANALYZE but relation known: System R 0.1.
        estimate = service.estimate_equality("R", "zzz", 1)
        assert estimate == pytest.approx(100.0 * 0.1)

    def test_range_mass_partitioned(self, service):
        below = service.estimate_range("R", "a", None, 2)
        above = service.estimate_range("R", "a", 2, None, include_low=False)
        total = service.estimate_range("R", "a")
        assert below + above == pytest.approx(total)

    def test_not_equal_complement(self, service):
        eq = service.estimate_equality("R", "a", 1)
        ne = service.estimate_not_equal("R", "a", 1)
        total = service.estimate_range("R", "a")
        assert eq + ne == pytest.approx(total)

    def test_membership_dedup(self, service):
        single = service.estimate_membership("R", "a", [1])
        repeated = service.estimate_membership("R", "a", [1, 1, 1])
        assert repeated == single

    def test_join_symmetric(self, service):
        forward = service.estimate_join("R", "a", "S", "a")
        backward = service.estimate_join("S", "a", "R", "a")
        assert forward == pytest.approx(backward)
        assert forward > 0


class TestBatchInterface:
    def test_batch_matches_scalars_bitwise(self, service):
        probes = [
            EqualityProbe("R", "a", 1),
            RangeProbe("R", "a", 2, 4),
            EqualityProbe("S", "a", 3),
            JoinProbe("R", "a", "S", "a"),
            RangeProbe("S", "a", None, 2, include_high=False),
            EqualityProbe("R", "a", 99),
        ]
        batch = service.estimate_batch(probes)
        scalar = np.asarray(
            [
                service.estimate_equality("R", "a", 1),
                service.estimate_range("R", "a", 2, 4),
                service.estimate_equality("S", "a", 3),
                service.estimate_join("R", "a", "S", "a"),
                service.estimate_range("S", "a", None, 2, include_high=False),
                service.estimate_equality("R", "a", 99),
            ]
        )
        assert np.array_equal(batch, scalar)

    def test_empty_batch(self, service):
        out = service.estimate_batch([])
        assert out.shape == (0,)

    def test_unknown_probe_type_rejected(self, service):
        with pytest.raises(TypeError, match="probe"):
            service.estimate_batch(["not a probe"])

    def test_batch_counts_metrics(self, service):
        service.estimate_batch([EqualityProbe("R", "a", 1)] * 5)
        stats = service.stats()
        assert stats.batches_served == 1
        assert stats.probes_served == 5


class TestCacheInvalidation:
    def test_repeat_probes_hit_cache(self, service):
        service.estimate_equality("R", "a", 1)
        service.estimate_equality("R", "a", 2)
        service.estimate_equality("R", "a", 3)
        stats = service.stats()
        assert stats.table_misses == 1
        assert stats.table_hits == 2

    def test_flat_misses_on_repeated_batches(self, service):
        probes = [EqualityProbe("R", "a", v) for v in range(5)]
        service.estimate_batch(probes)
        misses_after_first = service.stats().table_misses
        for _ in range(10):
            service.estimate_batch(probes)
        assert service.stats().table_misses == misses_after_first

    def test_analyze_invalidates(self, catalog, service, rng):
        before = service.estimate_equality("R", "a", 1)
        bigger = Relation.from_columns("R", {"a": [1] * 80 + [2] * 20})
        analyze_relation(bigger, "a", catalog, kind="serial", buckets=2)
        after = service.estimate_equality("R", "a", 1)
        assert service.stats().table_misses == 2
        assert after != before
        assert after == pytest.approx(80.0)

    def test_drop_removes_statistics(self, catalog, service):
        service.estimate_equality("R", "a", 1)
        catalog.drop("R")
        # The cached table must not answer for a dropped relation.
        with pytest.raises(KeyError, match="ANALYZE"):
            service.estimate_equality("R", "a", 1)

    def test_lru_eviction(self, rng):
        catalog = StatsCatalog()
        for index in range(4):
            rel = Relation.from_columns(f"R{index}", {"a": [1, 2, 3]})
            analyze_relation(rel, "a", catalog, kind="end-biased", buckets=2)
        service = EstimationService(catalog, max_tables=2)
        for index in range(4):
            service.estimate_equality(f"R{index}", "a", 1)
        assert service.cached_tables == 2
        assert service.stats().tables_evicted == 2

    def test_invalidate_clears(self, service):
        service.estimate_equality("R", "a", 1)
        assert service.cached_tables == 1
        assert service.invalidate() == 1
        assert service.cached_tables == 0

    def test_version_property_monotonic(self, catalog):
        start = catalog.version
        entry = catalog.get("R", "a")
        catalog.put(
            CatalogEntry(
                relation="R",
                attribute="a",
                kind=entry.kind,
                histogram=entry.histogram,
                compact=entry.compact,
                distinct_count=entry.distinct_count,
                total_tuples=entry.total_tuples,
            )
        )
        assert catalog.version == start + 1


class TestFallbackLadder:
    def test_compact_only_entry(self):
        from repro.engine.catalog import CompactEndBiased

        catalog = StatsCatalog()
        compact = CompactEndBiased(
            explicit={1: 40.0}, remainder_count=3, remainder_average=5.0
        )
        catalog.put(
            CatalogEntry("R", "a", "sampled", None, compact, 4, 55.0)
        )
        service = EstimationService(catalog)
        assert service.estimate_equality("R", "a", 1) == 40.0
        assert service.estimate_equality("R", "a", 7) == 5.0

    def test_statistics_free_entry_uniform(self):
        catalog = StatsCatalog()
        catalog.put(CatalogEntry("R", "a", "none", None, None, 10, 200.0))
        service = EstimationService(catalog)
        assert service.estimate_equality("R", "a", 1) == pytest.approx(20.0)

    def test_range_without_histogram_uses_system_r(self):
        catalog = StatsCatalog()
        catalog.put(CatalogEntry("R", "a", "none", None, None, 10, 300.0))
        service = EstimationService(catalog)
        assert service.estimate_range("R", "a", 1, 5) == pytest.approx(100.0)

    def test_join_without_any_statistics(self):
        catalog = StatsCatalog()
        catalog.put(CatalogEntry("R", "a", "none", None, None, 10, 100.0))
        catalog.put(CatalogEntry("S", "a", "none", None, None, 20, 50.0))
        service = EstimationService(catalog)
        # Uniform |L|·|R| / max(d) containment estimate.
        assert service.estimate_join("R", "a", "S", "a") == pytest.approx(
            100.0 * 50.0 / 20
        )
