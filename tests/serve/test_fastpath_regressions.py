"""Regression tests for the numeric fast-path correctness holes.

Three bugs shared one root cause: the vectorized float64 path and the
exact dict path could disagree.  Each test here pins the *correct*
behaviour and documents the wrong answer the pre-fix code returned, so a
reintroduction fails loudly:

1. **Float64 key collapse** — distinct integers at/beyond 2**53 share
   one float64 code.  The old numeric path matched a probe to its
   neighbour (``equality_batch(2**53 + 1)`` returned ``2**53``'s
   frequency) and fed duplicate codes into
   ``np.intersect1d(assume_unique=True)`` in ``join_with`` (undefined
   results).  Such tables now demote to the exact path at compile time.
2. **Membership vs equality on unhashables** — ``membership`` raised
   ``TypeError`` from its dedup set while ``equality`` documented the
   0.0 degradation; both now degrade identically and the service
   surfaces the existing ``unhashable-value`` reason.
3. **NaN scalar/batch divergence** — ``equality(nan)`` could hit the
   dict through object identity (``hash(nan)`` is id-based on CPython)
   while the batched ``searchsorted`` always missed; ``CompiledCompact``
   handed NaN the remainder bucket.  NaN probes are 0-mass everywhere.
"""

import numpy as np
import pytest

from repro.serve import EstimationService
from repro.serve.service import REASON_UNHASHABLE_VALUE
from repro.serve.tables import CompiledCompact, CompiledHistogram

BIG = 2**53


class TestFloat64KeyCollapse:
    def test_collapsing_domain_demotes_to_exact_path(self):
        table = CompiledHistogram([BIG, BIG + 1], [5.0, 7.0])
        # float64 cannot tell the two values apart …
        assert float(BIG) == float(BIG + 1)
        # … so the table must not claim the vectorized fast path.
        assert not table.is_numeric

    def test_equality_batch_does_not_match_neighbours(self):
        table = CompiledHistogram([BIG, BIG + 1], [5.0, 7.0])
        # Old numeric path: searchsorted on collapsed codes returned 5.0
        # for BIG + 1 (its neighbour's frequency) and 0.0-vs-5.0
        # randomly for misses like BIG + 2.
        assert table.equality(BIG) == 5.0
        assert table.equality(BIG + 1) == 7.0
        assert table.equality(BIG + 2) == 0.0
        batch = table.equality_batch([BIG, BIG + 1, BIG + 2])
        assert np.array_equal(batch, np.asarray([5.0, 7.0, 0.0]))

    def test_join_with_collapsed_codes_is_exact(self):
        table = CompiledHistogram([BIG, BIG + 1], [5.0, 7.0])
        # Old path handed duplicate codes to intersect1d(assume_unique=True),
        # whose result is undefined; the exact join is Σ f̂·f̂ = 25 + 49.
        assert table.join_with(table) == pytest.approx(74.0)

    def test_collapse_free_large_ints_keep_fast_path(self):
        # Distinct codes ⇒ no demotion; suspect hits are re-verified
        # exactly, so a probe that rounds onto a stored code still misses.
        table = CompiledHistogram([BIG, BIG + 2], [5.0, 7.0])
        assert table.is_numeric
        assert table.equality(BIG + 1) == 0.0
        batch = table.equality_batch([BIG, BIG + 1, BIG + 2])
        assert np.array_equal(batch, np.asarray([5.0, 0.0, 7.0]))

    def test_lossy_code_demotes_even_without_collapse(self):
        # 2**53 + 1 rounds to 2**53: unique *within* its table, so the
        # collapse check alone let it stay numeric — but the rounded code
        # collided with another table's exact 2**53 in join_with (returned
        # 15.0 here) and false-matched float probes landing on the code.
        lossy = CompiledHistogram([BIG + 1], [3.0])
        exact = CompiledHistogram([BIG], [5.0])
        assert not lossy.is_numeric
        assert exact.is_numeric
        assert lossy.join_with(exact) == 0.0
        assert lossy.equality(float(BIG)) == 0.0
        assert np.array_equal(lossy.equality_batch([float(BIG)]), np.asarray([0.0]))

    def test_int_beyond_float64_demotes(self):
        table = CompiledHistogram([10**400, 0], [3.0, 1.0])
        assert not table.is_numeric
        assert table.equality(10**400) == 3.0

    def test_compact_collapse_demotes_too(self):
        compact = CompiledCompact({BIG: 5.0, BIG + 1: 7.0}, 0, 0.0)
        assert not compact.is_numeric
        assert compact.frequency(BIG + 1) == 7.0
        batch = compact.frequency_batch([BIG, BIG + 1])
        assert np.array_equal(batch, np.asarray([5.0, 7.0]))


class TestMembershipUnhashable:
    def test_membership_degrades_like_equality(self):
        table = CompiledHistogram(["a", "b", "c"], [6.0, 3.0, 1.0])
        unhashable = [1, 2]
        # equality documents the 0.0 degradation …
        assert table.equality(unhashable) == 0.0
        # … and membership used to raise TypeError from its dedup set.
        assert table.membership(["a", unhashable]) == table.equality("a")

    def test_membership_all_unhashable_is_zero(self):
        table = CompiledHistogram(["a"], [6.0])
        assert table.membership([[1], {2: 3}]) == 0.0

    def test_service_surfaces_unhashable_reason(self):
        from repro.engine.analyze import analyze_relation
        from repro.engine.catalog import StatsCatalog
        from repro.engine.relation import Relation

        catalog = StatsCatalog()
        relation = Relation.from_columns("R", {"a": [1, 1, 2, 3]})
        analyze_relation(relation, "a", catalog, kind="serial", buckets=2)
        service = EstimationService(catalog)
        traces = []
        mass = service.estimate_membership(
            "R", "a", [1, [2, 3]], trace=traces.append
        )
        assert mass == service.estimate_equality("R", "a", 1)
        degraded = [t for t in traces if t.degraded]
        assert degraded and degraded[0].reason == REASON_UNHASHABLE_VALUE
        assert service.stats().degradation_reasons.get(REASON_UNHASHABLE_VALUE) == 1


class TestNaNDivergence:
    def test_histogram_nan_probe_is_zero_mass_both_paths(self):
        nan = float("nan")
        # The same NaN *object* as a domain value: the old scalar path hit
        # it through dict identity (7.0) while the batch missed (0.0).
        table = CompiledHistogram([1.0, nan], [5.0, nan_freq := 7.0])
        assert nan_freq == 7.0
        assert table.equality(nan) == 0.0
        assert np.array_equal(table.equality_batch([nan]), np.asarray([0.0]))
        assert np.array_equal(
            table.equality_batch([1.0, nan]), np.asarray([5.0, 0.0])
        )

    def test_membership_with_nan(self):
        nan = float("nan")
        table = CompiledHistogram([1.0, nan], [5.0, 7.0])
        assert table.membership([nan, 1.0]) == 5.0

    def test_nan_joins_nothing(self):
        nan = float("nan")
        numeric = CompiledHistogram([1.0, nan], [5.0, 7.0])
        exact = CompiledHistogram([1.0, nan, "x"], [2.0, 3.0, 4.0])
        # Vectorized side: NaN != NaN kills the intersection; the exact
        # dict loop must skip NaN keys the same way.
        assert numeric.join_with(numeric) == pytest.approx(25.0)
        assert exact.join_with(exact) == pytest.approx(4.0 + 16.0)

    def test_open_range_bounds_keep_prefix_endpoints(self):
        nan = float("nan")
        table = CompiledHistogram([1.0, nan], [5.0, 7.0])
        # A None bound means the prefix endpoint itself (all stored mass).
        assert table.range_sum(None, None) == 12.0
        # The old batch path encoded None as ±inf, whose searchsorted
        # stops short of trailing NaN codes — it returned 5.0 here.
        assert np.array_equal(
            table.range_batch([None, 1.0], [None, None]),
            np.asarray([12.0, 12.0]),
        )

    def test_compact_nan_never_gets_remainder(self):
        nan = float("nan")
        compact = CompiledCompact({1.0: 5.0}, 3, 2.0)
        # Old behaviour: NaN fell into the implicit remainder bucket (2.0).
        assert compact.frequency(nan) == 0.0
        assert compact.frequency(nan, assume_in_domain=False) == 0.0
        assert np.array_equal(
            compact.frequency_batch([nan, 1.0, 99.0]),
            np.asarray([0.0, 5.0, 2.0]),
        )

    def test_scalar_batch_identity_with_nan_mixed_in(self):
        nan = float("nan")
        table = CompiledHistogram([1.0, 2.0, 3.0], [5.0, 3.0, 1.0])
        probes = [nan, 1.0, 2.5, 3.0, -nan]
        batch = table.equality_batch(probes)
        scalar = [table.equality(v) for v in probes]
        assert np.array_equal(batch, np.asarray(scalar))
