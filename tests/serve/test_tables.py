"""Tests for repro.serve.tables — compiled lookup tables."""

import numpy as np
import pytest

from repro.core.biased import v_opt_bias_hist
from repro.core.histogram import Histogram
from repro.engine.catalog import CompactEndBiased
from repro.serve.tables import (
    CompiledCompact,
    CompiledHistogram,
    compile_compact,
    compile_histogram,
)


@pytest.fixture
def numeric_hist():
    return v_opt_bias_hist(
        [50.0, 10.0, 9.0, 8.0, 2.0], 3, values=[10, 20, 30, 40, 50]
    )


@pytest.fixture
def string_hist():
    return v_opt_bias_hist([6.0, 3.0, 1.0], 2, values=["a", "b", "c"])


class TestCompileHistogram:
    def test_caches_on_histogram(self, numeric_hist):
        first = compile_histogram(numeric_hist)
        second = compile_histogram(numeric_hist)
        assert first is second

    def test_rejects_non_histogram(self):
        with pytest.raises(TypeError, match="Histogram"):
            compile_histogram({"not": "a histogram"})

    def test_rejects_value_less_histogram(self):
        hist = Histogram.single_bucket(np.array([3.0, 2.0, 1.0]))
        with pytest.raises(ValueError, match="requires a histogram"):
            compile_histogram(hist)

    def test_numeric_fast_path_detected(self, numeric_hist, string_hist):
        assert compile_histogram(numeric_hist).is_numeric
        assert not compile_histogram(string_hist).is_numeric


class TestEquality:
    def test_matches_histogram_approximations(self, numeric_hist):
        table = compile_histogram(numeric_hist)
        for value in [10, 20, 30, 40, 50]:
            assert table.equality(value) == numeric_hist.approx_of_value(value)

    def test_unknown_value_zero(self, numeric_hist):
        assert compile_histogram(numeric_hist).equality(99) == 0.0

    def test_unhashable_probe_zero(self, numeric_hist):
        assert compile_histogram(numeric_hist).equality([1, 2]) == 0.0

    def test_batch_matches_scalar_exactly(self, numeric_hist):
        table = compile_histogram(numeric_hist)
        probes = [10, 99, 30, -5, 50, 20]
        batch = table.equality_batch(probes)
        scalar = [table.equality(v) for v in probes]
        assert np.array_equal(batch, np.asarray(scalar))

    def test_batch_generic_domain(self, string_hist):
        table = compile_histogram(string_hist)
        batch = table.equality_batch(["a", "zzz", "c"])
        scalar = [table.equality(v) for v in ["a", "zzz", "c"]]
        assert np.array_equal(batch, np.asarray(scalar))

    def test_membership_deduplicates(self, string_hist):
        table = compile_histogram(string_hist)
        assert table.membership(["a", "a"]) == table.equality("a")

    def test_membership_empty(self, string_hist):
        assert compile_histogram(string_hist).membership([]) == 0.0

    def test_not_equal_complement(self, numeric_hist):
        table = compile_histogram(numeric_hist)
        assert table.not_equal(10) == pytest.approx(table.total - table.equality(10))


class TestRanges:
    def test_inclusive_range(self, numeric_hist):
        table = compile_histogram(numeric_hist)
        expected = sum(table.equality(v) for v in [20, 30, 40])
        assert table.range_sum(20, 40) == pytest.approx(expected)

    def test_exclusive_bounds(self, numeric_hist):
        table = compile_histogram(numeric_hist)
        expected = table.equality(30)
        assert table.range_sum(
            20, 40, include_low=False, include_high=False
        ) == pytest.approx(expected)

    def test_open_ended(self, numeric_hist):
        table = compile_histogram(numeric_hist)
        assert table.range_sum(None, None) == pytest.approx(table.total)

    def test_empty_range_zero(self, numeric_hist):
        assert compile_histogram(numeric_hist).range_sum(41, 49) == 0.0

    def test_inverted_range_zero(self, numeric_hist):
        assert compile_histogram(numeric_hist).range_sum(40, 20) == 0.0

    def test_batch_matches_scalar_bitwise(self, numeric_hist):
        table = compile_histogram(numeric_hist)
        lows = [10, None, 35, 50, 40]
        highs = [30, 25, None, 10, 20]
        batch = table.range_batch(lows, highs)
        scalar = [table.range_sum(lo, hi) for lo, hi in zip(lows, highs)]
        assert np.array_equal(batch, np.asarray(scalar))

    def test_string_domain_ranges(self, string_hist):
        table = compile_histogram(string_hist)
        expected = table.equality("a") + table.equality("b")
        assert table.range_sum("a", "b") == pytest.approx(expected)

    def test_unorderable_domain_rejects_ranges(self):
        table = CompiledHistogram(["a", 1], [5.0, 3.0])
        assert table.equality("a") == 5.0  # equality still fine
        with pytest.raises(ValueError, match="orderable"):
            table.range_sum("a", "z")

    def test_misaligned_batch_rejected(self, numeric_hist):
        with pytest.raises(ValueError, match="align"):
            compile_histogram(numeric_hist).range_batch([1, 2], [3])


class TestJoins:
    def test_shared_domain_dot_product(self):
        values = [1, 2, 3]
        left = compile_histogram(
            v_opt_bias_hist([5.0, 3.0, 1.0], 3, values=values)
        )
        right = compile_histogram(
            v_opt_bias_hist([2.0, 4.0, 6.0], 3, values=values)
        )
        assert left.join_with(right) == pytest.approx(5 * 2 + 3 * 4 + 1 * 6)

    def test_partial_overlap(self):
        left = compile_histogram(v_opt_bias_hist([5.0, 3.0], 2, values=[1, 2]))
        right = compile_histogram(v_opt_bias_hist([7.0, 2.0], 2, values=[2, 3]))
        assert left.join_with(right) == pytest.approx(3.0 * 7.0)

    def test_generic_domain_join(self):
        left = compile_histogram(v_opt_bias_hist([5.0, 3.0], 2, values=["a", "b"]))
        right = compile_histogram(v_opt_bias_hist([2.0, 9.0], 2, values=["b", "c"]))
        assert left.join_with(right) == pytest.approx(3.0 * 2.0)

    def test_join_type_checked(self, numeric_hist):
        with pytest.raises(TypeError, match="CompiledHistogram"):
            compile_histogram(numeric_hist).join_with("nope")


class TestCompiledCompact:
    @pytest.fixture
    def compact(self):
        return CompactEndBiased(
            explicit={100: 40.0, 200: 25.0},
            remainder_count=4,
            remainder_average=2.5,
        )

    def test_compile_type_checked(self):
        with pytest.raises(TypeError, match="CompactEndBiased"):
            compile_compact({"explicit": {}})

    def test_frequency_rules(self, compact):
        table = compile_compact(compact)
        assert table.frequency(100) == 40.0
        assert table.frequency(7) == 2.5
        assert table.frequency(7, assume_in_domain=False) == 0.0

    def test_total(self, compact):
        assert compile_compact(compact).total == pytest.approx(40 + 25 + 4 * 2.5)

    def test_batch_matches_scalar(self, compact):
        table = compile_compact(compact)
        probes = [100, 7, 200, -1]
        batch = table.frequency_batch(probes)
        scalar = [table.frequency(v) for v in probes]
        assert np.array_equal(batch, np.asarray(scalar))

    def test_batch_without_domain_assumption(self, compact):
        table = compile_compact(compact)
        batch = table.frequency_batch([100, 7], assume_in_domain=False)
        assert np.array_equal(batch, np.asarray([40.0, 0.0]))

    def test_string_explicit_values(self):
        table = CompiledCompact({"a": 9.0}, remainder_count=2, remainder_average=1.5)
        assert np.array_equal(
            table.frequency_batch(["a", "x"]), np.asarray([9.0, 1.5])
        )

    def test_negative_remainder_rejected(self):
        with pytest.raises(ValueError, match="remainder_count"):
            CompiledCompact({}, remainder_count=-1, remainder_average=0.0)


class TestDuplicateValues:
    def test_last_write_wins_matches_legacy_dict(self):
        # Duplicate domain values: the compiled table must preserve the
        # legacy per-call dict's last-write-wins semantics on both paths.
        table = CompiledHistogram([1, 2, 1], [5.0, 3.0, 7.0])
        assert table.equality(1) == 7.0
        assert np.array_equal(table.equality_batch([1, 2]), np.asarray([7.0, 3.0]))
        assert table.domain_size == 2
        assert table.total == pytest.approx(10.0)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError, match="align"):
            CompiledHistogram([1, 2], [1.0])
