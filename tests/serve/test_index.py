"""Tests for repro.serve.index — the tree-like bucket index.

The index is a layout, not a semantic: ``TreeBucketIndex.searchsorted``
must be **bit-identical** to ``np.searchsorted`` over the same codes for
both sides, including NaN probes, NaN codes, duplicates, and empty
inputs.  Compiled tables swap it in silently above
``TREE_INDEX_MIN_SIZE``, so any divergence here would silently corrupt
large-domain estimates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.index import (
    DEFAULT_FANOUT,
    TREE_INDEX_MIN_SIZE,
    TreeBucketIndex,
)
from repro.serve.tables import compile_histogram
from repro.core.biased import v_opt_bias_hist


def assert_matches_numpy(codes, probes, fanout=DEFAULT_FANOUT):
    codes = np.asarray(codes, dtype=np.float64)
    probes = np.asarray(probes, dtype=np.float64)
    index = TreeBucketIndex(codes, fanout=fanout)
    for side in ("left", "right"):
        expected = np.searchsorted(codes, probes, side=side)
        got = index.searchsorted(probes, side=side)
        assert np.array_equal(got, expected), (
            f"side={side} fanout={fanout} codes[:8]={codes[:8]} "
            f"probes[:8]={probes[:8]}"
        )


class TestTreeBucketIndex:
    def test_small_sorted_domain(self):
        assert_matches_numpy([1.0, 2.0, 5.0, 9.0], [-1.0, 1.0, 3.0, 9.0, 99.0])

    def test_empty_codes(self):
        assert_matches_numpy([], [0.0, 1.0])

    def test_empty_probes(self):
        assert_matches_numpy([1.0, 2.0], [])

    def test_duplicate_codes_both_sides(self):
        codes = np.repeat(np.arange(100, dtype=np.float64), 5)
        probes = np.asarray([-1.0, 0.0, 0.5, 50.0, 99.0, 100.0])
        assert_matches_numpy(codes, probes, fanout=8)

    def test_exact_fanout_multiple(self):
        codes = np.arange(64 * 4, dtype=np.float64)
        assert_matches_numpy(codes, codes, fanout=64)

    def test_ragged_tail_chunk(self):
        codes = np.arange(64 * 4 + 17, dtype=np.float64)
        probes = codes[::3] + 0.5
        assert_matches_numpy(codes, probes, fanout=64)

    def test_nan_probes_sort_last(self):
        codes = np.arange(300, dtype=np.float64)
        probes = np.asarray([np.nan, 5.0, np.nan, -np.inf, np.inf])
        assert_matches_numpy(codes, probes, fanout=16)

    def test_nan_codes(self):
        # numpy sorts NaN after every other float; the fence layout must
        # reproduce its answers over such (sorted) code arrays too.
        codes = np.concatenate([np.arange(200.0), [np.nan, np.nan]])
        probes = np.asarray([-1.0, 100.0, 250.0, np.nan])
        assert_matches_numpy(codes, probes, fanout=16)

    def test_inf_endpoints(self):
        codes = np.concatenate([[-np.inf], np.arange(100.0), [np.inf]])
        probes = np.asarray([-np.inf, -1.0, 50.0, np.inf])
        assert_matches_numpy(codes, probes, fanout=8)

    def test_large_domain_default_fanout(self):
        gen = np.random.default_rng(7)
        codes = np.sort(gen.normal(size=10_000))
        probes = gen.normal(size=2_000)
        assert_matches_numpy(codes, probes)

    def test_negative_zero(self):
        assert_matches_numpy([-1.0, 0.0, 1.0], [-0.0, 0.0])

    def test_rejects_bad_side(self):
        with pytest.raises(ValueError, match="side"):
            TreeBucketIndex(np.arange(4.0)).searchsorted([1.0], side="middle")

    def test_rejects_bad_fanout(self):
        with pytest.raises(ValueError, match="fanout"):
            TreeBucketIndex(np.arange(4.0), fanout=1)

    def test_rejects_2d_codes(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            TreeBucketIndex(np.zeros((2, 2)))

    def test_properties(self):
        index = TreeBucketIndex(np.arange(130.0), fanout=64)
        assert index.size == 130
        assert index.fanout == 64
        assert index.fence_count == 2  # codes[63], codes[127]; tail unfenced


class TestCompiledTableIntegration:
    def test_small_table_has_no_tree(self):
        hist = v_opt_bias_hist([5.0, 3.0, 1.0], 2, values=[1, 2, 3])
        assert compile_histogram(hist).bucket_index is None

    def test_large_table_builds_tree_and_stays_bit_identical(self):
        n = TREE_INDEX_MIN_SIZE
        freqs = [float(f) for f in range(n, 0, -1)]
        hist = v_opt_bias_hist(freqs, 8, values=list(range(n)))
        table = compile_histogram(hist)
        assert table.bucket_index is not None
        flat = np.searchsorted(
            np.arange(n, dtype=np.float64),
            np.asarray([-1.0, 0.0, n / 2, n - 1.0, n + 5.0]),
        )
        got = table.bucket_index.searchsorted(
            np.asarray([-1.0, 0.0, n / 2, n - 1.0, n + 5.0])
        )
        assert np.array_equal(got, flat)
        # And the estimates themselves agree with the scalar path.
        probes = [0, 17, n // 2, n - 1, n, -3]
        batch = table.equality_batch(probes)
        scalar = [table.equality(v) for v in probes]
        assert np.array_equal(batch, np.asarray(scalar))


finite_or_special = st.floats(allow_nan=True, allow_infinity=True, width=64)


@settings(max_examples=120, deadline=None)
@given(
    codes=st.lists(
        st.floats(allow_nan=False, allow_infinity=True, width=64),
        min_size=0,
        max_size=200,
    ),
    probes=st.lists(finite_or_special, min_size=0, max_size=50),
    fanout=st.sampled_from([2, 3, 8, 64]),
)
def test_property_bit_identical_to_numpy(codes, probes, fanout):
    codes = np.sort(np.asarray(codes, dtype=np.float64))
    assert_matches_numpy(codes, probes, fanout=fanout)
