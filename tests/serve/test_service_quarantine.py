"""Tests for quarantine-aware serving in repro.serve.service.

Recovery (:func:`repro.engine.persist.load_catalog` with ``recover=True``)
may withhold corrupt statistics.  The service must then degrade probes
against those relations through the ``on_error`` policy — never serve a
value derived from a corrupted entry — and surface the event in metrics.
"""

import json
import math

import pytest

from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.persist import (
    QuarantinedEntry,
    RecoveryReport,
    load_catalog,
    save_catalog,
)
from repro.engine.relation import Relation
from repro.serve import (
    REASON_COMPILE_FAILED,
    REASON_QUARANTINED,
    EstimationService,
    TableCompileError,
)
from repro.testing.faults import FaultInjector, InjectedFault


@pytest.fixture
def catalog():
    catalog = StatsCatalog()
    r = Relation.from_columns(
        "R", {"a": [1] * 40 + [2] * 25 + [3] * 20 + [4] * 10 + [5] * 5}
    )
    s = Relation.from_columns("S", {"a": [1] * 10 + [2] * 10 + [3] * 10})
    analyze_relation(r, "a", catalog, kind="serial", buckets=3)
    analyze_relation(s, "a", catalog, kind="end-biased", buckets=2)
    return catalog


@pytest.fixture
def service(catalog):
    return EstimationService(catalog)


def report_quarantining(catalog, relation="R", attribute="a"):
    return RecoveryReport(
        catalog=catalog,
        snapshot_path="catalog.json",
        entries_loaded=1,
        quarantined=[
            QuarantinedEntry(
                relation=relation, attribute=attribute, reason="checksum mismatch"
            )
        ],
        journal_replayed=3,
    )


class TestApplyRecovery:
    def test_quarantined_equality_degrades_to_magic_constant(
        self, catalog, service
    ):
        baseline = service.estimate_equality("R", "a", 1)
        assert service.apply_recovery(report_quarantining(catalog)) == 1
        estimate = service.estimate_equality("R", "a", 1)
        assert estimate != baseline
        assert estimate == pytest.approx(100.0 * 0.1)  # System R fallback
        stats = service.stats()
        assert stats.degradation_reasons[REASON_QUARANTINED] == 1
        assert stats.quarantined_probes == 1
        assert stats.entries_quarantined == 1
        assert stats.recoveries_applied == 1
        assert stats.journal_deltas_replayed == 3

    def test_quarantined_range_uses_third(self, catalog, service):
        service.apply_recovery(report_quarantining(catalog))
        assert service.estimate_range("R", "a", 1, 3) == pytest.approx(100.0 / 3)

    def test_quarantined_not_equal_uses_complement(self, catalog, service):
        service.apply_recovery(report_quarantining(catalog))
        assert service.estimate_not_equal("R", "a", 1) == pytest.approx(90.0)

    def test_quarantined_join_degrades_both_directions(self, catalog, service):
        service.apply_recovery(report_quarantining(catalog))
        expected = 100.0 * 30.0 * 0.1
        assert service.estimate_join("R", "a", "S", "a") == pytest.approx(expected)
        assert service.estimate_join("S", "a", "R", "a") == pytest.approx(expected)
        assert service.stats().quarantined_probes == 2

    def test_raise_policy_names_the_repair_path(self, catalog, service):
        service.apply_recovery(report_quarantining(catalog))
        with pytest.raises(RuntimeError, match="repro stats repair"):
            service.estimate_equality("R", "a", 1, on_error="raise")

    def test_nan_policy(self, catalog, service):
        service.apply_recovery(report_quarantining(catalog))
        assert math.isnan(service.estimate_equality("R", "a", 1, on_error="nan"))

    def test_file_level_quarantine_is_ignored(self, catalog, service):
        report = RecoveryReport(
            catalog=catalog,
            snapshot_path="catalog.json",
            snapshot_ok=False,
            quarantined=[
                QuarantinedEntry(relation=None, attribute=None, reason="not JSON")
            ],
        )
        assert service.apply_recovery(report) == 0
        assert service.estimate_equality("R", "a", 1) > 0.0
        assert service.stats().degraded_probes == 0

    def test_recovery_kwarg_on_constructor(self, catalog):
        service = EstimationService(
            catalog, recovery=report_quarantining(catalog)
        )
        assert ("R", "a") in service.quarantined
        assert service.stats().entries_quarantined == 1

    def test_apply_recovery_rejects_wrong_type(self, service):
        with pytest.raises(TypeError, match="RecoveryReport"):
            service.apply_recovery({"quarantined": []})

    def test_relation_wide_recovery_evicts_every_cached_slot(
        self, catalog, service
    ):
        # A whole-relation quarantine (attribute None) must drop all of the
        # relation's per-attribute compiled tables, exactly like
        # quarantine(); leaving them cached would outlive clear_quarantine.
        service.estimate_equality("R", "a", 1)
        service.estimate_equality("S", "a", 1)
        assert service.cached_tables == 2
        report = report_quarantining(catalog, relation="R", attribute=None)
        assert service.apply_recovery(report) == 1
        assert service.cached_tables == 1  # only S's table survives
        assert ("R", None) in service.quarantined


class TestQuarantineManagement:
    def test_clear_quarantine_restores_service(self, catalog, service):
        baseline = service.estimate_equality("R", "a", 1)
        service.quarantine("R", "a")
        assert service.estimate_equality("R", "a", 1) != baseline
        assert service.clear_quarantine("R", "a")
        assert service.estimate_equality("R", "a", 1) == pytest.approx(baseline)
        assert not service.clear_quarantine("R", "a")  # already clear

    def test_relation_wide_quarantine_covers_all_attributes(
        self, catalog, service
    ):
        service.quarantine("R")
        assert service.estimate_equality("R", "a", 1) == pytest.approx(10.0)
        with pytest.raises(RuntimeError, match="quarantined"):
            service.estimate_range("R", "a", 1, 3, on_error="raise")

    def test_quarantine_drops_cached_tables(self, catalog, service):
        service.estimate_equality("R", "a", 1)
        assert service.cached_tables >= 1
        before = service.cached_tables
        service.quarantine("R", "a")
        assert service.cached_tables == before - 1

    def test_unaffected_relation_keeps_serving(self, catalog, service):
        joined = service.estimate_join("R", "a", "S", "a")
        service.quarantine("R", "a")
        assert service.estimate_equality("S", "a", 1) == pytest.approx(10.0)
        assert service.estimate_join("R", "a", "S", "a") != pytest.approx(joined)


class TestCompileFailures:
    def test_compile_crash_degrades_with_counter(self, catalog, service):
        with FaultInjector().fail_at(
            "serve.compile", error=InjectedFault("simulated compile fault")
        ):
            estimate = service.estimate_equality("R", "a", 1)
        assert estimate == pytest.approx(100.0 * 0.1)
        stats = service.stats()
        assert stats.degradation_reasons[REASON_COMPILE_FAILED] == 1
        assert stats.compile_failures == 1

    def test_compile_crash_raises_under_raise_policy(self, catalog, service):
        with FaultInjector().fail_at(
            "serve.compile", error=InjectedFault("simulated compile fault")
        ):
            with pytest.raises(TableCompileError, match="R.a"):
                service.estimate_equality("R", "a", 1, on_error="raise")

    def test_compile_recovers_once_fault_clears(self, catalog, service):
        with FaultInjector().fail_at(
            "serve.compile", error=InjectedFault("transient")
        ):
            service.estimate_equality("R", "a", 1)
        # No injector active: the slot compiles and serves exactly.
        assert service.estimate_equality("R", "a", 1) == pytest.approx(40.0)


class TestEndToEndRecovery:
    def test_corrupt_snapshot_entry_never_served(self, catalog, tmp_path):
        """Full loop: save → corrupt one entry → recover → degraded serve."""
        snapshot = tmp_path / "catalog.json"
        save_catalog(catalog, snapshot)
        blob = json.loads(snapshot.read_text())
        blob["entries"][0]["payload"]["total_tuples"] = 999999.0  # bit rot
        snapshot.write_text(json.dumps(blob))

        report = load_catalog(snapshot, recover=True)
        assert len(report.quarantined) == 1
        service = EstimationService(report.catalog, recovery=report)
        label = report.quarantined[0]
        estimate = service.estimate_equality(label.relation, label.attribute, 1)
        assert estimate == 0.0  # rows unknown for the quarantined relation
        stats = service.stats()
        assert stats.degradation_reasons[REASON_QUARANTINED] == 1
        assert "faulty statistics" in stats.format()
