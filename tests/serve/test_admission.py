"""The admission hook on EstimationService.estimate_batch.

Quota/backpressure rejections (the network server's admission control)
must ride the existing per-probe degradation machinery: typed reasons,
policy-controlled values, counted metrics — and never batch aborts.
"""

import math

import numpy as np
import pytest

from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.obs import runtime
from repro.serve import (
    REASON_BACKPRESSURE,
    REASON_QUOTA_EXCEEDED,
    EqualityProbe,
    EstimationService,
    JoinProbe,
    RangeProbe,
)


@pytest.fixture(autouse=True)
def fresh_obs():
    runtime.reset()
    yield
    runtime.reset()


@pytest.fixture
def catalog():
    catalog = StatsCatalog()
    r = Relation.from_columns("R", {"a": [1] * 60 + [2] * 30 + [3] * 10})
    s = Relation.from_columns("S", {"a": [1] * 20 + [2] * 20})
    analyze_relation(r, "a", catalog, kind="serial", buckets=2)
    analyze_relation(s, "a", catalog, kind="end-biased", buckets=2)
    return catalog


@pytest.fixture
def service(catalog):
    return EstimationService(catalog)


PROBES = [
    EqualityProbe("R", "a", 1),
    RangeProbe("R", "a", 1, 2),
    JoinProbe("R", "a", "S", "a"),
]


class TestAdmissionHook:
    def test_no_hook_is_the_default_path(self, service):
        baseline = service.estimate_batch(PROBES)
        with_hook = service.estimate_batch(PROBES, admission=lambda probes: None)
        assert with_hook.tobytes() == baseline.tobytes()
        assert service.stats().rejected_probes == 0

    def test_rejected_probes_degrade_with_their_reason(self, service):
        verdicts = [None, REASON_QUOTA_EXCEEDED, REASON_BACKPRESSURE]
        traces = []
        out = service.estimate_batch(
            PROBES, admission=lambda probes: verdicts, trace=traces.append
        )
        baseline = service.estimate_batch([PROBES[0]])
        assert out[0] == baseline[0]
        # Per-kind bounded fallbacks: System R magic constants.
        assert out[1] == pytest.approx(100.0 * (1.0 / 3.0))
        assert out[2] == pytest.approx(100.0 * 40.0 * 0.1)
        assert [t.reason for t in traces] == [
            REASON_QUOTA_EXCEEDED,
            REASON_BACKPRESSURE,
        ]
        assert [t.position for t in traces] == [1, 2]
        assert all(t.degraded for t in traces)
        stats = service.stats()
        assert stats.rejected_probes == 2
        assert stats.rejection_reasons == {
            REASON_QUOTA_EXCEEDED: 1,
            REASON_BACKPRESSURE: 1,
        }
        # Rejections are also degradations: the ledger invariant holds.
        assert stats.degraded_probes == sum(stats.degradation_reasons.values())
        assert stats.probes_served == 4  # 3 + the baseline re-run

    def test_nan_policy(self, service):
        out = service.estimate_batch(
            PROBES,
            on_error="nan",
            admission=lambda probes: [REASON_QUOTA_EXCEEDED, None, None],
        )
        assert math.isnan(out[0])
        assert np.all(np.isfinite(out[1:]))

    def test_raise_policy_surfaces_permission_error(self, service):
        with pytest.raises(PermissionError, match="quota-exceeded"):
            service.estimate_batch(
                PROBES,
                on_error="raise",
                admission=lambda probes: [REASON_QUOTA_EXCEEDED, None, None],
            )

    def test_unknown_row_fallback_is_zero(self, service):
        out = service.estimate_batch(
            [EqualityProbe("NOPE", "a", 1), JoinProbe("NOPE", "a", "ALSO", "b")],
            admission=lambda probes: [REASON_QUOTA_EXCEEDED] * 2,
        )
        assert np.all(out == 0.0)

    def test_misaligned_verdicts_rejected(self, service):
        with pytest.raises(ValueError, match="align"):
            service.estimate_batch(PROBES, admission=lambda probes: [None])

    def test_hook_sees_the_whole_batch(self, service):
        seen = []
        service.estimate_batch(PROBES, admission=lambda probes: seen.append(list(probes)))
        assert seen == [PROBES]


class TestRejectionMetrics:
    def test_snapshot_detaches_rejection_counters(self, service):
        """PR-5 guarantee extended: the generic snapshot copy must pick up
        the new rejection fields without bespoke code."""
        service.estimate_batch(
            PROBES, admission=lambda probes: [REASON_QUOTA_EXCEEDED, None, None]
        )
        snapshot = service.metrics.snapshot()
        assert snapshot.rejected_probes == 1
        assert snapshot.rejection_reasons == {REASON_QUOTA_EXCEEDED: 1}
        snapshot.rejection_reasons["poison"] = 99
        snapshot.rejected_probes = 1000
        live = service.stats()
        assert live.rejected_probes == 1
        assert "poison" not in live.rejection_reasons

    def test_as_dict_and_format_cover_rejections(self, service):
        service.estimate_batch(
            PROBES, admission=lambda probes: [REASON_BACKPRESSURE, None, None]
        )
        stats = service.stats()
        flat = stats.as_dict()
        assert flat["rejected_probes"] == 1
        assert flat[f"rejected[{REASON_BACKPRESSURE}]"] == 1
        assert "admission control: 1 probes rejected" in stats.format()

    def test_registry_export(self, catalog):
        service = EstimationService(catalog, name="admission-svc")
        service.estimate_batch(
            PROBES, admission=lambda probes: [REASON_QUOTA_EXCEEDED, None, None]
        )
        text = runtime.get_registry().to_prometheus()
        assert "repro_serve_rejected_probes_total" in text
        assert 'reason="quota-exceeded"' in text
