"""Observability-facing service behaviour: hook isolation, detached
snapshots, registry export, and batch spans."""

import threading

import numpy as np
import pytest

from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.obs import runtime
from repro.obs.tracing import add_span_sink, clear_span_sinks
from repro.serve import EqualityProbe, EstimationService


@pytest.fixture(autouse=True)
def fresh_obs():
    runtime.reset()
    clear_span_sinks()
    yield
    runtime.reset()
    clear_span_sinks()


@pytest.fixture
def catalog():
    catalog = StatsCatalog()
    relation = Relation.from_columns("R", {"a": [1] * 30 + [2] * 20 + [3] * 10})
    analyze_relation(relation, "a", catalog, kind="end-biased", buckets=2)
    return catalog


@pytest.fixture
def service(catalog):
    return EstimationService(catalog)


class TestTraceHookIsolation:
    def test_raising_hook_never_aborts_sibling_probes(self, service):
        """Regression: a trace= hook that raises used to propagate out of
        the batch and abort every sibling probe after the first degraded
        one."""

        def angry_hook(record):
            raise RuntimeError("observer bug")

        probes = [
            EqualityProbe("R", "a", 1),
            EqualityProbe("ZZZ", "a", 1),  # degrades -> hook fires -> raises
            EqualityProbe("R", "a", 2),
            EqualityProbe("ZZZ", "a", 2),  # second firing, still isolated
        ]
        estimates = service.estimate_batch(probes, trace=angry_hook)
        assert estimates.shape == (4,)
        assert np.all(np.isfinite(estimates))
        stats = service.stats()
        assert stats.trace_hook_errors == 2
        assert stats.batches_failed == 0
        assert stats.probes_served == 4

    def test_hook_errors_surface_in_registry_export(self, service):
        def angry_hook(record):
            raise RuntimeError("observer bug")

        service.estimate_batch([EqualityProbe("ZZZ", "a", 1)], trace=angry_hook)
        text = runtime.get_registry().to_prometheus()
        assert "repro_serve_trace_hook_errors_total" in text

    def test_healthy_hook_still_receives_traces(self, service):
        traces = []
        service.estimate_batch([EqualityProbe("ZZZ", "a", 1)], trace=traces.append)
        assert len(traces) == 1
        assert service.stats().trace_hook_errors == 0


class TestSnapshotDetachment:
    def test_snapshot_copies_every_field(self, service):
        service.estimate_batch([EqualityProbe("ZZZ", "a", 1)])
        snapshot = service.metrics.snapshot()
        for name, value in service.metrics.__dict__.items():
            if name == "_lock":
                continue
            assert getattr(snapshot, name) == value, name
        assert snapshot._lock is not service.metrics._lock
        assert snapshot.degradation_reasons is not service.metrics.degradation_reasons
        assert snapshot.latency_counts is not service.metrics.latency_counts

    def test_new_counters_cannot_be_missed(self, service):
        """The generic copy picks up fields added after the snapshot code
        was written — trace_hook_errors is itself the regression case."""
        service.metrics.record_trace_hook_error(3)
        assert service.metrics.snapshot().trace_hook_errors == 3

    def test_mutating_snapshot_never_bleeds_under_concurrency(self, service):
        """Satellite regression: hammer record_* on the live instance while
        mutating snapshots; the live counters must come out exact."""
        rounds = 200
        stop = threading.Event()

        def mutate_snapshots():
            while not stop.is_set():
                snapshot = service.metrics.snapshot()
                snapshot.degradation_reasons["poison"] = 10_000
                snapshot.latency_counts[0] += 999
                snapshot.probes_served += 123

        def record():
            for _ in range(rounds):
                service.metrics.record_degraded("unknown-relation")
                service.metrics.record_latency(0.5)
                service.metrics.record_fallback()

        mutator = threading.Thread(target=mutate_snapshots)
        recorders = [threading.Thread(target=record) for _ in range(4)]
        mutator.start()
        for thread in recorders:
            thread.start()
        for thread in recorders:
            thread.join()
        stop.set()
        mutator.join()

        stats = service.stats()
        assert stats.degradation_reasons == {"unknown-relation": 4 * rounds}
        assert stats.degraded_probes == 4 * rounds
        assert stats.fallback_probes == 4 * rounds
        assert sum(stats.latency_counts) == 4 * rounds
        assert "poison" not in stats.degradation_reasons


class TestRegistryExport:
    def test_service_counters_export_with_service_label(self, catalog):
        service = EstimationService(catalog, name="unit-test-svc")
        service.estimate_batch([EqualityProbe("R", "a", 1)])
        text = runtime.get_registry().to_prometheus()
        assert 'repro_serve_probes_total{service="unit-test-svc"} 1' in text
        assert 'repro_serve_batches_total{service="unit-test-svc"} 1' in text
        assert "repro_serve_batch_latency_bucket" in text

    def test_collector_dies_with_the_service(self, catalog):
        import gc

        service = EstimationService(catalog, name="short-lived")
        service.estimate_batch([EqualityProbe("R", "a", 1)])
        del service
        gc.collect()
        assert "short-lived" not in runtime.get_registry().to_prometheus()

    def test_auto_names_are_unique(self, catalog):
        first = EstimationService(catalog)
        second = EstimationService(catalog)
        assert first.name != second.name

    def test_name_must_be_a_string(self, catalog):
        with pytest.raises(TypeError, match="name"):
            EstimationService(catalog, name=42)


class TestBatchSpans:
    def test_batch_emits_span_with_compile_child(self, service):
        records = []
        add_span_sink(records.append)
        service.estimate_batch([EqualityProbe("R", "a", 1)])
        names = {record.name for record in records}
        assert "serve.batch" in names
        compile_record = next(
            record for record in records if record.name == "serve.table.compile"
        )
        assert compile_record.parent == "serve.batch"

    def test_disabled_instrumentation_emits_nothing(self, service):
        records = []
        add_span_sink(records.append)
        runtime.set_instrumentation(False)
        service.estimate_batch([EqualityProbe("R", "a", 1)])
        assert records == []
        # Plain ServiceMetrics counters still work when obs is off.
        assert service.stats().probes_served == 1
