"""End-to-end integration: data → engine → ANALYZE → estimation → optimizer."""

import numpy as np
import pytest

from repro.core.estimator import relative_error
from repro.data.quantize import quantize_to_integers
from repro.data.realworld import nba_player_statistics, player_stat_frequency_set
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.executor import ChainJoinSpec, chain_join_size, execute_chain_join
from repro.engine.operators import hash_join, select_equals
from repro.engine.relation import Relation
from repro.maint.update import MaintainedEndBiased
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.joinorder import JoinEdge, JoinGraph, optimal_join_order, plan_true_rows


def zipf_relation(name, attr, total, domain, z, rng):
    freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
    column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
    rng.shuffle(column)
    return Relation.from_columns(name, {attr: column})


class TestSelfJoinPipeline:
    """The full pipeline on a self-join, the paper's canonical query."""

    @pytest.mark.parametrize("kind,max_rel_error", [
        ("end-biased", 0.12),
        ("serial", 0.12),
        ("trivial", 1.0),
    ])
    def test_histograms_estimate_true_self_join(self, rng, kind, max_rel_error):
        relation = zipf_relation("R", "a", 2000, 50, 1.2, rng)
        truth = hash_join(relation, relation, "a", "a").cardinality
        catalog = StatsCatalog()
        entry = analyze_relation(relation, "a", catalog, kind=kind, buckets=8)
        estimate = entry.histogram.self_join_estimate()
        assert relative_error(truth, estimate) <= max_rel_error

    def test_ranking_preserved_on_real_engine_data(self, rng):
        relation = zipf_relation("R", "a", 2000, 50, 1.5, rng)
        truth = hash_join(relation, relation, "a", "a").cardinality
        errors = {}
        for kind in ("trivial", "equi-depth", "end-biased", "serial"):
            catalog = StatsCatalog()
            entry = analyze_relation(relation, "a", catalog, kind=kind, buckets=8)
            estimate = float(
                np.dot(
                    entry.histogram.approximate_frequencies(),
                    entry.histogram.approximate_frequencies(),
                )
            )
            errors[kind] = abs(truth - estimate)
        assert errors["serial"] <= errors["end-biased"] + 1e-9
        assert errors["end-biased"] <= errors["trivial"] + 1e-9


class TestChainPipeline:
    def test_matrix_product_equals_executor_and_estimates_track(self, rng):
        r0 = zipf_relation("R0", "a1", 500, 8, 1.0, rng)
        r1 = Relation.from_columns(
            "R1",
            {
                "a1": list(rng.integers(0, 8, 400)),
                "a2": list(rng.integers(0, 6, 400)),
            },
        )
        r2 = zipf_relation("R2", "a2", 300, 6, 2.0, rng)
        spec = ChainJoinSpec((r0, r1, r2), (("a1", "a1"), ("a2", "a2")))
        truth = execute_chain_join(spec).cardinality
        assert chain_join_size(spec) == truth

        catalog = StatsCatalog()
        for relation, attrs in ((r0, ["a1"]), (r1, ["a1", "a2"]), (r2, ["a2"])):
            for attr in attrs:
                analyze_relation(relation, attr, catalog, kind="end-biased", buckets=6)
        estimator = CardinalityEstimator(catalog)
        sel01 = estimator.join_selectivity("R0", "a1", "R1", "a1")
        sel12 = estimator.join_selectivity("R1", "a2", "R2", "a2")
        estimate = 500 * 400 * 300 * sel01 * sel12
        # Join estimates compound multiplicatively; the independence model
        # should land within a small constant factor of the truth.
        assert truth / 4 <= estimate <= truth * 4

    def test_optimizer_estimates_match_plan_truth_reasonably(self, rng):
        relations = [
            zipf_relation("A", "x", 300, 8, 1.5, rng),
            Relation.from_columns(
                "B",
                {"x": list(rng.integers(0, 8, 250)), "y": list(rng.integers(0, 5, 250))},
            ),
            zipf_relation("C", "y", 200, 5, 0.5, rng),
        ]
        catalog = StatsCatalog()
        for relation in relations:
            for attr in relation.schema.names:
                analyze_relation(relation, attr, catalog, kind="end-biased", buckets=8)
        graph = JoinGraph(
            relations, [JoinEdge("A", "x", "B", "x"), JoinEdge("B", "y", "C", "y")]
        )
        plan = optimal_join_order(graph, CardinalityEstimator(catalog))
        truth = plan_true_rows(plan, graph)[plan]
        # Two compounded join estimates: within a factor of four of truth.
        assert truth / 4 <= plan.estimated_rows <= truth * 4


class TestSelectionPipeline:
    def test_selection_estimates(self, rng):
        relation = zipf_relation("R", "a", 1000, 20, 1.5, rng)
        catalog = StatsCatalog()
        analyze_relation(relation, "a", catalog, kind="end-biased", buckets=6)
        estimator = CardinalityEstimator(catalog)
        dist = relation.frequency_distribution("a")
        hot = max(dist.values, key=dist.frequency_of)
        truth = select_equals(relation, "a", hot).cardinality
        assert estimator.equality_selection("R", "a", hot) == pytest.approx(truth)

    def test_range_estimate_tracks_truth(self, rng):
        relation = zipf_relation("R", "a", 1000, 20, 1.0, rng)
        catalog = StatsCatalog()
        analyze_relation(relation, "a", catalog, kind="serial", buckets=8)
        estimator = CardinalityEstimator(catalog)
        position = relation.schema.position("a")
        truth = sum(1 for row in relation.rows() if 5 <= row[position] <= 12)
        estimate = estimator.range_selection("R", "a", low=5, high=12)
        assert relative_error(truth, estimate) < 0.5


class TestMaintenancePipeline:
    def test_maintained_histogram_tracks_updates(self, rng):
        relation = zipf_relation("R", "a", 1000, 25, 1.2, rng)
        dist = relation.frequency_distribution("a")
        maintained = MaintainedEndBiased(dist, 8)
        # Apply 100 inserts to both the relation and the histogram.
        for _ in range(100):
            value = int(rng.integers(0, 25))
            relation.insert((value,))
            maintained.insert(value)
        fresh = relation.frequency_distribution("a")
        assert maintained.total == pytest.approx(fresh.total)
        truth = float(np.dot(fresh.frequencies, fresh.frequencies))
        assert relative_error(truth, maintained.self_join_estimate()) < 0.25


class TestRealDataPipeline:
    """Section 5.1.2: real-life data verifies the Zipf findings."""

    def test_histogram_ranking_on_nba_surrogate(self):
        seasons = nba_player_statistics(players=400)
        from repro.core.biased import v_opt_bias_hist
        from repro.core.heuristic import trivial_histogram
        from repro.core.serial import v_optimal_serial_histogram

        for attribute in ("points", "minutes", "rebounds", "threes"):
            freqs = player_stat_frequency_set(seasons, attribute)
            beta = min(8, freqs.size)
            trivial_error = trivial_histogram(freqs).self_join_error()
            end_biased_error = v_opt_bias_hist(freqs, beta).self_join_error()
            serial_error = v_optimal_serial_histogram(
                freqs, beta, method="dp"
            ).self_join_error()
            assert serial_error <= end_biased_error + 1e-9, attribute
            assert end_biased_error <= trivial_error + 1e-9, attribute

    def test_nba_relation_through_engine(self):
        seasons = nba_player_statistics(players=300)
        relation = Relation.from_columns(
            "PlayerStats",
            {
                "player_id": [s.player_id for s in seasons],
                "games": [s.games for s in seasons],
                "threes": [s.threes for s in seasons],
            },
        )
        catalog = StatsCatalog()
        analyze_relation(relation, "games", catalog, kind="end-biased", buckets=10)
        entry = catalog.require("PlayerStats", "games")
        truth = relation.frequency_distribution("games")
        hot = max(truth.values, key=truth.frequency_of)
        assert entry.estimate_frequency(hot) == pytest.approx(truth.frequency_of(hot))
