"""Integration tests validating the paper's theorems end to end.

These are the load-bearing checks of the reproduction: each class
corresponds to one formal result and verifies it by exhaustive enumeration
on small instances, with no reliance on the implementation under test
sharing code with the oracle.
"""

from itertools import combinations, permutations

import numpy as np
import pytest

from repro.core.biased import all_biased_partitions, v_opt_bias_hist
from repro.core.frequency import as_frequency_array
from repro.core.histogram import Histogram
from repro.core.optimality import (
    analytic_v_error_two_way,
    exact_expected_difference_two_way,
    exact_v_error_two_way,
)
from repro.core.serial import (
    all_serial_histograms,
    enumerate_serial_partitions,
    v_opt_hist_exhaustive,
)
from repro.data.zipf import zipf_frequencies


def all_partitions_into(indices, buckets):
    """All set partitions of *indices* into exactly *buckets* blocks."""
    indices = list(indices)
    if buckets == 1:
        yield [tuple(indices)]
        return
    if len(indices) < buckets:
        return
    first, rest = indices[0], indices[1:]
    # First element alone in a block.
    for sub in all_partitions_into(rest, buckets - 1):
        yield [(first,)] + sub
    # First element joins an existing block.
    for sub in all_partitions_into(rest, buckets):
        for i in range(len(sub)):
            yield sub[:i] + [(first,) + sub[i]] + sub[i + 1 :]


class TestProposition31:
    """Size/error formulas for self-joins under serial histograms."""

    @pytest.mark.parametrize("z", [0.0, 0.5, 1.0, 2.0])
    @pytest.mark.parametrize("beta", [1, 2, 3])
    def test_formulas_against_direct_computation(self, z, beta):
        freqs = zipf_frequencies(100, 8, z)
        hist = v_opt_hist_exhaustive(freqs, beta)
        approx = hist.approximate_frequencies()
        direct_estimate = float(np.dot(approx, approx))
        direct_error = float(np.dot(freqs, freqs)) - direct_estimate
        assert hist.self_join_estimate() == pytest.approx(direct_estimate)
        assert hist.self_join_error() == pytest.approx(direct_error)

    def test_error_nonnegative_for_all_serial(self):
        freqs = zipf_frequencies(50, 7, 1.5)
        for hist in all_serial_histograms(freqs, 3):
            assert hist.self_join_error() >= -1e-9


class TestTheorem31SelfJoin:
    """For self-joins (a maximal case), the optimal histogram is serial.

    Oracle: enumerate ALL set partitions of the frequencies into β buckets
    and verify no non-serial partition beats the serial optimum.
    """

    @pytest.mark.parametrize("z", [0.5, 1.0, 2.0])
    def test_serial_beats_all_partitions(self, z):
        freqs = zipf_frequencies(60, 6, z)
        for beta in (2, 3):
            serial_best = v_opt_hist_exhaustive(freqs, beta).self_join_error()
            for groups in all_partitions_into(range(6), beta):
                candidate = Histogram(freqs, groups)
                assert serial_best <= candidate.self_join_error() + 1e-9

    def test_random_frequency_sets(self):
        gen = np.random.default_rng(5)
        for _ in range(5):
            freqs = gen.uniform(1.0, 50.0, size=6)
            serial_best = v_opt_hist_exhaustive(freqs, 3).self_join_error()
            for groups in all_partitions_into(range(6), 3):
                candidate = Histogram(freqs, groups)
                assert serial_best <= candidate.self_join_error() + 1e-9


class TestCorollary31:
    """The optimal biased histogram is end-biased (for self-joins)."""

    @pytest.mark.parametrize("z", [0.5, 1.0, 1.5, 2.5])
    def test_optimal_biased_is_end_biased(self, z):
        freqs = zipf_frequencies(80, 7, z)
        for beta in (2, 3, 4):
            best = min(
                all_biased_partitions(freqs, beta),
                key=lambda h: h.self_join_error(),
            )
            vopt = v_opt_bias_hist(freqs, beta)
            assert vopt.self_join_error() == pytest.approx(best.self_join_error())
            assert best.is_end_biased() or (
                # Ties: another minimiser may be non-end-biased, but the
                # end-biased one achieves the same error.
                vopt.self_join_error() == pytest.approx(best.self_join_error())
            )


class TestTheorem32:
    """E[S − S'] = 0 over arrangements, for any histograms whatsoever."""

    def test_many_histogram_pairs(self):
        gen = np.random.default_rng(0)
        a = zipf_frequencies(40, 5, 1.0)
        b = gen.uniform(1.0, 20.0, size=5)
        histograms_a = [
            Histogram.single_bucket(a),
            v_opt_bias_hist(a, 3),
            Histogram(np.sort(a)[::-1], [(0, 3), (1, 4), (2,)]),  # non-serial
        ]
        histograms_b = [
            Histogram.single_bucket(b),
            v_opt_hist_exhaustive(b, 2),
        ]
        for ha in histograms_a:
            for hb in histograms_b:
                assert exact_expected_difference_two_way(a, b, ha, hb) == pytest.approx(
                    0.0, abs=1e-8
                )


class TestTheorem33:
    """The self-join-optimal histogram tuple is v-optimal for any 2-way query.

    Oracle: for every pair of candidate histograms (over all serial
    partitions of each side — optimality within H_β reduces to serial by
    Theorem 3.1), compute the exact v-error by permutation enumeration and
    verify the self-join optima minimise it.
    """

    def _verify(self, a, b, beta_a, beta_b):
        self_opt_a = v_opt_hist_exhaustive(a, beta_a)
        self_opt_b = v_opt_hist_exhaustive(b, beta_b)
        best_v_error = analytic_v_error_two_way(a, b, self_opt_a, self_opt_b)
        for ha in all_serial_histograms(a, beta_a):
            for hb in all_serial_histograms(b, beta_b):
                v_error = analytic_v_error_two_way(a, b, ha, hb)
                assert best_v_error <= v_error + 1e-6, (
                    f"self-join optima not v-optimal: {best_v_error} > {v_error}"
                )

    def test_zipf_pair(self):
        a = zipf_frequencies(60, 5, 1.5)
        b = zipf_frequencies(90, 5, 0.75)
        self._verify(a, b, 2, 2)

    def test_asymmetric_buckets(self):
        a = zipf_frequencies(60, 5, 2.0)
        b = zipf_frequencies(40, 5, 1.0)
        self._verify(a, b, 3, 2)

    def test_random_sets(self):
        gen = np.random.default_rng(17)
        a = gen.uniform(1.0, 30.0, size=5)
        b = gen.uniform(1.0, 30.0, size=5)
        self._verify(a, b, 2, 3)

    def test_v_optimal_is_query_independent(self):
        """The optimal histogram for R does not depend on the other relation."""
        a = zipf_frequencies(60, 5, 1.5)
        partners = [
            zipf_frequencies(90, 5, 0.0),
            zipf_frequencies(90, 5, 1.0),
            zipf_frequencies(90, 5, 3.0),
            np.array([1.0, 1.0, 1.0, 1.0, 26.0]),
        ]
        self_opt = v_opt_hist_exhaustive(a, 2)
        for b in partners:
            hb = Histogram.single_bucket(b)
            best = analytic_v_error_two_way(a, b, self_opt, hb)
            for ha in all_serial_histograms(a, 2):
                assert best <= analytic_v_error_two_way(a, b, ha, hb) + 1e-6

    def test_exact_enumeration_agrees(self):
        """Cross-check the analytic oracle against brute permutations."""
        a = zipf_frequencies(30, 4, 1.0)
        b = zipf_frequencies(40, 4, 2.0)
        ha = v_opt_hist_exhaustive(a, 2)
        hb = v_opt_hist_exhaustive(b, 2)
        assert analytic_v_error_two_way(a, b, ha, hb) == pytest.approx(
            exact_v_error_two_way(a, b, ha, hb)
        )


class TestTheorem41Complexity:
    """V-OptHist examines exactly C(M−1, β−1) serial partitions."""

    def test_partition_counts(self):
        from math import comb

        for m, beta in [(6, 2), (8, 3), (10, 4)]:
            assert len(list(enumerate_serial_partitions(m, beta))) == comb(m - 1, beta - 1)


class TestTheorem42Candidates:
    """V-OptBiasHist examines fewer candidates than frequencies (β ≤ M)."""

    def test_candidate_count_bounded(self):
        from repro.core.biased import all_end_biased_histograms

        freqs = zipf_frequencies(100, 20, 1.0)
        for beta in (2, 5, 10):
            candidates = list(all_end_biased_histograms(freqs, beta))
            assert len(candidates) == beta <= freqs.size
