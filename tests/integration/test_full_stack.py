"""Full-stack integration: SQL + tuning + persistence working together."""

import numpy as np
import pytest

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.persist import load_catalog, save_catalog
from repro.engine.tuning import tune_database
from repro.sql import Database


def build_database(rng):
    def zipf_column(total, domain, z):
        freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
        column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        rng.shuffle(column)
        return column

    db = Database()
    db.create(
        "orders",
        {"cust": zipf_column(800, 30, 1.5), "item": zipf_column(800, 20, 0.5)},
    )
    db.create("customers", {"cust": list(range(30))})
    return db


WORKLOAD = [
    "SELECT * FROM orders WHERE cust = 0",
    "SELECT COUNT(*) FROM orders WHERE item BETWEEN 3 AND 9",
    "SELECT * FROM orders o, customers c WHERE o.cust = c.cust",
    "SELECT cust, COUNT(*) FROM orders GROUP BY cust",
]


class TestTunedDatabase:
    def test_tuner_feeds_sql_estimates(self, rng):
        db = build_database(rng)
        recommendations = tune_database(
            [db.relation(name) for name in db.relation_names],
            db.catalog,
            tolerance=0.02,
        )
        assert len(recommendations) == 3  # orders.cust, orders.item, customers.cust
        for sql in WORKLOAD:
            truth = db.execute(sql).cardinality
            estimate = db.estimate(sql)
            assert estimate >= 0
            if "GROUP BY" in sql:
                assert estimate == pytest.approx(truth, rel=0.2)

    def test_tuned_equality_estimates_high_accuracy(self, rng):
        db = build_database(rng)
        tune_database(
            [db.relation(name) for name in db.relation_names],
            db.catalog,
            tolerance=0.01,
        )
        column = db.relation("orders").column("cust")
        hot = max(set(column), key=column.count)
        estimate = db.estimate(f"SELECT * FROM orders WHERE cust = {hot}")
        assert estimate == pytest.approx(column.count(hot), rel=0.05)


class TestPersistedCatalogInSql:
    def test_estimates_survive_round_trip(self, rng, tmp_path):
        db = build_database(rng)
        db.analyze(kind="end-biased", buckets=8)
        before = {sql: db.estimate(sql) for sql in WORKLOAD}

        path = tmp_path / "stats.json"
        save_catalog(db.catalog, path)

        # A fresh database with the same data but statistics loaded from disk.
        restored = build_database(np.random.default_rng(20260705))
        restored.catalog = load_catalog(path)
        after = {sql: restored.estimate(sql) for sql in WORKLOAD}
        for sql in WORKLOAD:
            assert after[sql] == pytest.approx(before[sql])

    def test_execution_unaffected_by_catalog_source(self, rng, tmp_path):
        db = build_database(rng)
        db.analyze()
        path = tmp_path / "stats.json"
        save_catalog(db.catalog, path)
        db.catalog = load_catalog(path)
        sql = "SELECT * FROM orders o, customers c WHERE o.cust = c.cust"
        assert db.execute(sql).cardinality == 800  # cust is a key in customers
