"""The distributed-tracing acceptance test: one trace, whole stack.

A traced SDK batch travels client → wire → server → executor, its
observed estimation error crosses the drift line, the maintenance agent
rebuilds the drifted histogram — and every one of those spans, recorded
from three different threads into one JSONL sink, assembles into a
single trace: ``net.client.batch``, ``net.batch``, ``net.stream``,
``serve.batch``, and the later ``agent.job`` rebuild, verified both via
the assembler API and through the ``repro obs trace tree`` CLI.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.engine.catalog import StatsCatalog
from repro.maint.agent import AgentContext, DriftPolicy, MaintenanceAgent
from repro.maint.queue import DurableJobQueue
from repro.net import EstimationClient, serve_in_thread
from repro.obs import runtime, tracing
from repro.obs.accuracy import AccuracyMonitor
from repro.obs.export import JsonlSpanSink, assemble_traces, read_spans
from repro.obs.tracing import clear_span_sinks
from repro.serve import EqualityProbe, EstimationService

from tests.maint.test_agent import FakeClock, fresh_source, put_entry


@pytest.fixture(autouse=True)
def fresh_obs():
    runtime.reset()
    clear_span_sinks()
    yield
    runtime.reset()
    clear_span_sinks()


def test_one_trace_spans_request_serving_and_maintenance(tmp_path, capsys):
    catalog = StatsCatalog()
    put_entry(catalog, "R", "a")  # stale: claims 5 rows per value
    service = EstimationService(catalog)
    monitor = AccuracyMonitor()
    queue = DurableJobQueue(
        tmp_path / "queue.jsonl", lease_duration=30.0, clock=FakeClock(), rng=5
    )
    sink = JsonlSpanSink(tmp_path / "spans.jsonl", flush_every=1)
    tracing.add_span_sink(sink)

    # --- The traced request: an application unit of work that submits a
    # batch over the wire and feeds the observed actuals back.
    probe = EqualityProbe("R", "a", 0)
    with serve_in_thread(service) as handle:
        with tracing.span("probe.batch") as unit:
            trace_id = unit.trace_id
            with EstimationClient(*handle.address) as client:
                estimates = client.estimate_batch([probe] * 10)
            for estimate in estimates:
                # The rescan truth: every value now occurs 50 times.
                monitor.record_observation(probe, float(estimate), 50.0)
    assert estimates == pytest.approx([5.0] * 10)

    # --- The maintenance turn: drift audit finds R.a out of tolerance
    # and the rebuild job re-joins the originating trace.
    context = AgentContext(
        queue=queue,
        catalog=catalog,
        service=service,
        source=fresh_source,
        monitor=monitor,
        drift=DriftPolicy(max_relative_error=0.5, min_observations=5),
    )
    queue.enqueue("drift-audit")
    assert MaintenanceAgent(context).drain() == 2  # audit + rebuild
    rebuild = next(j for j in queue.jobs() if j["kind"] == "rebuild")
    assert rebuild["trace_id"] == trace_id
    sink.close()

    # --- Assembly: the whole story is ONE trace in the sink.
    records, dropped = read_spans(sink.path)
    assert dropped == 0
    traces = {t.trace_id: t for t in assemble_traces(records)}
    story = traces[trace_id]
    names = {node.record.name for root in story.roots for node in _walk(root)}
    assert {
        "probe.batch",
        "net.client.batch",
        "net.batch",
        "net.stream",
        "serve.batch",
        "agent.job",
    } <= names
    # The causal chain holds inside the tree: serve.batch descends from
    # net.batch, which descends from the client span.
    by_name = {n.record.name: n for r in story.roots for n in _walk(r)}
    assert _ancestors(by_name["serve.batch"], records) >= {
        "net.batch",
        "net.client.batch",
        "probe.batch",
    }
    agent_job = [
        n for r in story.roots for n in _walk(r) if n.record.name == "agent.job"
    ]
    assert all(n.record.trace_id == trace_id for n in agent_job)

    # --- And the operator's view agrees: `repro obs trace tree`.
    assert main(["obs", "trace", "tree", str(sink.path)]) == 0
    out = capsys.readouterr().out
    assert f"trace {trace_id}:" in out
    for name in ("net.client.batch", "net.batch", "serve.batch", "agent.job"):
        assert name in out


def _walk(node):
    yield node
    for child in node.children:
        yield from _walk(child)


def _ancestors(node, records):
    """Span names on the parent chain above *node* (via parent_id links)."""
    by_id = {r.span_id: r for r in records}
    names = set()
    cursor = by_id.get(node.record.parent_id)
    while cursor is not None:
        names.add(cursor.name)
        cursor = by_id.get(cursor.parent_id)
    return names
