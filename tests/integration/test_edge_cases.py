"""Edge-case and failure-injection tests across module boundaries."""

import numpy as np
import pytest

from repro.core.biased import v_opt_bias_hist
from repro.core.heuristic import equi_depth_histogram, trivial_histogram
from repro.core.frequency import AttributeDistribution, FrequencySet
from repro.core.serial import v_opt_hist_dp, v_opt_hist_exhaustive
from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.executor import ChainJoinSpec, chain_join_size, execute_chain_join
from repro.engine.relation import Relation


class TestZeroFrequencies:
    """Quantization of long Zipf tails produces genuine zero frequencies."""

    @pytest.fixture
    def with_zeros(self):
        freqs = quantize_to_integers(zipf_frequencies(50, 100, 2.0)).astype(float)
        assert (freqs == 0).any()  # precondition: tail hits zero
        return freqs

    def test_histograms_accept_zeros(self, with_zeros):
        for beta in (1, 3, 10):
            hist = v_opt_bias_hist(with_zeros, beta)
            assert hist.self_join_error() >= -1e-9

    def test_serial_dp_with_zeros(self, with_zeros):
        hist = v_opt_hist_dp(with_zeros, 5)
        assert hist.approximate_frequencies().sum() == pytest.approx(with_zeros.sum())

    def test_zero_block_is_exact(self, with_zeros):
        """Enough buckets isolate the zero tail into a zero-variance bucket."""
        hist = v_opt_hist_dp(with_zeros, 10)
        zero_buckets = [
            b for b in hist.buckets if b.max_frequency == 0.0
        ]
        for bucket in zero_buckets:
            assert bucket.sse == 0.0

    def test_all_zero_multiset(self):
        hist = trivial_histogram(np.zeros(5))
        assert hist.self_join_estimate() == 0.0
        assert hist.self_join_error() == 0.0

    def test_equi_depth_on_zero_mass(self):
        dist = AttributeDistribution(range(4), np.zeros(4))
        hist = equi_depth_histogram(dist, 2)
        assert hist.bucket_count == 2


class TestDegenerateDomains:
    def test_single_value_relation(self):
        relation = Relation.from_columns("R", {"a": [7] * 10})
        catalog = StatsCatalog()
        entry = analyze_relation(relation, "a", catalog, kind="end-biased", buckets=5)
        assert entry.distinct_count == 1
        assert entry.estimate_frequency(7) == 10.0

    def test_single_tuple_relation(self):
        relation = Relation.from_columns("R", {"a": [1]})
        catalog = StatsCatalog()
        entry = analyze_relation(relation, "a", catalog, kind="serial", buckets=3)
        assert entry.histogram.bucket_count == 1

    def test_m_equals_one_histograms(self):
        for builder in (lambda f: v_opt_bias_hist(f, 1), lambda f: v_opt_hist_exhaustive(f, 1)):
            hist = builder([5.0])
            assert hist.self_join_error() == 0.0

    def test_all_equal_frequencies(self):
        freqs = np.full(20, 3.0)
        for beta in (1, 5, 20):
            assert v_opt_hist_dp(freqs, beta).self_join_error() == pytest.approx(0.0)


class TestEmptyAndDisjointJoins:
    def test_chain_through_empty_intersection(self):
        r0 = Relation.from_columns("R0", {"a": [1, 2, 3]})
        r1 = Relation.from_columns("R1", {"a": [4, 5], "b": [1, 1]})
        r2 = Relation.from_columns("R2", {"b": [1, 2]})
        spec = ChainJoinSpec((r0, r1, r2), (("a", "a"), ("b", "b")))
        assert chain_join_size(spec) == 0
        assert execute_chain_join(spec).cardinality == 0

    def test_estimates_on_disjoint_domains(self):
        left = Relation.from_columns("L", {"k": [1, 2, 3]})
        right = Relation.from_columns("R", {"k": [10, 11]})
        catalog = StatsCatalog()
        analyze_relation(left, "k", catalog, kind="serial", buckets=3)
        analyze_relation(right, "k", catalog, kind="serial", buckets=2)
        from repro.optimizer.cardinality import CardinalityEstimator

        estimate = CardinalityEstimator(catalog).join_cardinality("L", "k", "R", "k")
        assert estimate == 0.0


class TestStaleStatistics:
    def test_catalog_does_not_track_mutations(self):
        """Statistics are snapshots: mutating the relation leaves them stale
        (the Section 2.3 hazard the maint package addresses)."""
        relation = Relation.from_columns("R", {"a": [1, 1, 2]})
        catalog = StatsCatalog()
        entry = analyze_relation(relation, "a", catalog, kind="end-biased", buckets=2)
        before = entry.estimate_frequency(1)
        for _ in range(10):
            relation.insert((1,))
        assert catalog.require("R", "a").estimate_frequency(1) == before
        refreshed = analyze_relation(relation, "a", catalog, kind="end-biased", buckets=2)
        assert refreshed.estimate_frequency(1) == before + 10
        assert refreshed.version == 2


class TestFrequencySetExtremes:
    def test_huge_dynamic_range(self):
        freqs = np.array([1e12, 1.0, 1e-6])
        hist = v_opt_hist_exhaustive(freqs, 2)
        # The giant value must sit alone.
        singles = [b for b in hist.buckets if b.count == 1]
        assert any(b.max_frequency == 1e12 for b in singles)

    def test_frequency_set_of_identical_values(self):
        fset = FrequencySet([4.0] * 8)
        assert fset.variance == 0.0
        assert v_opt_bias_hist(fset.frequencies, 3).self_join_error() == 0.0

    def test_large_m_small_beta(self):
        freqs = zipf_frequencies(10_000, 5_000, 1.0)
        hist = v_opt_bias_hist(freqs, 3)
        assert hist.bucket_count == 3
        assert hist.self_join_estimate() <= float(np.dot(freqs, freqs)) + 1e-6
