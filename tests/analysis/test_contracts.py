"""Tests for the runtime invariant contracts (repro.analysis.contracts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.contracts import (
    CONTRACTS_ENV,
    ContractViolation,
    check_bucket,
    check_estimate,
    check_histogram,
    check_non_negative_error,
    contracts_enabled,
    maybe_check_bucket,
    postcondition,
    require,
    returns_estimate,
)
from repro.core.biased import v_opt_bias_hist
from repro.core.buckets import Bucket
from repro.core.histogram import Histogram
from repro.core.serial import v_optimal_serial_histogram


@pytest.fixture
def contracts_on(monkeypatch):
    monkeypatch.setenv(CONTRACTS_ENV, "1")


@pytest.fixture
def contracts_off(monkeypatch):
    monkeypatch.delenv(CONTRACTS_ENV, raising=False)


class TestSwitch:
    def test_off_by_default(self, contracts_off):
        assert contracts_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_spellings(self, monkeypatch, value):
        monkeypatch.setenv(CONTRACTS_ENV, value)
        assert contracts_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "", "off"])
    def test_falsy_spellings(self, monkeypatch, value):
        monkeypatch.setenv(CONTRACTS_ENV, value)
        assert contracts_enabled() is False


class TestScalarContracts:
    def test_require_passes_and_fails(self):
        require(True, "never raised")
        with pytest.raises(ContractViolation, match="broke"):
            require(False, "broke")

    def test_check_estimate_passes_through(self):
        assert check_estimate(3.5, "e") == 3.5
        assert check_estimate(0, "e") == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_check_estimate_rejects(self, bad):
        with pytest.raises(ContractViolation, match="e:"):
            check_estimate(bad, "e")

    def test_error_tolerates_float_dust(self):
        assert check_non_negative_error(-1e-12, scale=1.0, label="x") == -1e-12

    def test_error_rejects_genuine_negativity(self):
        with pytest.raises(ContractViolation, match="Proposition 3.1"):
            check_non_negative_error(-0.5, scale=1.0, label="x")

    def test_error_tolerance_scales(self):
        # An error of -1e-7 is dust against a self-join size of 1e3 sums... no:
        # tolerance is REL_TOL * scale = 1e-9 * 1e3 = 1e-6, so -1e-7 passes.
        assert check_non_negative_error(-1e-7, scale=1e3, label="x") == -1e-7


class TestStructuralContracts:
    def test_real_bucket_passes(self):
        check_bucket(Bucket([3.0, 5.0, 7.0]))

    def test_inconsistent_total_caught(self):
        class FakeBucket:
            frequencies = (2.0, 2.0)
            total = 5.0  # should be 4.0
            count = 2
            variance = 0.0
            sse = 0.0

        with pytest.raises(ContractViolation, match="T_i"):
            check_bucket(FakeBucket())

    def test_real_histograms_pass(self, zipf_small):
        check_histogram(v_optimal_serial_histogram(zipf_small, 3))
        check_histogram(v_opt_bias_hist(zipf_small, 3))
        check_histogram(Histogram.single_bucket(zipf_small))

    def test_mislabelled_serial_caught(self):
        # Buckets {9, 1} and {7, 4} interleave; labelling the histogram
        # "serial" violates Definition 2.1.
        histogram = Histogram([9.0, 7.0, 4.0, 1.0], [(0, 3), (1, 2)], kind="custom")
        histogram.kind = "serial"
        with pytest.raises(ContractViolation, match="Definition 2.1"):
            check_histogram(histogram)

    def test_mislabelled_end_biased_caught(self):
        # Serial but with two multivalued buckets: not even biased, so the
        # end-biased label is a lie (a serial *biased* histogram is always
        # end-biased, so violating 2.2 alone needs two multivalued buckets).
        histogram = Histogram([9.0, 8.0, 2.0, 1.0], [(0, 1), (2, 3)], kind="custom")
        histogram.kind = "end-biased"
        assert not histogram.is_end_biased()
        with pytest.raises(ContractViolation, match="Definition 2.2"):
            check_histogram(histogram)

    def test_mislabelled_trivial_caught(self):
        histogram = Histogram([2.0, 1.0], [(0,), (1,)], kind="custom")
        histogram.kind = "trivial"
        with pytest.raises(ContractViolation, match="one bucket"):
            check_histogram(histogram)


class TestEnvGatedHooks:
    def test_hook_inert_when_disabled(self, contracts_off):
        class Broken:
            frequencies = (1.0,)
            total = 99.0
            count = 1
            variance = 0.0
            sse = 0.0

        maybe_check_bucket(Broken())  # no exception: checks are off

    def test_hook_active_when_enabled(self, contracts_on):
        class Broken:
            frequencies = (1.0,)
            total = 99.0
            count = 1
            variance = 0.0
            sse = 0.0

        with pytest.raises(ContractViolation):
            maybe_check_bucket(Broken())

    def test_histogram_constructor_checked(self, contracts_on, zipf_small):
        # Construction through the public builders must satisfy its own
        # contracts with checking on.
        v_optimal_serial_histogram(zipf_small, 4)
        v_opt_bias_hist(zipf_small, 4)


class TestDecorators:
    def test_returns_estimate_checks_result(self, contracts_on):
        @returns_estimate
        def bad_estimator() -> float:
            return -2.0

        with pytest.raises(ContractViolation, match="bad_estimator"):
            bad_estimator()

    def test_returns_estimate_inert_when_off(self, contracts_off):
        @returns_estimate
        def bad_estimator() -> float:
            return -2.0

        assert bad_estimator() == -2.0

    def test_returns_estimate_preserves_metadata(self):
        @returns_estimate
        def named() -> float:
            """Doc."""
            return 1.0

        assert named.__name__ == "named"
        assert named.__doc__ == "Doc."

    def test_postcondition(self, contracts_on):
        @postcondition(lambda result: require(result % 2 == 0, "result must be even"))
        def doubler(x: int) -> int:
            return 2 * x + 1

        with pytest.raises(ContractViolation, match="even"):
            doubler(1)


class TestOperatorContracts:
    def test_hash_join_cross_checked_against_theorem_2_1(self, contracts_on):
        from repro.engine.operators import hash_join
        from repro.engine.relation import Relation
        from repro.engine.schema import Attribute, Schema

        schema = Schema([Attribute("k")])
        left = Relation("l", schema, [(1,), (1,), (2,)])
        right = Relation("r", schema, [(1,), (2,), (2,)])
        result = hash_join(left, right, "k", "k")
        assert result.cardinality == 2 + 2  # 1 matches twice, 2 matches twice

    def test_estimators_pass_under_contracts(self, contracts_on, zipf_small):
        from repro.core.estimator import estimate_self_join

        histogram = v_optimal_serial_histogram(zipf_small, 3)
        assert estimate_self_join(histogram) >= 0.0
