"""Tests for the SARIF 2.1.0 emitter and its structural validator."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.diagnostics import Severity, Violation
from repro.analysis.rules import ALL_RULES
from repro.analysis.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    TOOL_NAME,
    SarifValidationError,
    to_sarif,
    to_sarif_json,
    validate_sarif,
)
from repro.cli import main


def _violation(**overrides) -> Violation:
    base = dict(
        path="src/repro/core/serial.py",
        line=12,
        col=4,
        rule="R001",
        message="unseeded RNG",
        severity=Severity.ERROR,
    )
    base.update(overrides)
    return Violation(**base)


class TestEmitter:
    def test_document_skeleton(self):
        doc = to_sarif([_violation()])
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == SARIF_VERSION
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == [rule.code for rule in ALL_RULES]
        assert "R009" in rule_ids and "R010" in rule_ids

    def test_result_fields_and_one_based_region(self):
        doc = to_sarif([_violation(line=12, col=4)])
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "R001"
        assert result["level"] == "error"
        assert result["message"]["text"] == "unseeded RNG"
        region = result["locations"][0]["physicalLocation"]["region"]
        # Violations carry 0-based columns; SARIF regions are 1-based.
        assert region["startLine"] == 12
        assert region["startColumn"] == 5

    def test_warning_level_mapping(self):
        doc = to_sarif([_violation(rule="R005", severity=Severity.WARNING)])
        assert doc["runs"][0]["results"][0]["level"] == "warning"

    def test_rule_index_points_into_driver_rules(self):
        doc = to_sarif([_violation(rule="R010")])
        run = doc["runs"][0]
        result = run["results"][0]
        indexed = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert indexed["id"] == "R010"

    def test_uris_are_relative_posix(self, tmp_path):
        absolute = tmp_path / "pkg" / "mod.py"
        doc = to_sarif([_violation(path=str(absolute))], base_dir=tmp_path)
        uri = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"]
        assert uri == "pkg/mod.py"

    def test_json_round_trip_validates(self):
        text = to_sarif_json([_violation(), _violation(rule="R009", line=30)])
        validate_sarif(json.loads(text))

    def test_empty_run_validates(self):
        doc = to_sarif([])
        validate_sarif(doc)
        assert doc["runs"][0]["results"] == []


class TestValidator:
    def _valid(self) -> dict:
        return to_sarif([_violation()])

    def test_rejects_wrong_version(self):
        doc = self._valid()
        doc["version"] = "2.0.0"
        with pytest.raises(SarifValidationError):
            validate_sarif(doc)

    def test_rejects_missing_message_text(self):
        doc = self._valid()
        del doc["runs"][0]["results"][0]["message"]["text"]
        with pytest.raises(SarifValidationError):
            validate_sarif(doc)

    def test_rejects_inconsistent_rule_index(self):
        doc = self._valid()
        doc["runs"][0]["results"][0]["ruleIndex"] = 3  # points at R004
        with pytest.raises(SarifValidationError):
            validate_sarif(doc)

    def test_rejects_absolute_uri(self):
        doc = self._valid()
        location = doc["runs"][0]["results"][0]["locations"][0]
        location["physicalLocation"]["artifactLocation"]["uri"] = "/abs/mod.py"
        with pytest.raises(SarifValidationError):
            validate_sarif(doc)

    def test_rejects_zero_based_region(self):
        doc = self._valid()
        region = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "region"
        ]
        region["startColumn"] = 0
        with pytest.raises(SarifValidationError):
            validate_sarif(doc)

    def test_rejects_non_document(self):
        with pytest.raises(SarifValidationError):
            validate_sarif(["not", "a", "sarif", "log"])


class TestCli:
    def test_lint_format_sarif_emits_valid_document(
        self, tmp_path, capsys, monkeypatch
    ):
        # Run from the directory being linted, as CI does from the repo
        # root: artifact URIs then come out repository-relative.
        planted = tmp_path / "planted.py"
        planted.write_text(
            "# repolint: hot-path\n"
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--format", "sarif", "planted.py"]) == 1
        doc = json.loads(capsys.readouterr().out)
        validate_sarif(doc)
        results = doc["runs"][0]["results"]
        assert "R001" in {r["ruleId"] for r in results}
        uris = {
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in results
        }
        assert uris == {"planted.py"}

    def test_clean_tree_emits_empty_results(self, tmp_path, capsys, monkeypatch):
        clean = tmp_path / "clean.py"
        clean.write_text("from __future__ import annotations\nx = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--format", "sarif", "clean.py"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_sarif(doc)
        assert doc["runs"][0]["results"] == []
