"""Fixture tests proving each repolint rule fires — and stays quiet — correctly.

Every fixture is an in-memory module run through :func:`lint_source`; file
classification (hot-path, boundary, …) is forced with ``# repolint:``
directives so the fixtures are independent of on-disk layout.
"""

from __future__ import annotations

from repro.analysis.linter import LintConfig, lint_source

FUTURE = "from __future__ import annotations\n"


def codes(source: str, path: str = "fixture.py", select: str | None = None) -> list[str]:
    config = LintConfig(select=frozenset(select.split(",")) if select else None)
    return [v.rule for v in lint_source(source, path, config)]


class TestR001RngDiscipline:
    def test_flags_stdlib_random_import(self):
        src = FUTURE + "import random\n"
        assert "R001" in codes(src)

    def test_flags_default_rng_call(self):
        src = FUTURE + "import numpy as np\nrng = np.random.default_rng()\n"
        assert "R001" in codes(src)

    def test_flags_legacy_global_state(self):
        src = FUTURE + "import numpy as np\nx = np.random.rand(3)\n"
        assert "R001" in codes(src)

    def test_allows_generator_type_references(self):
        src = FUTURE + (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> float:\n"
            "    return rng.random()\n"
        )
        assert "R001" not in codes(src)

    def test_rng_module_is_exempt(self):
        src = FUTURE + "# repolint: rng-module\nimport numpy as np\nr = np.random.default_rng(7)\n"
        assert "R001" not in codes(src)

    def test_line_suppression(self):
        src = FUTURE + (
            "import numpy as np\n"
            "r = np.random.default_rng(7)  # repolint: disable=R001\n"
        )
        assert "R001" not in codes(src)


class TestR002BoundaryValidation:
    BOUNDARY = FUTURE + "# repolint: boundary\n"

    def test_flags_unvalidated_public_function(self):
        src = self.BOUNDARY + "def estimate(x):\n    return x * 2\n"
        assert "R002" in codes(src, select="R002")

    def test_raise_counts_as_validation(self):
        src = self.BOUNDARY + (
            "def estimate(x):\n"
            "    if x < 0:\n"
            "        raise ValueError('x must be non-negative')\n"
            "    return x * 2\n"
        )
        assert codes(src, select="R002") == []

    def test_validator_call_counts(self):
        src = self.BOUNDARY + (
            "from repro.util.validation import ensure_positive\n"
            "def estimate(x):\n"
            "    x = ensure_positive(x, 'x')\n"
            "    return x * 2\n"
        )
        assert codes(src, select="R002") == []

    def test_contract_decorator_counts(self):
        src = self.BOUNDARY + (
            "from repro.analysis.contracts import returns_estimate\n"
            "@returns_estimate\n"
            "def estimate(x):\n"
            "    return x * 2\n"
        )
        assert codes(src, select="R002") == []

    def test_boundary_exempt_marker(self):
        src = self.BOUNDARY + (
            "def estimate(x):  # repolint: boundary-exempt\n"
            "    return x * 2\n"
        )
        assert codes(src, select="R002") == []

    def test_private_and_zero_arg_functions_ignored(self):
        src = self.BOUNDARY + (
            "def _helper(x):\n    return x\n"
            "def constant():\n    return 42\n"
        )
        assert codes(src, select="R002") == []

    def test_non_boundary_file_ignored(self):
        src = FUTURE + "def estimate(x):\n    return x * 2\n"
        assert codes(src, select="R002") == []


class TestR003ExplicitDtype:
    HOT = FUTURE + "# repolint: hot-path\nimport numpy as np\n"

    def test_flags_dtype_free_zeros(self):
        src = self.HOT + "acc = np.zeros(10)\n"
        assert "R003" in codes(src, select="R003")

    def test_flags_dtype_free_prod(self):
        src = self.HOT + "size = np.prod([2, 3])\n"
        assert "R003" in codes(src, select="R003")

    def test_explicit_dtype_passes(self):
        src = self.HOT + "acc = np.zeros(10, dtype=np.float64)\n"
        assert codes(src, select="R003") == []

    def test_cold_path_ignored(self):
        src = FUTURE + "import numpy as np\nacc = np.zeros(10)\n"
        assert codes(src, select="R003") == []


class TestR004NoCallerMutation:
    def test_flags_subscript_write_to_parameter(self):
        src = FUTURE + "def f(arr):\n    arr[0] = 1.0\n    return arr\n"
        assert "R004" in codes(src, select="R004")

    def test_flags_in_place_sort(self):
        src = FUTURE + "def f(arr):\n    arr.sort()\n    return arr\n"
        assert "R004" in codes(src, select="R004")

    def test_rebound_parameter_is_owned(self):
        src = FUTURE + (
            "import numpy as np\n"
            "def f(arr):\n"
            "    arr = np.array(arr, dtype=np.float64)\n"
            "    arr[0] = 1.0\n"
            "    return arr\n"
        )
        assert codes(src, select="R004") == []

    def test_subscript_rebind_does_not_transfer_ownership(self):
        # `arr[i] = x` must not count as rebinding `arr` itself.
        src = FUTURE + (
            "def f(arr):\n"
            "    arr[0] = 1.0\n"
            "    arr[1] = 2.0\n"
            "    return arr\n"
        )
        assert codes(src, select="R004").count("R004") == 2

    def test_local_arrays_freely_mutable(self):
        src = FUTURE + (
            "import numpy as np\n"
            "def f(n: int):\n"
            "    out = np.zeros(n, dtype=np.float64)\n"
            "    out[0] = 1.0\n"
            "    out.sort()\n"
            "    return out\n"
        )
        assert codes(src, select="R004") == []


class TestR005Annotations:
    def test_flags_missing_future_import(self):
        assert "R005" in codes("x = 1\n", select="R005")

    def test_future_import_satisfies_plain_module(self):
        assert codes(FUTURE + "x = 1\n", select="R005") == []

    def test_public_api_requires_return_annotation(self):
        src = FUTURE + "# repolint: public-api\ndef f(x: int):\n    return x\n"
        assert "R005" in codes(src, select="R005")

    def test_public_api_requires_parameter_annotations(self):
        src = FUTURE + "# repolint: public-api\ndef f(x) -> int:\n    return x\n"
        assert "R005" in codes(src, select="R005")

    def test_fully_annotated_public_api_passes(self):
        src = FUTURE + "# repolint: public-api\ndef f(x: int) -> int:\n    return x\n"
        assert codes(src, select="R005") == []

    def test_private_functions_unconstrained(self):
        src = FUTURE + "# repolint: public-api\ndef _f(x):\n    return x\n"
        assert codes(src, select="R005") == []


class TestR006NoBareScanCardinality:
    def test_flags_method_call(self):
        src = FUTURE + "def f(service) -> float:\n    return service.scan_cardinality('R')\n"
        assert "R006" in codes(src, select="R006")

    def test_flags_bare_name_call(self):
        src = FUTURE + "def f(scan_cardinality) -> float:\n    return scan_cardinality('R')\n"
        assert "R006" in codes(src, select="R006")

    def test_service_module_is_exempt(self):
        src = FUTURE + "x = catalog.scan_cardinality('R')\n"
        assert codes(src, path="src/repro/serve/service.py", select="R006") == []

    def test_relation_rows_is_fine(self):
        src = FUTURE + "def f(catalog) -> float:\n    return catalog.relation_rows('R')\n"
        assert codes(src, select="R006") == []

    def test_line_suppression(self):
        src = FUTURE + (
            "def f(service) -> float:\n"
            "    return service.scan_cardinality('R')  # repolint: disable=R006\n"
        )
        assert codes(src, select="R006") == []


class TestR007AtomicCatalogWrite:
    SCOPE = "src/repro/engine/persist_helper.py"

    def test_flags_write_mode_open(self):
        src = FUTURE + "h = open('catalog.json', 'w')\n"
        assert "R007" in codes(src, path=self.SCOPE, select="R007")

    def test_flags_append_mode_keyword(self):
        src = FUTURE + "h = open('wal.jsonl', mode='ab')\n"
        assert "R007" in codes(src, path=self.SCOPE, select="R007")

    def test_flags_dynamic_mode(self):
        src = FUTURE + "def f(m: str):\n    raise ValueError(m) if not m else open('x', m)\n"
        assert "R007" in codes(src, path=self.SCOPE, select="R007")

    def test_flags_write_text(self):
        src = FUTURE + "path.write_text('{}')\n"
        assert "R007" in codes(src, path=self.SCOPE, select="R007")

    def test_flags_write_bytes(self):
        src = FUTURE + "path.write_bytes(b'')\n"
        assert "R007" in codes(src, path=self.SCOPE, select="R007")

    def test_read_mode_open_is_fine(self):
        src = FUTURE + "h = open('catalog.json')\ng = open('x', 'rb')\n"
        assert codes(src, path=self.SCOPE, select="R007") == []

    def test_atomic_helper_home_is_exempt(self):
        src = FUTURE + "h = open('catalog.json', 'w')\n"
        assert codes(src, path="src/repro/engine/durable.py", select="R007") == []

    def test_out_of_scope_paths_unconstrained(self):
        src = FUTURE + "h = open('notes.txt', 'w')\n"
        assert codes(src, path="benchmarks/bench_persist.py", select="R007") == []
        assert codes(src, path="src/repro/cli.py", select="R007") == []

    def test_line_suppression(self):
        src = FUTURE + (
            "h = open('wal.jsonl', 'ab')  # repolint: disable=R007\n"
        )
        assert codes(src, path=self.SCOPE, select="R007") == []


class TestR008MonotonicInstrumentation:
    CLOCK_SCOPE = "src/repro/obs/tracing_helper.py"
    HOT_SCOPE = "src/repro/serve/service_helper.py"

    def test_flags_time_time_call(self):
        src = FUTURE + "import time\nstart = time.time()\n"
        assert "R008" in codes(src, path=self.CLOCK_SCOPE, select="R008")

    def test_flags_from_time_import_time(self):
        src = FUTURE + "from time import time\n"
        assert "R008" in codes(src, path=self.CLOCK_SCOPE, select="R008")

    def test_perf_counter_is_fine(self):
        src = FUTURE + "import time\nstart = time.perf_counter()\nmono = time.monotonic()\n"
        assert codes(src, path=self.CLOCK_SCOPE, select="R008") == []

    def test_flags_obs_helper_inside_loop_on_hot_path(self):
        src = FUTURE + (
            "from repro.obs import runtime as obs\n"
            "def f(values) -> None:\n"
            "    for value in values:\n"
            "        obs.count('repro_values_total')\n"
        )
        assert "R008" in codes(src, path=self.HOT_SCOPE, select="R008")

    def test_flags_instrument_method_inside_while_loop(self):
        src = FUTURE + (
            "def f(histogram, values) -> None:\n"
            "    while values:\n"
            "        histogram.observe(values.pop())\n"
        )
        assert "R008" in codes(src, path=self.HOT_SCOPE, select="R008")

    def test_hoisted_count_after_loop_is_fine(self):
        src = FUTURE + (
            "from repro.obs import runtime as obs\n"
            "def f(values) -> None:\n"
            "    total = 0\n"
            "    for value in values:\n"
            "        total += 1\n"
            "    obs.count('repro_values_total', amount=total)\n"
        )
        assert codes(src, path=self.HOT_SCOPE, select="R008") == []

    def test_loop_rule_does_not_apply_outside_hot_paths(self):
        src = FUTURE + (
            "from repro.obs import runtime as obs\n"
            "def f(values) -> None:\n"
            "    for value in values:\n"
            "        obs.count('repro_values_total')\n"
        )
        assert codes(src, path="src/repro/obs/accuracy_helper.py", select="R008") == []

    def test_out_of_scope_paths_unconstrained(self):
        src = FUTURE + "import time\nstart = time.time()\n"
        assert codes(src, path="benchmarks/bench_obs.py", select="R008") == []
        assert codes(src, path="src/repro/data/zipf.py", select="R008") == []

    def test_line_suppression(self):
        src = FUTURE + (
            "import time\nstart = time.time()  # repolint: disable=R008\n"
        )
        assert codes(src, path=self.CLOCK_SCOPE, select="R008") == []


class TestDirectives:
    def test_skip_file_silences_everything(self):
        src = "# repolint: skip-file\nimport random\n"
        assert codes(src) == []

    def test_disable_star_silences_line(self):
        src = FUTURE + "import random  # repolint: disable=*\n"
        assert codes(src) == []
