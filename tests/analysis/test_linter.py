"""Tests for the linter driver: discovery, classification, reporting, exit codes.

Includes the tree-hygiene test: the shipped ``src``/``benchmarks`` trees must
lint clean under ``--strict``, which is what CI enforces.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.analysis.diagnostics import Severity, Violation, format_report
from repro.analysis.linter import (
    LintConfig,
    LintError,
    build_module,
    discover_changed_files,
    discover_files,
    exit_code,
    lint_paths,
    lint_source,
    parse_rule_selection,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestShippedTreeIsClean:
    def test_src_has_no_violations_at_all(self):
        violations = lint_paths([REPO_ROOT / "src"])
        assert violations == [], format_report(violations)

    def test_benchmarks_have_no_errors(self):
        violations = lint_paths([REPO_ROOT / "benchmarks"])
        errors = [v for v in violations if v.severity is Severity.ERROR]
        assert errors == [], format_report(errors)


class TestClassification:
    def test_path_based_hot_path(self):
        module = build_module("x = 1\n", "src/repro/core/serial.py")
        # core/ is numeric (hot-path) *and* part of the validated API surface.
        assert module.is_hot_path and module.is_boundary

    def test_path_based_boundary(self):
        module = build_module("x = 1\n", "src/repro/optimizer/cost.py")
        assert module.is_boundary and not module.is_hot_path

    def test_directive_overrides_path(self):
        module = build_module("# repolint: hot-path boundary\nx = 1\n", "scratch.py")
        assert module.is_hot_path and module.is_boundary

    def test_rng_module_by_suffix(self):
        module = build_module("x = 1\n", "src/repro/util/rng.py")
        assert module.is_rng_module


class TestDriver:
    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError, match="cannot parse"):
            lint_source("def broken(:\n", "bad.py")

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="no such file"):
            list(discover_files([Path("definitely/not/here")]))

    def test_discovery_skips_pycache(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "ok.cpython-311.py").write_text("x = 1\n")
        found = list(discover_files([tmp_path]))
        assert [p.name for p in found] == ["ok.py"]

    def test_violations_sorted_by_position(self, tmp_path):
        (tmp_path / "b.py").write_text("import random\n")
        (tmp_path / "a.py").write_text("import random\n")
        violations = lint_paths([tmp_path])
        paths = [v.path for v in violations if v.rule == "R001"]
        assert paths == sorted(paths)

    def test_rule_selection(self):
        # An unseeded RNG in a file missing the future import: selecting
        # R001 must hide the R005 warning and vice versa.
        src = "import numpy as np\nr = np.random.default_rng()\n"
        only_rng = lint_source(src, "x.py", LintConfig(select=frozenset({"R001"})))
        assert {v.rule for v in only_rng} == {"R001"}
        only_ann = lint_source(src, "x.py", LintConfig(select=frozenset({"R005"})))
        assert {v.rule for v in only_ann} == {"R005"}

    def test_parse_rule_selection_validates(self):
        assert parse_rule_selection("r001, R003") == frozenset({"R001", "R003"})
        assert parse_rule_selection(None) is None
        with pytest.raises(LintError, match="unknown rule code"):
            parse_rule_selection("R999")
        with pytest.raises(LintError, match="without any rule codes"):
            parse_rule_selection(" , ")


class TestExitCodeAndReport:
    def _violation(self, severity: Severity) -> Violation:
        return Violation(
            path="x.py", line=1, col=0, rule="R00X", message="m", severity=severity
        )

    def test_errors_always_fail(self):
        violations = [self._violation(Severity.ERROR)]
        assert exit_code(violations) == 1
        assert exit_code(violations, strict=True) == 1

    def test_warnings_fail_only_under_strict(self):
        violations = [self._violation(Severity.WARNING)]
        assert exit_code(violations) == 0
        assert exit_code(violations, strict=True) == 1

    def test_clean_is_zero(self):
        assert exit_code([]) == 0
        assert exit_code([], strict=True) == 0

    def test_report_summarises_counts(self):
        report = format_report(
            [self._violation(Severity.ERROR), self._violation(Severity.WARNING)]
        )
        assert "1 error(s), 1 warning(s)" in report
        assert "x.py:1:0:" in report

    def test_clean_report(self):
        assert "clean" in format_report([])


class TestParallelLint:
    @pytest.fixture
    def tree(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\n")
        (tmp_path / "b.py").write_text(
            "import numpy as np\nr = np.random.default_rng()\n"
        )
        (tmp_path / "c.py").write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._x = 0\n"
            "    def add(self):\n"
            "        with self._lock:\n"
            "            self._x += 1\n"
            "    def peek(self):\n"
            "        return self._x\n"
        )
        return tmp_path

    def test_jobs_match_serial_results(self, tree):
        serial = lint_paths([tree], jobs=1)
        parallel = lint_paths([tree], jobs=2)
        assert parallel == serial
        assert {v.rule for v in serial} >= {"R001", "R009"}

    def test_suppressions_survive_the_pool(self, tree):
        (tree / "c.py").write_text(
            (tree / "c.py").read_text().replace(
                "        return self._x",
                "        return self._x  # repolint: disable=R009",
            )
        )
        parallel = lint_paths([tree], jobs=2)
        assert "R009" not in {v.rule for v in parallel}


class TestChangedFiles:
    @pytest.fixture
    def repo(self, tmp_path, monkeypatch):
        def git(*argv):
            subprocess.run(
                ["git", "-c", "user.name=t", "-c", "user.email=t@example.com", *argv],
                cwd=tmp_path,
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        (tmp_path / "committed.py").write_text("x = 1\n")
        (tmp_path / "untouched.py").write_text("y = 2\n")
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        git("branch", "-m", "main")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_untracked_and_modified_files_are_found(self, repo):
        (repo / "fresh.py").write_text("import random\n")
        (repo / "committed.py").write_text("x = 2\n")
        changed = discover_changed_files()
        assert {p.name for p in changed} == {"fresh.py", "committed.py"}

    def test_clean_tree_yields_nothing(self, repo):
        assert discover_changed_files() == []

    def test_non_python_and_deleted_files_are_skipped(self, repo):
        (repo / "notes.txt").write_text("prose\n")
        (repo / "committed.py").unlink()
        assert discover_changed_files() == []

    def test_roots_filter(self, repo):
        (repo / "pkg").mkdir()
        (repo / "pkg" / "inside.py").write_text("a = 1\n")
        (repo / "outside.py").write_text("b = 2\n")
        changed = discover_changed_files(roots=[repo / "pkg"])
        assert {p.name for p in changed} == {"inside.py"}

    def test_branch_base_sees_committed_work(self, repo):
        def git(*argv):
            subprocess.run(
                ["git", "-c", "user.name=t", "-c", "user.email=t@example.com", *argv],
                cwd=repo,
                check=True,
                capture_output=True,
            )

        git("checkout", "-q", "-b", "feature")
        (repo / "committed.py").write_text("x = 3\n")
        git("add", ".")
        git("commit", "-q", "-m", "change")
        assert discover_changed_files() == []  # working tree is clean
        changed = discover_changed_files(base="main")
        assert {p.name for p in changed} == {"committed.py"}

    def test_missing_base_raises_lint_error(self, repo):
        with pytest.raises(LintError, match="git"):
            discover_changed_files(base="no-such-ref")
