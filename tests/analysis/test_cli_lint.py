"""Smoke tests for the ``repro lint`` CLI subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main

PLANTED = """\
# repolint: hot-path
import numpy as np

rng = np.random.default_rng()  # R001: unseeded, outside util/rng.py
acc = np.zeros(16)  # R003: dtype-free hot-path allocation
"""


class TestCleanTree:
    def test_default_invocation_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "repolint:" in out

    def test_strict_invocation_exits_zero(self, capsys):
        # The acceptance bar: the shipped tree is clean even counting warnings.
        assert main(["lint", "--strict"]) == 0
        assert "clean" in capsys.readouterr().out


class TestPlantedViolations:
    @pytest.fixture
    def planted(self, tmp_path):
        path = tmp_path / "planted.py"
        path.write_text(PLANTED)
        return path

    def test_exits_nonzero(self, planted):
        assert main(["lint", str(planted)]) == 1

    def test_diagnostics_point_at_the_lines(self, planted, capsys):
        main(["lint", str(planted)])
        out = capsys.readouterr().out
        assert f"{planted}:4:" in out and "R001" in out
        assert f"{planted}:5:" in out and "R003" in out

    def test_rule_selection_narrows(self, planted, capsys):
        assert main(["lint", "--rules", "R003", str(planted)]) == 1
        out = capsys.readouterr().out
        assert "R003" in out and "R001" not in out

    def test_fixed_file_passes(self, tmp_path, capsys):
        fixed = tmp_path / "fixed.py"
        fixed.write_text(
            "from __future__ import annotations\n"
            "# repolint: hot-path\n"
            "import numpy as np\n"
            "from repro.util.rng import derive_rng\n"
            "rng = derive_rng(7)\n"
            "acc = np.zeros(16, dtype=np.float64)\n"
        )
        assert main(["lint", "--strict", str(fixed)]) == 0


class TestErrorHandling:
    def test_unknown_rule_code_is_usage_error(self, capsys):
        assert main(["lint", "--rules", "R999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unparseable_file_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(bad)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert code in out
