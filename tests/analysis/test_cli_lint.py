"""Smoke tests for the ``repro lint`` CLI subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main

PLANTED = """\
# repolint: hot-path
import numpy as np

rng = np.random.default_rng()  # R001: unseeded, outside util/rng.py
acc = np.zeros(16)  # R003: dtype-free hot-path allocation
"""


class TestCleanTree:
    def test_default_invocation_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "repolint:" in out

    def test_strict_invocation_exits_zero(self, capsys):
        # The acceptance bar: the shipped tree is clean even counting warnings.
        assert main(["lint", "--strict"]) == 0
        assert "clean" in capsys.readouterr().out


class TestPlantedViolations:
    @pytest.fixture
    def planted(self, tmp_path):
        path = tmp_path / "planted.py"
        path.write_text(PLANTED)
        return path

    def test_exits_nonzero(self, planted):
        assert main(["lint", str(planted)]) == 1

    def test_diagnostics_point_at_the_lines(self, planted, capsys):
        main(["lint", str(planted)])
        out = capsys.readouterr().out
        assert f"{planted}:4:" in out and "R001" in out
        assert f"{planted}:5:" in out and "R003" in out

    def test_rule_selection_narrows(self, planted, capsys):
        assert main(["lint", "--rules", "R003", str(planted)]) == 1
        out = capsys.readouterr().out
        assert "R003" in out and "R001" not in out

    def test_fixed_file_passes(self, tmp_path, capsys):
        fixed = tmp_path / "fixed.py"
        fixed.write_text(
            "from __future__ import annotations\n"
            "# repolint: hot-path\n"
            "import numpy as np\n"
            "from repro.util.rng import derive_rng\n"
            "rng = derive_rng(7)\n"
            "acc = np.zeros(16, dtype=np.float64)\n"
        )
        assert main(["lint", "--strict", str(fixed)]) == 0


class TestErrorHandling:
    def test_unknown_rule_code_is_usage_error(self, capsys):
        assert main(["lint", "--rules", "R999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unparseable_file_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(bad)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert code in out


class TestJobsAndChanged:
    def test_jobs_flag_matches_serial_output(self, tmp_path, capsys):
        for name in ("a", "b", "c"):
            (tmp_path / f"{name}.py").write_text("import random\n")
        assert main(["lint", str(tmp_path)]) == 1
        serial = capsys.readouterr().out
        assert main(["lint", "--jobs", "2", str(tmp_path)]) == 1
        assert capsys.readouterr().out == serial

    def test_changed_lints_only_dirty_files(self, tmp_path, capsys, monkeypatch):
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", "-c", "user.name=t", "-c", "user.email=t@example.com", *argv],
                cwd=tmp_path,
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        (tmp_path / "clean.py").write_text("import random\n")  # committed R001
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        (tmp_path / "dirty.py").write_text("import random\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "dirty.py" in out and "clean.py" not in out

    def test_changed_with_nothing_dirty_is_clean(self, tmp_path, capsys, monkeypatch):
        import subprocess

        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        (tmp_path / "mod.py").write_text("x = 1\n")
        subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@example.com",
             "add", "."],
            cwd=tmp_path, check=True,
        )
        subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@example.com",
             "commit", "-q", "-m", "seed"],
            cwd=tmp_path, check=True,
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path), "--changed"]) == 0
        assert "no changed files" in capsys.readouterr().out
