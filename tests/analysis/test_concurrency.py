"""Tests for the concurrency-discipline pass: R009 guard inference and
R010 lock-order analysis, plus the :func:`analyze_source` summaries the
tree pass is built from.

The acceptance fixtures live here: a seeded unguarded shared write and a
seeded lock-order inversion, each of which the static pass must catch
(the runtime half is exercised in ``tests/testing/test_locksan.py``).
"""

from __future__ import annotations

import ast

from repro.analysis.concurrency import analyze_source, lock_order_violations
from repro.analysis.linter import LintConfig, lint_source

R009 = LintConfig(select=frozenset({"R009"}))
R010 = LintConfig(select=frozenset({"R010"}))

UNGUARDED = """\
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0

    def add(self, n):
        with self._lock:
            self._total += n

    def peek(self):
        return self._total

    def reset(self):
        self._total = 0
"""

INVERSION = """\
import threading


class Ledger:
    def __init__(self, peer: "Mirror"):
        self._lock = threading.Lock()
        self._peer = peer

    def forward(self):
        with self._lock:
            self._peer.locked()

    def locked(self):
        with self._lock:
            pass


class Mirror:
    def __init__(self, peer: "Ledger"):
        self._lock = threading.Lock()
        self._peer = peer

    def forward(self):
        with self._lock:
            self._peer.locked()

    def locked(self):
        with self._lock:
            pass
"""


class TestGuardInference:
    def test_seeded_unguarded_read_and_write_are_caught(self):
        violations = lint_source(UNGUARDED, "fixture.py", R009)
        assert [v.rule for v in violations] == ["R009", "R009"]
        lines = {v.line for v in violations}
        assert lines == {14, 17}  # peek's read and reset's write
        assert all("_total" in v.message for v in violations)

    def test_fully_guarded_class_is_clean(self):
        src = UNGUARDED.replace(
            "    def peek(self):\n        return self._total\n",
            "    def peek(self):\n        with self._lock:\n            return self._total\n",
        ).replace(
            "    def reset(self):\n        self._total = 0\n",
            "    def reset(self):\n        with self._lock:\n            self._total = 0\n",
        )
        assert lint_source(src, "fixture.py", R009) == []

    def test_constructor_writes_do_not_need_the_lock(self):
        # __init__ writes _total bare in every fixture above; only the
        # post-construction accesses produce findings.
        violations = lint_source(UNGUARDED, "fixture.py", R009)
        assert all(v.line > 7 for v in violations)

    def test_no_guard_without_a_locked_write(self):
        src = (
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self._x = 0\n"
            "    def bump(self):\n"
            "        self._x += 1\n"
            "    def peek(self):\n"
            "        return self._x\n"
        )
        assert lint_source(src, "fixture.py", R009) == []

    def test_private_method_inherits_callers_lock(self):
        src = (
            "import threading\n"
            "class Catalog:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = {}\n"
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._items[k] = v\n"
            "    def drop(self, k):\n"
            "        with self._lock:\n"
            "            self._discard(k)\n"
            "    def _discard(self, k):\n"
            "        self._items.pop(k, None)\n"
        )
        assert lint_source(src, "fixture.py", R009) == []

    def test_public_method_inherits_nothing(self):
        # Same shape, but the helper is public: any caller may enter it
        # bare, so its mutating access is a violation.
        src = (
            "import threading\n"
            "class Catalog:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = {}\n"
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._items[k] = v\n"
            "    def drop(self, k):\n"
            "        with self._lock:\n"
            "            self.discard(k)\n"
            "    def discard(self, k):\n"
            "        self._items.pop(k, None)\n"
        )
        violations = lint_source(src, "fixture.py", R009)
        assert [v.line for v in violations] == [13]

    def test_mutating_method_call_counts_as_write(self):
        src = (
            "import threading\n"
            "class Journal:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._entries = []\n"
            "    def append(self, e):\n"
            "        with self._lock:\n"
            "            self._entries.append(e)\n"
            "    def drain(self):\n"
            "        self._entries.clear()\n"
        )
        violations = lint_source(src, "fixture.py", R009)
        assert [v.line for v in violations] == [10]
        assert "written" in violations[0].message

    def test_line_suppression(self):
        src = UNGUARDED.replace(
            "        return self._total",
            "        return self._total  # repolint: disable=R009",
        )
        violations = lint_source(src, "fixture.py", R009)
        assert [v.line for v in violations] == [17]  # only reset's write left


class TestLockOrder:
    def test_seeded_inversion_is_caught_at_both_edges(self):
        violations = lint_source(INVERSION, "fixture.py", R010)
        assert {v.rule for v in violations} == {"R010"}
        assert len(violations) == 2
        assert all("order" in v.message.lower() for v in violations)

    def test_consistent_order_is_clean(self):
        # Drop Mirror.forward: only Ledger -> Mirror remains.
        src = INVERSION.replace(
            "    def forward(self):\n"
            "        with self._lock:\n"
            "            self._peer.locked()\n"
            "\n"
            "    def locked(self):\n"
            "        with self._lock:\n"
            "            pass\n",
            "    def locked(self):\n"
            "        with self._lock:\n"
            "            pass\n",
            1,
        )
        # The replace above rewrote Ledger; rebuild with Mirror neutered
        # instead so one direction survives.
        src = INVERSION.replace(
            "class Mirror:",
            "class MirrorBase:",
        ).replace(
            'def __init__(self, peer: "Ledger"):',
            "def __init__(self, peer):",
        )
        assert lint_source(src, "fixture.py", R010) == []

    def test_self_deadlock_on_nonreentrant_lock(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        violations = lint_source(src, "fixture.py", R010)
        assert len(violations) == 1
        assert "deadlock" in violations[0].message.lower()

    def test_rlock_reentry_is_clean(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        assert lint_source(src, "fixture.py", R010) == []

    def test_module_level_lock_inversion(self):
        src = (
            "import threading\n"
            "lock_a = threading.Lock()\n"
            "lock_b = threading.Lock()\n"
            "def one():\n"
            "    with lock_a:\n"
            "        with lock_b:\n"
            "            pass\n"
            "def two():\n"
            "    with lock_b:\n"
            "        with lock_a:\n"
            "            pass\n"
        )
        violations = lint_source(src, "fixture.py", R010)
        assert len(violations) == 2

    def test_cross_module_inversion(self):
        # Split the two-class fixture across modules: each module alone
        # sees only an unresolved call to a foreign class (no edge), and
        # the cycle appears only in the merged tree graph — exactly what
        # the tree-scoped pass exists for.
        header, mirror_half = INVERSION.split("class Mirror:")
        ledger_src = header
        mirror_src = "import threading\n\n\nclass Mirror:" + mirror_half
        s1 = analyze_source(ast.parse(ledger_src), "ledger.py")
        s2 = analyze_source(ast.parse(mirror_src), "mirror.py")
        assert lock_order_violations([s1]) == []
        assert lock_order_violations([s2]) == []
        violations = lock_order_violations([s1, s2])
        assert len(violations) == 2
        assert {v.path for v in violations} == {"ledger.py", "mirror.py"}


class TestAnalyzeSource:
    def test_class_summary_records_locks_and_acquisitions(self):
        summary = analyze_source(ast.parse(UNGUARDED), "fixture.py")
        counter = summary.classes["Counter"]
        assert counter.locks == {"_lock": False}
        assert "Counter._lock" in counter.method_acquires["add"]

    def test_rlock_marked_reentrant(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
        )
        summary = analyze_source(ast.parse(src), "fixture.py")
        assert summary.classes["C"].locks == {"_lock": True}

    def test_dataclass_field_lock_detected(self):
        src = (
            "import threading\n"
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class D:\n"
            "    _lock: threading.Lock = field(default_factory=threading.Lock)\n"
        )
        summary = analyze_source(ast.parse(src), "fixture.py")
        assert summary.classes["D"].locks == {"_lock": False}

    def test_module_locks_collected(self):
        src = (
            "import threading\n"
            "_guard = threading.Lock()\n"
            "_reent = threading.RLock()\n"
        )
        summary = analyze_source(ast.parse(src), "fixture.py")
        assert summary.module_locks == {"_guard": False, "_reent": True}

    def test_seeded_fixtures_produce_edges(self):
        summary = analyze_source(ast.parse(INVERSION), "fixture.py")
        assert summary.pending_calls  # cross-class calls await tree merge
        assert {c.callee_class for c in summary.pending_calls} == {
            "Ledger",
            "Mirror",
        }
