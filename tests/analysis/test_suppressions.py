"""Edge cases for ``# repolint: disable=`` suppression comments.

Covers file-level vs line-level scope, unknown rule codes, multi-line
statements (where the trailing comment lands on a later physical line
than the violation anchor), and interaction with the concurrency rules.
"""

from __future__ import annotations

from repro.analysis.linter import LintConfig, lint_source

R001 = LintConfig(select=frozenset({"R001"}))
R009 = LintConfig(select=frozenset({"R009"}))
R010 = LintConfig(select=frozenset({"R010"}))

RNG = "import numpy as np\nrng = np.random.default_rng()\n"


class TestFileLevel:
    def test_disable_file_suppresses_everywhere(self):
        src = (
            "# repolint: disable-file=R001\n"
            "import numpy as np\n"
            "a = np.random.default_rng()\n"
            "b = np.random.default_rng()\n"
        )
        assert lint_source(src, "x.py", R001) == []

    def test_disable_file_leaves_other_rules_alone(self):
        src = (
            "# repolint: disable-file=R005\n"
            "import numpy as np\n"
            "a = np.random.default_rng()\n"
        )
        violations = lint_source(src, "x.py", LintConfig())
        assert "R001" in {v.rule for v in violations}
        assert "R005" not in {v.rule for v in violations}

    def test_disable_file_anywhere_in_file(self):
        # The directive is file-scoped wherever it appears, so a
        # violation *above* the comment is suppressed too.
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng()\n"
            "# repolint: disable-file=R001\n"
        )
        assert lint_source(src, "x.py", R001) == []


class TestLineLevel:
    def test_only_the_commented_line_is_suppressed(self):
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng()  # repolint: disable=R001\n"
            "b = np.random.default_rng()\n"
        )
        violations = lint_source(src, "x.py", R001)
        assert [v.line for v in violations] == [3]

    def test_directive_on_its_own_line_does_not_leak(self):
        # A bare comment line suppresses nothing above or below it.
        src = (
            "import numpy as np\n"
            "# repolint: disable=R001\n"
            "a = np.random.default_rng()\n"
        )
        violations = lint_source(src, "x.py", R001)
        assert [v.line for v in violations] == [3]

    def test_multiple_codes_on_one_line(self):
        # The target code is honored wherever it sits in the comma list.
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng()  # repolint: disable=R005,R001\n"
        )
        assert lint_source(src, "x.py", R001) == []


class TestUnknownCodes:
    def test_unknown_code_is_harmless(self):
        src = RNG.replace(
            "rng = np.random.default_rng()",
            "rng = np.random.default_rng()  # repolint: disable=R999",
        )
        violations = lint_source(src, "x.py", R001)
        assert [v.rule for v in violations] == ["R001"]

    def test_unknown_code_next_to_a_real_one_still_works(self):
        src = RNG.replace(
            "rng = np.random.default_rng()",
            "rng = np.random.default_rng()  # repolint: disable=R999,R001",
        )
        assert lint_source(src, "x.py", R001) == []


class TestMultiLineStatements:
    def test_trailing_comment_on_wrapped_call(self):
        # The violation anchors at the first line of the statement; the
        # comment naturally lands on the closing-paren line.
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(\n"
            ")  # repolint: disable=R001\n"
        )
        assert lint_source(src, "x.py", R001) == []

    def test_comment_on_first_line_of_wrapped_call(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(  # repolint: disable=R001\n"
            ")\n"
        )
        assert lint_source(src, "x.py", R001) == []

    def test_span_does_not_swallow_the_next_statement(self):
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng(\n"
            ")  # repolint: disable=R001\n"
            "b = np.random.default_rng()\n"
        )
        violations = lint_source(src, "x.py", R001)
        assert [v.line for v in violations] == [4]

    def test_compound_header_comment_does_not_leak_into_body(self):
        # A disable on the `if` line must not suppress violations inside
        # the block — only the header region is one statement span.
        src = (
            "import numpy as np\n"
            "if True:  # repolint: disable=R001\n"
            "    a = np.random.default_rng()\n"
        )
        violations = lint_source(src, "x.py", R001)
        assert [v.line for v in violations] == [3]


class TestConcurrencyRuleInteraction:
    GUARDED = (
        "import threading\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._total = 0\n"
        "    def add(self, n):\n"
        "        with self._lock:\n"
        "            self._total += n\n"
    )

    def test_r009_multi_line_write_suppression(self):
        src = self.GUARDED + (
            "    def reset(self):\n"
            "        self._total = (\n"
            "            0\n"
            "        )  # repolint: disable=R009\n"
        )
        assert lint_source(src, "x.py", R009) == []

    def test_r009_file_level_suppression(self):
        src = "# repolint: disable-file=R009\n" + self.GUARDED + (
            "    def reset(self):\n"
            "        self._total = 0\n"
        )
        assert lint_source(src, "x.py", R009) == []

    def test_r010_file_level_suppression(self):
        src = (
            "# repolint: disable-file=R010\n"
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        assert lint_source(src, "x.py", R010) == []

    def test_r010_line_level_suppression_at_the_violation_anchor(self):
        # The self-deadlock anchors at the re-acquiring call site; a
        # disable on that line silences it.
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()  # repolint: disable=R010\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        assert lint_source(src, "x.py", R010) == []
