"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import AttributeDistribution
from repro.data.zipf import zipf_frequencies
from repro.testing import locksan


@pytest.fixture(scope="session", autouse=True)
def _lock_sanitizer():
    """Arm the runtime lock sanitizer for the whole session.

    Active only under ``REPRO_LOCKSAN=1`` (CI runs the threaded stress and
    chaos suites this way).  Every ``threading.Lock``/``RLock`` created
    during the session is wrapped; at teardown, any recorded lock-order
    inversion or self-deadlock fails the run.  Advisory findings
    (long holds, contention) are reported but do not fail.
    """
    if not locksan.locksan_requested():
        yield
        return
    locksan.install()
    locksan.reset()
    try:
        yield
        fatal = locksan.fatal_findings()
        if fatal:
            raise RuntimeError(
                "lock sanitizer recorded discipline violations:\n"
                + locksan.format_findings(fatal)
            )
    finally:
        locksan.uninstall()


@pytest.fixture
def rng():
    """A seeded generator; tests stay deterministic."""
    return np.random.default_rng(20260705)


@pytest.fixture
def zipf_small():
    """A small Zipf frequency set (M=10, z=1, T=100)."""
    return zipf_frequencies(100, 10, 1.0)


@pytest.fixture
def zipf_medium():
    """The paper's canonical set: M=100, z=1, T=1000 (Figures 3-5)."""
    return zipf_frequencies(1000, 100, 1.0)


@pytest.fixture
def tiny_frequencies():
    """A hand-checkable frequency multiset."""
    return np.array([9.0, 7.0, 4.0, 2.0, 1.0])


@pytest.fixture
def tiny_distribution(tiny_frequencies):
    """The tiny multiset attached to values a..e."""
    return AttributeDistribution(["a", "b", "c", "d", "e"], tiny_frequencies)


@pytest.fixture
def worksfor_matrix():
    """The paper's Example 2.3 WorksFor(dname, year) frequency matrix.

    Rows: toy, jewelry, shoe, candy; columns: 1990..1994.  Entries follow
    the legible structure of Figure 2 (exact OCR of the figure is partly
    unreadable; the tests only rely on structural properties).
    """
    return np.array(
        [
            [10.0, 5.0, 0.0, 1.0, 4.0],
            [2.0, 8.0, 6.0, 0.0, 3.0],
            [0.0, 1.0, 12.0, 7.0, 2.0],
            [4.0, 0.0, 3.0, 9.0, 6.0],
        ]
    )
