"""Tests for repro.data.quantize."""

import numpy as np
import pytest

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies


class TestQuantizeToIntegers:
    def test_total_preserved_exactly(self):
        freqs = zipf_frequencies(1000, 100, 1.0)
        quantized = quantize_to_integers(freqs)
        assert quantized.sum() == 1000

    def test_integer_dtype(self):
        quantized = quantize_to_integers(zipf_frequencies(50, 7, 0.5))
        assert np.issubdtype(quantized.dtype, np.integer)

    def test_each_entry_within_one_of_input(self):
        freqs = zipf_frequencies(500, 30, 2.0)
        quantized = quantize_to_integers(freqs)
        assert np.all(np.abs(quantized - freqs) < 1.0)

    def test_already_integral_unchanged(self):
        freqs = np.array([3.0, 5.0, 2.0])
        assert np.array_equal(quantize_to_integers(freqs), [3, 5, 2])

    def test_largest_remainders_rounded_up(self):
        # 1.6 + 1.6 + 1.8 = 5: floors give 3, two leftover units go to the
        # largest remainders (1.8 first, then one of the 1.6s).
        quantized = quantize_to_integers([1.6, 1.6, 1.8])
        assert quantized.sum() == 5
        assert quantized[2] == 2

    def test_non_negative_output(self):
        quantized = quantize_to_integers(zipf_frequencies(10, 100, 3.0))
        assert np.all(quantized >= 0)
        assert quantized.sum() == 10

    def test_rejects_non_integral_total(self):
        with pytest.raises(ValueError, match="not integral"):
            quantize_to_integers([1.2, 1.3])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            quantize_to_integers([-1.0, 2.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            quantize_to_integers(np.ones((2, 2)))

    def test_deterministic_tie_breaking(self):
        a = quantize_to_integers([1.5, 1.5, 2.0])
        b = quantize_to_integers([1.5, 1.5, 2.0])
        assert np.array_equal(a, b)
