"""Tests for repro.data.realworld — the NBA-statistics surrogate."""

import numpy as np
import pytest

from repro.data.realworld import (
    STAT_ATTRIBUTES,
    PlayerSeason,
    nba_player_statistics,
    player_stat_frequency_set,
)


class TestNbaPlayerStatistics:
    def test_default_size(self):
        seasons = nba_player_statistics()
        assert len(seasons) == 400

    def test_deterministic_default_seed(self):
        a = nba_player_statistics(players=50)
        b = nba_player_statistics(players=50)
        assert a == b

    def test_games_bounded_by_season(self):
        for season in nba_player_statistics(players=200):
            assert 0 <= season.games <= 82

    def test_non_negative_counting_stats(self):
        for season in nba_player_statistics(players=200):
            for attribute in STAT_ATTRIBUTES:
                assert getattr(season, attribute) >= 0

    def test_zero_inflated_threes(self):
        seasons = nba_player_statistics(players=400)
        zero_fraction = sum(1 for s in seasons if s.threes == 0) / len(seasons)
        assert 0.2 < zero_fraction < 0.8

    def test_points_heavy_tailed(self):
        points = np.array([s.points for s in nba_player_statistics(players=400)])
        assert points.max() > 4 * np.median(points[points > 0])

    def test_as_row(self):
        season = PlayerSeason(1, 80, 3000, 1500, 400, 300, 50)
        assert season.as_row() == (1, 80, 3000, 1500, 400, 300, 50)


class TestPlayerStatFrequencySet:
    def test_descending(self):
        seasons = nba_player_statistics(players=300)
        freqs = player_stat_frequency_set(seasons, "games")
        assert np.all(np.diff(freqs) <= 0)

    def test_total_is_player_count(self):
        seasons = nba_player_statistics(players=300)
        freqs = player_stat_frequency_set(seasons, "games")
        assert freqs.sum() == 300

    def test_unknown_attribute_rejected(self):
        seasons = nba_player_statistics(players=10)
        with pytest.raises(ValueError, match="unknown attribute"):
            player_stat_frequency_set(seasons, "steals")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            player_stat_frequency_set([], "games")

    def test_threes_has_big_zero_spike(self):
        """Zero-inflation shows as one dominating frequency."""
        seasons = nba_player_statistics(players=400)
        freqs = player_stat_frequency_set(seasons, "threes")
        assert freqs[0] > 5 * freqs[1]
