"""Tests for repro.data.zipf — equation (1) of the paper."""

import numpy as np
import pytest

from repro.data.zipf import zipf_frequencies, zipf_skew_series


class TestZipfFrequencies:
    def test_total_preserved(self):
        freqs = zipf_frequencies(1000, 100, 1.0)
        assert freqs.sum() == pytest.approx(1000.0)

    def test_length(self):
        assert zipf_frequencies(50, 7, 0.5).size == 7

    def test_z_zero_is_uniform(self):
        freqs = zipf_frequencies(100, 10, 0.0)
        assert np.allclose(freqs, 10.0)

    def test_descending_rank_order(self):
        freqs = zipf_frequencies(1000, 50, 1.2)
        assert np.all(np.diff(freqs) <= 0)

    def test_equation_one_exact_values(self):
        """t_i = T (1/i^z) / sum_j (1/j^z) — checked by hand for M=3, z=1."""
        freqs = zipf_frequencies(110, 3, 1.0)
        harmonic = 1 + 0.5 + 1 / 3
        assert freqs[0] == pytest.approx(110 / harmonic)
        assert freqs[1] == pytest.approx(110 / (2 * harmonic))
        assert freqs[2] == pytest.approx(110 / (3 * harmonic))

    def test_paper_figure3_self_join_size(self):
        """T=1000, M=100, z=1 self-join size ≈ the paper's 60780.

        The paper's "Result Size 60780" used integer-rounded frequencies;
        the real-valued computation lands within 0.1%.
        """
        freqs = zipf_frequencies(1000, 100, 1.0)
        assert np.dot(freqs, freqs) == pytest.approx(60780, rel=1e-3)

    def test_skew_monotone_in_z(self):
        top_shares = [
            zipf_frequencies(1000, 100, z)[0] for z in (0.0, 0.5, 1.0, 2.0, 3.0)
        ]
        assert top_shares == sorted(top_shares)

    def test_all_positive(self):
        assert np.all(zipf_frequencies(10, 1000, 3.0) > 0)

    def test_single_value_domain(self):
        assert zipf_frequencies(42, 1, 2.0)[0] == pytest.approx(42.0)

    def test_rejects_negative_z(self):
        with pytest.raises(ValueError):
            zipf_frequencies(100, 10, -0.5)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            zipf_frequencies(0, 10, 1.0)

    def test_rejects_zero_domain(self):
        with pytest.raises(ValueError):
            zipf_frequencies(100, 0, 1.0)


class TestZipfSkewSeries:
    def test_figure1_family(self):
        """The paper's Figure 1: T=1000, M=100, z = 0, 0.02, ..., 0.1."""
        z_values = [round(0.02 * i, 2) for i in range(6)]
        series = zipf_skew_series(1000, 100, z_values)
        assert set(series) == set(z_values)
        for freqs in series.values():
            assert freqs.sum() == pytest.approx(1000.0)
        # Curves are ordered: higher z starts higher and ends lower.
        assert series[0.1][0] > series[0.0][0]
        assert series[0.1][-1] < series[0.0][-1]

    def test_empty_series(self):
        assert zipf_skew_series(10, 5, []) == {}


class TestZipfSelfJoinSize:
    def test_matches_direct_computation(self):
        import numpy as np
        from repro.data.zipf import zipf_self_join_size

        for z in (0.0, 0.5, 1.0, 2.0):
            freqs = zipf_frequencies(1000, 100, z)
            assert zipf_self_join_size(1000, 100, z) == pytest.approx(
                float(np.dot(freqs, freqs))
            )

    def test_paper_anchor_value(self):
        from repro.data.zipf import zipf_self_join_size

        assert zipf_self_join_size(1000, 100, 1.0) == pytest.approx(60780, rel=1e-3)

    def test_uniform_case(self):
        from repro.data.zipf import zipf_self_join_size

        # z=0: every frequency is T/M, so sum of squares is T^2 / M.
        assert zipf_self_join_size(600, 30, 0.0) == pytest.approx(600 * 600 / 30)

    def test_monotone_in_z(self):
        from repro.data.zipf import zipf_self_join_size

        sizes = [zipf_self_join_size(1000, 100, z) for z in (0.0, 0.5, 1.0, 2.0, 3.0)]
        assert sizes == sorted(sizes)
