"""Tests for repro.data.synthetic."""

import numpy as np
import pytest

from repro.data.synthetic import (
    mixture_frequencies,
    normal_frequencies,
    reverse_zipf_frequencies,
    step_frequencies,
    uniform_frequencies,
)
from repro.data.zipf import zipf_frequencies


class TestUniform:
    def test_values(self):
        freqs = uniform_frequencies(100, 4)
        assert np.allclose(freqs, 25.0)

    def test_matches_zipf_z0(self):
        assert np.allclose(uniform_frequencies(90, 9), zipf_frequencies(90, 9, 0.0))


class TestReverseZipf:
    def test_total(self):
        freqs = reverse_zipf_frequencies(1000, 50, 1.5)
        assert freqs.sum() == pytest.approx(1000.0)

    def test_many_high_few_low(self):
        """The shape of Section 4.2's hard case: most values near the top."""
        freqs = reverse_zipf_frequencies(1000, 100, 2.0)
        median = np.median(freqs)
        mean = freqs.mean()
        assert median > mean  # mass concentrated at the high end

    def test_descending(self):
        freqs = reverse_zipf_frequencies(100, 20, 1.0)
        assert np.all(np.diff(freqs) <= 1e-12)

    def test_z_zero_uniform(self):
        assert np.allclose(reverse_zipf_frequencies(100, 10, 0.0), 10.0)


class TestNormal:
    def test_total_and_positivity(self):
        freqs = normal_frequencies(500, 40, spread=0.3, rng=0)
        assert freqs.sum() == pytest.approx(500.0)
        assert np.all(freqs > 0)

    def test_zero_spread_is_uniform(self):
        freqs = normal_frequencies(100, 10, spread=0.0, rng=0)
        assert np.allclose(freqs, 10.0)

    def test_deterministic_with_seed(self):
        a = normal_frequencies(100, 10, rng=5)
        b = normal_frequencies(100, 10, rng=5)
        assert np.array_equal(a, b)


class TestStep:
    def test_two_levels(self):
        freqs = step_frequencies(1000, 100, high_fraction=0.1, ratio=10.0)
        assert len(set(np.round(freqs, 9))) == 2

    def test_ratio(self):
        freqs = step_frequencies(1000, 100, high_fraction=0.1, ratio=10.0)
        assert freqs[0] / freqs[-1] == pytest.approx(10.0)

    def test_total(self):
        assert step_frequencies(77, 11).sum() == pytest.approx(77.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            step_frequencies(100, 10, high_fraction=1.5)


class TestMixture:
    def test_total(self):
        freqs = mixture_frequencies(300, 60, modes=4, rng=1)
        assert freqs.sum() == pytest.approx(300.0)

    def test_descending_multiset(self):
        freqs = mixture_frequencies(300, 60, rng=1)
        assert np.all(np.diff(freqs) <= 1e-12)

    def test_deterministic(self):
        assert np.array_equal(
            mixture_frequencies(100, 20, rng=2), mixture_frequencies(100, 20, rng=2)
        )

    def test_positive(self):
        assert np.all(mixture_frequencies(100, 20, rng=3) > 0)
