"""Tests for repro.queries.tree — arbitrary tree queries."""

import numpy as np
import pytest

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import FrequencySet
from repro.core.histogram import Histogram
from repro.queries.chain import make_zipf_chain
from repro.queries.tree import (
    TreeQuery,
    make_zipf_star,
    make_zipf_tree,
    random_tree_query,
)


class TestTreeQueryValidation:
    def test_star(self):
        query = make_zipf_star(3, domain=3, z_values=[1.0, 0.5, 1.5, 2.0])
        assert query.num_relations == 4
        assert query.degree(0) == 3
        assert all(query.degree(leaf) == 1 for leaf in (1, 2, 3))

    def test_hub_tensor_size(self):
        query = make_zipf_star(2, domain=4, z_values=[1.0, 1.0, 1.0])
        assert query.frequency_sets[0].size == 16
        assert query.frequency_sets[1].size == 4

    def test_cycle_rejected(self):
        # 4 relations, 3 edges forming a triangle + an isolated node: the
        # edge count passes, the union-find detects the cycle.
        sets = tuple(FrequencySet([1.0] * 2) for _ in range(4))
        with pytest.raises(ValueError, match="cycle"):
            TreeQuery(4, ((0, 1, 2), (1, 2, 2), (2, 0, 2)), sets)

    def test_wrong_edge_count(self):
        sets = tuple(FrequencySet([1.0] * 2) for _ in range(3))
        with pytest.raises(ValueError, match="needs"):
            TreeQuery(3, ((0, 1, 2),), sets)

    def test_set_size_mismatch(self):
        sets = (FrequencySet([1.0] * 3), FrequencySet([1.0] * 2))
        with pytest.raises(ValueError, match="cells"):
            TreeQuery(2, ((0, 1, 2),), sets)

    def test_bad_z_count(self):
        with pytest.raises(ValueError, match="z values"):
            make_zipf_star(2, z_values=[1.0])


class TestTreeEvaluation:
    @pytest.fixture
    def star(self):
        return make_zipf_star(3, domain=3, z_values=[1.5, 0.5, 1.0, 2.0])

    def test_arrangement_shapes(self, star, rng):
        tensors = star.sample_arrangement(rng)
        assert tensors[0].shape == (3, 3, 3)
        assert all(t.shape == (3,) for t in tensors[1:])

    def test_arrangement_multisets(self, star, rng):
        tensors = star.sample_arrangement(rng)
        for tensor, fset in zip(tensors, star.frequency_sets):
            assert tensor.frequency_set() == fset

    def test_perfect_histograms_exact(self, star, rng):
        arrangement = star.sample_arrangement(rng)
        histograms = star.build_histograms(
            lambda fset: Histogram.from_sorted_sizes(fset.frequencies, (1,) * fset.size)
        )
        assert star.estimate_size(arrangement, histograms) == pytest.approx(
            star.exact_size(arrangement)
        )

    def test_uniform_sets_trivial_exact(self, rng):
        query = make_zipf_star(2, domain=3, z_values=[0.0, 0.0, 0.0])
        arrangement = query.sample_arrangement(rng)
        histograms = query.build_histograms(
            lambda fset: Histogram.single_bucket(fset.frequencies)
        )
        assert query.estimate_size(arrangement, histograms) == pytest.approx(
            query.exact_size(arrangement)
        )

    def test_optimal_beats_trivial_on_average(self, star):
        gen = np.random.default_rng(0)
        trivial = star.build_histograms(lambda f: Histogram.single_bucket(f.frequencies))
        optimal = star.build_histograms(
            lambda f: v_opt_bias_hist(f.frequencies, min(5, f.size))
        )
        trivial_err = optimal_err = 0.0
        for _ in range(15):
            arrangement = star.sample_arrangement(gen)
            exact = star.exact_size(arrangement)
            trivial_err += abs(exact - star.estimate_size(arrangement, trivial)) / exact
            optimal_err += abs(exact - star.estimate_size(arrangement, optimal)) / exact
        assert optimal_err < trivial_err

    def test_chain_as_tree_agrees_with_chain_query(self):
        """The chain special case matches ChainQuery's computation."""
        z = [1.0, 0.5, 2.0]
        chain = make_zipf_chain(2, domain=4, z_values=z)
        tree = make_zipf_tree([(0, 1, 4), (1, 2, 4)], z_values=z)
        chain_arr = chain.sample_arrangement(9)
        tree_arr = tree.sample_arrangement(9)
        # Same frequency sets, same seeds — but arrangement layouts differ;
        # compare the *sets* and the scale of the results instead of exact
        # equality, plus exact equality when re-using the chain's matrices.
        from repro.core.tensor import FrequencyTensor, tree_result_size

        tensors = [
            FrequencyTensor(chain_arr[0].array.ravel(), axes=(0,)),
            FrequencyTensor(chain_arr[1].array, axes=(0, 1)),
            FrequencyTensor(chain_arr[2].array.ravel(), axes=(1,)),
        ]
        assert tree_result_size(tensors) == pytest.approx(chain.exact_size(chain_arr))
        for a, b in zip(chain.frequency_sets, tree.frequency_sets):
            assert a == b

    def test_histogram_count_mismatch(self, star, rng):
        arrangement = star.sample_arrangement(rng)
        with pytest.raises(ValueError, match="histograms"):
            star.estimate_size(arrangement, [])


class TestRandomTreeQuery:
    def test_structure(self):
        query = random_tree_query(6, domain=3, rng=1)
        assert query.num_relations == 6
        assert query.num_joins == 5

    def test_deterministic(self):
        a = random_tree_query(5, rng=2)
        b = random_tree_query(5, rng=2)
        assert a.edges == b.edges
        assert a.skews == b.skews

    def test_variety_of_shapes(self):
        degrees = set()
        for seed in range(10):
            query = random_tree_query(5, domain=2, rng=seed)
            degrees.add(max(query.degree(i) for i in range(5)))
        assert len(degrees) > 1  # chains AND bushier shapes appear

    def test_evaluable(self, rng):
        query = random_tree_query(5, domain=3, rng=4)
        arrangement = query.sample_arrangement(rng)
        assert query.exact_size(arrangement) > 0

    def test_too_few_relations(self):
        with pytest.raises(ValueError, match="at least two"):
            random_tree_query(1)
