"""Tests for repro.queries.workload."""

import pytest

from repro.queries.workload import (
    HIGH_SKEW_Z,
    LOW_SKEW_Z,
    MIXED_SKEW_Z,
    QueryClass,
    sample_chain_query,
    sample_query_batch,
)


class TestSkewGrids:
    def test_partition_of_mixed(self):
        assert LOW_SKEW_Z + HIGH_SKEW_Z == MIXED_SKEW_Z

    def test_paper_grid(self):
        assert MIXED_SKEW_Z == (0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0)

    def test_class_choices(self):
        assert QueryClass.LOW_SKEW.z_choices == LOW_SKEW_Z
        assert QueryClass.HIGH_SKEW.z_choices == HIGH_SKEW_Z
        assert QueryClass.MIXED_SKEW.z_choices == MIXED_SKEW_Z


class TestSampleChainQuery:
    def test_skews_come_from_class(self):
        for _ in range(5):
            query = sample_chain_query(3, QueryClass.LOW_SKEW, rng=7)
            assert all(z in LOW_SKEW_Z for z in query.skews)

    def test_high_skew_class(self):
        query = sample_chain_query(4, QueryClass.HIGH_SKEW, rng=3)
        assert all(z in HIGH_SKEW_Z for z in query.skews)

    def test_query_structure(self):
        query = sample_chain_query(5, QueryClass.MIXED_SKEW, rng=1, domain=10)
        assert query.num_joins == 5
        assert query.frequency_sets[2].size == 100

    def test_deterministic(self):
        a = sample_chain_query(2, QueryClass.MIXED_SKEW, rng=9)
        b = sample_chain_query(2, QueryClass.MIXED_SKEW, rng=9)
        assert a.skews == b.skews

    def test_custom_domain_and_total(self):
        query = sample_chain_query(1, QueryClass.LOW_SKEW, rng=0, domain=6, total=60)
        assert query.shapes == ((1, 6), (6, 1))
        assert query.frequency_sets[0].total == pytest.approx(60.0)


class TestSampleQueryBatch:
    def test_count(self):
        batch = sample_query_batch(2, QueryClass.MIXED_SKEW, 4, rng=0)
        assert len(batch) == 4

    def test_batch_queries_differ(self):
        batch = sample_query_batch(3, QueryClass.MIXED_SKEW, 10, rng=0)
        skews = {q.skews for q in batch}
        assert len(skews) > 1

    def test_reproducible(self):
        a = sample_query_batch(2, QueryClass.HIGH_SKEW, 3, rng=5)
        b = sample_query_batch(2, QueryClass.HIGH_SKEW, 3, rng=5)
        assert [q.skews for q in a] == [q.skews for q in b]
