"""Tests for repro.queries.chain."""

import numpy as np
import pytest

from repro.core.frequency import FrequencySet
from repro.core.histogram import Histogram
from repro.queries.chain import ChainQuery, make_zipf_chain, selection_query


class TestChainQueryValidation:
    def test_valid(self):
        query = make_zipf_chain(2, domain=4, z_values=[0.0, 1.0, 2.0])
        assert query.num_joins == 2
        assert query.num_relations == 3

    def test_shape_set_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            ChainQuery(
                ((1, 4), (4, 1)),
                (FrequencySet([1.0, 2.0]), FrequencySet([1.0] * 4)),
            )

    def test_domain_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            ChainQuery(
                ((1, 4), (3, 1)),
                (FrequencySet([1.0] * 4), FrequencySet([1.0] * 3)),
            )

    def test_needs_vector_ends(self):
        with pytest.raises(ValueError, match="vectors"):
            ChainQuery(
                ((2, 2), (2, 1)),
                (FrequencySet([1.0] * 4), FrequencySet([1.0] * 2)),
            )

    def test_needs_two_relations(self):
        with pytest.raises(ValueError, match="at least two"):
            ChainQuery(((1, 1),), (FrequencySet([1.0]),))

    def test_skews_must_align(self):
        with pytest.raises(ValueError, match="skews"):
            ChainQuery(
                ((1, 2), (2, 1)),
                (FrequencySet([1.0, 2.0]), FrequencySet([1.0, 2.0])),
                skews=(1.0,),
            )


class TestMakeZipfChain:
    def test_shapes(self):
        query = make_zipf_chain(3, domain=10, z_values=[0.0] * 4)
        assert query.shapes == ((1, 10), (10, 10), (10, 10), (10, 1))

    def test_interior_sets_are_m_squared(self):
        query = make_zipf_chain(3, domain=10, z_values=[1.0] * 4)
        assert query.frequency_sets[0].size == 10
        assert query.frequency_sets[1].size == 100
        assert query.frequency_sets[-1].size == 10

    def test_totals(self):
        query = make_zipf_chain(2, domain=5, total=500.0, z_values=[1.0, 1.0, 1.0])
        for fset in query.frequency_sets:
            assert fset.total == pytest.approx(500.0)

    def test_single_join(self):
        query = make_zipf_chain(1, domain=7, z_values=[0.5, 1.5])
        assert query.shapes == ((1, 7), (7, 1))

    def test_z_count_mismatch(self):
        with pytest.raises(ValueError, match="z values"):
            make_zipf_chain(2, z_values=[1.0, 1.0])


class TestArrangementsAndSizes:
    @pytest.fixture
    def query(self):
        return make_zipf_chain(2, domain=5, z_values=[1.0, 0.5, 2.0])

    def test_sample_arrangement_shapes(self, query, rng):
        arrangement = query.sample_arrangement(rng)
        assert [m.shape for m in arrangement] == [(1, 5), (5, 5), (5, 1)]

    def test_arrangement_multisets_preserved(self, query, rng):
        arrangement = query.sample_arrangement(rng)
        for matrix, fset in zip(arrangement, query.frequency_sets):
            assert matrix.frequency_set() == fset

    def test_exact_size_positive(self, query, rng):
        arrangement = query.sample_arrangement(rng)
        assert query.exact_size(arrangement) > 0

    def test_deterministic_sampling(self, query):
        a = query.sample_arrangement(5)
        b = query.sample_arrangement(5)
        assert all(x == y for x, y in zip(a, b))

    def test_build_histograms_per_relation(self, query):
        histograms = query.build_histograms(
            lambda fset: Histogram.single_bucket(fset.frequencies)
        )
        assert len(histograms) == 3
        assert all(h.is_trivial() for h in histograms)

    def test_estimate_with_perfect_histograms_is_exact(self, query, rng):
        arrangement = query.sample_arrangement(rng)
        histograms = query.build_histograms(
            lambda fset: Histogram.from_sorted_sizes(fset.frequencies, (1,) * fset.size)
        )
        assert query.estimate_size(arrangement, histograms) == pytest.approx(
            query.exact_size(arrangement)
        )

    def test_estimate_histogram_count_mismatch(self, query, rng):
        arrangement = query.sample_arrangement(rng)
        with pytest.raises(ValueError, match="histograms"):
            query.estimate_size(arrangement, [])

    def test_uniform_sets_make_estimates_exact(self, rng):
        """z = 0 everywhere: trivial histograms are exact for any arrangement."""
        query = make_zipf_chain(2, domain=4, z_values=[0.0, 0.0, 0.0])
        histograms = query.build_histograms(
            lambda fset: Histogram.single_bucket(fset.frequencies)
        )
        arrangement = query.sample_arrangement(rng)
        assert query.estimate_size(arrangement, histograms) == pytest.approx(
            query.exact_size(arrangement)
        )


class TestSelectionQuery:
    def test_selection_as_chain(self):
        relation, selector = selection_query(
            ["u1", "u2", "u3"], [25.0, 10.0, 3.0], ["u1", "u3"]
        )
        from repro.core.matrix import chain_result_size

        assert chain_result_size([relation, selector]) == 28.0

    def test_empty_selection(self):
        relation, selector = selection_query(["u1"], [5.0], [])
        from repro.core.matrix import chain_result_size

        assert chain_result_size([relation, selector]) == 0.0
