"""Tests for the runtime lock sanitizer.

The acceptance fixtures: a seeded lock-order inversion and a seeded
self-deadlock, both of which the sanitizer must catch dynamically (the
static halves live in ``tests/analysis/test_concurrency.py``).
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import runtime
from repro.testing import locksan


@pytest.fixture
def sanitizer(monkeypatch):
    """Install the sanitizer for one test and leave no trace behind.

    Findings are cleared at teardown so a fatal finding seeded here can
    never leak into the session-level ``REPRO_LOCKSAN=1`` gate.
    """
    monkeypatch.setenv(locksan.LOCKSAN_ENV, "1")
    locksan.install()
    locksan.reset()
    try:
        yield locksan
    finally:
        locksan.reset()
        locksan.uninstall()


class TestInstallation:
    def test_install_wraps_and_uninstall_restores(self):
        before = threading.Lock
        locksan.install()
        try:
            assert threading.Lock is not before
            assert isinstance(threading.Lock(), locksan._SanitizedLock)
        finally:
            locksan.uninstall()
        assert threading.Lock is before

    def test_install_is_refcounted(self):
        before = threading.Lock
        locksan.install()
        locksan.install()
        locksan.uninstall()
        try:
            assert threading.Lock is not before  # one install still active
        finally:
            locksan.uninstall()
        assert threading.Lock is before

    def test_locksan_requested_reads_env(self, monkeypatch):
        monkeypatch.delenv(locksan.LOCKSAN_ENV, raising=False)
        assert not locksan.locksan_requested()
        monkeypatch.setenv(locksan.LOCKSAN_ENV, "1")
        assert locksan.locksan_requested()
        monkeypatch.setenv(locksan.LOCKSAN_ENV, "0")
        assert not locksan.locksan_requested()


class TestSeededViolations:
    def test_lock_order_inversion_is_caught(self, sanitizer):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        found = sanitizer.findings("lock-order-inversion")
        assert len(found) == 1
        assert found[0] in sanitizer.fatal_findings()

    def test_inversion_across_threads(self, sanitizer):
        lock_a = threading.Lock()
        lock_b = threading.Lock()

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        first = threading.Thread(target=forward)
        first.start()
        first.join()
        second = threading.Thread(target=backward)
        second.start()
        second.join()
        assert len(sanitizer.findings("lock-order-inversion")) == 1

    def test_self_deadlock_detected_without_hanging(self, sanitizer):
        lock = threading.Lock()
        assert lock.acquire()
        try:
            # Blocking re-acquire of a non-reentrant lock: the check runs
            # *before* the call blocks, so a short timeout probes safely.
            assert not lock.acquire(timeout=0.05)
        finally:
            lock.release()
        found = sanitizer.findings("self-deadlock")
        assert len(found) == 1
        assert found[0] in sanitizer.fatal_findings()

    def test_consistent_order_is_clean(self, sanitizer):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert sanitizer.fatal_findings() == []

    def test_rlock_reentry_is_clean(self, sanitizer):
        rlock = threading.RLock()
        with rlock:
            with rlock:
                pass
        assert sanitizer.fatal_findings() == []

    def test_trylock_defines_no_ordering_commitment(self, sanitizer):
        # The deadlock-avoidance idiom: non-blocking attempts must not
        # poison the order graph or self-deadlock-report.
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            assert lock_b.acquire(blocking=False)
            lock_b.release()
        with lock_b:
            assert lock_a.acquire(blocking=False)
            lock_a.release()
        assert sanitizer.findings() == []


class TestAdvisoryFindings:
    def test_contention_is_advisory(self, sanitizer, monkeypatch):
        monkeypatch.setattr(locksan, "CONTENTION_WAIT_SECONDS", 0.0)
        lock = threading.Lock()
        with lock:
            pass
        contended = sanitizer.findings("contention")
        assert contended
        assert sanitizer.fatal_findings() == []

    def test_long_hold_is_advisory(self, sanitizer, monkeypatch):
        monkeypatch.setattr(locksan, "LONG_HOLD_SECONDS", 0.0)
        lock = threading.Lock()
        with lock:
            pass
        assert sanitizer.findings("long-hold")
        assert sanitizer.fatal_findings() == []

    def test_counters_track_acquisitions(self, sanitizer):
        lock = threading.Lock()
        for _ in range(4):
            with lock:
                pass
        assert sanitizer.counters()["locksan_acquisitions_total"] == 4


class TestObsIntegration:
    def test_kill_switch_degrades_to_plain_delegation(self, sanitizer):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        runtime.set_instrumentation(False)
        try:
            with lock_a:
                with lock_b:
                    pass
            with lock_b:
                with lock_a:
                    pass
        finally:
            runtime.set_instrumentation(True)
        assert sanitizer.findings() == []
        assert sanitizer.counters() == {}

    def test_findings_mirror_into_the_metric_registry(self, sanitizer):
        registry = runtime.reset()
        lock = threading.Lock()
        lock.acquire()
        try:
            lock.acquire(timeout=0.01)
        finally:
            lock.release()
        exposition = registry.to_prometheus()
        assert "repro_locksan_findings_total" in exposition
        assert 'kind="self-deadlock"' in exposition

    def test_format_findings_renders_clean_and_dirty(self, sanitizer):
        assert "clean" in sanitizer.format_findings()
        lock = threading.Lock()
        lock.acquire()
        try:
            lock.acquire(timeout=0.01)
        finally:
            lock.release()
        assert "self-deadlock" in sanitizer.format_findings()
