"""Tests for the deterministic test-instrumentation package."""
