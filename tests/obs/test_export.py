"""Span export: wire codec, JSONL sink, trace assembly, rendering, CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs import runtime
from repro.obs.export import (
    JsonlSpanSink,
    assemble_traces,
    read_spans,
    render_trace_tree,
    slowest_traces,
    span_from_wire,
    span_to_wire,
    trace_summary,
)
from repro.obs.tracing import (
    SpanRecord,
    add_span_sink,
    clear_span_sinks,
    span,
)


@pytest.fixture(autouse=True)
def fresh_obs():
    runtime.reset()
    clear_span_sinks()
    yield
    runtime.reset()
    clear_span_sinks()


def make_record(
    name="serve.batch",
    *,
    start=1.0,
    end=2.0,
    trace_id="aa" * 8,
    span_id="bb" * 8,
    parent_id="",
    error=False,
    tags=None,
):
    return SpanRecord(
        name=name,
        start=start,
        end=end,
        depth=0,
        parent=None,
        error=error,
        tags=dict(tags or {}),
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
    )


class TestWireCodec:
    def test_round_trip(self):
        record = make_record(tags={"tenant": "t1"}, error=True)
        wire = span_to_wire(record)
        back = span_from_wire(wire)
        assert back == record

    def test_json_round_trip(self):
        record = make_record()
        back = span_from_wire(json.loads(json.dumps(span_to_wire(record))))
        assert back == record

    @pytest.mark.parametrize(
        "corrupt",
        [
            "not a dict",
            {"name": 7},
            {"name": "x", "start": "soon"},
            {"name": "x", "start": 0.0, "end": 1.0, "tags": ["nope"]},
        ],
    )
    def test_malformed_wire_raises(self, corrupt):
        with pytest.raises((ValueError, TypeError)):
            span_from_wire(corrupt)


class TestJsonlSink:
    def test_spans_round_trip_through_the_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlSpanSink(path, flush_every=1) as sink:
            add_span_sink(sink)
            with span("serve.batch", tenant="t1"):
                pass
        records, dropped = read_spans(path)
        assert dropped == 0
        assert [r.name for r in records] == ["serve.batch"]
        assert records[0].tags == {"tenant": "t1"}
        assert records[0].trace_id and records[0].span_id

    def test_bounded_to_max_spans(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlSpanSink(path, max_spans=5, flush_every=1) as sink:
            for i in range(20):
                sink(make_record(span_id=f"{i:016x}"))
        records, _ = read_spans(path)
        assert len(records) == 5
        # The *newest* five survive.
        assert records[-1].span_id == f"{19:016x}"

    def test_kill_switch_stops_file_io(self, tmp_path):
        """`set_instrumentation(False)` must stop sink writes entirely."""
        path = tmp_path / "spans.jsonl"
        with JsonlSpanSink(path, flush_every=1) as sink:
            sink(make_record())
            assert path.exists()
            before = path.read_text()
            mtime = path.stat().st_mtime_ns
            runtime.set_instrumentation(False)
            for i in range(10):
                sink(make_record(span_id=f"{i:016x}"))
            assert path.read_text() == before
            assert path.stat().st_mtime_ns == mtime
            runtime.set_instrumentation(True)
            sink(make_record(span_id="cc" * 8))
        records, _ = read_spans(path)
        assert len(records) == 2

    def test_read_spans_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        good = json.dumps(span_to_wire(make_record()))
        path.write_text(good + "\nnot json\n" + json.dumps({"v": 1}) + "\n" + good + "\n")
        records, dropped = read_spans(path)
        assert len(records) == 2
        assert dropped == 2


class TestSinkHardening:
    def test_sinks_receive_defensive_tag_copies(self):
        """A sink mutating its record's tags must not corrupt other sinks."""
        seen: list[dict] = []

        def vandal(record):
            record.tags["stolen"] = "yes"
            record.tags.clear()

        def witness(record):
            seen.append(dict(record.tags))

        add_span_sink(vandal)
        add_span_sink(witness)
        with span("serve.batch", tenant="t1"):
            pass
        assert seen == [{"tenant": "t1"}]


class TestAssembly:
    def test_parent_child_tree(self):
        parent = make_record(name="net.batch", span_id="01" * 8)
        child = make_record(
            name="serve.batch", span_id="02" * 8, parent_id="01" * 8,
            start=1.2, end=1.8,
        )
        (trace,) = assemble_traces([child, parent])
        assert [root.record.name for root in trace.roots] == ["net.batch"]
        assert [c.record.name for c in trace.roots[0].children] == ["serve.batch"]
        assert not trace.roots[0].children[0].orphan

    def test_duplicate_span_ids_first_wins(self):
        first = make_record(span_id="01" * 8, start=1.0)
        dupe = make_record(span_id="01" * 8, start=9.0)
        (trace,) = assemble_traces([first, dupe])
        assert trace.span_count == 1
        assert trace.roots[0].record.start == 1.0

    def test_orphan_promoted_to_flagged_root(self):
        orphan = make_record(span_id="02" * 8, parent_id="ff" * 8)
        (trace,) = assemble_traces([orphan])
        assert trace.roots[0].orphan is True

    def test_cycle_broken_not_infinite(self):
        a = make_record(span_id="01" * 8, parent_id="02" * 8, start=1.0)
        b = make_record(span_id="02" * 8, parent_id="01" * 8, start=2.0)
        (trace,) = assemble_traces([a, b])
        assert trace.span_count == 2
        assert len(trace.roots) == 1  # the cycle broke at one member
        rendered = render_trace_tree(trace)
        assert "~orphan" in rendered

    def test_traces_partition_by_trace_id(self):
        records = [
            make_record(trace_id="aa" * 8, span_id="01" * 8),
            make_record(trace_id="bb" * 8, span_id="02" * 8),
        ]
        traces = assemble_traces(records)
        assert sorted(t.trace_id for t in traces) == ["aa" * 8, "bb" * 8]

    def test_slowest_orders_by_duration(self):
        fast = make_record(trace_id="aa" * 8, span_id="01" * 8, start=0.0, end=0.1)
        slow = make_record(trace_id="bb" * 8, span_id="02" * 8, start=0.0, end=9.0)
        ranked = slowest_traces(assemble_traces([fast, slow]), limit=1)
        assert [t.trace_id for t in ranked] == ["bb" * 8]

    def test_summary_shape(self):
        (trace,) = assemble_traces([make_record(error=True)])
        summary = trace_summary(trace)
        assert summary["trace_id"] == "aa" * 8
        assert summary["spans"] == 1
        assert summary["error"] is True
        assert summary["names"] == ["serve.batch"]


class TestTraceCli:
    def fill(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonlSpanSink(path, flush_every=1) as sink:
            add_span_sink(sink)
            with span("net.batch", tenant="t1"):
                with span("serve.batch"):
                    pass
        return path

    def test_tree_renders_nested_spans(self, tmp_path, capsys):
        from repro.cli import main

        path = self.fill(tmp_path)
        assert main(["obs", "trace", "tree", str(path)]) == 0
        out = capsys.readouterr().out
        assert "net.batch" in out
        assert "serve.batch" in out
        assert "trace " in out

    def test_dump_emits_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        path = self.fill(tmp_path)
        assert main(["obs", "trace", "dump", str(path)]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 2
        assert all(json.loads(line)["name"] for line in lines)

    def test_slowest_limits(self, tmp_path, capsys):
        from repro.cli import main

        path = self.fill(tmp_path)
        assert main(["obs", "trace", "slowest", str(path), "--limit", "1"]) == 0
        out = capsys.readouterr().out
        headers = [l for l in out.splitlines() if l.startswith("trace ") and ":" in l]
        assert len(headers) == 1

    def test_missing_file_is_io_error(self, tmp_path, capsys):
        from repro.cli import EXIT_IO_ERROR, main

        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "trace", "tree", str(missing)]) == EXIT_IO_ERROR
