"""Chaos coverage: telemetry keeps reporting through injected crashes.

A crash mid-snapshot must not take the observability layer down with it:
the aborted ``persist.save`` span still lands (flagged as an error), the
acknowledged journal appends stay counted, and the subsequent recovery
load emits its ``persist.recover`` span, counters, and ring-buffer event.
"""

import pytest

from repro.core.frequency import AttributeDistribution
from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.catalog import StatsCatalog
from repro.engine.journal import MaintenanceJournal
from repro.engine.persist import load_catalog, save_catalog
from repro.maint.update import MaintainedEndBiased
from repro.obs import runtime
from repro.testing.faults import (
    POINT_PERSIST_FLUSH,
    POINT_PERSIST_REPLACE,
    FaultInjector,
    InjectedFault,
)

KEY = ("R", "a")


@pytest.fixture(autouse=True)
def fresh_registry():
    runtime.reset()
    yield
    runtime.reset()


def build_maintained(journal):
    freqs = quantize_to_integers(zipf_frequencies(400, 20, 1.3)).astype(float)
    distribution = AttributeDistribution(list(range(20)), freqs)
    return MaintainedEndBiased(
        distribution,
        5,
        track_values=False,
        journal=journal,
        relation=KEY[0],
        attribute=KEY[1],
    )


@pytest.mark.parametrize("point", [POINT_PERSIST_FLUSH, POINT_PERSIST_REPLACE])
def test_crash_mid_snapshot_still_emits_spans_and_counters(point, tmp_path):
    registry = runtime.get_registry()
    snapshot = tmp_path / "catalog.json"
    wal = tmp_path / "wal.jsonl"
    journal = MaintenanceJournal(wal)
    maintained = build_maintained(journal)
    catalog = StatsCatalog()

    appended = 0
    with FaultInjector().fail_at(point):
        for value in (0, 1, 2, 3):
            maintained.insert(value)
            appended += 1
        maintained.publish(catalog, *KEY)
        with pytest.raises(InjectedFault):
            save_catalog(catalog, snapshot, journal=journal)

    # The aborted save's span landed, marked as an error.
    assert (
        registry.counter("repro_span_errors_total", span="persist.save").value == 1.0
    )
    assert registry.counter("repro_span_total", span="persist.save").value == 1.0
    # Every acknowledged append was counted before the crash.
    assert (
        registry.counter("repro_journal_appends_total", op="insert").value
        == appended
    )
    # The snapshot never published, so no save was counted as completed.
    assert registry.counter("repro_persist_saves_total").value == 0.0

    # Recovery after the crash emits its own span, counters, and event.
    report = load_catalog(snapshot, recover=True, journal=wal)
    assert report.snapshot_found is False
    assert report.journal_replayed == 0  # deltas orphaned: entry never landed
    assert (
        registry.counter("repro_persist_loads_total", mode="recover").value == 1.0
    )
    assert (
        registry.histogram("repro_span_duration_seconds", span="persist.recover").count
        == 1
    )
    events = [event for event in registry.events() if event.name == "persist.recover"]
    assert len(events) == 1
    assert dict(events[0].fields)["clean"] == "False"


def test_clean_save_then_recover_counts_replayed_deltas(tmp_path):
    registry = runtime.get_registry()
    snapshot = tmp_path / "catalog.json"
    wal = tmp_path / "wal.jsonl"
    journal = MaintenanceJournal(wal)
    maintained = build_maintained(journal)
    catalog = StatsCatalog()
    maintained.publish(catalog, *KEY)
    save_catalog(catalog, snapshot, journal=journal)
    for value in (0, 1, 2):
        maintained.insert(value)

    report = load_catalog(snapshot, recover=True, journal=wal)
    assert report.clean
    assert report.journal_replayed == 3
    assert (
        registry.counter("repro_recovery_journal_deltas_replayed_total").value == 3.0
    )
    assert registry.counter("repro_persist_saves_total").value == 1.0
    assert registry.counter("repro_journal_checkpoints_total").value == 1.0
    checkpoint_events = [
        event for event in registry.events() if event.name == "journal.checkpoint"
    ]
    assert len(checkpoint_events) == 1
