"""Accuracy-monitor tests, anchored to Proposition 3.1.

The key identity: for any bucketed histogram answering self-joins with the
uniform-within-bucket formula ``S' = Σ T_i²/p_i``, the error against the
exact ``S = Σ f_i²`` is **exactly** ``S - S' = Σ p_i·v_i`` — the quantity
:func:`repro.obs.theoretical_self_join_error` computes from the buckets.
The monitor's measured signed error must therefore agree with the
theoretical prediction to float precision on a seeded Zipf fixture.
"""

import math

import pytest

from repro.core.biased import v_opt_bias_hist
from repro.core.optimality import self_join_size
from repro.core.serial import v_optimal_serial_histogram
from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.obs import runtime
from repro.obs.accuracy import (
    AccuracyMonitor,
    ErrorStats,
    probe_key,
    theoretical_self_join_error,
)
from repro.serve import EqualityProbe, JoinProbe, RangeProbe


@pytest.fixture(autouse=True)
def fresh_registry():
    runtime.reset()
    yield
    runtime.reset()


class TestErrorStats:
    def test_aggregates(self):
        stats = ErrorStats()
        stats.record(estimated=10.0, actual=12.0)  # signed +2
        stats.record(estimated=10.0, actual=6.0)  # signed -4
        assert stats.count == 2
        assert stats.mean_signed_error == pytest.approx(-1.0)
        assert stats.mean_absolute_error == pytest.approx(3.0)
        assert stats.mean_squared_error == pytest.approx((4.0 + 16.0) / 2)
        assert stats.mean_relative_error == pytest.approx(
            (2.0 / 12.0 + 4.0 / 6.0) / 2
        )

    def test_empty_stats_are_zero(self):
        stats = ErrorStats()
        assert stats.mean_signed_error == 0.0
        assert stats.mean_squared_error == 0.0


class TestProbeKey:
    def test_equality_probe(self):
        assert probe_key(EqualityProbe("R", "a", 3)) == ("equality", "R", "a")

    def test_range_probe(self):
        assert probe_key(RangeProbe("R", "a", 1, 5)) == ("range", "R", "a")

    def test_open_range_probe_still_keys_as_range(self):
        assert probe_key(RangeProbe("R", "a")) == ("range", "R", "a")

    def test_join_probe(self):
        key = probe_key(JoinProbe("L", "x", "R", "y"))
        assert key == ("join", "L⋈R", "x=y")

    def test_tuple_and_string_fallbacks(self):
        assert probe_key(("R", "a")) == ("other", "R", "a")
        assert probe_key("R") == ("other", "R", "unknown")
        assert probe_key(object()) == ("other", "unknown", "unknown")


class TestTheoreticalSelfJoinError:
    def test_matches_histogram_self_join_error(self):
        freqs = quantize_to_integers(zipf_frequencies(2000.0, 50, 1.2))
        histogram = v_opt_bias_hist(freqs, 6)
        assert theoretical_self_join_error(histogram) == pytest.approx(
            histogram.self_join_error()
        )

    @pytest.mark.parametrize("z", [0.0, 0.5, 1.0, 2.0])
    @pytest.mark.parametrize("buckets", [2, 5, 10])
    def test_proposition_31_identity_on_seeded_zipf(self, z, buckets):
        """Measured S - S' equals Σ p_i·v_i exactly (Proposition 3.1)."""
        freqs = quantize_to_integers(zipf_frequencies(3000.0, 40, z))
        for histogram in (
            v_opt_bias_hist(freqs, buckets),
            v_optimal_serial_histogram(freqs, min(buckets, 5), method="dp"),
        ):
            measured = self_join_size(freqs) - histogram.self_join_estimate()
            predicted = theoretical_self_join_error(histogram)
            assert measured == pytest.approx(predicted, rel=1e-9, abs=1e-6)

    def test_rejects_non_histograms(self):
        with pytest.raises(TypeError, match="buckets"):
            theoretical_self_join_error(42)


class TestAccuracyMonitor:
    def test_record_observation_accumulates_per_key(self):
        monitor = AccuracyMonitor()
        probe = EqualityProbe("R", "a", 1)
        monitor.record_observation(probe, estimated=10.0, actual=12.0)
        monitor.record_observation(probe, estimated=8.0, actual=8.0)
        stats = monitor.stats(("equality", "R", "a"))
        assert stats.count == 2
        assert stats.mean_signed_error == pytest.approx(1.0)

    def test_non_finite_observations_are_dropped(self):
        monitor = AccuracyMonitor()
        probe = EqualityProbe("R", "a", 1)
        monitor.record_observation(probe, estimated=math.nan, actual=5.0)
        monitor.record_observation(probe, estimated=1.0, actual=math.inf)
        assert monitor.stats(("equality", "R", "a")) is None

    def test_stats_returns_detached_copy(self):
        monitor = AccuracyMonitor()
        probe = EqualityProbe("R", "a", 1)
        monitor.record_observation(probe, estimated=1.0, actual=2.0)
        copy = monitor.stats(("equality", "R", "a"))
        copy.record(estimated=0.0, actual=100.0)
        assert monitor.stats(("equality", "R", "a")).count == 1

    def test_measured_self_join_error_matches_proposition_31(self):
        """Acceptance: the monitor's signed error equals Σ p_i·v_i."""
        freqs = quantize_to_integers(zipf_frequencies(2000.0, 60, 1.0))
        histogram = v_opt_bias_hist(freqs, 8)
        monitor = AccuracyMonitor()
        key = monitor.record_self_join("R", histogram, self_join_size(freqs))
        stats = monitor.stats(key)
        assert stats.count == 1
        assert stats.sum_signed == pytest.approx(
            theoretical_self_join_error(histogram), rel=1e-9, abs=1e-6
        )

    def test_collect_emits_samples_for_each_key(self):
        monitor = AccuracyMonitor()
        monitor.record_observation(EqualityProbe("R", "a", 1), 1.0, 2.0)
        samples = monitor.collect()
        names = {sample.name for sample in samples}
        assert "repro_accuracy_observations_total" in names
        assert "repro_accuracy_mean_squared_error" in names
        labels = dict(samples[0].labels)
        assert labels == {"attribute": "a", "kind": "equality", "relation": "R"}

    def test_bound_monitor_appears_in_registry_dump(self):
        registry = runtime.get_registry()
        monitor = AccuracyMonitor()
        monitor.bind(registry)
        monitor.record_observation(EqualityProbe("R", "a", 1), 1.0, 2.0)
        assert "repro_accuracy_observations_total" in registry.to_prometheus()

    def test_as_dict_keys_are_readable(self):
        monitor = AccuracyMonitor()
        monitor.record_observation(EqualityProbe("R", "a", 1), 1.0, 2.0)
        assert "equality/R/a" in monitor.as_dict()


class TestTruthBackedAccuracy:
    """Feed the monitor real (estimate, exact) pairs via optimizer.truth."""

    def _build(self):
        from repro.engine.analyze import analyze_relation
        from repro.engine.catalog import StatsCatalog
        from repro.engine.relation import Relation
        from repro.optimizer.joinorder import JoinEdge, JoinGraph
        from repro.serve import EstimationService
        from repro.util.rng import derive_rng

        gen = derive_rng(20260806)
        catalog = StatsCatalog()
        relations = []
        for index, z in enumerate((0.8, 1.4)):
            freqs = quantize_to_integers(zipf_frequencies(800.0, 30, z))
            column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
            gen.shuffle(column)
            relation = Relation.from_columns(f"R{index}", {"a": column})
            analyze_relation(
                relation, "a", catalog, kind="end-biased", buckets=8
            )
            relations.append(relation)
        graph = JoinGraph(
            relations, [JoinEdge("R0", "a", "R1", "a")]
        )
        return EstimationService(catalog), graph

    def test_join_observation_against_counted_truth(self):
        from repro.optimizer.truth import CountedTruth

        service, graph = self._build()
        probe = JoinProbe("R0", "a", "R1", "a")
        (estimated,) = service.estimate_batch([probe])
        actual = CountedTruth(graph).subset_cardinality(frozenset({"R0", "R1"}))
        monitor = AccuracyMonitor()
        key = monitor.record_observation(probe, float(estimated), actual)
        stats = monitor.stats(key)
        assert key == ("join", "R0⋈R1", "a=a")
        assert stats.count == 1
        # The estimate is a real estimate of a real cardinality: both sides
        # are positive and within an order of magnitude of each other.
        assert actual > 0
        assert estimated > 0
        assert stats.mean_relative_error < 1.0
