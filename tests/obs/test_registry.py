"""Unit tests for the metric registry: instruments, events, exposition."""

import gc
import json
import math

import pytest

from repro.obs import runtime
from repro.obs.registry import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricRegistry,
    Sample,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    runtime.reset()
    yield
    runtime.reset()


class TestInstruments:
    def test_counter_counts(self):
        registry = MetricRegistry()
        counter = registry.counter("repro_things_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        registry = MetricRegistry()
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("repro_things_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricRegistry()
        gauge = registry.gauge("repro_depth")
        gauge.set(5.0)
        gauge.inc(-2.0)
        assert gauge.value == 3.0

    def test_labels_identify_children(self):
        registry = MetricRegistry()
        a = registry.counter("repro_ops_total", op="insert")
        b = registry.counter("repro_ops_total", op="delete")
        a.inc()
        assert a is not b
        assert b.value == 0.0

    def test_label_order_is_canonical(self):
        registry = MetricRegistry()
        a = registry.counter("repro_ops_total", op="x", table="t")
        b = registry.counter("repro_ops_total", table="t", op="x")
        assert a is b

    def test_same_name_same_instrument(self):
        registry = MetricRegistry()
        assert registry.counter("repro_a_total") is registry.counter("repro_a_total")

    def test_kind_conflict_rejected(self):
        registry = MetricRegistry()
        registry.counter("repro_a_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_a_total")

    def test_bad_metric_name_rejected(self):
        registry = MetricRegistry()
        with pytest.raises(ValueError, match="metric name"):
            registry.counter("bad name!")

    def test_bad_label_name_rejected(self):
        registry = MetricRegistry()
        with pytest.raises(ValueError, match="label name"):
            registry.counter("repro_a_total", **{"bad-label": "x"})

    def test_histogram_buckets_and_sum(self):
        registry = MetricRegistry()
        histogram = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(2.0)
        counts, total, count = histogram.snapshot()
        assert counts == [1, 1, 1]
        assert count == 3
        assert total == pytest.approx(2.55)

    def test_histogram_bounds_must_be_sorted(self):
        with pytest.raises(ValueError, match="sorted"):
            HistogramMetric("repro_x", (), bounds=(1.0, 0.1))


class TestEvents:
    def test_ring_buffer_is_bounded(self):
        registry = MetricRegistry(max_events=3)
        for index in range(10):
            registry.record_event("tick", n=index)
        events = registry.events()
        assert len(events) == 3
        assert [dict(e.fields)["n"] for e in events] == ["7", "8", "9"]

    def test_timestamps_are_monotonic(self):
        registry = MetricRegistry()
        registry.record_event("a")
        registry.record_event("b")
        first, second = registry.events()
        assert second.timestamp >= first.timestamp


class TestCollectors:
    def test_collector_samples_appear_in_exposition(self):
        registry = MetricRegistry()
        registry.register_collector(
            lambda: [Sample(name="repro_custom", labels=(), value=7.0)]
        )
        assert "repro_custom 7" in registry.to_prometheus()

    def test_owner_weakref_prunes_dead_collectors(self):
        registry = MetricRegistry()

        class Owner:
            def produce(self):
                return [Sample(name="repro_owned", labels=(), value=1.0)]

        owner = Owner()
        registry.register_collector(Owner.produce, owner=owner)
        assert "repro_owned" in registry.to_prometheus()
        del owner
        gc.collect()
        assert "repro_owned" not in registry.to_prometheus()

    def test_raising_collector_is_isolated_and_counted(self):
        registry = MetricRegistry()

        def bad():
            raise RuntimeError("observer bug")

        registry.register_collector(bad)
        registry.counter("repro_fine_total").inc()
        text = registry.to_prometheus()
        assert "repro_fine_total 1" in text
        assert registry.counter("repro_obs_collector_errors_total").value >= 1

    def test_non_callable_rejected(self):
        registry = MetricRegistry()
        with pytest.raises(TypeError, match="callable"):
            registry.register_collector("nope")


class TestExposition:
    def test_prometheus_format_shape(self):
        registry = MetricRegistry()
        registry.counter("repro_ops_total", "operations", op="insert").inc(2)
        text = registry.to_prometheus()
        assert "# HELP repro_ops_total operations" in text
        assert "# TYPE repro_ops_total counter" in text
        assert 'repro_ops_total{op="insert"} 2' in text

    def test_label_values_are_escaped(self):
        registry = MetricRegistry()
        registry.counter("repro_ops_total", path='a"b\\c\nd').inc()
        text = registry.to_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_histogram_exposes_cumulative_buckets(self):
        registry = MetricRegistry()
        histogram = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.to_prometheus()
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text

    def test_json_is_standard_and_complete(self):
        registry = MetricRegistry()
        registry.counter("repro_ops_total", op="x").inc()
        registry.histogram("repro_lat_seconds").observe(0.5)
        registry.record_event("checkpoint", dropped=3)
        data = json.loads(registry.to_json())
        names = {metric["name"] for metric in data["metrics"]}
        assert {"repro_ops_total", "repro_lat_seconds"} <= names
        histogram = next(
            m for m in data["metrics"] if m["name"] == "repro_lat_seconds"
        )
        assert histogram["buckets"][-1]["le"] == "+Inf"
        assert data["events"][0]["name"] == "checkpoint"
        assert data["events"][0]["fields"] == {"dropped": "3"}


class TestRuntimeHelpers:
    def test_helpers_record_into_default_registry(self):
        runtime.count("repro_helper_total", 2, op="x")
        runtime.observe("repro_helper_seconds", 0.5)
        runtime.set_gauge("repro_helper_depth", 4)
        runtime.emit_event("helper.event")
        registry = runtime.get_registry()
        assert registry.counter("repro_helper_total", op="x").value == 2.0
        assert registry.histogram("repro_helper_seconds").count == 1
        assert registry.gauge("repro_helper_depth").value == 4.0
        assert registry.events()[-1].name == "helper.event"

    def test_disabled_helpers_are_no_ops(self):
        runtime.set_instrumentation(False)
        try:
            runtime.count("repro_helper_total")
            runtime.observe("repro_helper_seconds", 0.5)
            assert runtime.emit_event("helper.event") is None
        finally:
            runtime.set_instrumentation(True)
        registry = runtime.get_registry()
        assert registry.counter("repro_helper_total").value == 0.0
        assert registry.events() == []

    def test_broken_helper_call_never_raises(self):
        runtime.count("not a valid name!!!")
        registry = runtime.get_registry()
        assert registry.counter("repro_obs_internal_errors_total").value >= 1

    def test_set_registry_swaps_and_returns_previous(self):
        original = runtime.get_registry()
        replacement = MetricRegistry()
        previous = runtime.set_registry(replacement)
        try:
            assert previous is original
            assert runtime.get_registry() is replacement
        finally:
            runtime.set_registry(original)

    def test_set_registry_type_checked(self):
        with pytest.raises(TypeError, match="MetricRegistry"):
            runtime.set_registry(object())

    def test_infinity_formatting(self):
        registry = MetricRegistry()
        registry.gauge("repro_inf").set(math.inf)
        assert "repro_inf +Inf" in registry.to_prometheus()


class TestHandleCache:
    def test_repeat_calls_reuse_one_child(self):
        runtime.count("repro_cached_total", op="x")
        cached = runtime._handles[
            ("counter", "repro_cached_total", (("op", "x"),))
        ]
        runtime.count("repro_cached_total", op="x")
        assert cached.value == 2.0
        assert runtime.get_registry().counter("repro_cached_total", op="x") is cached

    def test_label_order_shares_the_handle(self):
        runtime.count("repro_cached_total", a="1", b="2")
        runtime.count("repro_cached_total", b="2", a="1")
        assert (
            runtime.get_registry().counter("repro_cached_total", a="1", b="2").value
            == 2.0
        )
        cache_keys = [k for k in runtime._handles if k[1] == "repro_cached_total"]
        assert len(cache_keys) == 1

    def test_registry_swap_invalidates_the_cache(self):
        runtime.count("repro_cached_total")
        assert runtime._handles
        original = runtime.set_registry(MetricRegistry())
        try:
            assert runtime._handles == {}
            runtime.count("repro_cached_total", 5)
            assert (
                runtime.get_registry().counter("repro_cached_total").value == 5.0
            )
        finally:
            runtime.set_registry(original)

    def test_cache_size_is_bounded(self):
        runtime._handles.clear()
        for index in range(3):
            runtime.count("repro_cardinality_total", key=str(index))
        assert len(runtime._handles) <= runtime._MAX_CACHED_HANDLES
        # Past the cap, recording still works — it just skips the cache.
        original_cap = runtime._MAX_CACHED_HANDLES
        runtime._MAX_CACHED_HANDLES = 0
        try:
            runtime._handles.clear()
            runtime.count("repro_uncached_total")
            assert runtime._handles == {}
            assert runtime.get_registry().counter("repro_uncached_total").value == 1.0
        finally:
            runtime._MAX_CACHED_HANDLES = original_cap
