"""Unit tests for tracing spans: nesting, sinks, failure isolation."""

import threading

import pytest

from repro.obs import runtime
from repro.obs.tracing import (
    SPAN_NAMES,
    add_span_sink,
    clear_span_sinks,
    current_span_name,
    remove_span_sink,
    span,
)


@pytest.fixture(autouse=True)
def fresh_obs():
    runtime.reset()
    clear_span_sinks()
    yield
    runtime.reset()
    clear_span_sinks()


@pytest.fixture()
def records():
    captured = []
    add_span_sink(captured.append)
    return captured


class TestSpans:
    def test_span_times_with_monotonic_clock(self, records):
        with span("serve.batch"):
            pass
        (record,) = records
        assert record.name == "serve.batch"
        assert record.end >= record.start
        assert record.duration >= 0.0
        assert record.error is False

    def test_nesting_links_parent_and_depth(self, records):
        with span("maint.publish"):
            with span("journal.append"):
                with span("journal.fsync"):
                    assert current_span_name() == "journal.fsync"
        by_name = {record.name: record for record in records}
        assert by_name["maint.publish"].parent is None
        assert by_name["maint.publish"].depth == 0
        assert by_name["journal.append"].parent == "maint.publish"
        assert by_name["journal.append"].depth == 1
        assert by_name["journal.fsync"].parent == "journal.append"
        assert by_name["journal.fsync"].depth == 2
        assert current_span_name() is None

    def test_exception_marks_error_and_propagates(self, records):
        with pytest.raises(RuntimeError, match="boom"):
            with span("serve.batch"):
                raise RuntimeError("boom")
        (record,) = records
        assert record.error is True
        registry = runtime.get_registry()
        assert (
            registry.counter("repro_span_errors_total", span="serve.batch").value
            == 1.0
        )
        # The stack unwound: the next span is a root again.
        with span("persist.save"):
            pass
        assert records[-1].parent is None

    def test_tags_are_attached(self, records):
        with span("serve.batch", probes=10, service="svc"):
            pass
        assert dict(records[0].tags) == {"probes": "10", "service": "svc"}

    def test_span_feeds_registry_histogram(self):
        with span("persist.load"):
            pass
        registry = runtime.get_registry()
        histogram = registry.histogram(
            "repro_span_duration_seconds", span="persist.load"
        )
        assert histogram.count == 1
        assert registry.counter("repro_span_total", span="persist.load").value == 1.0

    def test_threads_have_independent_stacks(self, records):
        ready = threading.Barrier(2)

        def worker():
            ready.wait()
            with span("journal.append"):
                pass

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(records) == 2
        assert all(record.parent is None for record in records)
        assert all(record.depth == 0 for record in records)


class TestSinks:
    def test_raising_sink_is_swallowed_and_counted(self, records):
        def bad_sink(record):
            raise RuntimeError("observer bug")

        add_span_sink(bad_sink)
        with span("serve.batch"):
            pass
        # The good sink still got the record and the body was unharmed.
        assert len(records) == 1
        registry = runtime.get_registry()
        assert (
            registry.counter("repro_obs_sink_errors_total", kind="span_sink").value
            == 1.0
        )

    def test_remove_span_sink(self, records):
        assert remove_span_sink(records.append) is True
        assert remove_span_sink(records.append) is False
        with span("serve.batch"):
            pass
        assert records == []

    def test_sink_must_be_callable(self):
        with pytest.raises(TypeError, match="callable"):
            add_span_sink("nope")


class TestDisabled:
    def test_disabled_span_is_a_shared_no_op(self, records):
        runtime.set_instrumentation(False)
        first = span("serve.batch")
        second = span("journal.append", op="insert")
        assert first is second
        with first:
            assert current_span_name() is None
        assert records == []

    def test_reenabling_restores_spans(self, records):
        runtime.set_instrumentation(False)
        runtime.set_instrumentation(True)
        with span("serve.batch"):
            pass
        assert len(records) == 1


def test_span_catalogue_is_unique_and_dotted():
    assert len(SPAN_NAMES) == len(set(SPAN_NAMES))
    assert all("." in name for name in SPAN_NAMES)
