"""Threaded stress: concurrent writers and dumpers see consistent values.

Satellite coverage for ISSUE 5: many threads hammer counters and a
histogram while other threads repeatedly render the exposition.  Every
dump must observe monotonically non-decreasing counters and non-torn
histograms (bucket counts, count, and sum move together), and the final
totals must show no lost updates.
"""

import json
import re
import threading

import pytest

from repro.obs import runtime
from repro.obs.registry import MetricRegistry

WRITERS = 8
INCREMENTS = 2_000


@pytest.fixture(autouse=True)
def fresh_registry():
    runtime.reset()
    yield
    runtime.reset()


def test_concurrent_increments_and_dumps_are_consistent():
    registry = MetricRegistry()
    start = threading.Barrier(WRITERS + 2)
    stop = threading.Event()
    failures: list[str] = []

    def writer(index: int) -> None:
        start.wait()
        counter = registry.counter("repro_stress_total", worker=str(index))
        shared = registry.counter("repro_stress_shared_total")
        histogram = registry.histogram("repro_stress_seconds")
        for step in range(INCREMENTS):
            counter.inc()
            shared.inc()
            histogram.observe(step * 1e-6)

    def dumper() -> None:
        start.wait()
        last_shared = 0.0
        pattern = re.compile(r"^repro_stress_shared_total (\d+)", re.MULTILINE)
        while not stop.is_set():
            text = registry.to_prometheus()
            match = pattern.search(text)
            if match:
                value = float(match.group(1))
                if value < last_shared:
                    failures.append(
                        f"shared counter went backwards: {last_shared} -> {value}"
                    )
                last_shared = value
            data = json.loads(registry.to_json())
            for metric in data["metrics"]:
                if "buckets" not in metric:
                    continue
                bucket_total = sum(b["count"] for b in metric["buckets"])
                if bucket_total != metric["count"]:
                    failures.append(
                        f"torn histogram {metric['name']}: buckets sum to "
                        f"{bucket_total}, count is {metric['count']}"
                    )

    threads = [
        threading.Thread(target=writer, args=(index,)) for index in range(WRITERS)
    ]
    threads += [threading.Thread(target=dumper) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads[:WRITERS]:
        thread.join()
    stop.set()
    for thread in threads[WRITERS:]:
        thread.join()

    assert failures == []
    assert registry.counter("repro_stress_shared_total").value == WRITERS * INCREMENTS
    for index in range(WRITERS):
        assert (
            registry.counter("repro_stress_total", worker=str(index)).value
            == INCREMENTS
        )
    histogram = registry.histogram("repro_stress_seconds")
    counts, _, count = histogram.snapshot()
    assert count == WRITERS * INCREMENTS
    assert sum(counts) == count


def test_concurrent_instrument_creation_under_exposition():
    """Creating new label children mid-dump never corrupts the registry."""
    registry = MetricRegistry()
    start = threading.Barrier(4)
    errors: list[BaseException] = []

    def creator(index: int) -> None:
        start.wait()
        try:
            for step in range(500):
                registry.counter(
                    "repro_stress_children_total", child=str((index * 500) + step)
                ).inc()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def dumper() -> None:
        start.wait()
        try:
            for _ in range(50):
                registry.to_prometheus()
                registry.as_dict()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=creator, args=(i,)) for i in range(3)]
    threads.append(threading.Thread(target=dumper))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    total = sum(
        child.value
        for child in [
            registry.counter("repro_stress_children_total", child=str(n))
            for n in range(1500)
        ]
    )
    assert total == 1500
