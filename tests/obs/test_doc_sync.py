"""Doc-sync guard: the span taxonomy in the docs matches the code.

`SPAN_NAMES` is the single source of truth for instrumented span names;
the table in ``docs/OBSERVABILITY.md`` is its human-facing mirror.  This
test fails the build when either side drifts, naming exactly what is
missing where.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.tracing import SPAN_NAMES

DOC_PATH = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"


def documented_span_names() -> list[str]:
    """First-column code spans of the `| Span | Emitted from |` table."""
    text = DOC_PATH.read_text(encoding="utf-8")
    match = re.search(
        r"^\| Span \| Emitted from \|\n\|[-| ]+\|\n((?:\|.*\|\n)+)",
        text,
        flags=re.MULTILINE,
    )
    assert match is not None, "span table not found in docs/OBSERVABILITY.md"
    names = []
    for row in match.group(1).strip().splitlines():
        cell = row.split("|")[1].strip()
        inner = re.fullmatch(r"`([^`]+)`", cell)
        assert inner is not None, f"malformed span-table row: {row!r}"
        names.append(inner.group(1))
    return names


def test_span_table_matches_span_names_exactly():
    documented = documented_span_names()
    in_code = set(SPAN_NAMES)
    in_docs = set(documented)
    assert len(documented) == len(in_docs), "duplicate rows in the span table"
    missing_from_docs = sorted(in_code - in_docs)
    missing_from_code = sorted(in_docs - in_code)
    assert not missing_from_docs, (
        f"spans missing a docs/OBSERVABILITY.md table row: {missing_from_docs}"
    )
    assert not missing_from_code, (
        f"documented spans absent from SPAN_NAMES: {missing_from_code}"
    )
