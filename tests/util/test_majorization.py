"""Tests for repro.util.majorization — the theory behind Theorem 3.1."""

import numpy as np
import pytest

from repro.data.zipf import zipf_frequencies
from repro.util.majorization import (
    dalton_transfer,
    is_majorized_by,
    lorenz_curve,
    majorization_distance,
)


class TestIsMajorizedBy:
    def test_uniform_majorized_by_everything(self):
        uniform = [2.0, 2.0, 2.0]
        skewed = [4.0, 1.0, 1.0]
        assert is_majorized_by(uniform, skewed)
        assert not is_majorized_by(skewed, uniform)

    def test_reflexive(self):
        v = [5.0, 3.0, 1.0]
        assert is_majorized_by(v, v)

    def test_permutation_invariant(self):
        assert is_majorized_by([1.0, 3.0, 5.0], [5.0, 1.0, 3.0])

    def test_unequal_totals_not_comparable(self):
        assert not is_majorized_by([1.0, 1.0], [2.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            is_majorized_by([1.0], [1.0, 2.0])

    def test_zipf_skew_ordering(self):
        """Higher z Zipf majorizes lower z — skew is monotone in z."""
        low = zipf_frequencies(100, 10, 0.5)
        high = zipf_frequencies(100, 10, 2.0)
        assert is_majorized_by(low, high)
        assert not is_majorized_by(high, low)

    def test_self_join_size_is_schur_convex(self):
        """x ≺ y implies sum(x²) <= sum(y²) — why skew raises self-join size."""
        for z_low, z_high in [(0.0, 0.5), (0.5, 1.0), (1.0, 3.0)]:
            x = zipf_frequencies(1000, 20, z_low)
            y = zipf_frequencies(1000, 20, z_high)
            assert is_majorized_by(x, y)
            assert np.dot(x, x) <= np.dot(y, y) + 1e-9


class TestDaltonTransfer:
    def test_transfer_produces_majorized_vector(self):
        original = np.array([10.0, 6.0, 2.0])
        transferred = dalton_transfer(original, rich=0, poor=2, amount=2.0)
        assert is_majorized_by(transferred, original)

    def test_totals_preserved(self):
        original = np.array([10.0, 6.0, 2.0])
        transferred = dalton_transfer(original, rich=0, poor=1, amount=1.0)
        assert transferred.sum() == pytest.approx(original.sum())

    def test_rejects_order_reversal(self):
        with pytest.raises(ValueError, match="reverse"):
            dalton_transfer([10.0, 2.0], rich=0, poor=1, amount=5.0)

    def test_rejects_wrong_direction(self):
        with pytest.raises(ValueError, match="larger"):
            dalton_transfer([2.0, 10.0], rich=0, poor=1, amount=1.0)

    def test_rejects_same_index(self):
        with pytest.raises(ValueError, match="differ"):
            dalton_transfer([2.0, 10.0], rich=1, poor=1, amount=1.0)

    def test_rejects_negative_amount(self):
        with pytest.raises(ValueError, match="non-negative"):
            dalton_transfer([10.0, 2.0], rich=0, poor=1, amount=-1.0)

    def test_out_of_range_indices(self):
        with pytest.raises(IndexError):
            dalton_transfer([10.0, 2.0], rich=5, poor=1, amount=1.0)


class TestLorenzCurve:
    def test_endpoints(self):
        population, mass = lorenz_curve([1.0, 2.0, 3.0])
        assert population[0] == 0.0 and population[-1] == 1.0
        assert mass[0] == 0.0 and mass[-1] == pytest.approx(1.0)

    def test_uniform_is_diagonal(self):
        population, mass = lorenz_curve([2.0, 2.0, 2.0, 2.0])
        assert np.allclose(population, mass)

    def test_skew_bows_below_diagonal(self):
        population, mass = lorenz_curve(zipf_frequencies(100, 10, 2.0))
        assert np.all(mass <= population + 1e-12)
        assert mass[5] < population[5]

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            lorenz_curve([1.0, -1.0])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="all-zero"):
            lorenz_curve([0.0, 0.0])


class TestMajorizationDistance:
    def test_zero_for_permutations(self):
        assert majorization_distance([1.0, 2.0, 3.0], [3.0, 1.0, 2.0]) == pytest.approx(0.0)

    def test_positive_for_more_skewed(self):
        uniform = [2.0, 2.0, 2.0]
        skewed = [4.0, 1.0, 1.0]
        assert majorization_distance(uniform, skewed) > 0

    def test_monotone_in_zipf_z(self):
        base = zipf_frequencies(100, 10, 0.0)
        distances = [
            majorization_distance(base, zipf_frequencies(100, 10, z))
            for z in (0.5, 1.0, 2.0)
        ]
        assert distances == sorted(distances)
