"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, spawn_rngs


class TestDeriveRng:
    def test_none_returns_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = derive_rng(42).integers(0, 1_000_000, size=8)
        b = derive_rng(42).integers(0, 1_000_000, size=8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1).integers(0, 1_000_000, size=8)
        b = derive_rng(2).integers(0, 1_000_000, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert derive_rng(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(7)
        a = derive_rng(seed).integers(0, 100, size=4)
        b = derive_rng(7).integers(0, 100, size=4)
        assert np.array_equal(a, b)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="random source"):
            derive_rng("seed")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            derive_rng(1.5)


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 1_000_000, size=16)
        b = children[1].integers(0, 1_000_000, size=16)
        assert not np.array_equal(a, b)

    def test_reproducible_family(self):
        first = [c.integers(0, 1000, size=4) for c in spawn_rngs(9, 3)]
        second = [c.integers(0, 1000, size=4) for c in spawn_rngs(9, 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)
