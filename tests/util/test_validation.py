"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_positive_int,
)


class TestEnsurePositiveInt:
    def test_accepts_int(self):
        assert ensure_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert ensure_positive_int(np.int32(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            ensure_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="x must be an integer"):
            ensure_positive_int(2.0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_positive_int(True, "x")


class TestEnsurePositive:
    def test_accepts_float(self):
        assert ensure_positive(0.5, "t") == 0.5

    def test_accepts_int(self):
        assert ensure_positive(2, "t") == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="t must be positive"):
            ensure_positive(0.0, "t")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            ensure_positive("1", "t")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert ensure_non_negative(0, "v") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            ensure_non_negative(-1e-9, "v")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ensure_non_negative(float("nan"), "v")


class TestEnsureInRange:
    def test_within(self):
        assert ensure_in_range(0.5, "z", low=0.0, high=1.0) == 0.5

    def test_boundaries_inclusive(self):
        assert ensure_in_range(0.0, "z", low=0.0, high=1.0) == 0.0
        assert ensure_in_range(1.0, "z", low=0.0, high=1.0) == 1.0

    def test_below(self):
        with pytest.raises(ValueError, match=">= 0"):
            ensure_in_range(-0.1, "z", low=0.0)

    def test_above(self):
        with pytest.raises(ValueError, match="<= 1"):
            ensure_in_range(1.1, "z", high=1.0)

    def test_open_ended(self):
        assert ensure_in_range(1e9, "z", low=0.0) == 1e9


class TestNumpyScalars:
    """Numpy scalars must be accepted wherever Python numbers are."""

    def test_float64_accepted(self):
        assert ensure_positive(np.float64(2.5), "x") == 2.5
        assert ensure_non_negative(np.float64(0.0), "x") == 0.0

    def test_float32_accepted(self):
        assert ensure_positive(np.float32(0.5), "x") == pytest.approx(0.5)

    def test_int64_accepted_everywhere(self):
        assert ensure_positive_int(np.int64(4), "x") == 4
        assert ensure_positive(np.int64(4), "x") == 4.0
        assert ensure_in_range(np.int64(4), "x", low=0, high=10) == 4.0

    def test_numpy_bool_rejected(self):
        with pytest.raises(TypeError):
            ensure_positive_int(np.bool_(True), "x")
        with pytest.raises(TypeError):
            ensure_positive(np.bool_(False), "x")

    def test_results_are_builtin_types(self):
        assert type(ensure_positive_int(np.int64(4), "x")) is int
        assert type(ensure_non_negative(np.float64(1.0), "x")) is float


class TestNonFiniteInputs:
    def test_nan_rejected_by_positive(self):
        with pytest.raises(ValueError, match="x must be positive, got nan"):
            ensure_positive(float("nan"), "x")

    def test_nan_rejected_by_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            ensure_non_negative(float("nan"), "x")

    def test_nan_rejected_by_range(self):
        with pytest.raises(ValueError):
            ensure_in_range(float("nan"), "x", low=0.0)

    def test_infinity_passes_sign_checks(self):
        # The validators enforce sign/domain only; finiteness of *estimates*
        # is the contracts layer's job (repro.analysis.contracts.check_estimate).
        assert ensure_positive(float("inf"), "x") == float("inf")
        assert ensure_non_negative(float("inf"), "x") == float("inf")


class TestErrorMessageWording:
    """Messages must name the argument and the offending type or value."""

    def test_type_errors_name_argument_and_type(self):
        with pytest.raises(TypeError, match="buckets must be an integer, got str"):
            ensure_positive_int("3", "buckets")
        with pytest.raises(TypeError, match="z must be a real number, got list"):
            ensure_positive([1.0], "z")
        with pytest.raises(TypeError, match="tol must be a real number, got NoneType"):
            ensure_non_negative(None, "tol")

    def test_value_errors_quote_offending_value(self):
        with pytest.raises(ValueError, match="buckets must be positive, got -3"):
            ensure_positive_int(-3, "buckets")
        with pytest.raises(ValueError, match="share must be <= 1.0, got 1.5"):
            ensure_in_range(1.5, "share", low=0.0, high=1.0)

    def test_bool_rejected_as_type_error_not_value_error(self):
        # True == 1 numerically; rejecting it must happen before coercion.
        with pytest.raises(TypeError):
            ensure_positive_int(True, "flag")
        with pytest.raises(TypeError):
            ensure_non_negative(False, "flag")
