"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_positive_int,
)


class TestEnsurePositiveInt:
    def test_accepts_int(self):
        assert ensure_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert ensure_positive_int(np.int32(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            ensure_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="x must be an integer"):
            ensure_positive_int(2.0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_positive_int(True, "x")


class TestEnsurePositive:
    def test_accepts_float(self):
        assert ensure_positive(0.5, "t") == 0.5

    def test_accepts_int(self):
        assert ensure_positive(2, "t") == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="t must be positive"):
            ensure_positive(0.0, "t")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            ensure_positive("1", "t")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert ensure_non_negative(0, "v") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            ensure_non_negative(-1e-9, "v")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ensure_non_negative(float("nan"), "v")


class TestEnsureInRange:
    def test_within(self):
        assert ensure_in_range(0.5, "z", low=0.0, high=1.0) == 0.5

    def test_boundaries_inclusive(self):
        assert ensure_in_range(0.0, "z", low=0.0, high=1.0) == 0.0
        assert ensure_in_range(1.0, "z", low=0.0, high=1.0) == 1.0

    def test_below(self):
        with pytest.raises(ValueError, match=">= 0"):
            ensure_in_range(-0.1, "z", low=0.0)

    def test_above(self):
        with pytest.raises(ValueError, match="<= 1"):
            ensure_in_range(1.1, "z", high=1.0)

    def test_open_ended(self):
        assert ensure_in_range(1e9, "z", low=0.0) == 1e9
