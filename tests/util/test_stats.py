"""Tests for repro.util.stats."""

import numpy as np
import pytest

from repro.data.synthetic import uniform_frequencies
from repro.data.zipf import zipf_frequencies
from repro.util.stats import (
    FrequencyProfile,
    coefficient_of_variation,
    effective_zipf_z,
    gini_coefficient,
    profile_frequencies,
    skewness,
    top_k_share,
)


class TestCoefficientOfVariation:
    def test_uniform_is_zero(self):
        assert coefficient_of_variation(uniform_frequencies(100, 10)) == 0.0

    def test_known_value(self):
        assert coefficient_of_variation([2.0, 4.0]) == pytest.approx(1.0 / 3.0)

    def test_monotone_in_zipf_z(self):
        cvs = [
            coefficient_of_variation(zipf_frequencies(1000, 100, z))
            for z in (0.0, 0.5, 1.0, 2.0)
        ]
        assert cvs == sorted(cvs)


class TestSkewness:
    def test_symmetric_zero(self):
        assert skewness([1.0, 2.0, 3.0]) == pytest.approx(0.0)

    def test_uniform_zero(self):
        assert skewness([5.0, 5.0, 5.0]) == 0.0

    def test_right_tail_positive(self):
        assert skewness(zipf_frequencies(1000, 100, 1.5)) > 0


class TestGini:
    def test_uniform_zero(self):
        assert gini_coefficient(uniform_frequencies(100, 20)) == pytest.approx(0.0)

    def test_concentration_near_one(self):
        freqs = np.array([1000.0] + [1e-9] * 99)
        assert gini_coefficient(freqs) > 0.95

    def test_monotone_in_zipf_z(self):
        ginis = [
            gini_coefficient(zipf_frequencies(1000, 100, z)) for z in (0.0, 1.0, 2.0)
        ]
        assert ginis == sorted(ginis)

    def test_bounds(self):
        g = gini_coefficient(zipf_frequencies(1000, 50, 1.0))
        assert 0.0 <= g <= 1.0


class TestTopKShare:
    def test_full_coverage(self):
        assert top_k_share([3.0, 2.0, 1.0], 3) == pytest.approx(1.0)

    def test_k_larger_than_set(self):
        assert top_k_share([3.0, 2.0], 10) == pytest.approx(1.0)

    def test_top1(self):
        assert top_k_share([6.0, 3.0, 1.0], 1) == pytest.approx(0.6)

    def test_zipf_concentration(self):
        share = top_k_share(zipf_frequencies(1000, 1000, 1.5), 10)
        assert share > 0.5


class TestEffectiveZipfZ:
    @pytest.mark.parametrize("z", [0.0, 0.5, 1.0, 2.0])
    def test_recovers_true_z(self, z):
        freqs = zipf_frequencies(1000, 200, z)
        assert effective_zipf_z(freqs) == pytest.approx(z, abs=1e-6)

    def test_single_value(self):
        assert effective_zipf_z([5.0]) == 0.0

    def test_increasing_shape_clamped_to_zero(self):
        # Anti-Zipf (increasing in rank after sorting it is still
        # descending, so construct equal values): z estimate is 0.
        assert effective_zipf_z([4.0, 4.0, 4.0]) == pytest.approx(0.0)


class TestProfile:
    def test_fields(self):
        profile = profile_frequencies(zipf_frequencies(1000, 100, 1.0))
        assert isinstance(profile, FrequencyProfile)
        assert profile.size == 100
        assert profile.total == pytest.approx(1000.0)
        assert profile.effective_z == pytest.approx(1.0, abs=1e-6)

    def test_str(self):
        text = str(profile_frequencies([5.0, 3.0, 1.0]))
        assert "M=3" in text and "gini=" in text
