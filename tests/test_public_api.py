"""Public-API consistency: every exported name exists and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.data",
    "repro.engine",
    "repro.optimizer",
    "repro.queries",
    "repro.maint",
    "repro.experiments",
    "repro.net",
    "repro.serve",
    "repro.sql",
    "repro.testing",
    "repro.util",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} must define __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_has_no_duplicates(package_name):
    package = importlib.import_module(package_name)
    assert len(set(package.__all__)) == len(package.__all__)


def test_top_level_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_docstrings_on_public_callables():
    """Every public function/class exported by the core packages is documented."""
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if type(obj).__module__ == "typing":
                continue  # type aliases (Plan, RandomSource) carry no docstring
            if callable(obj):
                assert obj.__doc__, f"{package_name}.{name} lacks a docstring"


def test_cli_module_importable():
    from repro import cli

    assert callable(cli.main)


def test_tuning_exported():
    from repro.engine.tuning import tune_database

    assert callable(tune_database)
