"""Tests for repro.engine.schema."""

import pytest

from repro.engine.schema import Attribute, Schema


class TestAttribute:
    def test_name_required(self):
        with pytest.raises(ValueError):
            Attribute("")

    def test_typed_validation(self):
        attr = Attribute("year", int)
        attr.validate(1990)
        with pytest.raises(TypeError, match="expects int"):
            attr.validate("1990")

    def test_untyped_accepts_anything(self):
        Attribute("x").validate(object())


class TestSchema:
    def test_names(self):
        schema = Schema([Attribute("a"), Attribute("b")])
        assert schema.names == ("a", "b")

    def test_strings_coerced(self):
        schema = Schema(["a", "b"])
        assert schema.names == ("a", "b")

    def test_positions(self):
        schema = Schema(["a", "b", "c"])
        assert schema.position("b") == 1

    def test_unknown_position(self):
        schema = Schema(["a"])
        with pytest.raises(KeyError, match="no attribute"):
            schema.position("z")

    def test_contains(self):
        schema = Schema(["a"])
        assert "a" in schema
        assert "b" not in schema

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Schema(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Schema([])

    def test_validate_row_arity(self):
        schema = Schema(["a", "b"])
        with pytest.raises(ValueError, match="fields"):
            schema.validate_row((1,))

    def test_validate_row_types(self):
        schema = Schema([Attribute("a", int)])
        schema.validate_row((1,))
        with pytest.raises(TypeError):
            schema.validate_row(("x",))

    def test_equality(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a"]) != Schema(["b"])

    def test_len_iter(self):
        schema = Schema(["a", "b"])
        assert len(schema) == 2
        assert [a.name for a in schema] == ["a", "b"]
