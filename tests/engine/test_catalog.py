"""Tests for repro.engine.catalog."""

import numpy as np
import pytest

from repro.core.biased import v_opt_bias_hist
from repro.core.heuristic import equi_width_histogram
from repro.core.frequency import AttributeDistribution
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog


@pytest.fixture
def skewed_histogram():
    values = ["a", "b", "c", "d", "e", "f"]
    freqs = np.array([100.0, 50.0, 5.0, 4.0, 3.0, 2.0])
    return v_opt_bias_hist(freqs, 3, values=values)


class TestCompactEndBiased:
    def test_from_histogram(self, skewed_histogram):
        compact = CompactEndBiased.from_histogram(skewed_histogram)
        assert compact.explicit == {"a": 100.0, "b": 50.0}
        assert compact.remainder_count == 4
        assert compact.remainder_average == pytest.approx(3.5)

    def test_total_and_distinct(self, skewed_histogram):
        compact = CompactEndBiased.from_histogram(skewed_histogram)
        assert compact.total == pytest.approx(164.0)
        assert compact.distinct_count == 6

    def test_estimate_explicit(self, skewed_histogram):
        compact = CompactEndBiased.from_histogram(skewed_histogram)
        assert compact.estimate_frequency("a") == 100.0

    def test_estimate_missing_bucket_rule(self, skewed_histogram):
        compact = CompactEndBiased.from_histogram(skewed_histogram)
        assert compact.estimate_frequency("c") == pytest.approx(3.5)
        assert compact.estimate_frequency("never-seen") == pytest.approx(3.5)
        assert compact.estimate_frequency("never-seen", assume_in_domain=False) == 0.0

    def test_estimate_shim_warns_and_forwards(self, skewed_histogram):
        compact = CompactEndBiased.from_histogram(skewed_histogram)
        with pytest.warns(DeprecationWarning, match="estimate_frequency"):
            legacy = compact.estimate("a")
        assert legacy == compact.estimate_frequency("a")

    def test_requires_values(self):
        hist = v_opt_bias_hist([5.0, 1.0], 2)
        with pytest.raises(ValueError, match="value-aware"):
            CompactEndBiased.from_histogram(hist)

    def test_requires_biased(self):
        dist = AttributeDistribution(list("abcdef"), [9.0, 8.0, 7.0, 3.0, 2.0, 1.0])
        hist = equi_width_histogram(dist, 3)
        if not hist.is_biased():
            with pytest.raises(ValueError, match="biased"):
                CompactEndBiased.from_histogram(hist)

    def test_all_univalued_histogram(self):
        values = ["a", "b", "c"]
        hist = v_opt_bias_hist([5.0, 3.0, 1.0], 3, values=values)
        compact = CompactEndBiased.from_histogram(hist)
        # Largest bucket becomes the implicit remainder; others explicit.
        assert compact.distinct_count == 3
        assert compact.total == pytest.approx(9.0)

    def test_negative_remainder_rejected(self):
        with pytest.raises(ValueError):
            CompactEndBiased({}, remainder_count=-1, remainder_average=1.0)


class TestCatalogEntry:
    def test_estimate_prefers_compact(self, skewed_histogram):
        compact = CompactEndBiased.from_histogram(skewed_histogram)
        entry = CatalogEntry("R", "a", "end-biased", skewed_histogram, compact, 6, 164.0)
        assert entry.estimate_frequency("a") == 100.0

    def test_estimate_via_histogram(self, skewed_histogram):
        entry = CatalogEntry("R", "a", "end-biased", skewed_histogram, None, 6, 164.0)
        assert entry.estimate_frequency("a") == 100.0

    def test_uniform_fallback(self):
        entry = CatalogEntry("R", "a", "none", None, None, 10, 200.0)
        assert entry.estimate_frequency("whatever") == 20.0
        assert entry.average_frequency() == 20.0

    def test_zero_distinct(self):
        entry = CatalogEntry("R", "a", "none", None, None, 0, 0.0)
        assert entry.estimate_frequency("x") == 0.0


class TestStatsCatalog:
    def _entry(self, relation="R", attribute="a"):
        return CatalogEntry(relation, attribute, "trivial", None, None, 5, 50.0)

    def test_put_get(self):
        catalog = StatsCatalog()
        catalog.put(self._entry())
        assert catalog.get("R", "a") is not None
        assert catalog.get("R", "zzz") is None

    def test_versioning(self):
        catalog = StatsCatalog()
        first = catalog.put(self._entry())
        assert first.version == 1
        second = catalog.put(self._entry())
        assert second.version == 2

    def test_global_version_bumps_on_put(self):
        catalog = StatsCatalog()
        assert catalog.version == 0
        catalog.put(self._entry())
        assert catalog.version == 1
        catalog.put(self._entry("S", "b"))
        assert catalog.version == 2

    def test_versions_survive_drop_and_recreate(self):
        # A re-created entry must not reuse an old version number, or a
        # compiled-table cache keyed on versions would serve stale state.
        catalog = StatsCatalog()
        first = catalog.put(self._entry())
        catalog.drop("R", "a")
        second = catalog.put(self._entry())
        assert second.version > first.version

    def test_global_version_bumps_only_on_effective_drop(self):
        catalog = StatsCatalog()
        catalog.put(self._entry())
        before = catalog.version
        catalog.drop("R", "a")
        assert catalog.version == before + 1
        # Dropping something absent is a no-op on the version counter.
        catalog.drop("R", "a")
        assert catalog.version == before + 1

    def test_require(self):
        catalog = StatsCatalog()
        with pytest.raises(KeyError, match="ANALYZE"):
            catalog.require("R", "a")
        catalog.put(self._entry())
        assert catalog.require("R", "a").relation == "R"

    def test_drop_attribute(self):
        catalog = StatsCatalog()
        catalog.put(self._entry())
        assert catalog.drop("R", "a") == 1
        assert catalog.drop("R", "a") == 0

    def test_drop_relation(self):
        catalog = StatsCatalog()
        catalog.put(self._entry("R", "a"))
        catalog.put(self._entry("R", "b"))
        catalog.put(self._entry("S", "a"))
        assert catalog.drop("R") == 2
        assert len(catalog) == 1

    def test_contains_and_entries(self):
        catalog = StatsCatalog()
        catalog.put(self._entry())
        assert ("R", "a") in catalog
        assert len(catalog.entries()) == 1

    def test_relation_rows_unknown(self):
        assert StatsCatalog().relation_rows("R") is None

    def test_relation_rows_takes_freshest_attribute(self):
        catalog = StatsCatalog()
        catalog.put(CatalogEntry("R", "a", "trivial", None, None, 5, 50.0))
        catalog.put(CatalogEntry("R", "b", "trivial", None, None, 5, 80.0))
        # The largest per-attribute total wins (freshest/fullest ANALYZE).
        assert catalog.relation_rows("R") == 80.0

    def test_relation_rows_tracks_put_and_drop(self):
        catalog = StatsCatalog()
        catalog.put(CatalogEntry("R", "a", "trivial", None, None, 5, 50.0))
        catalog.put(CatalogEntry("R", "b", "trivial", None, None, 5, 80.0))
        catalog.drop("R", "b")
        assert catalog.relation_rows("R") == 50.0
        catalog.drop("R")
        assert catalog.relation_rows("R") is None
        # Re-publishing resurrects the index.
        catalog.put(CatalogEntry("R", "a", "trivial", None, None, 5, 60.0))
        assert catalog.relation_rows("R") == 60.0

    def test_relation_rows_updates_on_replace(self):
        catalog = StatsCatalog()
        catalog.put(CatalogEntry("R", "a", "trivial", None, None, 5, 50.0))
        catalog.put(CatalogEntry("R", "a", "trivial", None, None, 5, 30.0))
        assert catalog.relation_rows("R") == 30.0
