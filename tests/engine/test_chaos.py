"""Chaos suite: crash at every injection point, then prove recovery.

Each test arms a deterministic :class:`~repro.testing.faults.FaultInjector`
crash somewhere inside the persist → journal → serve pipeline and asserts
the durability contract afterwards:

* the on-disk store always reloads (``recover=True`` never raises);
* every **acknowledged** operation (a ``save_catalog``/journal append that
  returned) survives recovery; an in-flight operation may land or not,
  never half-land;
* no corrupt entry is ever served — the snapshot is old-or-new, and torn
  journal tails truncate at the last intact record.
"""

import pytest

from repro.core.frequency import AttributeDistribution
from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.durable import temporary_path
from repro.engine.journal import MaintenanceJournal
from repro.engine.persist import load_catalog, save_catalog
from repro.maint.update import MaintainedEndBiased
from repro.serve import EstimationService
from repro.testing.faults import (
    ALL_INJECTION_POINTS,
    PERSISTENCE_INJECTION_POINTS,
    POINT_JOURNAL_FLUSH,
    FaultInjector,
    InjectedFault,
    registered_points,
)

#: Relation/attribute every chaos scenario maintains.
KEY = ("R", "a")


def build_maintained(journal: MaintenanceJournal) -> MaintainedEndBiased:
    freqs = quantize_to_integers(zipf_frequencies(400, 20, 1.3)).astype(float)
    distribution = AttributeDistribution(list(range(20)), freqs)
    return MaintainedEndBiased(
        distribution,
        5,
        track_values=False,
        journal=journal,
        relation=KEY[0],
        attribute=KEY[1],
    )


def test_every_point_is_registered():
    assert set(ALL_INJECTION_POINTS) <= registered_points()
    assert len(ALL_INJECTION_POINTS) == len(set(ALL_INJECTION_POINTS))


@pytest.mark.parametrize("point", PERSISTENCE_INJECTION_POINTS)
def test_crash_at_every_injection_point_is_recoverable(point, tmp_path):
    """One full workday with a crash at *point*; the store must recover.

    Parametrized over the persistence pipeline's points only — this
    workload never touches the job queue, whose points get the same
    treatment in ``tests/maint/test_agent_chaos.py``.
    """
    snapshot = tmp_path / "catalog.json"
    wal = tmp_path / "wal.jsonl"
    journal = MaintenanceJournal(wal)
    maintained = build_maintained(journal)
    catalog = StatsCatalog()
    maintained.publish(catalog, *KEY)
    acknowledged_total = float(maintained.total)
    first_save_done = False

    injector = FaultInjector().fail_at(point)
    with injector:
        try:
            save_catalog(catalog, snapshot, journal=journal)
            first_save_done = True
            for value in (0, 1, 2, "new-1", 3, "new-2", 0, 5):
                maintained.insert(value)
                acknowledged_total += 1.0
            maintained.delete(0)
            acknowledged_total -= 1.0
            maintained.publish(catalog, *KEY)
            save_catalog(catalog, snapshot, journal=journal)
            service = EstimationService(catalog)
            service.estimate_equality(*KEY, 0)
        except InjectedFault:
            pass  # the simulated crash; the process would have died here

    assert injector.triggered, f"injection point {point} never fired"

    # Invariant 1: whatever is on disk reloads without error.
    report = load_catalog(snapshot, recover=True, journal=wal)
    assert not report.quarantined  # crashes tear nothing that checksums see
    assert not report.journal_torn

    # Invariant 2: every acknowledged delta survives.  The one in-flight
    # operation (crash after the journal bytes hit the file, before the
    # append was acknowledged) may add at most one unit of slack.
    entry = report.catalog.get(*KEY)
    if entry is None:
        # Only possible when the very first snapshot save crashed before
        # publishing the file — nothing was ever acknowledged.
        assert not first_save_done
        assert not snapshot.exists()
    else:
        slack = 1.0 if point == POINT_JOURNAL_FLUSH else 0.0
        assert abs(entry.total_tuples - acknowledged_total) <= slack

    # Invariant 3: a strict reload of an existing snapshot never sees a
    # half-written file (old-or-new, never a prefix).
    if snapshot.exists():
        load_catalog(snapshot)

    # Invariant 4: crash residue (a stale temporary) never blocks — the
    # next save cycle simply succeeds and cleans up.
    save_catalog(report.catalog, snapshot, journal=MaintenanceJournal(wal))
    assert not temporary_path(snapshot).exists()
    assert load_catalog(snapshot).get(*KEY) is not None or entry is None


@pytest.mark.parametrize("on_call", [1, 2, 3])
def test_repeated_append_crashes_keep_prefix(on_call, tmp_path):
    """Crashing the journal on its k-th append preserves appends 1..k-1."""
    wal = tmp_path / "wal.jsonl"
    journal = MaintenanceJournal(wal)
    catalog = StatsCatalog()
    compact = CompactEndBiased(
        explicit={"x": 5.0}, remainder_count=1, remainder_average=2.0
    )
    catalog.put(
        CatalogEntry(
            relation=KEY[0],
            attribute=KEY[1],
            kind="end-biased",
            histogram=None,
            compact=compact,
            distinct_count=compact.distinct_count,
            total_tuples=compact.total,
        )
    )
    snapshot = tmp_path / "catalog.json"
    save_catalog(catalog, snapshot)
    acknowledged = 0
    with FaultInjector().fail_at("journal.append", on_call=on_call):
        try:
            for _ in range(5):
                journal.append_insert(*KEY, "x")
                acknowledged += 1
        except InjectedFault:
            pass
    assert acknowledged == on_call - 1
    report = load_catalog(snapshot, recover=True, journal=wal)
    assert report.journal_replayed == acknowledged
    entry = report.catalog.get(*KEY)
    assert entry.compact.explicit["x"] == 5.0 + acknowledged


def test_checkpoint_restart_append_crash_recovers_new_deltas(tmp_path):
    """Checkpoint → restart → append: the exact window where a regressed
    sequence counter used to fence acknowledged deltas out of replay."""
    snapshot = tmp_path / "catalog.json"
    wal = tmp_path / "wal.jsonl"
    journal = MaintenanceJournal(wal)
    maintained = build_maintained(journal)
    catalog = StatsCatalog()
    for value in (0, 1, "new-1"):
        maintained.insert(value)
    maintained.publish(catalog, *KEY)  # fences advance to the journal tip
    save_catalog(catalog, snapshot, journal=journal)  # checkpoint empties the log
    assert len(journal) == 0
    snapshot_total = float(maintained.total)

    # A new "process" reopens the journal and acknowledges more deltas,
    # then crashes before any publish or snapshot.
    restarted = MaintenanceJournal(wal)
    assert restarted.last_seq == journal.last_seq
    restarted.append_insert(*KEY, 0)
    restarted.append_insert(*KEY, "new-2")

    report = load_catalog(snapshot, recover=True, journal=wal)
    assert report.journal_replayed == 2
    assert report.journal_fenced == 0
    entry = report.catalog.get(*KEY)
    assert entry.total_tuples == pytest.approx(snapshot_total + 2.0)


def test_half_written_tail_does_not_hide_later_appends(tmp_path):
    """Real power loss mid-append leaves half a line; reopening must
    truncate it so later acknowledged appends stay reachable by replay."""
    snapshot = tmp_path / "catalog.json"
    wal = tmp_path / "wal.jsonl"
    compact = CompactEndBiased(
        explicit={"x": 5.0}, remainder_count=1, remainder_average=2.0
    )
    catalog = StatsCatalog()
    catalog.put(
        CatalogEntry(
            relation=KEY[0],
            attribute=KEY[1],
            kind="end-biased",
            histogram=None,
            compact=compact,
            distinct_count=compact.distinct_count,
            total_tuples=compact.total,
        )
    )
    save_catalog(catalog, snapshot)
    journal = MaintenanceJournal(wal)
    journal.append_insert(*KEY, "x")  # seq 1, acknowledged
    with open(wal, "ab") as handle:  # power loss mid-append of seq 2
        handle.write(b'{"checksum":123,"payload":{"seq":2,')

    restarted = MaintenanceJournal(wal)  # the next process reopens
    assert restarted.last_seq == 1  # the torn record was never acknowledged
    restarted.append_insert(*KEY, "x")  # seq 2, acknowledged

    report = load_catalog(snapshot, recover=True, journal=wal)
    assert not report.journal_torn  # reopening repaired the tail
    assert report.journal_replayed == 2
    assert report.catalog.get(*KEY).compact.explicit["x"] == 7.0


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_seeded_crash_storm_recovers_every_acknowledged_insert(seed, tmp_path):
    """Random (but reproducible) crashes across many sessions.

    Each "session" recovers from disk, appends inserts, and occasionally
    snapshots — any step may crash.  At the end, the recovered total must
    contain every acknowledged insert, with slack only for in-flight
    appends whose bytes reached the file before the crash.
    """
    from repro.util.rng import derive_rng

    snapshot = tmp_path / "catalog.json"
    wal = tmp_path / "wal.jsonl"
    rng = derive_rng(seed)

    compact = CompactEndBiased(
        explicit={"x": 5.0, "y": 3.0}, remainder_count=2, remainder_average=1.0
    )
    initial_total = compact.total
    seeds_entry = CatalogEntry(
        relation=KEY[0],
        attribute=KEY[1],
        kind="end-biased",
        histogram=None,
        compact=compact,
        distinct_count=compact.distinct_count,
        total_tuples=initial_total,
    )
    boot = StatsCatalog()
    boot.put(seeds_entry)
    save_catalog(boot, snapshot)

    acknowledged = 0
    uncertain = 0  # in-flight appends that may or may not have landed
    injector = FaultInjector().fail_randomly(rate=0.08, seed=seed)
    with injector:
        for _session in range(6):
            if rng.random() < 0.25:
                # Residue of a power loss mid-append in a prior life: a
                # physically half-written tail line the next writer must
                # truncate before appending.
                with open(wal, "ab") as handle:
                    handle.write(b'{"checksum":0,"payl')
            report = load_catalog(snapshot, recover=True, journal=wal)
            assert not report.quarantined
            catalog = report.catalog
            journal = MaintenanceJournal(wal)
            if rng.random() < 0.5:
                # Snapshot straight after recovery: the fences cover every
                # record, so this checkpoint can empty the log outright —
                # later sessions' appends must still land above the fences.
                try:
                    save_catalog(catalog, snapshot, journal=journal)
                except InjectedFault:
                    continue  # the session's process died
            for _op in range(8):
                value = ["x", "y", "z"][int(rng.integers(3))]
                try:
                    journal.append_insert(*KEY, value)
                    acknowledged += 1
                except InjectedFault as fault:
                    # A crash after the bytes were written (flush point)
                    # leaves a record recovery may legitimately replay.
                    if injector.triggered[-1].point == POINT_JOURNAL_FLUSH:
                        uncertain += 1
                    break  # the session's process died
            if rng.random() < 0.5:
                try:
                    save_catalog(catalog, snapshot, journal=journal)
                except InjectedFault:
                    pass

    final = load_catalog(snapshot, recover=True, journal=wal)
    entry = final.catalog.get(*KEY)
    recovered_delta = entry.total_tuples - initial_total
    assert acknowledged <= recovered_delta <= acknowledged + uncertain
    # And the repaired store round-trips cleanly with no injector active.
    save_catalog(final.catalog, snapshot, journal=MaintenanceJournal(wal))
    clean = load_catalog(snapshot, recover=True, journal=wal)
    assert clean.clean
    assert clean.catalog.get(*KEY).total_tuples == entry.total_tuples


def test_ordinary_io_error_cleans_up_tmp(tmp_path):
    """A plain OSError (full disk) removes the temporary; a crash keeps it."""
    snapshot = tmp_path / "catalog.json"
    catalog = StatsCatalog()
    with FaultInjector().fail_at(
        "persist.replace", error=OSError("disk full")
    ):
        with pytest.raises(OSError, match="disk full"):
            save_catalog(catalog, snapshot)
    assert not temporary_path(snapshot).exists()

    with FaultInjector().fail_at("persist.replace"):
        with pytest.raises(InjectedFault):
            save_catalog(catalog, snapshot)
    assert temporary_path(snapshot).exists()  # power loss leaves residue
    save_catalog(catalog, snapshot)  # ... which the next save overwrites
    assert not temporary_path(snapshot).exists()


def test_injector_refuses_unknown_point():
    with pytest.raises(ValueError, match="unknown injection point"):
        FaultInjector().fail_at("no.such.point")


def test_injectors_do_not_nest():
    with FaultInjector():
        with pytest.raises(RuntimeError, match="already active"):
            FaultInjector().__enter__()
