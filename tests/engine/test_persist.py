"""Tests for repro.engine.persist — catalog serialisation."""

import json

import numpy as np
import pytest

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.persist import (
    catalog_from_dict,
    catalog_to_dict,
    load_catalog,
    save_catalog,
)
from repro.engine.relation import Relation


@pytest.fixture
def populated_catalog(rng):
    freqs = quantize_to_integers(zipf_frequencies(500, 25, 1.2))
    column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
    rng.shuffle(column)
    relation = Relation.from_columns("R", {"a": column, "b": [x % 7 for x in column]})
    catalog = StatsCatalog()
    analyze_relation(relation, "a", catalog, kind="end-biased", buckets=6)
    analyze_relation(relation, "b", catalog, kind="serial", buckets=4)
    analyze_relation(relation, "a", catalog, kind="sampled", buckets=6)  # v2
    return catalog


class TestRoundTrip:
    def test_dict_round_trip(self, populated_catalog):
        restored = catalog_from_dict(catalog_to_dict(populated_catalog))
        assert len(restored) == len(populated_catalog)
        for entry in populated_catalog.entries():
            twin = restored.require(entry.relation, entry.attribute)
            assert twin.kind == entry.kind
            assert twin.distinct_count == entry.distinct_count
            assert twin.total_tuples == entry.total_tuples
            assert twin.version == entry.version

    def test_histogram_preserved(self, populated_catalog):
        restored = catalog_from_dict(catalog_to_dict(populated_catalog))
        original = populated_catalog.require("R", "b").histogram
        twin = restored.require("R", "b").histogram
        assert twin == original
        assert twin.kind == original.kind

    def test_compact_preserved(self, populated_catalog):
        restored = catalog_from_dict(catalog_to_dict(populated_catalog))
        original = populated_catalog.require("R", "a").compact
        twin = restored.require("R", "a").compact
        assert twin.explicit == original.explicit
        assert twin.remainder_count == original.remainder_count
        assert twin.remainder_average == pytest.approx(original.remainder_average)

    def test_estimates_identical_after_restore(self, populated_catalog):
        restored = catalog_from_dict(catalog_to_dict(populated_catalog))
        for entry in populated_catalog.entries():
            twin = restored.require(entry.relation, entry.attribute)
            for value in (0, 1, 5, "zzz"):
                assert twin.estimate_frequency(value) == pytest.approx(
                    entry.estimate_frequency(value)
                )

    def test_file_round_trip(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(populated_catalog, path)
        restored = load_catalog(path)
        assert len(restored) == len(populated_catalog)

    def test_file_is_valid_json(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(populated_catalog, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-stats-catalog"


class TestValidation:
    def test_rejects_foreign_format(self):
        with pytest.raises(ValueError, match="not a repro stats catalog"):
            catalog_from_dict({"format": "something-else", "version": 1, "entries": []})

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="unsupported catalog version"):
            catalog_from_dict(
                {"format": "repro-stats-catalog", "version": 99, "entries": []}
            )

    def test_rejects_unserialisable_values(self):
        relation = Relation.from_columns("R", {"a": [(1, 2), (1, 2), (3, 4)]})
        catalog = StatsCatalog()
        analyze_relation(relation, "a", catalog, kind="end-biased", buckets=2)
        with pytest.raises(TypeError, match="not JSON-serialisable"):
            catalog_to_dict(catalog)

    def test_empty_catalog(self, tmp_path):
        path = tmp_path / "empty.json"
        save_catalog(StatsCatalog(), path)
        assert len(load_catalog(path)) == 0
