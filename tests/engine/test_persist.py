"""Tests for repro.engine.persist — catalog serialisation and recovery."""

import json
import math

import numpy as np
import pytest

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.durable import temporary_path
from repro.engine.persist import (
    CatalogFormatError,
    RecoveryReport,
    catalog_from_dict,
    catalog_to_dict,
    load_catalog,
    save_catalog,
)
from repro.engine.relation import Relation


def compact_entry(
    relation="R", attribute="a", explicit=None, remainder=(2, 1.5)
) -> CatalogEntry:
    explicit = {"x": 5.0, "y": 3.0} if explicit is None else explicit
    compact = CompactEndBiased(
        explicit=explicit,
        remainder_count=remainder[0],
        remainder_average=remainder[1],
    )
    return CatalogEntry(
        relation=relation,
        attribute=attribute,
        kind="end-biased",
        histogram=None,
        compact=compact,
        distinct_count=compact.distinct_count,
        total_tuples=compact.total,
    )


@pytest.fixture
def populated_catalog(rng):
    freqs = quantize_to_integers(zipf_frequencies(500, 25, 1.2))
    column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
    rng.shuffle(column)
    relation = Relation.from_columns("R", {"a": column, "b": [x % 7 for x in column]})
    catalog = StatsCatalog()
    analyze_relation(relation, "a", catalog, kind="end-biased", buckets=6)
    analyze_relation(relation, "b", catalog, kind="serial", buckets=4)
    analyze_relation(relation, "a", catalog, kind="sampled", buckets=6)  # v2
    return catalog


class TestRoundTrip:
    def test_dict_round_trip(self, populated_catalog):
        restored = catalog_from_dict(catalog_to_dict(populated_catalog))
        assert len(restored) == len(populated_catalog)
        for entry in populated_catalog.entries():
            twin = restored.require(entry.relation, entry.attribute)
            assert twin.kind == entry.kind
            assert twin.distinct_count == entry.distinct_count
            assert twin.total_tuples == entry.total_tuples
            assert twin.version == entry.version

    def test_histogram_preserved(self, populated_catalog):
        restored = catalog_from_dict(catalog_to_dict(populated_catalog))
        original = populated_catalog.require("R", "b").histogram
        twin = restored.require("R", "b").histogram
        assert twin == original
        assert twin.kind == original.kind

    def test_compact_preserved(self, populated_catalog):
        restored = catalog_from_dict(catalog_to_dict(populated_catalog))
        original = populated_catalog.require("R", "a").compact
        twin = restored.require("R", "a").compact
        assert twin.explicit == original.explicit
        assert twin.remainder_count == original.remainder_count
        assert twin.remainder_average == pytest.approx(original.remainder_average)

    def test_estimates_identical_after_restore(self, populated_catalog):
        restored = catalog_from_dict(catalog_to_dict(populated_catalog))
        for entry in populated_catalog.entries():
            twin = restored.require(entry.relation, entry.attribute)
            for value in (0, 1, 5, "zzz"):
                assert twin.estimate_frequency(value) == pytest.approx(
                    entry.estimate_frequency(value)
                )

    def test_file_round_trip(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(populated_catalog, path)
        restored = load_catalog(path)
        assert len(restored) == len(populated_catalog)

    def test_file_is_valid_json(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(populated_catalog, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-stats-catalog"


class TestValidation:
    def test_rejects_foreign_format(self):
        with pytest.raises(ValueError, match="not a repro stats catalog"):
            catalog_from_dict({"format": "something-else", "version": 1, "entries": []})

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="unsupported catalog version"):
            catalog_from_dict(
                {"format": "repro-stats-catalog", "version": 99, "entries": []}
            )

    def test_rejects_unserialisable_values(self):
        relation = Relation.from_columns("R", {"a": [(1, 2), (1, 2), (3, 4)]})
        catalog = StatsCatalog()
        analyze_relation(relation, "a", catalog, kind="end-biased", buckets=2)
        with pytest.raises(TypeError, match="not JSON-serialisable"):
            catalog_to_dict(catalog)

    def test_empty_catalog(self, tmp_path):
        path = tmp_path / "empty.json"
        save_catalog(StatsCatalog(), path)
        assert len(load_catalog(path)) == 0

    def test_rejects_nan_total_tuples(self):
        catalog = StatsCatalog()
        entry = compact_entry()
        entry.total_tuples = float("nan")
        catalog.put(entry)
        with pytest.raises(ValueError, match="non-finite"):
            catalog_to_dict(catalog)

    def test_rejects_infinite_compact_frequency(self):
        catalog = StatsCatalog()
        catalog.put(compact_entry(explicit={"x": math.inf}))
        with pytest.raises(ValueError, match="non-finite"):
            catalog_to_dict(catalog)

    def test_rejects_nan_explicit_value(self):
        # A NaN *attribute value* (dict key) is as unrepresentable as a NaN
        # frequency: allow_nan=True JSON would silently emit `NaN` tokens.
        catalog = StatsCatalog()
        catalog.put(compact_entry(explicit={float("nan"): 2.0}))
        with pytest.raises(ValueError, match="non-finite"):
            catalog_to_dict(catalog)

    def test_load_rejects_nonstandard_json_constants(self, tmp_path):
        path = tmp_path / "catalog.json"
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        save_catalog(catalog, path)
        path.write_text(path.read_text().replace("5.0", "NaN", 1))
        with pytest.raises(CatalogFormatError, match="non-standard JSON|checksum"):
            load_catalog(path)

    def test_unknown_histogram_kind_is_typed_error(self):
        data = {
            "format": "repro-stats-catalog",
            "version": 1,
            "entries": [
                {
                    "relation": "R",
                    "attribute": "a",
                    "kind": "equi-width",
                    "distinct_count": 2,
                    "total_tuples": 4.0,
                    "version": 1,
                    "histogram": {
                        "frequencies": [3.0, 1.0],
                        "groups": [[0], [1]],
                        "kind": "made-up-kind",
                        "values": None,
                    },
                    "compact": None,
                }
            ],
        }
        with pytest.raises(CatalogFormatError, match="unknown histogram kind"):
            catalog_from_dict(data)

    def test_out_of_bounds_group_index_is_typed_error(self):
        data = {
            "format": "repro-stats-catalog",
            "version": 1,
            "entries": [
                {
                    "relation": "R",
                    "attribute": "a",
                    "kind": "equi-width",
                    "distinct_count": 2,
                    "total_tuples": 4.0,
                    "version": 1,
                    "histogram": {
                        "frequencies": [3.0, 1.0],
                        "groups": [[0], [7]],
                        "kind": "equi-width",
                        "values": None,
                    },
                    "compact": None,
                }
            ],
        }
        with pytest.raises(CatalogFormatError, match="out of bounds"):
            catalog_from_dict(data)

    def test_malformed_entry_payload_is_typed_error(self):
        data = {
            "format": "repro-stats-catalog",
            "version": 1,
            "entries": [{"relation": "R"}],
        }
        with pytest.raises(CatalogFormatError, match="missing key"):
            catalog_from_dict(data)

    def test_catalog_format_error_is_value_error(self):
        assert issubclass(CatalogFormatError, ValueError)


class TestChecksums:
    def test_entries_are_checksummed(self, populated_catalog):
        data = catalog_to_dict(populated_catalog)
        assert data["version"] == 2
        for item in data["entries"]:
            assert set(item) == {"checksum", "payload"}

    def test_strict_load_detects_corruption(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(populated_catalog, path)
        data = json.loads(path.read_text())
        data["entries"][0]["payload"]["total_tuples"] = 999999.0
        path.write_text(json.dumps(data))
        with pytest.raises(CatalogFormatError, match="checksum mismatch"):
            load_catalog(path)

    def test_recover_quarantines_corrupt_entry(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(populated_catalog, path)
        data = json.loads(path.read_text())
        data["entries"][0]["payload"]["total_tuples"] = 999999.0
        corrupted = data["entries"][0]["payload"]
        path.write_text(json.dumps(data))
        report = load_catalog(path, recover=True)
        assert isinstance(report, RecoveryReport)
        assert not report.clean
        assert len(report.quarantined) == 1
        assert report.quarantined[0].relation == corrupted["relation"]
        assert report.quarantined[0].attribute == corrupted["attribute"]
        assert report.entries_loaded == len(populated_catalog) - 1
        key = (corrupted["relation"], corrupted["attribute"])
        assert report.catalog.get(*key) is None

    def test_recover_on_clean_snapshot_is_clean(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(populated_catalog, path)
        report = load_catalog(path, recover=True)
        assert report.clean
        assert report.entries_loaded == len(populated_catalog)
        assert "clean" in report.summary()

    def test_recover_missing_snapshot(self, tmp_path):
        report = load_catalog(tmp_path / "absent.json", recover=True)
        assert not report.snapshot_found
        assert len(report.catalog) == 0
        assert not report.clean

    def test_recover_unparseable_snapshot(self, tmp_path):
        path = tmp_path / "catalog.json"
        path.write_text("{ this is not json")
        report = load_catalog(path, recover=True)
        assert report.snapshot_found and not report.snapshot_ok
        assert len(report.catalog) == 0

    def test_strict_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_catalog(tmp_path / "absent.json")


class TestAtomicity:
    def test_save_replaces_atomically(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(populated_catalog, path)
        first = path.read_text()
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        save_catalog(catalog, path)
        assert path.read_text() != first
        assert len(load_catalog(path)) == 1

    def test_no_temporary_residue_after_save(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(populated_catalog, path)
        assert not temporary_path(path).exists()

    def test_stale_tmp_residue_is_harmless(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        temporary_path(path).write_text("torn half-written snapshot")
        save_catalog(populated_catalog, path)
        assert len(load_catalog(path)) == len(populated_catalog)
        assert not temporary_path(path).exists()

    def test_version_counters_round_trip(self, populated_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(populated_catalog, path)
        restored = load_catalog(path)
        for entry in populated_catalog.entries():
            twin = restored.require(entry.relation, entry.attribute)
            assert twin.version == entry.version
            assert twin.journal_seq == entry.journal_seq


class TestLegacyFormat:
    def test_version_1_payloads_still_load(self, populated_catalog, tmp_path):
        data = catalog_to_dict(populated_catalog)
        legacy = {
            "format": "repro-stats-catalog",
            "version": 1,
            "entries": [item["payload"] for item in data["entries"]],
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy))
        restored = load_catalog(path)
        assert len(restored) == len(populated_catalog)

    def test_version_1_payload_without_journal_seq(self, tmp_path):
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        payload = catalog_to_dict(catalog)["entries"][0]["payload"]
        del payload["journal_seq"]
        legacy = {"format": "repro-stats-catalog", "version": 1, "entries": [payload]}
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy))
        assert load_catalog(path).require("R", "a").journal_seq == 0
