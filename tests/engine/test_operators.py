"""Tests for repro.engine.operators."""

import numpy as np
import pytest

from repro.engine.operators import (
    cross_product,
    hash_join,
    join_size,
    project,
    select,
    select_equals,
)
from repro.engine.relation import Relation


@pytest.fixture
def left():
    return Relation.from_columns("L", {"k": [1, 1, 2, 3], "x": ["a", "b", "c", "d"]})


@pytest.fixture
def right():
    return Relation.from_columns("R", {"k": [1, 2, 2, 4], "y": [10, 20, 30, 40]})


class TestSelect:
    def test_predicate(self, left):
        result = select(left, lambda row: row[0] == 1)
        assert result.cardinality == 2

    def test_select_equals(self, left):
        result = select_equals(left, "k", 1)
        assert result.cardinality == 2
        assert result.schema == left.schema

    def test_empty_result(self, left):
        assert select_equals(left, "k", 99).cardinality == 0


class TestProject:
    def test_keeps_duplicates(self, left):
        result = project(left, ["k"])
        assert result.cardinality == 4
        assert result.column("k") == [1, 1, 2, 3]

    def test_reorders(self, left):
        result = project(left, ["x", "k"])
        assert result.schema.names == ("x", "k")


class TestHashJoin:
    def test_join_cardinality(self, left, right):
        result = hash_join(left, right, "k", "k")
        # k=1: 2x1, k=2: 1x2, k=3: 0, k=4: 0 -> 4 rows.
        assert result.cardinality == 4

    def test_matches_nested_loop(self, rng):
        a = Relation.from_columns("A", {"k": list(rng.integers(0, 5, 40))})
        b = Relation.from_columns("B", {"k": list(rng.integers(0, 5, 60))})
        expected = sum(1 for x in a.column("k") for y in b.column("k") if x == y)
        assert hash_join(a, b, "k", "k").cardinality == expected

    def test_column_qualification_on_collision(self, left, right):
        result = hash_join(left, right, "k", "k")
        assert result.schema.names == ("k", "x", "R.k", "y")

    def test_row_contents(self, left, right):
        result = hash_join(left, right, "k", "k")
        rows = set(result.rows())
        assert (1, "a", 1, 10) in rows
        assert (2, "c", 2, 20) in rows

    def test_left_right_order_preserved_regardless_of_build_side(self):
        small = Relation.from_columns("S", {"k": [1]})
        big = Relation.from_columns("B", {"k": [1, 1, 1], "v": [7, 8, 9]})
        forward = hash_join(small, big, "k", "k")
        assert forward.schema.names[0] == "k"  # small's column first
        backward = hash_join(big, small, "k", "k")
        assert backward.schema.names[0] == "k"  # big's column first
        assert backward.column("v") == [7, 8, 9]

    def test_join_size_shortcut_agrees(self, left, right):
        assert join_size(left, right, "k", "k") == hash_join(left, right, "k", "k").cardinality

    def test_self_join_is_sum_of_squares(self):
        rel = Relation.from_columns("R", {"k": [1, 1, 1, 2, 2, 3]})
        freqs = rel.frequency_distribution("k").frequencies
        assert hash_join(rel, rel, "k", "k").cardinality == int(np.dot(freqs, freqs))


class TestCrossProduct:
    def test_cardinality(self, left, right):
        assert cross_product(left, right).cardinality == 16

    def test_schema(self, left, right):
        assert cross_product(left, right).schema.names == ("k", "x", "R.k", "y")
