"""Tests for repro.engine.journal — the maintenance write-ahead log."""

import json

import pytest

from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.journal import (
    JournalFormatError,
    JournalRecord,
    JournalReplayError,
    MaintenanceJournal,
    read_journal,
    replay_records,
)
from repro.engine.persist import load_catalog, save_catalog


def compact_entry(relation="R", attribute="a"):
    compact = CompactEndBiased(
        explicit={"x": 5.0, "y": 3.0}, remainder_count=4, remainder_average=1.5
    )
    return CatalogEntry(
        relation=relation,
        attribute=attribute,
        kind="end-biased",
        histogram=None,
        compact=compact,
        distinct_count=compact.distinct_count,
        total_tuples=compact.total,
    )


class TestAppend:
    def test_sequence_numbers_increase(self, tmp_path):
        journal = MaintenanceJournal(tmp_path / "wal.jsonl")
        assert journal.last_seq == 0
        first = journal.append_insert("R", "a", "x")
        second = journal.append_delete("R", "a", "y")
        assert (first.seq, second.seq) == (1, 2)
        assert journal.last_seq == 2
        assert len(journal) == 2

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        MaintenanceJournal(path).append_insert("R", "a", "x")
        journal = MaintenanceJournal(path)
        assert journal.last_seq == 1
        assert journal.append_insert("R", "a", "y").seq == 2

    def test_rejects_non_scalar_values(self, tmp_path):
        journal = MaintenanceJournal(tmp_path / "wal.jsonl")
        with pytest.raises(TypeError, match="not JSON-serialisable"):
            journal.append_insert("R", "a", (1, 2))
        assert journal.last_seq == 0
        assert len(journal) == 0

    def test_rejects_empty_relation(self, tmp_path):
        journal = MaintenanceJournal(tmp_path / "wal.jsonl")
        with pytest.raises(TypeError, match="relation"):
            journal.append_insert("", "a", "x")

    def test_records_are_checksummed_jsonl(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        MaintenanceJournal(path).append_insert("R", "a", "x")
        envelope = json.loads(path.read_text().splitlines()[0])
        assert set(envelope) == {"checksum", "payload"}
        assert envelope["payload"]["op"] == "insert"


class TestTornTail:
    def test_truncated_tail_detected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = MaintenanceJournal(path)
        journal.append_insert("R", "a", "x")
        journal.append_insert("R", "a", "y")
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])  # tear the last record mid-write
        records, torn = read_journal(path)
        assert torn
        assert [r.value for r in records] == ["x"]

    def test_strict_read_raises_on_torn_tail(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = MaintenanceJournal(path)
        journal.append_insert("R", "a", "x")
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(JournalFormatError):
            read_journal(path, strict=True)

    def test_reopen_truncates_torn_tail_so_appends_stay_visible(self, tmp_path):
        # Regression: appends after a torn line used to land behind bytes
        # read_journal can never get past, losing acknowledged records.
        path = tmp_path / "wal.jsonl"
        journal = MaintenanceJournal(path)
        journal.append_insert("R", "a", "x")
        journal.append_insert("R", "a", "y")
        path.write_bytes(path.read_bytes()[:-7])
        reopened = MaintenanceJournal(path)
        assert reopened.last_seq == 1  # the torn record was never acknowledged
        reopened.append_insert("R", "a", "z")
        records, torn = read_journal(path)
        assert not torn  # reopening truncated the half-written bytes
        assert [r.seq for r in records] == [1, 2]
        assert [r.value for r in records] == ["x", "z"]

    def test_reopen_repairs_missing_trailing_newline(self, tmp_path):
        # A record whose bytes all landed except the terminating newline is
        # intact data; reopening must not let the next append glue onto it.
        path = tmp_path / "wal.jsonl"
        MaintenanceJournal(path).append_insert("R", "a", "x")
        path.write_bytes(path.read_bytes().rstrip(b"\n"))
        reopened = MaintenanceJournal(path)
        assert reopened.last_seq == 1
        reopened.append_insert("R", "a", "y")
        records, torn = read_journal(path)
        assert not torn
        assert [r.seq for r in records] == [1, 2]

    def test_read_only_access_never_mutates_a_torn_file(self, tmp_path):
        # Truncation is a writer's repair; plain reads must leave the
        # evidence in place for `repro stats check`.
        path = tmp_path / "wal.jsonl"
        journal = MaintenanceJournal(path)
        journal.append_insert("R", "a", "x")
        journal.append_insert("R", "a", "y")
        torn_blob = path.read_bytes()[:-7]
        path.write_bytes(torn_blob)
        records, torn = read_journal(path)
        assert torn and len(records) == 1
        assert path.read_bytes() == torn_blob

    def test_missing_file_reads_empty(self, tmp_path):
        records, torn = read_journal(tmp_path / "absent.jsonl")
        assert records == [] and not torn

    def test_backwards_sequence_is_corruption(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = MaintenanceJournal(path)
        journal.append_insert("R", "a", "x")
        journal.append_insert("R", "a", "y")
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[1] + lines[0])
        with pytest.raises(JournalFormatError, match="backwards"):
            read_journal(path, strict=True)


class TestReplay:
    def test_insert_and_delete_replay(self, tmp_path):
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        records = [
            JournalRecord(seq=1, op="insert", relation="R", attribute="a", value="x"),
            JournalRecord(seq=2, op="insert", relation="R", attribute="a", value="new"),
            JournalRecord(seq=3, op="delete", relation="R", attribute="a", value="y"),
        ]
        stats = replay_records(catalog, records)
        assert stats.applied == 3 and stats.anomalies == 0
        entry = catalog.require("R", "a")
        assert entry.compact.explicit["x"] == 6.0
        assert entry.compact.explicit["y"] == 2.0
        assert entry.total_tuples == pytest.approx(15.0)
        assert entry.journal_seq == 3

    def test_fence_skips_already_applied(self, tmp_path):
        catalog = StatsCatalog()
        entry = compact_entry()
        entry.journal_seq = 2
        catalog.put(entry)
        records = [
            JournalRecord(seq=1, op="insert", relation="R", attribute="a", value="x"),
            JournalRecord(seq=2, op="insert", relation="R", attribute="a", value="x"),
            JournalRecord(seq=3, op="insert", relation="R", attribute="a", value="x"),
        ]
        stats = replay_records(catalog, records)
        assert stats.fenced == 2 and stats.applied == 1
        assert catalog.require("R", "a").compact.explicit["x"] == 6.0

    def test_replay_is_idempotent(self, tmp_path):
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        records = [
            JournalRecord(seq=1, op="insert", relation="R", attribute="a", value="x"),
        ]
        replay_records(catalog, records)
        stats = replay_records(catalog, records)  # crash-between-checkpoint rerun
        assert stats.applied == 0 and stats.fenced == 1
        assert catalog.require("R", "a").compact.explicit["x"] == 6.0

    def test_orphaned_records_counted(self, tmp_path):
        catalog = StatsCatalog()
        records = [
            JournalRecord(seq=1, op="insert", relation="GONE", attribute="a", value=1),
        ]
        stats = replay_records(catalog, records)
        assert stats.orphaned == 1 and stats.applied == 0

    def test_skip_keys_respected(self, tmp_path):
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        records = [
            JournalRecord(seq=1, op="insert", relation="R", attribute="a", value="x"),
        ]
        stats = replay_records(catalog, records, skip_keys=frozenset({("R", "a")}))
        assert stats.orphaned == 1
        assert catalog.require("R", "a").compact.explicit["x"] == 5.0

    def test_impossible_delete_strict_raises(self, tmp_path):
        catalog = StatsCatalog()
        catalog.put(
            CatalogEntry(
                relation="R",
                attribute="a",
                kind="end-biased",
                histogram=None,
                compact=CompactEndBiased(
                    explicit={"x": 1.0}, remainder_count=0, remainder_average=0.0
                ),
                distinct_count=1,
                total_tuples=1.0,
            )
        )
        records = [
            JournalRecord(seq=1, op="delete", relation="R", attribute="a", value="nope"),
        ]
        with pytest.raises(JournalReplayError):
            replay_records(catalog, records, strict=True)
        stats = replay_records(catalog, records)  # lenient mode drops it
        assert stats.anomalies == 1

    def test_replay_bumps_catalog_version(self, tmp_path):
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        before = catalog.version
        replay_records(
            catalog,
            [JournalRecord(seq=1, op="insert", relation="R", attribute="a", value="x")],
        )
        assert catalog.version > before  # serving caches must invalidate


class TestCheckpoint:
    def test_checkpoint_drops_fenced_records(self, tmp_path):
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        journal = MaintenanceJournal(tmp_path / "wal.jsonl")
        journal.append_insert("R", "a", "x")
        journal.append_insert("R", "a", "y")
        replay_records(catalog, journal.pending())
        dropped = journal.checkpoint(catalog)
        assert dropped == 2
        assert len(journal) == 0

    def test_checkpoint_keeps_unfenced_records(self, tmp_path):
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        journal = MaintenanceJournal(tmp_path / "wal.jsonl")
        journal.append_insert("R", "a", "x")
        assert journal.checkpoint(catalog) == 0  # fence still 0: record kept
        assert len(journal) == 1

    def test_checkpoint_without_catalog_clears(self, tmp_path):
        journal = MaintenanceJournal(tmp_path / "wal.jsonl")
        journal.append_insert("R", "a", "x")
        assert journal.checkpoint() == 1
        assert len(journal) == 0

    def test_checkpoint_then_restart_does_not_regress_sequence(self, tmp_path):
        # Regression: a checkpoint that emptied the log used to reset
        # numbering to 0 on the next restart, so acknowledged appends got
        # seq <= fence and replay silently skipped them.
        path = tmp_path / "wal.jsonl"
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        journal = MaintenanceJournal(path)
        journal.append_insert("R", "a", "x")
        replay_records(catalog, journal.pending())  # fence -> 1
        assert journal.checkpoint(catalog) == 1  # log now empty but fenced at 1
        reopened = MaintenanceJournal(path)
        assert reopened.last_seq == 1  # the header keeps the high-water mark
        record = reopened.append_insert("R", "a", "y")
        assert record.seq == 2  # above the fence: replay will apply it
        stats = replay_records(catalog, reopened.pending())
        assert stats.applied == 1 and stats.fenced == 0
        assert catalog.require("R", "a").compact.explicit["y"] == 4.0

    def test_checkpoint_header_covers_catalog_fences(self, tmp_path):
        # Even a journal that never saw the earlier appends (e.g. the file
        # was lost) must resume numbering above every snapshot fence.
        path = tmp_path / "wal.jsonl"
        catalog = StatsCatalog()
        entry = compact_entry()
        entry.journal_seq = 9
        catalog.put(entry)
        journal = MaintenanceJournal(path)
        journal.checkpoint(catalog)
        reopened = MaintenanceJournal(path)
        assert reopened.last_seq == 9
        assert reopened.append_insert("R", "a", "x").seq == 10

    def test_header_is_checksummed(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = MaintenanceJournal(path)
        journal.append_insert("R", "a", "x")
        journal.checkpoint()
        header_line = path.read_text().splitlines()[0]
        assert "journal-header" in header_line
        corrupted = header_line.replace('"last_seq":1', '"last_seq":0')
        path.write_text(corrupted + "\n")
        with pytest.raises(JournalFormatError, match="header checksum"):
            read_journal(path, strict=True)
        records, torn = read_journal(path)  # lenient: treated as torn
        assert torn and records == []

    def test_save_catalog_checkpoints_journal(self, tmp_path):
        catalog = StatsCatalog()
        catalog.put(compact_entry())
        journal = MaintenanceJournal(tmp_path / "wal.jsonl")
        journal.append_insert("R", "a", "x")
        replay_records(catalog, journal.pending())
        save_catalog(catalog, tmp_path / "cat.json", journal=journal)
        assert len(journal) == 0
        restored = load_catalog(tmp_path / "cat.json")
        assert restored.require("R", "a").compact.explicit["x"] == 6.0


class TestRecordValidation:
    def test_rejects_unknown_op(self):
        with pytest.raises(JournalFormatError, match="op"):
            JournalRecord(seq=1, op="upsert", relation="R", attribute="a", value=1)

    def test_rejects_bad_seq(self):
        with pytest.raises(JournalFormatError, match="seq"):
            JournalRecord(seq=0, op="insert", relation="R", attribute="a", value=1)

    def test_from_payload_round_trip(self):
        record = JournalRecord(seq=7, op="delete", relation="R", attribute="a", value=3)
        assert JournalRecord.from_payload(record.payload()) == record

    def test_from_payload_rejects_garbage(self):
        with pytest.raises(JournalFormatError):
            JournalRecord.from_payload({"seq": "one", "op": "insert"})
