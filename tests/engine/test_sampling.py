"""Tests for repro.engine.sampling — Section 4.2 shortcuts."""

import numpy as np
import pytest

from repro.data.zipf import zipf_frequencies
from repro.data.quantize import quantize_to_integers
from repro.engine.sampling import (
    SpaceSavingSketch,
    reservoir_sample,
    sampled_end_biased_histogram,
)


class TestReservoirSample:
    def test_size(self):
        sample = reservoir_sample(range(1000), 10, rng=0)
        assert len(sample) == 10

    def test_short_input(self):
        assert sorted(reservoir_sample(range(3), 10, rng=0)) == [0, 1, 2]

    def test_deterministic(self):
        a = reservoir_sample(range(100), 5, rng=1)
        b = reservoir_sample(range(100), 5, rng=1)
        assert a == b

    def test_uniformity(self):
        """Each item lands in a size-1 sample about 1/N of the time."""
        hits = sum(
            reservoir_sample(range(10), 1, rng=seed)[0] == 0 for seed in range(600)
        )
        assert 25 <= hits <= 100  # expected 60

    def test_elements_from_input(self):
        sample = reservoir_sample(range(50), 7, rng=2)
        assert all(0 <= x < 50 for x in sample)


class TestSpaceSavingSketch:
    def test_exact_below_capacity(self):
        sketch = SpaceSavingSketch(10)
        sketch.extend([1, 1, 1, 2, 2, 3])
        top = dict((v, c) for v, c, _ in sketch.top(3))
        assert top == {1: 3, 2: 2, 3: 1}

    def test_heavy_hitter_guarantee(self):
        """Values above N/capacity must be monitored with bounded error."""
        stream = [1] * 500 + [2] * 300 + list(range(100, 400))
        sketch = SpaceSavingSketch(16)
        sketch.extend(stream)
        top = {v: (c, e) for v, c, e in sketch.top(16)}
        assert 1 in top and 2 in top
        count1, err1 = top[1]
        assert count1 - err1 <= 500 <= count1
        count2, err2 = top[2]
        assert count2 - err2 <= 300 <= count2

    def test_overestimates_only(self):
        gen = np.random.default_rng(0)
        stream = list(gen.integers(0, 50, 2000))
        truth = {v: stream.count(v) for v in set(stream)}
        sketch = SpaceSavingSketch(20)
        sketch.extend(stream)
        for value, count, error in sketch.top(20):
            assert count >= truth[value]
            assert count - error <= truth[value]

    def test_observed_counter(self):
        sketch = SpaceSavingSketch(4)
        sketch.extend(range(7))
        assert sketch.observed == 7

    def test_guaranteed_heavy(self):
        sketch = SpaceSavingSketch(8)
        sketch.extend([1] * 100 + list(range(2, 10)))
        guaranteed = dict(sketch.guaranteed_heavy(1))
        assert guaranteed.get(1) == 100


class TestSampledEndBiased:
    def _column(self, rng):
        freqs = quantize_to_integers(zipf_frequencies(2000, 50, 1.5))
        column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        rng.shuffle(column)
        return column, freqs

    def test_total_preserved(self, rng):
        column, freqs = self._column(rng)
        compact = sampled_end_biased_histogram(column, 6, len(column), 50)
        assert compact.total == pytest.approx(len(column), rel=0.01)

    def test_top_values_found(self, rng):
        column, freqs = self._column(rng)
        compact = sampled_end_biased_histogram(column, 6, len(column), 50)
        # The Zipf top value (value 0) must be explicit and near its truth.
        assert 0 in compact.explicit
        assert compact.explicit[0] == pytest.approx(float(freqs[0]), rel=0.2)

    def test_explicit_count(self, rng):
        column, _ = self._column(rng)
        compact = sampled_end_biased_histogram(column, 6, len(column), 50)
        assert len(compact.explicit) == 5
        assert compact.remainder_count == 45

    def test_tiny_domain(self):
        compact = sampled_end_biased_histogram([1, 1, 2], 10, 3, 2)
        assert compact.distinct_count == 2

    def test_estimates_reasonable(self, rng):
        column, freqs = self._column(rng)
        compact = sampled_end_biased_histogram(column, 6, len(column), 50)
        # A mid-tail value estimates to the remainder average, within 3x.
        truth = float(freqs[25])
        assert compact.estimate_frequency(25) == pytest.approx(truth, rel=3.0)
