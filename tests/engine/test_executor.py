"""Tests for repro.engine.executor — Theorem 2.1 meets the executor."""

import numpy as np
import pytest

from repro.engine.executor import (
    ChainJoinSpec,
    chain_join_size,
    execute_chain_join,
    frequency_matrices_for_chain,
)
from repro.engine.relation import Relation


def make_chain(rng, sizes=(80, 120, 60), domains=(6, 5)):
    r0 = Relation.from_columns("R0", {"a1": list(rng.integers(0, domains[0], sizes[0]))})
    r1 = Relation.from_columns(
        "R1",
        {
            "a1": list(rng.integers(0, domains[0], sizes[1])),
            "a2": list(rng.integers(0, domains[1], sizes[1])),
        },
    )
    r2 = Relation.from_columns("R2", {"a2": list(rng.integers(0, domains[1], sizes[2]))})
    return ChainJoinSpec((r0, r1, r2), (("a1", "a1"), ("a2", "a2")))


class TestChainJoinSpec:
    def test_validation(self, rng):
        spec = make_chain(rng)
        assert spec.num_joins == 2

    def test_too_few_relations(self, rng):
        r0 = Relation.from_columns("R0", {"a": [1]})
        with pytest.raises(ValueError, match="at least two"):
            ChainJoinSpec((r0,), ())

    def test_predicate_count_mismatch(self, rng):
        spec = make_chain(rng)
        with pytest.raises(ValueError, match="join predicates"):
            ChainJoinSpec(spec.relations, spec.join_attributes[:1])

    def test_unknown_attribute(self, rng):
        spec = make_chain(rng)
        with pytest.raises(ValueError, match="no attribute"):
            ChainJoinSpec(spec.relations, (("zz", "a1"), ("a2", "a2")))


class TestTheorem21:
    """The matrix product equals the executor's cardinality."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_two_joins(self, seed):
        spec = make_chain(np.random.default_rng(seed))
        assert chain_join_size(spec) == execute_chain_join(spec).cardinality

    def test_single_join(self, rng):
        r0 = Relation.from_columns("A", {"k": list(rng.integers(0, 7, 100))})
        r1 = Relation.from_columns("B", {"k": list(rng.integers(0, 7, 90))})
        spec = ChainJoinSpec((r0, r1), (("k", "k"),))
        assert chain_join_size(spec) == execute_chain_join(spec).cardinality

    def test_three_joins(self):
        gen = np.random.default_rng(9)
        r0 = Relation.from_columns("R0", {"a1": list(gen.integers(0, 4, 40))})
        r1 = Relation.from_columns(
            "R1", {"a1": list(gen.integers(0, 4, 50)), "a2": list(gen.integers(0, 3, 50))}
        )
        r2 = Relation.from_columns(
            "R2", {"a2": list(gen.integers(0, 3, 30)), "a3": list(gen.integers(0, 5, 30))}
        )
        r3 = Relation.from_columns("R3", {"a3": list(gen.integers(0, 5, 45))})
        spec = ChainJoinSpec(
            (r0, r1, r2, r3), (("a1", "a1"), ("a2", "a2"), ("a3", "a3"))
        )
        assert chain_join_size(spec) == execute_chain_join(spec).cardinality

    def test_empty_join_result(self):
        r0 = Relation.from_columns("A", {"k": [1, 2]})
        r1 = Relation.from_columns("B", {"k": [3, 4]})
        spec = ChainJoinSpec((r0, r1), (("k", "k"),))
        assert chain_join_size(spec) == 0
        assert execute_chain_join(spec).cardinality == 0


class TestFrequencyMatrices:
    def test_shapes(self, rng):
        spec = make_chain(rng)
        matrices = frequency_matrices_for_chain(spec)
        assert matrices[0].shape[0] == 1
        assert matrices[-1].shape[1] == 1
        assert matrices[0].shape[1] == matrices[1].shape[0]
        assert matrices[1].shape[1] == matrices[2].shape[0]

    def test_totals_are_cardinalities(self, rng):
        spec = make_chain(rng)
        matrices = frequency_matrices_for_chain(spec)
        for matrix, relation in zip(matrices, spec.relations):
            assert matrix.total == relation.cardinality

    def test_domains_are_unions(self):
        r0 = Relation.from_columns("A", {"k": [1, 2]})
        r1 = Relation.from_columns("B", {"k": [2, 3]})
        spec = ChainJoinSpec((r0, r1), (("k", "k"),))
        matrices = frequency_matrices_for_chain(spec)
        assert matrices[0].col_values == (1, 2, 3)
