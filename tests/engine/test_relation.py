"""Tests for repro.engine.relation."""

import numpy as np
import pytest

from repro.core.frequency import AttributeDistribution
from repro.engine.relation import Relation
from repro.engine.schema import Attribute, Schema


@pytest.fixture
def worksfor():
    """The paper's Example 2.3 WorksFor(ename, dname, year) relation (small)."""
    return Relation.from_columns(
        "WorksFor",
        {
            "ename": ["ann", "bob", "cat", "dan", "eve", "fay"],
            "dname": ["toy", "toy", "shoe", "candy", "toy", "shoe"],
            "year": [1990, 1990, 1992, 1993, 1991, 1992],
        },
    )


class TestConstruction:
    def test_from_columns(self, worksfor):
        assert worksfor.cardinality == 6
        assert worksfor.schema.names == ("ename", "dname", "year")

    def test_column_length_mismatch(self):
        with pytest.raises(ValueError, match="equal lengths"):
            Relation.from_columns("R", {"a": [1, 2], "b": [1]})

    def test_row_validation_on_insert(self):
        relation = Relation("R", Schema([Attribute("a", int)]))
        relation.insert((5,))
        with pytest.raises(TypeError):
            relation.insert(("five",))
        with pytest.raises(ValueError):
            relation.insert((1, 2))

    def test_from_distribution_materialises_counts(self):
        dist = AttributeDistribution(["x", "y"], [3.0, 2.0])
        relation = Relation.from_distribution("R", "a", dist)
        assert relation.cardinality == 5
        assert sorted(relation.column("a")) == ["x", "x", "x", "y", "y"]

    def test_from_distribution_roundtrip(self):
        """Matrix(from_distribution(d)) == d — generation inverts analysis."""
        dist = AttributeDistribution([1, 2, 3], [4.0, 1.0, 7.0])
        relation = Relation.from_distribution("R", "a", dist)
        assert relation.frequency_distribution("a") == dist

    def test_from_distribution_shuffle_deterministic(self):
        dist = AttributeDistribution(["x", "y"], [30.0, 20.0])
        a = Relation.from_distribution("R", "a", dist, shuffle=7)
        b = Relation.from_distribution("R", "a", dist, shuffle=7)
        assert list(a.rows()) == list(b.rows())

    def test_bad_name(self):
        with pytest.raises(ValueError, match="name"):
            Relation("", Schema(["a"]))


class TestAccess:
    def test_column(self, worksfor):
        assert worksfor.column("dname").count("toy") == 3

    def test_column_pair(self, worksfor):
        pairs = worksfor.column_pair("dname", "year")
        assert ("toy", 1990) in pairs
        assert len(pairs) == 6

    def test_unknown_column(self, worksfor):
        with pytest.raises(KeyError):
            worksfor.column("salary")

    def test_distinct_count(self, worksfor):
        assert worksfor.distinct_count("dname") == 3
        assert worksfor.distinct_count("ename") == 6

    def test_frequency_distribution(self, worksfor):
        dist = worksfor.frequency_distribution("dname")
        assert dist.frequency_of("toy") == 3.0
        assert dist.frequency_of("shoe") == 2.0
        assert dist.frequency_of("candy") == 1.0

    def test_frequency_distribution_empty_relation(self):
        relation = Relation("R", Schema(["a"]))
        with pytest.raises(ValueError, match="empty"):
            relation.frequency_distribution("a")


class TestUpdates:
    def test_insert(self, worksfor):
        worksfor.insert(("gil", "candy", 1994))
        assert worksfor.cardinality == 7

    def test_delete_where(self, worksfor):
        position = worksfor.schema.position("dname")
        removed = worksfor.delete_where(lambda row: row[position] == "toy")
        assert removed == 3
        assert worksfor.cardinality == 3

    def test_delete_none(self, worksfor):
        assert worksfor.delete_where(lambda row: False) == 0

    def test_len(self, worksfor):
        assert len(worksfor) == 6
