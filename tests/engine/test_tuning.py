"""Tests for repro.engine.tuning — the statistics tuner."""

import numpy as np
import pytest

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.engine.tuning import (
    Recommendation,
    apply_recommendations,
    recommend_statistics,
    tune_database,
)


def zipf_relation(name, attr, total, domain, z, rng):
    freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
    column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
    rng.shuffle(column)
    return Relation.from_columns(name, {attr: column})


@pytest.fixture
def mixed_relations(rng):
    uniform = zipf_relation("U", "a", 1000, 50, 0.02, rng)
    skewed = zipf_relation("S", "a", 1000, 50, 1.8, rng)
    return [uniform, skewed]


class TestRecommendStatistics:
    def test_one_recommendation_per_attribute(self, mixed_relations):
        recs = recommend_statistics(mixed_relations, tolerance=0.01)
        assert len(recs) == 2
        assert {(r.relation, r.attribute) for r in recs} == {("U", "a"), ("S", "a")}

    def test_uniform_gets_one_bucket(self, mixed_relations):
        recs = {r.relation: r for r in recommend_statistics(mixed_relations, tolerance=0.01)}
        assert recs["U"].recommended_buckets <= 2

    def test_skew_needs_more_buckets(self, mixed_relations):
        recs = {r.relation: r for r in recommend_statistics(mixed_relations, tolerance=0.01)}
        assert recs["S"].recommended_buckets > recs["U"].recommended_buckets

    def test_tolerance_met(self, mixed_relations):
        for rec in recommend_statistics(mixed_relations, tolerance=0.02):
            assert rec.achieved_relative_error <= 0.02 + 1e-12

    def test_tighter_tolerance_more_buckets(self, mixed_relations):
        loose = {r.relation: r for r in recommend_statistics(mixed_relations, tolerance=0.05)}
        tight = {r.relation: r for r in recommend_statistics(mixed_relations, tolerance=0.005)}
        assert tight["S"].recommended_buckets >= loose["S"].recommended_buckets

    def test_cap_applied_gracefully(self, mixed_relations):
        recs = recommend_statistics(mixed_relations, tolerance=0.0, max_buckets=5)
        for rec in recs:
            assert rec.recommended_buckets <= 5

    def test_profile_attached(self, mixed_relations):
        recs = {r.relation: r for r in recommend_statistics(mixed_relations)}
        assert recs["S"].profile.gini > recs["U"].profile.gini

    def test_str(self, mixed_relations):
        rec = recommend_statistics(mixed_relations)[0]
        assert "beta=" in str(rec)


class TestApplyAndTune:
    def test_apply_populates_catalog(self, mixed_relations):
        catalog = StatsCatalog()
        recs = recommend_statistics(mixed_relations, tolerance=0.01)
        applied = apply_recommendations(mixed_relations, catalog, recs)
        assert applied == 2
        for rec in recs:
            entry = catalog.require(rec.relation, rec.attribute)
            assert entry.histogram.bucket_count == rec.recommended_buckets

    def test_apply_unknown_relation(self, mixed_relations):
        catalog = StatsCatalog()
        bogus = Recommendation(
            "ghost", "a", 1, 1, 0.0, recommend_statistics(mixed_relations)[0].profile
        )
        with pytest.raises(KeyError, match="ghost"):
            apply_recommendations(mixed_relations, catalog, [bogus])

    def test_tune_database_end_to_end(self, mixed_relations):
        catalog = StatsCatalog()
        recs = tune_database(mixed_relations, catalog, tolerance=0.02)
        assert len(catalog) == 2
        # Tuned statistics actually deliver the promised self-join accuracy.
        for relation in mixed_relations:
            entry = catalog.require(relation.name, "a")
            dist = relation.frequency_distribution("a")
            exact = dist.self_join_size()
            estimate = entry.histogram.self_join_estimate()
            assert abs(exact - estimate) / exact <= 0.02 + 1e-9

    def test_tune_respects_kind(self, mixed_relations):
        catalog = StatsCatalog()
        tune_database(mixed_relations, catalog, tolerance=0.05, kind="serial")
        assert catalog.require("S", "a").kind == "serial"
