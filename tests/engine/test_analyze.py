"""Tests for repro.engine.analyze — the ANALYZE pass."""

import numpy as np
import pytest

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import ANALYZE_KINDS, analyze_database, analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation


@pytest.fixture
def zipf_relation(rng):
    freqs = quantize_to_integers(zipf_frequencies(1000, 40, 1.2))
    column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
    rng.shuffle(column)
    return Relation.from_columns("Z", {"a": column})


class TestAnalyzeRelation:
    @pytest.mark.parametrize("kind", ["trivial", "equi-width", "equi-depth", "end-biased", "serial"])
    def test_all_kinds_build(self, zipf_relation, kind):
        catalog = StatsCatalog()
        entry = analyze_relation(zipf_relation, "a", catalog, kind=kind, buckets=5)
        assert entry.kind == kind
        assert entry.histogram is not None
        assert entry.distinct_count == 40
        assert entry.total_tuples == 1000.0

    def test_histogram_totals_match_relation(self, zipf_relation):
        catalog = StatsCatalog()
        entry = analyze_relation(zipf_relation, "a", catalog, kind="end-biased", buckets=5)
        approx_total = entry.histogram.approximate_frequencies().sum()
        assert approx_total == pytest.approx(1000.0)

    def test_end_biased_gets_compact_form(self, zipf_relation):
        catalog = StatsCatalog()
        entry = analyze_relation(zipf_relation, "a", catalog, kind="end-biased", buckets=5)
        assert entry.compact is not None
        assert entry.compact.distinct_count == 40

    def test_equi_depth_has_no_compact_form(self, zipf_relation):
        catalog = StatsCatalog()
        entry = analyze_relation(zipf_relation, "a", catalog, kind="equi-depth", buckets=5)
        assert entry.compact is None

    def test_sampled_kind(self, zipf_relation):
        catalog = StatsCatalog()
        entry = analyze_relation(zipf_relation, "a", catalog, kind="sampled", buckets=5)
        assert entry.histogram is None
        assert entry.compact is not None
        # Top Zipf value is explicit and close to its true frequency.
        top_value = max(
            set(zipf_relation.column("a")), key=zipf_relation.column("a").count
        )
        assert top_value in entry.compact.explicit

    def test_buckets_clamped_to_domain(self):
        relation = Relation.from_columns("R", {"a": [1, 1, 2]})
        catalog = StatsCatalog()
        entry = analyze_relation(relation, "a", catalog, kind="serial", buckets=10)
        assert entry.histogram.bucket_count == 2

    def test_empty_relation_rejected(self):
        from repro.engine.schema import Schema

        catalog = StatsCatalog()
        with pytest.raises(ValueError, match="empty"):
            analyze_relation(Relation("E", Schema(["a"])), "a", catalog)

    def test_unknown_kind_rejected(self, zipf_relation):
        catalog = StatsCatalog()
        with pytest.raises(ValueError, match="unknown histogram kind"):
            analyze_relation(zipf_relation, "a", catalog, kind="fancy")

    def test_reanalyze_bumps_version(self, zipf_relation):
        catalog = StatsCatalog()
        analyze_relation(zipf_relation, "a", catalog)
        entry = analyze_relation(zipf_relation, "a", catalog)
        assert entry.version == 2


class TestAnalyzeDatabase:
    def test_all_attributes(self, rng):
        r1 = Relation.from_columns("A", {"x": [1, 2, 2], "y": ["p", "q", "p"]})
        r2 = Relation.from_columns("B", {"z": [7, 7, 8]})
        catalog = StatsCatalog()
        entries = analyze_database([r1, r2], catalog)
        assert len(entries) == 3
        assert ("A", "x") in catalog and ("A", "y") in catalog and ("B", "z") in catalog

    def test_restricted_attributes(self):
        r1 = Relation.from_columns("A", {"x": [1, 2], "y": ["p", "q"]})
        catalog = StatsCatalog()
        analyze_database([r1], catalog, attributes={"A": ["x"]})
        assert ("A", "x") in catalog
        assert ("A", "y") not in catalog

    def test_estimation_quality_after_analyze(self, zipf_relation):
        """End-to-end: catalog estimates track true frequencies."""
        catalog = StatsCatalog()
        analyze_relation(zipf_relation, "a", catalog, kind="end-biased", buckets=10)
        entry = catalog.require("Z", "a")
        dist = zipf_relation.frequency_distribution("a")
        top = max(dist.values, key=dist.frequency_of)
        assert entry.estimate_frequency(top) == pytest.approx(dist.frequency_of(top))
