"""Tests for repro.core.buckets."""

import numpy as np
import pytest

from repro.core.buckets import Bucket, buckets_interleave, partition_sizes


class TestBucket:
    def test_statistics(self):
        bucket = Bucket([2.0, 4.0, 6.0])
        assert bucket.count == 3
        assert bucket.total == 12.0
        assert bucket.average == 4.0
        assert bucket.variance == pytest.approx(8.0 / 3.0)
        assert bucket.sse == pytest.approx(8.0)

    def test_sse_is_p_times_v(self):
        """Formula (3) bookkeeping: the bucket contributes p_i · v_i."""
        freqs = np.array([1.0, 5.0, 9.0, 2.0])
        bucket = Bucket(freqs)
        assert bucket.sse == pytest.approx(bucket.count * freqs.var())

    def test_univalued_detection(self):
        assert Bucket([3.0, 3.0, 3.0]).is_univalued()
        assert Bucket([3.0]).is_univalued()
        assert not Bucket([3.0, 4.0]).is_univalued()

    def test_univalued_has_zero_sse(self):
        assert Bucket([5.0, 5.0]).sse == 0.0

    def test_min_max(self):
        bucket = Bucket([2.0, 9.0, 4.0])
        assert bucket.min_frequency == 2.0
        assert bucket.max_frequency == 9.0

    def test_rounded_average(self):
        assert Bucket([1.0, 2.0]).rounded_average() == 2.0  # 1.5 rounds to even
        assert Bucket([1.0, 4.0]).rounded_average() == 2.0

    def test_values_attached(self):
        bucket = Bucket([1.0, 2.0], values=["a", "b"])
        assert bucket.values == ("a", "b")

    def test_values_alignment_enforced(self):
        with pytest.raises(ValueError, match="align"):
            Bucket([1.0, 2.0], values=["a"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            Bucket([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Bucket([1.0, -2.0])

    def test_immutability(self):
        bucket = Bucket([1.0, 2.0])
        with pytest.raises(ValueError):
            bucket.frequencies[0] = 9.0

    def test_equality_order_insensitive(self):
        assert Bucket([1.0, 2.0]) == Bucket([2.0, 1.0])

    def test_len(self):
        assert len(Bucket([1.0, 2.0, 3.0])) == 3


class TestBucketsInterleave:
    def test_disjoint_ranges_do_not_interleave(self):
        low = Bucket([1.0, 2.0])
        high = Bucket([5.0, 9.0])
        assert not buckets_interleave(low, high)
        assert not buckets_interleave(high, low)

    def test_overlapping_ranges_interleave(self):
        a = Bucket([1.0, 5.0])
        b = Bucket([3.0, 9.0])
        assert buckets_interleave(a, b)

    def test_touching_boundaries_are_serial(self):
        """Equal boundary frequencies satisfy Definition 2.1 (<=, not <)."""
        a = Bucket([1.0, 3.0])
        b = Bucket([3.0, 7.0])
        assert not buckets_interleave(a, b)

    def test_nested_ranges_interleave(self):
        outer = Bucket([1.0, 9.0])
        inner = Bucket([4.0, 5.0])
        assert buckets_interleave(outer, inner)


class TestPartitionSizes:
    def test_sizes(self):
        buckets = [Bucket([1.0]), Bucket([2.0, 3.0]), Bucket([4.0, 5.0, 6.0])]
        assert partition_sizes(buckets) == (1, 2, 3)
