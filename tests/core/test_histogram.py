"""Tests for repro.core.histogram — the taxonomy of Sections 2.3-2.4."""

import numpy as np
import pytest

from repro.core.histogram import Histogram


def make(freqs, groups, **kwargs):
    return Histogram(freqs, groups, **kwargs)


class TestConstruction:
    def test_partition_enforced(self, tiny_frequencies):
        with pytest.raises(ValueError, match="partition"):
            make(tiny_frequencies, [(0, 1), (1, 2, 3, 4)])  # index 1 repeated

    def test_missing_index_rejected(self, tiny_frequencies):
        with pytest.raises(ValueError, match="partition"):
            make(tiny_frequencies, [(0, 1), (2, 3)])

    def test_empty_bucket_rejected(self, tiny_frequencies):
        with pytest.raises(ValueError):
            make(tiny_frequencies, [(), (0, 1, 2, 3, 4)])

    def test_no_buckets_rejected(self, tiny_frequencies):
        with pytest.raises(ValueError, match="at least one"):
            make(tiny_frequencies, [])

    def test_values_aligned(self, tiny_frequencies):
        hist = make(
            tiny_frequencies,
            [(0, 1), (2, 3, 4)],
            values=["a", "b", "c", "d", "e"],
        )
        assert hist.buckets[0].values == ("a", "b")

    def test_values_misalignment_rejected(self, tiny_frequencies):
        with pytest.raises(ValueError, match="align"):
            make(tiny_frequencies, [(0, 1, 2, 3, 4)], values=["a"])

    def test_from_sorted_sizes_groups_by_rank(self):
        # Reference order is scrambled; sizes carve the *sorted* order.
        freqs = [2.0, 9.0, 1.0, 7.0, 4.0]
        hist = Histogram.from_sorted_sizes(freqs, (2, 3))
        first = sorted(hist.buckets[0].frequencies.tolist())
        assert first == [7.0, 9.0]

    def test_from_sorted_sizes_validates_sum(self):
        with pytest.raises(ValueError, match="sum"):
            Histogram.from_sorted_sizes([1.0, 2.0, 3.0], (2, 2))

    def test_from_sorted_sizes_rejects_zero_size(self):
        with pytest.raises(ValueError, match="positive"):
            Histogram.from_sorted_sizes([1.0, 2.0], (2, 0))

    def test_single_bucket(self, tiny_frequencies):
        hist = Histogram.single_bucket(tiny_frequencies)
        assert hist.bucket_count == 1
        assert hist.is_trivial()
        assert hist.kind == "trivial"


class TestClassification:
    def test_serial_detection(self):
        freqs = [9.0, 7.0, 4.0, 2.0, 1.0]
        serial = make(freqs, [(0, 1), (2,), (3, 4)])
        assert serial.is_serial()

    def test_non_serial_detection(self):
        """The paper's Figure 2(b) histogram interleaves: not serial."""
        freqs = [9.0, 7.0, 4.0, 2.0, 1.0]
        interleaved = make(freqs, [(0, 2), (1, 3, 4)])  # {9,4} vs {7,2,1}
        assert not interleaved.is_serial()

    def test_trivial_is_serial(self, tiny_frequencies):
        assert Histogram.single_bucket(tiny_frequencies).is_serial()

    def test_biased_detection(self):
        freqs = [9.0, 7.0, 4.0, 2.0, 1.0]
        biased = make(freqs, [(0,), (2,), (1, 3, 4)])
        assert biased.is_biased()

    def test_not_biased_with_two_multivalued(self):
        freqs = [9.0, 7.0, 4.0, 2.0, 1.0]
        hist = make(freqs, [(0, 1), (2, 3), (4,)])
        assert not hist.is_biased()

    def test_end_biased_true(self):
        freqs = [9.0, 7.0, 4.0, 2.0, 1.0]
        hist = make(freqs, [(0,), (4,), (1, 2, 3)])  # highest + lowest singled out
        assert hist.is_end_biased()
        assert hist.is_serial()

    def test_biased_but_not_end_biased(self):
        freqs = [9.0, 7.0, 4.0, 2.0, 1.0]
        hist = make(freqs, [(2,), (0, 1, 3, 4)])  # middle value singled out
        assert hist.is_biased()
        assert not hist.is_end_biased()

    def test_end_biased_implies_serial(self):
        """Definition 2.2's remark: end-biased histograms are serial."""
        freqs = [9.0, 7.0, 4.0, 2.0, 1.0]
        for groups in ([(0,), (1, 2, 3, 4)], [(4,), (0, 1, 2, 3)], [(0,), (4,), (1, 2, 3)]):
            hist = make(freqs, groups)
            if hist.is_end_biased():
                assert hist.is_serial()

    def test_univalued_multibucket_counts_as_end_biased(self):
        """All-exact histograms degenerate to end-biased (zero error)."""
        freqs = [5.0, 5.0, 3.0]
        hist = make(freqs, [(0, 1), (2,)])
        assert hist.is_end_biased()

    def test_tied_boundary_end_biased(self):
        freqs = [9.0, 9.0, 4.0, 1.0]
        hist = make(freqs, [(0,), (1, 2, 3)])
        assert hist.is_end_biased()


class TestApproximation:
    def test_approximate_frequencies(self):
        freqs = [9.0, 7.0, 4.0, 2.0]
        hist = make(freqs, [(0, 1), (2, 3)])
        assert hist.approximate_frequencies().tolist() == [8.0, 8.0, 3.0, 3.0]

    def test_rounded_approximation(self):
        freqs = [2.0, 1.0]
        hist = make(freqs, [(0, 1)])
        assert hist.approximate_frequencies(rounded=True).tolist() == [2.0, 2.0]

    def test_totals_preserved(self, zipf_medium):
        hist = Histogram.from_sorted_sizes(zipf_medium, (10, 40, 50))
        assert hist.approximate_frequencies().sum() == pytest.approx(zipf_medium.sum())

    def test_approximate_distribution(self):
        hist = make([4.0, 2.0], [(0, 1)], values=["a", "b"])
        dist = hist.approximate_distribution()
        assert dist.frequency_of("a") == 3.0
        assert dist.frequency_of("b") == 3.0

    def test_approximate_distribution_requires_values(self, tiny_frequencies):
        hist = Histogram.single_bucket(tiny_frequencies)
        with pytest.raises(ValueError, match="no values"):
            hist.approximate_distribution()

    def test_approx_of_value(self):
        hist = make([9.0, 4.0, 2.0], [(0,), (1, 2)], values=["a", "b", "c"])
        assert hist.approx_of_value("a") == 9.0
        assert hist.approx_of_value("b") == 3.0
        assert hist.approx_of_value("unknown") == 0.0

    def test_approximate_array_permutation(self, rng):
        freqs = np.array([9.0, 7.0, 4.0, 2.0, 1.0])
        hist = Histogram.from_sorted_sizes(freqs, (2, 3))
        shuffled = rng.permutation(freqs)
        approx = hist.approximate_array(shuffled)
        # Rank mapping: the two largest entries get the top-bucket mean.
        top_mean = (9.0 + 7.0) / 2
        bottom_mean = (4.0 + 2.0 + 1.0) / 3
        for original, approximated in zip(shuffled, approx):
            expected = top_mean if original >= 7.0 else bottom_mean
            assert approximated == pytest.approx(expected)

    def test_approximate_array_preserves_shape(self):
        freqs = np.arange(1.0, 13.0)
        hist = Histogram.from_sorted_sizes(freqs, (4, 8))
        matrix = freqs.reshape(3, 4)
        assert hist.approximate_array(matrix).shape == (3, 4)

    def test_approximate_array_rejects_foreign_multiset(self, tiny_frequencies):
        hist = Histogram.single_bucket(tiny_frequencies)
        with pytest.raises(ValueError, match="multiset"):
            hist.approximate_array([1.0, 2.0, 3.0, 4.0, 100.0])


class TestPropositionFormulas:
    def test_self_join_estimate_formula(self):
        """Formula (2): S' = Σ T_i² / p_i."""
        freqs = [9.0, 7.0, 4.0, 2.0]
        hist = make(freqs, [(0, 1), (2, 3)])
        assert hist.self_join_estimate() == pytest.approx(16.0**2 / 2 + 6.0**2 / 2)

    def test_self_join_error_formula(self):
        """Formula (3): S − S' = Σ p_i · v_i."""
        freqs = np.array([9.0, 7.0, 4.0, 2.0])
        hist = make(freqs, [(0, 1), (2, 3)])
        exact = float(np.dot(freqs, freqs))
        assert hist.self_join_error() == pytest.approx(exact - hist.self_join_estimate())

    def test_error_consistency_any_partition(self, zipf_small):
        """S − S' = Σ p·v holds for arbitrary (non-serial) partitions too."""
        hist = make(zipf_small, [(0, 5, 9), (1, 2), (3, 4, 6, 7, 8)])
        exact = float(np.dot(zipf_small, zipf_small))
        approx = hist.approximate_frequencies()
        assert hist.self_join_error() == pytest.approx(exact - float(np.dot(approx, approx)))

    def test_perfect_histogram_zero_error(self, tiny_frequencies):
        hist = make(tiny_frequencies, [(i,) for i in range(5)])
        assert hist.self_join_error() == 0.0
        assert hist.self_join_estimate() == pytest.approx(
            float(np.dot(tiny_frequencies, tiny_frequencies))
        )

    def test_error_non_negative(self, zipf_medium, rng):
        """Jensen: bucketing can only under-estimate a self-join."""
        for _ in range(10):
            groups = np.array_split(rng.permutation(100), 5)
            hist = make(zipf_medium, [tuple(g) for g in groups])
            assert hist.self_join_error() >= -1e-9


class TestStorage:
    def test_storage_entries_counts_all_but_largest(self):
        freqs = [9.0, 7.0, 4.0, 2.0, 1.0]
        hist = make(freqs, [(0,), (1,), (2, 3, 4)])
        # Two singletons explicit + 1 slot for the implicit bucket's average.
        assert hist.storage_entries() == 3

    def test_trivial_storage_is_one(self, tiny_frequencies):
        assert Histogram.single_bucket(tiny_frequencies).storage_entries() == 1


class TestEquality:
    def test_equal_group_order_irrelevant(self, tiny_frequencies):
        a = make(tiny_frequencies, [(0, 1), (2, 3, 4)])
        b = make(tiny_frequencies, [(2, 3, 4), (1, 0)])
        assert a == b

    def test_different_partitions_differ(self, tiny_frequencies):
        a = make(tiny_frequencies, [(0, 1), (2, 3, 4)])
        b = make(tiny_frequencies, [(0, 1, 2), (3, 4)])
        assert a != b
