"""Tests for repro.core.advisor."""

import numpy as np
import pytest

from repro.core.advisor import (
    AdvisoryRow,
    advisory_report,
    minimum_buckets,
    optimal_error_for_buckets,
)
from repro.data.zipf import zipf_frequencies


class TestOptimalErrorForBuckets:
    def test_serial_leq_end_biased(self, zipf_small):
        for beta in (2, 3, 5):
            serial = optimal_error_for_buckets(zipf_small, beta, "serial")
            end_biased = optimal_error_for_buckets(zipf_small, beta, "end-biased")
            assert serial <= end_biased + 1e-9

    def test_monotone_non_increasing(self, zipf_medium):
        for kind in ("serial", "end-biased"):
            errors = [
                optimal_error_for_buckets(zipf_medium, beta, kind)
                for beta in range(1, 15)
            ]
            for earlier, later in zip(errors, errors[1:]):
                assert later <= earlier + 1e-9, kind

    def test_unknown_kind(self, zipf_small):
        with pytest.raises(ValueError, match="unknown histogram kind"):
            optimal_error_for_buckets(zipf_small, 3, "equi-width")


class TestMinimumBuckets:
    def test_uniform_needs_one_bucket(self):
        """The paper's example: near-uniform data -> one or two buckets."""
        freqs = np.full(100, 10.0)
        assert minimum_buckets(freqs, 0.01, "end-biased") == 1

    def test_skew_needs_more(self, zipf_medium):
        beta = minimum_buckets(zipf_medium, 0.01, "end-biased")
        assert beta > 1

    def test_result_meets_tolerance(self, zipf_medium):
        tolerance = 0.02
        beta = minimum_buckets(zipf_medium, tolerance, "end-biased")
        exact = float(np.dot(zipf_medium, zipf_medium))
        error = optimal_error_for_buckets(zipf_medium, beta, "end-biased")
        assert error <= tolerance * exact

    def test_result_is_minimal(self, zipf_medium):
        tolerance = 0.02
        beta = minimum_buckets(zipf_medium, tolerance, "end-biased")
        if beta > 1:
            exact = float(np.dot(zipf_medium, zipf_medium))
            below = optimal_error_for_buckets(zipf_medium, beta - 1, "end-biased")
            assert below > tolerance * exact

    def test_absolute_tolerance(self, zipf_small):
        beta = minimum_buckets(zipf_small, 50.0, "serial", relative=False)
        assert optimal_error_for_buckets(zipf_small, beta, "serial") <= 50.0

    def test_zero_tolerance_reachable(self, zipf_small):
        beta = minimum_buckets(zipf_small, 0.0, "serial", relative=False)
        assert optimal_error_for_buckets(zipf_small, beta, "serial") == pytest.approx(0.0)

    def test_serial_needs_no_more_than_end_biased(self, zipf_medium):
        tolerance = 0.05
        serial = minimum_buckets(zipf_medium, tolerance, "serial")
        end_biased = minimum_buckets(zipf_medium, tolerance, "end-biased")
        assert serial <= end_biased

    def test_max_buckets_cap_raises_when_insufficient(self, zipf_medium):
        with pytest.raises(ValueError, match="cannot reach"):
            minimum_buckets(zipf_medium, 1e-9, "end-biased", relative=False, max_buckets=2)

    def test_negative_tolerance_rejected(self, zipf_small):
        with pytest.raises(ValueError):
            minimum_buckets(zipf_small, -0.1)


class TestAdvisoryReport:
    def test_rows(self, zipf_small):
        rows = advisory_report(zipf_small, [1, 2, 5], "end-biased")
        assert [r.buckets for r in rows] == [1, 2, 5]
        assert all(isinstance(r, AdvisoryRow) for r in rows)

    def test_relative_error_normalised(self, zipf_small):
        rows = advisory_report(zipf_small, [1], "end-biased")
        exact = float(np.dot(zipf_small, zipf_small))
        assert rows[0].relative_error == pytest.approx(rows[0].error / exact)

    def test_str_rendering(self, zipf_small):
        text = str(advisory_report(zipf_small, [3], "serial")[0])
        assert "beta=" in text and "error=" in text

    def test_near_uniform_reports_tiny_errors(self):
        """Applied to near-uniform data the report signals one bucket is fine."""
        freqs = zipf_frequencies(1000, 100, 0.02)
        rows = advisory_report(freqs, [1, 2, 5], "end-biased")
        assert all(r.relative_error < 0.01 for r in rows)


class TestAllocateBucketBudget:
    def _sets(self):
        return [
            zipf_frequencies(1000, 40, 0.05),
            zipf_frequencies(1000, 40, 1.0),
            zipf_frequencies(1000, 40, 2.5),
        ]

    def test_budget_respected(self):
        from repro.core.advisor import allocate_bucket_budget

        allocation = allocate_bucket_budget(self._sets(), 12)
        assert sum(allocation) <= 12
        assert all(k >= 1 for k in allocation)

    def test_uniform_attribute_starved(self):
        from repro.core.advisor import allocate_bucket_budget

        allocation = allocate_bucket_budget(self._sets(), 12)
        # The near-uniform attribute needs no extra buckets; skewed ones do.
        assert allocation[0] <= allocation[1]
        assert allocation[0] <= 2

    def test_matches_exhaustive_two_attributes(self):
        from itertools import product

        from repro.core.advisor import allocate_bucket_budget

        small = [zipf_frequencies(100, 6, 0.1), zipf_frequencies(100, 6, 2.0)]
        budget = 6
        best_error = min(
            optimal_error_for_buckets(small[0], a) + optimal_error_for_buckets(small[1], budget - a)
            for a in range(1, 6)
            if 1 <= budget - a <= 6
        )
        greedy = allocate_bucket_budget(small, budget)
        greedy_error = sum(
            optimal_error_for_buckets(s, k) for s, k in zip(small, greedy)
        )
        assert greedy_error == pytest.approx(best_error)

    def test_total_error_decreases_with_budget(self):
        from repro.core.advisor import allocate_bucket_budget

        sets = self._sets()

        def total_error(budget):
            allocation = allocate_bucket_budget(sets, budget)
            return sum(optimal_error_for_buckets(s, k) for s, k in zip(sets, allocation))

        errors = [total_error(b) for b in (3, 6, 12, 24)]
        for earlier, later in zip(errors, errors[1:]):
            assert later <= earlier + 1e-9

    def test_weights_bias_allocation(self):
        from repro.core.advisor import allocate_bucket_budget

        sets = [zipf_frequencies(1000, 20, 1.5), zipf_frequencies(1000, 20, 1.5)]
        favored = allocate_bucket_budget(sets, 8, weights=[100.0, 1.0])
        assert favored[0] >= favored[1]

    def test_budget_too_small_rejected(self):
        from repro.core.advisor import allocate_bucket_budget

        with pytest.raises(ValueError, match="budget"):
            allocate_bucket_budget(self._sets(), 2)

    def test_excess_budget_left_unused(self):
        from repro.core.advisor import allocate_bucket_budget

        sets = [zipf_frequencies(100, 3, 1.0)]
        allocation = allocate_bucket_budget(sets, 50)
        assert allocation == [3]  # cannot exceed the distinct-value count
