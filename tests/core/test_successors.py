"""Tests for repro.core.successors — MaxDiff and Compressed histograms."""

import numpy as np
import pytest

from repro.core.serial import v_opt_hist_dp, v_opt_hist_exhaustive
from repro.core.successors import compressed_histogram, max_diff_histogram
from repro.data.zipf import zipf_frequencies


class TestMaxDiff:
    def test_bucket_count(self, zipf_small):
        assert max_diff_histogram(zipf_small, 4).bucket_count == 4

    def test_is_serial(self, zipf_medium):
        assert max_diff_histogram(zipf_medium, 8).is_serial()

    def test_cuts_at_largest_gaps(self):
        # Two clear clusters: the single cut must separate them.
        freqs = [100.0, 99.0, 98.0, 5.0, 4.0, 3.0]
        hist = max_diff_histogram(freqs, 2)
        sizes = sorted(b.count for b in hist.buckets)
        assert sizes == [3, 3]
        assert hist.self_join_error() == pytest.approx(
            v_opt_hist_exhaustive(freqs, 2).self_join_error()
        )

    def test_single_bucket_is_trivial(self, zipf_small):
        hist = max_diff_histogram(zipf_small, 1)
        assert hist.bucket_count == 1

    def test_beta_equals_m_exact(self, zipf_small):
        assert max_diff_histogram(zipf_small, 10).self_join_error() == 0.0

    def test_beta_too_large_rejected(self, zipf_small):
        with pytest.raises(ValueError, match="cannot build"):
            max_diff_histogram(zipf_small, 11)

    def test_never_better_than_v_optimal(self, zipf_medium):
        for beta in (2, 5, 10):
            optimal = v_opt_hist_dp(zipf_medium, beta).self_join_error()
            maxdiff = max_diff_histogram(zipf_medium, beta).self_join_error()
            assert maxdiff >= optimal - 1e-9

    def test_matches_optimal_end_biased_on_zipf(self, zipf_medium):
        """On smooth Zipf data the largest adjacent gaps sit at the head of
        the sorted order, so MaxDiff coincides with the optimal end-biased
        histogram — near-optimality at O(M log M) cost."""
        from repro.core.biased import v_opt_bias_hist

        for beta in (2, 5, 10):
            end_biased = v_opt_bias_hist(zipf_medium, beta).self_join_error()
            maxdiff = max_diff_histogram(zipf_medium, beta).self_join_error()
            assert maxdiff == pytest.approx(end_biased)

    def test_near_optimal_on_clustered_data(self, rng):
        """On clustered frequencies MaxDiff finds the v-optimal partition."""
        clusters = np.concatenate(
            [rng.normal(mu, 0.5, size=5) for mu in (100.0, 50.0, 5.0)]
        )
        clusters = np.clip(clusters, 0.1, None)
        optimal = v_opt_hist_dp(clusters, 3).self_join_error()
        maxdiff = max_diff_histogram(clusters, 3).self_join_error()
        assert maxdiff <= 1.5 * optimal + 1e-6

    def test_kind_label(self, zipf_small):
        assert max_diff_histogram(zipf_small, 3).kind == "max-diff"

    def test_deterministic_on_ties(self):
        freqs = [4.0, 3.0, 2.0, 1.0]  # all gaps equal
        a = max_diff_histogram(freqs, 3)
        b = max_diff_histogram(freqs, 3)
        assert a == b

    def test_values_propagated(self):
        hist = max_diff_histogram([5.0, 1.0], 2, values=["a", "b"])
        assert hist.values == ("a", "b")


class TestCompressed:
    def test_bucket_count(self, zipf_medium):
        assert compressed_histogram(zipf_medium, 10).bucket_count == 10

    def test_is_serial(self, zipf_medium):
        assert compressed_histogram(zipf_medium, 10).is_serial()

    def test_heavy_values_singled_out(self, zipf_medium):
        hist = compressed_histogram(zipf_medium, 10)
        threshold = zipf_medium.sum() / 10
        singles = [b for b in hist.buckets if b.count == 1]
        heavy = zipf_medium[zipf_medium > threshold]
        single_freqs = sorted(b.frequencies[0] for b in singles)
        for value in heavy:
            assert any(np.isclose(value, s) for s in single_freqs)

    def test_residue_mass_balanced(self, zipf_medium):
        hist = compressed_histogram(zipf_medium, 10)
        multis = [b for b in hist.buckets if b.count > 1]
        if len(multis) > 1:
            totals = [b.total for b in multis]
            assert max(totals) <= 2.5 * min(totals)

    def test_uniform_degenerates_to_equi_depth(self):
        freqs = np.full(20, 5.0)
        hist = compressed_histogram(freqs, 4)
        assert hist.bucket_count == 4
        assert hist.self_join_error() == 0.0

    def test_all_heavy_degenerate(self):
        # Two values, both above T/2 threshold impossible; sanity small case.
        hist = compressed_histogram([10.0, 1.0], 2)
        assert hist.bucket_count == 2
        assert hist.self_join_error() == 0.0

    def test_never_better_than_v_optimal(self, zipf_medium):
        for beta in (5, 10, 15):
            optimal = v_opt_hist_dp(zipf_medium, beta).self_join_error()
            compressed = compressed_histogram(zipf_medium, beta).self_join_error()
            assert compressed >= optimal - 1e-6

    def test_kind_label(self, zipf_small):
        assert compressed_histogram(zipf_small, 3).kind == "compressed"

    def test_beta_too_large_rejected(self, zipf_small):
        with pytest.raises(ValueError, match="cannot build"):
            compressed_histogram(zipf_small, 11)

    def test_high_skew_isolates_head(self):
        freqs = zipf_frequencies(1000, 50, 2.5)
        hist = compressed_histogram(freqs, 6)
        singles = [b for b in hist.buckets if b.count == 1]
        assert len(singles) >= 1
        assert max(b.max_frequency for b in singles) == pytest.approx(freqs.max())
