"""Tests for repro.core.serial — V-OptHist and its dynamic program."""

import numpy as np
import pytest

from repro.core.serial import (
    AUTO_EXHAUSTIVE_LIMIT,
    all_serial_histograms,
    enumerate_serial_partitions,
    serial_error_from_sizes,
    serial_partition_count,
    v_opt_hist_dp,
    v_opt_hist_exhaustive,
    v_optimal_serial_histogram,
)
from repro.data.zipf import zipf_frequencies


class TestEnumerateSerialPartitions:
    def test_counts_match_formula(self):
        for m, beta in [(5, 2), (6, 3), (7, 4), (8, 1)]:
            partitions = list(enumerate_serial_partitions(m, beta))
            assert len(partitions) == serial_partition_count(m, beta)

    def test_partitions_are_compositions(self):
        for sizes in enumerate_serial_partitions(6, 3):
            assert len(sizes) == 3
            assert sum(sizes) == 6
            assert all(s >= 1 for s in sizes)

    def test_all_distinct(self):
        partitions = list(enumerate_serial_partitions(7, 3))
        assert len(set(partitions)) == len(partitions)

    def test_beta_exceeds_m_yields_nothing(self):
        assert list(enumerate_serial_partitions(3, 4)) == []

    def test_beta_one(self):
        assert list(enumerate_serial_partitions(5, 1)) == [(5,)]

    def test_beta_equals_m(self):
        assert list(enumerate_serial_partitions(4, 4)) == [(1, 1, 1, 1)]


class TestSerialErrorFromSizes:
    def test_matches_histogram_error(self, zipf_small):
        from repro.core.histogram import Histogram

        sizes = (2, 3, 5)
        direct = serial_error_from_sizes(zipf_small, sizes)
        via_hist = Histogram.from_sorted_sizes(zipf_small, sizes).self_join_error()
        assert direct == pytest.approx(via_hist)

    def test_all_singletons_zero_error(self, zipf_small):
        assert serial_error_from_sizes(zipf_small, (1,) * 10) == 0.0

    def test_one_bucket_is_total_sse(self, zipf_small):
        error = serial_error_from_sizes(zipf_small, (10,))
        assert error == pytest.approx(zipf_small.size * zipf_small.var())

    def test_rejects_bad_sizes(self, zipf_small):
        with pytest.raises(ValueError, match="sum"):
            serial_error_from_sizes(zipf_small, (3, 3))


class TestVOptHistExhaustive:
    def test_is_minimum_over_all_serial(self, zipf_small):
        best = v_opt_hist_exhaustive(zipf_small, 3)
        for candidate in all_serial_histograms(zipf_small, 3):
            assert best.self_join_error() <= candidate.self_join_error() + 1e-9

    def test_result_is_serial(self, zipf_small):
        assert v_opt_hist_exhaustive(zipf_small, 4).is_serial()

    def test_bucket_count(self, zipf_small):
        assert v_opt_hist_exhaustive(zipf_small, 4).bucket_count == 4

    def test_one_bucket_equals_trivial(self, zipf_small):
        hist = v_opt_hist_exhaustive(zipf_small, 1)
        assert hist.bucket_count == 1
        assert hist.self_join_error() == pytest.approx(
            serial_error_from_sizes(zipf_small, (10,))
        )

    def test_beta_equals_m_is_exact(self, zipf_small):
        assert v_opt_hist_exhaustive(zipf_small, 10).self_join_error() == 0.0

    def test_beta_exceeds_m_rejected(self, zipf_small):
        with pytest.raises(ValueError, match="cannot build"):
            v_opt_hist_exhaustive(zipf_small, 11)

    def test_kind(self, zipf_small):
        assert v_opt_hist_exhaustive(zipf_small, 3).kind == "serial"

    def test_values_propagated(self):
        freqs = [5.0, 1.0, 3.0]
        hist = v_opt_hist_exhaustive(freqs, 2, values=["a", "b", "c"])
        assert hist.values == ("a", "b", "c")


class TestVOptHistDP:
    @pytest.mark.parametrize("m,beta", [(5, 2), (8, 3), (10, 4), (12, 5), (15, 3)])
    def test_matches_exhaustive_on_zipf(self, m, beta):
        freqs = zipf_frequencies(1000, m, 1.0)
        dp = v_opt_hist_dp(freqs, beta)
        exhaustive = v_opt_hist_exhaustive(freqs, beta)
        assert dp.self_join_error() == pytest.approx(exhaustive.self_join_error())

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exhaustive_on_random(self, seed):
        gen = np.random.default_rng(seed)
        freqs = gen.uniform(0.0, 100.0, size=9)
        for beta in (2, 3, 4):
            dp = v_opt_hist_dp(freqs, beta)
            exhaustive = v_opt_hist_exhaustive(freqs, beta)
            assert dp.self_join_error() == pytest.approx(
                exhaustive.self_join_error()
            ), f"seed={seed} beta={beta}"

    def test_handles_duplicates(self):
        freqs = [4.0, 4.0, 4.0, 1.0, 1.0]
        dp = v_opt_hist_dp(freqs, 2)
        assert dp.self_join_error() == pytest.approx(0.0)

    def test_large_input(self, zipf_medium):
        hist = v_opt_hist_dp(zipf_medium, 10)
        assert hist.bucket_count == 10
        assert hist.is_serial()

    def test_monotone_in_buckets(self, zipf_medium):
        """The optimal serial error never increases with more buckets."""
        errors = [v_opt_hist_dp(zipf_medium, beta).self_join_error() for beta in range(1, 12)]
        for earlier, later in zip(errors, errors[1:]):
            assert later <= earlier + 1e-9

    def test_uniform_distribution_zero_error(self):
        freqs = np.full(50, 20.0)
        assert v_opt_hist_dp(freqs, 3).self_join_error() == 0.0


class TestVOptimalSerialHistogram:
    def test_auto_picks_exhaustive_for_small(self, zipf_small):
        hist = v_optimal_serial_histogram(zipf_small, 3, method="auto")
        assert hist.self_join_error() == pytest.approx(
            v_opt_hist_exhaustive(zipf_small, 3).self_join_error()
        )

    def test_auto_uses_dp_for_large(self, zipf_medium):
        assert serial_partition_count(100, 10) > AUTO_EXHAUSTIVE_LIMIT
        hist = v_optimal_serial_histogram(zipf_medium, 10, method="auto")
        assert hist.bucket_count == 10

    def test_explicit_methods_agree(self, zipf_small):
        a = v_optimal_serial_histogram(zipf_small, 4, method="exhaustive")
        b = v_optimal_serial_histogram(zipf_small, 4, method="dp")
        assert a.self_join_error() == pytest.approx(b.self_join_error())

    def test_unknown_method_rejected(self, zipf_small):
        with pytest.raises(ValueError, match="unknown method"):
            v_optimal_serial_histogram(zipf_small, 3, method="magic")

    def test_groups_similar_frequencies(self):
        """Serial optimum separates the two frequency clusters exactly."""
        freqs = [100.0, 99.0, 98.0, 2.0, 1.0]
        hist = v_optimal_serial_histogram(freqs, 2)
        sizes = sorted(b.count for b in hist.buckets)
        assert sizes == [2, 3]
        high = max(hist.buckets, key=lambda b: b.average)
        assert sorted(high.frequencies.tolist()) == [98.0, 99.0, 100.0]


class TestAllSerialHistograms:
    def test_yields_every_partition(self, zipf_small):
        histograms = list(all_serial_histograms(zipf_small, 3))
        assert len(histograms) == serial_partition_count(10, 3)
        assert all(h.is_serial() for h in histograms)


class TestDpContiguousPartition:
    def test_respects_given_order(self):
        """The DP partitions whatever order it is given (value order here)."""
        from repro.core.serial import dp_contiguous_partition

        ordered = np.array([1.0, 100.0, 1.0, 1.0])
        sizes = dp_contiguous_partition(ordered, 3)
        assert sum(sizes) == 4
        assert len(sizes) == 3
        # The spike must be isolated: splitting around index 1.
        edges = np.cumsum((0,) + sizes)
        blocks = [ordered[a:b] for a, b in zip(edges[:-1], edges[1:])]
        spike_block = next(b for b in blocks if 100.0 in b)
        assert spike_block.size == 1

    def test_single_bucket(self):
        from repro.core.serial import dp_contiguous_partition

        assert dp_contiguous_partition(np.array([3.0, 1.0]), 1) == (2,)

    def test_all_singletons(self):
        from repro.core.serial import dp_contiguous_partition

        assert dp_contiguous_partition(np.array([3.0, 1.0, 2.0]), 3) == (1, 1, 1)
