"""Tests for repro.core.tensor — frequency tensors for tree queries."""

import numpy as np
import pytest

from repro.core.frequency import FrequencySet
from repro.core.matrix import FrequencyMatrix, chain_result_size
from repro.core.tensor import FrequencyTensor, arrange_frequency_tensor, tree_result_size
from repro.data.zipf import zipf_frequencies


class TestFrequencyTensor:
    def test_construction(self):
        tensor = FrequencyTensor(np.ones((2, 3, 4)), axes=(0, 1, 2))
        assert tensor.shape == (2, 3, 4)
        assert tensor.total == 24.0

    def test_one_dimensional(self):
        tensor = FrequencyTensor([1.0, 2.0], axes=(5,))
        assert tensor.axes == (5,)

    def test_axis_count_mismatch(self):
        with pytest.raises(ValueError, match="axis labels"):
            FrequencyTensor(np.ones((2, 2)), axes=(0,))

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            FrequencyTensor(np.ones((2, 2)), axes=(0, 0))

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FrequencyTensor([[-1.0]], axes=(0,))
        # 2-D form with one axis is also wrong; check the real negative case.
        with pytest.raises(ValueError):
            FrequencyTensor(np.array([-1.0, 2.0]), axes=(0,))

    def test_frequency_set(self):
        tensor = FrequencyTensor([[1.0, 3.0], [2.0, 4.0]], axes=(0, 1))
        assert tensor.frequency_set() == FrequencySet([1.0, 2.0, 3.0, 4.0])

    def test_immutability(self):
        tensor = FrequencyTensor([[1.0]], axes=(0, 1))
        with pytest.raises(ValueError):
            tensor.array[0, 0] = 5.0

    def test_equality(self):
        a = FrequencyTensor([[1.0, 2.0]], axes=(0, 1))
        b = FrequencyTensor([[1.0, 2.0]], axes=(0, 1))
        c = FrequencyTensor([[1.0, 2.0]], axes=(1, 0))
        assert a == b
        assert a != c


class TestArrangeFrequencyTensor:
    def test_multiset_preserved(self, zipf_small, rng):
        # 10 frequencies cannot fill 2x2x2; use an 8-entry set.
        freqs = zipf_frequencies(100, 8, 1.0)
        tensor = arrange_frequency_tensor(freqs, (2, 2, 2), (0, 1, 2), rng)
        assert tensor.frequency_set() == FrequencySet(freqs)

    def test_size_mismatch(self, zipf_small):
        with pytest.raises(ValueError, match="cannot arrange"):
            arrange_frequency_tensor(zipf_small, (3, 3), (0, 1))

    def test_deterministic(self):
        freqs = zipf_frequencies(100, 6, 1.0)
        a = arrange_frequency_tensor(freqs, (2, 3), (0, 1), 3)
        b = arrange_frequency_tensor(freqs, (2, 3), (0, 1), 3)
        assert a == b


class TestTreeResultSize:
    def test_two_way_join(self):
        left = FrequencyTensor([2.0, 3.0], axes=(0,))
        right = FrequencyTensor([5.0, 7.0], axes=(0,))
        assert tree_result_size([left, right]) == 2 * 5 + 3 * 7

    def test_chain_equals_matrix_product(self, rng):
        """A chain query contracted as tensors equals Theorem 2.1's product."""
        r0 = zipf_frequencies(100, 4, 1.0)
        r1 = rng.permutation(zipf_frequencies(100, 12, 0.5)).reshape(4, 3)
        r2 = zipf_frequencies(100, 3, 2.0)
        via_matrices = chain_result_size(
            [
                FrequencyMatrix.row_vector(r0),
                FrequencyMatrix(r1),
                FrequencyMatrix.column_vector(r2),
            ]
        )
        via_tensors = tree_result_size(
            [
                FrequencyTensor(r0, axes=(0,)),
                FrequencyTensor(r1, axes=(0, 1)),
                FrequencyTensor(r2, axes=(1,)),
            ]
        )
        assert via_tensors == pytest.approx(via_matrices)

    def test_star_query_bruteforce(self, rng):
        """3-leaf star contraction equals the brute-force sum."""
        hub = rng.uniform(0, 5, size=(2, 3, 2))
        leaves = [rng.uniform(0, 5, size=2), rng.uniform(0, 5, size=3), rng.uniform(0, 5, size=2)]
        tensors = [
            FrequencyTensor(hub, axes=(0, 1, 2)),
            FrequencyTensor(leaves[0], axes=(0,)),
            FrequencyTensor(leaves[1], axes=(1,)),
            FrequencyTensor(leaves[2], axes=(2,)),
        ]
        brute = 0.0
        for i in range(2):
            for j in range(3):
                for k in range(2):
                    brute += hub[i, j, k] * leaves[0][i] * leaves[1][j] * leaves[2][k]
        assert tree_result_size(tensors) == pytest.approx(brute)

    def test_label_must_appear_twice(self):
        a = FrequencyTensor([1.0, 2.0], axes=(0,))
        b = FrequencyTensor([1.0, 2.0], axes=(1,))
        with pytest.raises(ValueError, match="exactly two"):
            tree_result_size([a, b])

    def test_domain_size_mismatch(self):
        a = FrequencyTensor([1.0, 2.0], axes=(0,))
        b = FrequencyTensor([1.0, 2.0, 3.0], axes=(0,))
        with pytest.raises(ValueError, match="inconsistent"):
            tree_result_size([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            tree_result_size([])
