"""Tests for repro.core.valueorder — value-range V-Optimal histograms."""

import numpy as np
import pytest

from repro.core.frequency import AttributeDistribution
from repro.core.heuristic import equi_depth_histogram, equi_width_histogram
from repro.core.serial import v_opt_hist_dp
from repro.core.valueorder import bucket_boundaries, v_optimal_value_histogram
from repro.data.zipf import zipf_frequencies


def total_sse(histogram):
    reference = histogram.frequencies
    approx = histogram.approximate_frequencies()
    return float(((reference - approx) ** 2).sum())


@pytest.fixture
def shuffled_zipf(rng):
    freqs = rng.permutation(zipf_frequencies(1000, 40, 1.2))
    return AttributeDistribution(range(40), freqs)


class TestVOptimalValueHistogram:
    def test_bucket_count(self, shuffled_zipf):
        assert v_optimal_value_histogram(shuffled_zipf, 6).bucket_count == 6

    def test_buckets_are_contiguous_value_ranges(self, shuffled_zipf):
        hist = v_optimal_value_histogram(shuffled_zipf, 5)
        flat = [v for bucket in hist.buckets for v in bucket.values]
        assert flat == list(range(40))

    def test_optimal_within_value_family(self, shuffled_zipf):
        """Never worse (in SSE) than equi-width or equi-depth."""
        for beta in (2, 5, 8):
            optimal = total_sse(v_optimal_value_histogram(shuffled_zipf, beta))
            width = total_sse(equi_width_histogram(shuffled_zipf, beta))
            depth = total_sse(equi_depth_histogram(shuffled_zipf, beta))
            assert optimal <= width + 1e-6
            assert optimal <= depth + 1e-6

    def test_matches_exhaustive_small(self, rng):
        """DP optimum equals brute force over all value-range partitions."""
        from itertools import combinations

        freqs = rng.uniform(1, 50, size=7)
        dist = AttributeDistribution(range(7), freqs)
        beta = 3
        best = np.inf
        for cuts in combinations(range(1, 7), beta - 1):
            edges = (0,) + cuts + (7,)
            sse = 0.0
            for a, b in zip(edges[:-1], edges[1:]):
                block = dist.frequencies[a:b]
                sse += block.size * block.var()
            best = min(best, sse)
        assert total_sse(v_optimal_value_histogram(dist, beta)) == pytest.approx(best)

    def test_frequency_serial_wins_on_equality_error(self, shuffled_zipf):
        """With value/frequency orders uncorrelated, frequency bucketing
        (serial) beats value bucketing on self-join error — the paper's
        central point about the traditional approach."""
        serial = v_opt_hist_dp(shuffled_zipf.frequencies, 5).self_join_error()
        value = v_optimal_value_histogram(shuffled_zipf, 5).self_join_error()
        assert serial <= value + 1e-9

    def test_sorted_association_makes_them_equal(self):
        """When value order equals frequency order the two families coincide."""
        freqs = zipf_frequencies(1000, 30, 1.0)  # descending in value order
        dist = AttributeDistribution(range(30), freqs)
        serial = v_opt_hist_dp(freqs, 4).self_join_error()
        value = v_optimal_value_histogram(dist, 4).self_join_error()
        assert value == pytest.approx(serial)

    def test_range_estimates_with_boundaries(self, shuffled_zipf):
        from repro.core.estimator import estimate_range

        hist = v_optimal_value_histogram(shuffled_zipf, 8)
        truth = sum(
            shuffled_zipf.frequency_of(v) for v in range(10, 30)
        )
        estimate = estimate_range(hist, low=10, high=29)
        assert estimate == pytest.approx(truth, rel=0.35)

    def test_too_many_buckets_rejected(self, shuffled_zipf):
        with pytest.raises(ValueError, match="cannot build"):
            v_optimal_value_histogram(shuffled_zipf, 41)

    def test_kind(self, shuffled_zipf):
        assert v_optimal_value_histogram(shuffled_zipf, 3).kind == "v-optimal-value"


class TestBucketBoundaries:
    def test_boundaries_cover_domain(self, shuffled_zipf):
        hist = v_optimal_value_histogram(shuffled_zipf, 5)
        bounds = bucket_boundaries(hist)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 39
        for (lo1, hi1), (lo2, hi2) in zip(bounds, bounds[1:]):
            assert hi1 < lo2

    def test_requires_values(self):
        from repro.core.histogram import Histogram

        hist = Histogram.single_bucket([1.0, 2.0])
        with pytest.raises(ValueError, match="value-aware"):
            bucket_boundaries(hist)
