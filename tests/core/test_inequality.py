"""Tests for repro.core.inequality — Section 6 operators."""

import numpy as np
import pytest

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import AttributeDistribution
from repro.core.histogram import Histogram
from repro.core.inequality import (
    estimate_band_join,
    estimate_not_equals_join,
    estimate_range_join,
    not_equals_estimation_error,
    not_equals_join_size,
    not_equals_selection_size,
    range_join_size,
)
from repro.data.zipf import zipf_frequencies


@pytest.fixture
def left_dist():
    return AttributeDistribution([1, 2, 3, 4], [10.0, 5.0, 3.0, 2.0])


@pytest.fixture
def right_dist():
    return AttributeDistribution([2, 3, 4, 5], [4.0, 6.0, 1.0, 9.0])


def brute_force_join(left, right, predicate):
    total = 0.0
    for u in left.values:
        for v in right.values:
            if predicate(u, v):
                total += left.frequency_of(u) * right.frequency_of(v)
    return total


class TestExactSizes:
    def test_not_equals_selection(self, left_dist):
        assert not_equals_selection_size(left_dist, 1) == 10.0
        assert not_equals_selection_size(left_dist, 99) == 20.0

    def test_not_equals_join(self, left_dist, right_dist):
        expected = brute_force_join(left_dist, right_dist, lambda u, v: u != v)
        assert not_equals_join_size(left_dist, right_dist) == pytest.approx(expected)

    def test_not_equals_is_complement(self, left_dist, right_dist):
        eq = left_dist.join_size(right_dist)
        ne = not_equals_join_size(left_dist, right_dist)
        assert eq + ne == pytest.approx(left_dist.total * right_dist.total)

    @pytest.mark.parametrize("operator,predicate", [
        ("<", lambda u, v: u < v),
        ("<=", lambda u, v: u <= v),
        (">", lambda u, v: u > v),
        (">=", lambda u, v: u >= v),
    ])
    def test_range_join_matches_bruteforce(self, left_dist, right_dist, operator, predicate):
        expected = brute_force_join(left_dist, right_dist, predicate)
        assert range_join_size(left_dist, right_dist, operator) == pytest.approx(expected)

    def test_range_join_partition(self, left_dist, right_dist):
        """<, =, > partition the Cartesian product."""
        lt = range_join_size(left_dist, right_dist, "<")
        gt = range_join_size(left_dist, right_dist, ">")
        eq = left_dist.join_size(right_dist)
        assert lt + gt + eq == pytest.approx(left_dist.total * right_dist.total)

    def test_unknown_operator(self, left_dist, right_dist):
        with pytest.raises(ValueError, match="operator"):
            range_join_size(left_dist, right_dist, "!=")


class TestHistogramEstimates:
    def _hists(self, left, right, beta=3):
        h_left = v_opt_bias_hist(left.frequencies, beta, values=left.values)
        h_right = v_opt_bias_hist(right.frequencies, beta, values=right.values)
        return h_left, h_right

    def test_perfect_histograms_exact_everywhere(self, left_dist, right_dist):
        h_left = Histogram.from_sorted_sizes(
            left_dist.frequencies, (1,) * 4, values=left_dist.values
        )
        h_right = Histogram.from_sorted_sizes(
            right_dist.frequencies, (1,) * 4, values=right_dist.values
        )
        assert estimate_not_equals_join(h_left, h_right) == pytest.approx(
            not_equals_join_size(left_dist, right_dist)
        )
        assert estimate_range_join(h_left, h_right, "<") == pytest.approx(
            range_join_size(left_dist, right_dist, "<")
        )

    def test_not_equals_error_is_negated_equality_error(self, left_dist, right_dist):
        """Section 6: ≠ is the complement, so errors negate exactly."""
        h_left, h_right = self._hists(left_dist, right_dist)
        eq_error = left_dist.join_size(right_dist) - (
            h_left.approximate_distribution().join_size(
                h_right.approximate_distribution()
            )
        )
        ne_error = not_equals_estimation_error(left_dist, right_dist, h_left, h_right)
        assert ne_error == pytest.approx(-eq_error)

    def test_serial_optimality_transfers_to_not_equals(self):
        """v-error for ≠ equals the v-error for = (complement argument), so
        the self-join-optimal histogram remains v-optimal — checked by
        exhaustive enumeration of relative permutations."""
        from itertools import permutations

        a = zipf_frequencies(40, 5, 1.5)
        b = zipf_frequencies(60, 5, 0.5)
        values = list(range(5))

        def v_errors(hist_a, hist_b):
            a_app = hist_a.approximate_array(a)
            b_app = hist_b.approximate_array(b)
            eq_sq, ne_sq = 0.0, 0.0
            count = 0
            for tau in permutations(range(5)):
                s_eq = sum(a[i] * b[tau[i]] for i in range(5))
                s_eq_hat = sum(a_app[i] * b_app[tau[i]] for i in range(5))
                total = a.sum() * b.sum()
                s_ne, s_ne_hat = total - s_eq, total - s_eq_hat
                eq_sq += (s_eq - s_eq_hat) ** 2
                ne_sq += (s_ne - s_ne_hat) ** 2
                count += 1
            return eq_sq / count, ne_sq / count

        h_a = v_opt_bias_hist(a, 2)
        h_b = v_opt_bias_hist(b, 2)
        eq_v, ne_v = v_errors(h_a, h_b)
        assert eq_v == pytest.approx(ne_v)

    def test_band_join_zero_band_is_equality(self, left_dist, right_dist):
        h_left = Histogram.from_sorted_sizes(
            left_dist.frequencies, (1,) * 4, values=left_dist.values
        )
        h_right = Histogram.from_sorted_sizes(
            right_dist.frequencies, (1,) * 4, values=right_dist.values
        )
        band = estimate_band_join(h_left, h_right, 0, 0)
        assert band == pytest.approx(left_dist.join_size(right_dist))

    def test_band_join_wide_band_is_product(self, left_dist, right_dist):
        h_left = Histogram.from_sorted_sizes(
            left_dist.frequencies, (1,) * 4, values=left_dist.values
        )
        h_right = Histogram.from_sorted_sizes(
            right_dist.frequencies, (1,) * 4, values=right_dist.values
        )
        band = estimate_band_join(h_left, h_right, -100, 100)
        assert band == pytest.approx(left_dist.total * right_dist.total)

    def test_band_join_reversed_bounds(self, left_dist, right_dist):
        h_left, h_right = self._hists(left_dist, right_dist)
        with pytest.raises(ValueError, match="reversed"):
            estimate_band_join(h_left, h_right, 5, 1)

    def test_requires_value_aware(self):
        bare = Histogram.single_bucket([1.0, 2.0])
        with pytest.raises(ValueError, match="value-aware"):
            estimate_not_equals_join(bare, bare)

    def test_estimates_track_truth_on_zipf(self, rng):
        freqs_a = zipf_frequencies(500, 20, 1.2)
        freqs_b = zipf_frequencies(400, 20, 0.8)
        dist_a = AttributeDistribution(range(20), rng.permutation(freqs_a))
        dist_b = AttributeDistribution(range(20), rng.permutation(freqs_b))
        h_a = v_opt_bias_hist(dist_a.frequencies, 6, values=dist_a.values)
        h_b = v_opt_bias_hist(dist_b.frequencies, 6, values=dist_b.values)
        exact = range_join_size(dist_a, dist_b, "<")
        estimate = estimate_range_join(h_a, h_b, "<")
        assert estimate == pytest.approx(exact, rel=0.2)
