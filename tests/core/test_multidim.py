"""Tests for repro.core.multidim — grid histograms and independence."""

import numpy as np
import pytest

from repro.core.matrix import FrequencyMatrix
from repro.core.multidim import (
    GridHistogram,
    RectBucket,
    independence_estimate,
    independence_matrix,
)


@pytest.fixture
def correlated_matrix():
    """A diagonal-heavy matrix: strong correlation between the attributes."""
    array = np.full((6, 6), 1.0)
    np.fill_diagonal(array, 50.0)
    return FrequencyMatrix(array)


@pytest.fixture
def independent_matrix(rng):
    """A rank-1 (outer product) matrix: attributes exactly independent."""
    rows = rng.uniform(1, 10, size=5)
    cols = rng.uniform(1, 10, size=4)
    return FrequencyMatrix(np.outer(rows, cols))


class TestRectBucket:
    def test_stats(self):
        bucket = RectBucket(0, 2, 0, 3, total=12.0)
        assert bucket.cells == 6
        assert bucket.average == 2.0

    def test_contains(self):
        bucket = RectBucket(1, 3, 2, 4, total=1.0)
        assert bucket.contains(1, 2)
        assert bucket.contains(2, 3)
        assert not bucket.contains(3, 2)
        assert not bucket.contains(1, 4)

    def test_overlap_fraction(self):
        bucket = RectBucket(0, 4, 0, 4, total=16.0)
        assert bucket.overlap_fraction(0, 2, 0, 2) == pytest.approx(0.25)
        assert bucket.overlap_fraction(0, 4, 0, 4) == 1.0
        assert bucket.overlap_fraction(4, 8, 0, 4) == 0.0


class TestGridHistogram:
    def test_bucket_count_bounded(self, correlated_matrix):
        hist = GridHistogram.build(correlated_matrix, 8)
        assert 1 <= hist.bucket_count <= 8

    def test_buckets_partition_grid(self, correlated_matrix):
        hist = GridHistogram.build(correlated_matrix, 7)
        coverage = np.zeros(correlated_matrix.shape, dtype=int)
        for bucket in hist.buckets:
            coverage[bucket.row_start : bucket.row_stop, bucket.col_start : bucket.col_stop] += 1
        assert np.all(coverage == 1)

    def test_total_preserved(self, correlated_matrix):
        hist = GridHistogram.build(correlated_matrix, 6)
        assert hist.total == pytest.approx(correlated_matrix.total)

    def test_more_buckets_lower_sse(self, correlated_matrix):
        sses = [
            GridHistogram.build(correlated_matrix, beta).sse()
            for beta in (1, 2, 4, 8, 16)
        ]
        for earlier, later in zip(sses, sses[1:]):
            assert later <= earlier + 1e-9

    def test_exact_when_buckets_cover_cells(self):
        matrix = FrequencyMatrix([[1.0, 9.0], [4.0, 2.0]])
        hist = GridHistogram.build(matrix, 4)
        assert hist.sse() == pytest.approx(0.0)

    def test_uniform_matrix_single_bucket_exact(self):
        matrix = FrequencyMatrix(np.full((5, 5), 3.0))
        hist = GridHistogram.build(matrix, 10)
        assert hist.sse() == pytest.approx(0.0)
        assert hist.bucket_count == 1  # no split needed: SSE already zero

    def test_estimate_cell(self, correlated_matrix):
        hist = GridHistogram.build(correlated_matrix, 12)
        for (i, j) in [(0, 0), (3, 3), (1, 4)]:
            bucket = next(b for b in hist.buckets if b.contains(i, j))
            assert hist.estimate_cell(i, j) == pytest.approx(bucket.average)

    def test_estimate_cell_out_of_range(self, correlated_matrix):
        hist = GridHistogram.build(correlated_matrix, 4)
        with pytest.raises(IndexError):
            hist.estimate_cell(99, 0)

    def test_estimate_region_full_grid(self, correlated_matrix):
        hist = GridHistogram.build(correlated_matrix, 5)
        assert hist.estimate_region(0, 6, 0, 6) == pytest.approx(correlated_matrix.total)

    def test_estimate_region_empty(self, correlated_matrix):
        hist = GridHistogram.build(correlated_matrix, 5)
        assert hist.estimate_region(2, 2, 0, 6) == 0.0

    def test_region_estimate_tracks_truth(self, correlated_matrix):
        hist = GridHistogram.build(correlated_matrix, 16)
        truth = float(correlated_matrix.array[0:3, 0:3].sum())
        estimate = hist.estimate_region(0, 3, 0, 3)
        assert estimate == pytest.approx(truth, rel=0.5)

    def test_approximate_matrix_shape(self, correlated_matrix):
        hist = GridHistogram.build(correlated_matrix, 6)
        assert hist.approximate_matrix().shape == correlated_matrix.shape


class TestIndependence:
    def test_exact_on_rank_one(self, independent_matrix):
        for i in range(independent_matrix.shape[0]):
            for j in range(independent_matrix.shape[1]):
                assert independence_estimate(independent_matrix, i, j) == pytest.approx(
                    float(independent_matrix.array[i, j])
                )

    def test_marginals(self, independent_matrix):
        assert independence_estimate(independent_matrix, row=0) == pytest.approx(
            float(independent_matrix.array[0, :].sum())
        )
        assert independence_estimate(independent_matrix, col=1) == pytest.approx(
            float(independent_matrix.array[:, 1].sum())
        )

    def test_total(self, independent_matrix):
        assert independence_estimate(independent_matrix) == pytest.approx(
            independent_matrix.total
        )

    def test_fails_on_correlation(self, correlated_matrix):
        """The diagonal is badly underestimated under independence."""
        truth = float(correlated_matrix.array[0, 0])
        estimate = independence_estimate(correlated_matrix, 0, 0)
        assert estimate < truth / 3

    def test_independence_matrix_preserves_marginals(self, correlated_matrix):
        approx = independence_matrix(correlated_matrix)
        assert np.allclose(approx.sum(axis=1), correlated_matrix.array.sum(axis=1))
        assert np.allclose(approx.sum(axis=0), correlated_matrix.array.sum(axis=0))

    def test_grid_beats_independence_on_correlated(self, correlated_matrix):
        """The point of multi-dimensional histograms (Muralikrishna-DeWitt)."""
        hist = GridHistogram.build(correlated_matrix, 12)
        grid_sse = hist.sse()
        indep_sse = float(
            ((correlated_matrix.array - independence_matrix(correlated_matrix)) ** 2).sum()
        )
        assert grid_sse < indep_sse
