"""Tests for repro.core.biased — V-OptBiasHist and the end-biased class."""

import numpy as np
import pytest

from repro.core.biased import (
    all_biased_partitions,
    all_end_biased_histograms,
    end_biased_histogram,
    end_biased_sizes,
    v_opt_bias_hist,
)
from repro.core.serial import v_opt_hist_exhaustive
from repro.data.synthetic import reverse_zipf_frequencies
from repro.data.zipf import zipf_frequencies


class TestEndBiasedSizes:
    def test_layout(self):
        assert end_biased_sizes(10, 4, high=2) == (1, 1, 7, 1)
        assert end_biased_sizes(10, 4, high=0) == (7, 1, 1, 1)
        assert end_biased_sizes(10, 4, high=3) == (1, 1, 1, 7)

    def test_sum(self):
        sizes = end_biased_sizes(10, 5, high=2)
        assert sum(sizes) == 10

    def test_rejects_bad_high(self):
        with pytest.raises(ValueError, match="high singletons"):
            end_biased_sizes(10, 3, high=5)

    def test_rejects_too_few_frequencies(self):
        with pytest.raises(ValueError, match="at least"):
            end_biased_sizes(3, 4, high=1)


class TestEndBiasedHistogram:
    def test_structure(self, zipf_small):
        hist = end_biased_histogram(zipf_small, 4, high=2)
        assert hist.is_end_biased()
        assert hist.is_serial()
        assert hist.bucket_count == 4

    def test_high_buckets_hold_top_frequencies(self, zipf_small):
        hist = end_biased_histogram(zipf_small, 3, high=2)
        singleton_values = sorted(
            b.frequencies[0] for b in hist.buckets if b.count == 1
        )
        top_two = sorted(np.sort(zipf_small)[-2:])
        assert singleton_values == pytest.approx(top_two)

    def test_low_buckets_hold_bottom_frequencies(self, zipf_small):
        hist = end_biased_histogram(zipf_small, 3, high=0)
        singleton_values = sorted(
            b.frequencies[0] for b in hist.buckets if b.count == 1
        )
        bottom_two = sorted(np.sort(zipf_small)[:2])
        assert singleton_values == pytest.approx(bottom_two)

    def test_kind(self, zipf_small):
        assert end_biased_histogram(zipf_small, 3, 1).kind == "end-biased"


class TestVOptBiasHist:
    def test_is_optimal_among_end_biased(self, zipf_small):
        best = v_opt_bias_hist(zipf_small, 4)
        for candidate in all_end_biased_histograms(zipf_small, 4):
            assert best.self_join_error() <= candidate.self_join_error() + 1e-9

    def test_is_optimal_among_all_biased(self, zipf_small):
        """Corollary 3.1: the optimal biased histogram is end-biased."""
        best = v_opt_bias_hist(zipf_small, 3)
        for candidate in all_biased_partitions(zipf_small, 3):
            assert best.self_join_error() <= candidate.self_join_error() + 1e-9

    def test_result_is_end_biased(self, zipf_medium):
        assert v_opt_bias_hist(zipf_medium, 7).is_end_biased()

    def test_zipf_prefers_high_singletons(self, zipf_medium):
        """Zipf skew → high frequencies in the univalued buckets (4.2)."""
        hist = v_opt_bias_hist(zipf_medium, 5)
        singles = [b.frequencies[0] for b in hist.buckets if b.count == 1]
        top = np.sort(zipf_medium)[-4:]
        assert sorted(singles) == pytest.approx(sorted(top))

    def test_reverse_zipf_prefers_low_singletons(self):
        """Reverse-Zipf shape → low frequencies singled out instead."""
        freqs = reverse_zipf_frequencies(1000, 100, 2.0)
        hist = v_opt_bias_hist(freqs, 5)
        singles = [b.frequencies[0] for b in hist.buckets if b.count == 1]
        bottom = np.sort(freqs)[:4]
        assert sorted(singles) == pytest.approx(sorted(bottom))

    def test_never_beats_optimal_serial(self, zipf_small):
        """End-biased is a subclass of serial: its optimum can't be better."""
        for beta in (2, 3, 4, 5):
            serial = v_opt_hist_exhaustive(zipf_small, beta)
            end_biased = v_opt_bias_hist(zipf_small, beta)
            assert serial.self_join_error() <= end_biased.self_join_error() + 1e-9

    def test_single_bucket(self, zipf_small):
        hist = v_opt_bias_hist(zipf_small, 1)
        assert hist.bucket_count == 1

    def test_beta_equals_m_exact(self, zipf_small):
        hist = v_opt_bias_hist(zipf_small, 10)
        assert hist.self_join_error() == 0.0
        assert hist.bucket_count == 10

    def test_beta_exceeds_m_rejected(self, zipf_small):
        with pytest.raises(ValueError, match="cannot build"):
            v_opt_bias_hist(zipf_small, 11)

    def test_error_monotone_in_buckets(self, zipf_medium):
        errors = [v_opt_bias_hist(zipf_medium, beta).self_join_error() for beta in range(1, 20)]
        for earlier, later in zip(errors, errors[1:]):
            assert later <= earlier + 1e-9

    def test_matches_bruteforce_split(self, zipf_small):
        """Cross-check against directly evaluating every high/low split."""
        from repro.core.histogram import Histogram

        beta = 4
        best_direct = min(
            Histogram.from_sorted_sizes(
                zipf_small, end_biased_sizes(10, beta, h)
            ).self_join_error()
            for h in range(beta)
        )
        assert v_opt_bias_hist(zipf_small, beta).self_join_error() == pytest.approx(best_direct)

    def test_values_propagated(self):
        hist = v_opt_bias_hist([5.0, 1.0, 3.0], 2, values=["a", "b", "c"])
        assert hist.values == ("a", "b", "c")

    def test_uniform_any_split_zero_error(self):
        freqs = np.full(20, 5.0)
        assert v_opt_bias_hist(freqs, 5).self_join_error() == 0.0


class TestEnumerators:
    def test_end_biased_count(self, zipf_small):
        histograms = list(all_end_biased_histograms(zipf_small, 4))
        assert len(histograms) == 4  # one per high/low split

    def test_end_biased_all_valid(self, zipf_small):
        for hist in all_end_biased_histograms(zipf_small, 3):
            assert hist.is_end_biased()
            assert hist.bucket_count == 3

    def test_biased_partition_count(self):
        freqs = zipf_frequencies(100, 6, 1.0)
        histograms = list(all_biased_partitions(freqs, 3))
        assert len(histograms) == 15  # C(6, 2)

    def test_biased_partitions_are_biased(self):
        freqs = zipf_frequencies(100, 6, 1.0)
        assert all(h.is_biased() for h in all_biased_partitions(freqs, 3))
