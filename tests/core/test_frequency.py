"""Tests for repro.core.frequency."""

import numpy as np
import pytest

from repro.core.frequency import AttributeDistribution, FrequencySet, as_frequency_array


class TestAsFrequencyArray:
    def test_list(self):
        arr = as_frequency_array([1.0, 2.0])
        assert isinstance(arr, np.ndarray)
        assert arr.tolist() == [1.0, 2.0]

    def test_copy_semantics(self):
        source = np.array([1.0, 2.0])
        arr = as_frequency_array(source)
        arr[0] = 99
        assert source[0] == 1.0

    def test_frequency_set_unwrapped(self):
        fset = FrequencySet([3.0, 1.0, 2.0])
        arr = as_frequency_array(fset)
        assert arr.tolist() == [3.0, 2.0, 1.0]

    def test_distribution_unwrapped(self):
        dist = AttributeDistribution(["a", "b"], [2.0, 5.0])
        arr = as_frequency_array(dist)
        assert sorted(arr.tolist()) == [2.0, 5.0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            as_frequency_array([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_frequency_array([1.0, -1.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            as_frequency_array([1.0, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_frequency_array([[1.0], [2.0]])


class TestFrequencySet:
    def test_sorted_descending(self):
        fset = FrequencySet([1.0, 5.0, 3.0])
        assert fset.frequencies.tolist() == [5.0, 3.0, 1.0]

    def test_size_total_mean(self):
        fset = FrequencySet([1.0, 5.0, 3.0])
        assert fset.size == 3
        assert fset.total == 9.0
        assert fset.mean == 3.0

    def test_variance(self):
        fset = FrequencySet([2.0, 4.0])
        assert fset.variance == pytest.approx(1.0)

    def test_self_join_size(self):
        fset = FrequencySet([3.0, 4.0])
        assert fset.self_join_size() == 25.0

    def test_from_column(self):
        fset = FrequencySet.from_column(["x", "y", "x", "x", "z"])
        assert fset.frequencies.tolist() == [3.0, 1.0, 1.0]

    def test_from_column_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            FrequencySet.from_column([])

    def test_immutability(self):
        fset = FrequencySet([1.0, 2.0])
        with pytest.raises(ValueError):
            fset.frequencies[0] = 7.0

    def test_sorted_descending_copy_is_writable(self):
        fset = FrequencySet([1.0, 2.0])
        copy = fset.sorted_descending()
        copy[0] = 7.0
        assert fset.frequencies.max() == 2.0

    def test_equality_ignores_input_order(self):
        assert FrequencySet([1.0, 2.0]) == FrequencySet([2.0, 1.0])

    def test_inequality(self):
        assert FrequencySet([1.0, 2.0]) != FrequencySet([1.0, 3.0])

    def test_hash_consistent(self):
        assert hash(FrequencySet([1.0, 2.0])) == hash(FrequencySet([2.0, 1.0]))

    def test_len_and_iter(self):
        fset = FrequencySet([1.0, 2.0, 3.0])
        assert len(fset) == 3
        assert list(fset) == [3.0, 2.0, 1.0]

    def test_repr_truncates(self):
        fset = FrequencySet(range(1, 11))
        assert "..." in repr(fset)


class TestAttributeDistribution:
    def test_values_sorted(self):
        dist = AttributeDistribution(["c", "a", "b"], [1.0, 2.0, 3.0])
        assert dist.values == ("a", "b", "c")
        assert dist.frequencies.tolist() == [2.0, 3.0, 1.0]

    def test_rejects_duplicate_values(self):
        with pytest.raises(ValueError, match="distinct"):
            AttributeDistribution(["a", "a"], [1.0, 2.0])

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError, match="align"):
            AttributeDistribution(["a"], [1.0, 2.0])

    def test_from_column(self):
        dist = AttributeDistribution.from_column([2, 1, 2, 2, 3])
        assert dist.values == (1, 2, 3)
        assert dist.frequencies.tolist() == [1.0, 3.0, 1.0]

    def test_from_pairs(self):
        dist = AttributeDistribution.from_pairs([("b", 2.0), ("a", 5.0)])
        assert dist.frequency_of("a") == 5.0
        assert dist.frequency_of("b") == 2.0

    def test_frequency_of_missing_is_zero(self):
        dist = AttributeDistribution(["a"], [4.0])
        assert dist.frequency_of("zzz") == 0.0

    def test_frequency_set_roundtrip(self):
        dist = AttributeDistribution(["a", "b"], [4.0, 1.0])
        assert dist.frequency_set() == FrequencySet([1.0, 4.0])

    def test_self_join_size(self):
        dist = AttributeDistribution(["a", "b"], [3.0, 4.0])
        assert dist.self_join_size() == 25.0

    def test_join_size_shared_domain(self):
        left = AttributeDistribution(["a", "b"], [2.0, 3.0])
        right = AttributeDistribution(["b", "c"], [5.0, 7.0])
        # Only "b" is shared: 3 * 5.
        assert left.join_size(right) == 15.0

    def test_join_size_symmetric(self):
        left = AttributeDistribution(["a", "b"], [2.0, 3.0])
        right = AttributeDistribution(["a", "b"], [4.0, 5.0])
        assert left.join_size(right) == right.join_size(left) == 23.0

    def test_permuted_preserves_multiset(self, rng):
        dist = AttributeDistribution(range(20), np.arange(1.0, 21.0))
        shuffled = dist.permuted(rng)
        assert shuffled.values == dist.values
        assert sorted(shuffled.frequencies) == sorted(dist.frequencies)

    def test_permuted_changes_association(self):
        dist = AttributeDistribution(range(50), np.arange(1.0, 51.0))
        shuffled = dist.permuted(np.random.default_rng(0))
        assert not np.array_equal(shuffled.frequencies, dist.frequencies)

    def test_permuted_self_join_invariant(self, rng):
        """Self-join size is arrangement-independent (Σf²)."""
        dist = AttributeDistribution(range(10), np.arange(1.0, 11.0))
        assert dist.permuted(rng).self_join_size() == dist.self_join_size()

    def test_total_and_len(self):
        dist = AttributeDistribution(["a", "b"], [4.0, 1.0])
        assert dist.total == 5.0
        assert len(dist) == 2
