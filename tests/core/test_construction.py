"""Tests for repro.core.construction — Matrix / JointMatrix."""

import pytest

from repro.core.construction import (
    JointFrequencyRow,
    joint_matrix_algorithm,
    joint_table_result_size,
    matrix_algorithm,
    matrix_algorithm_2d,
)


class TestMatrixAlgorithm:
    def test_counts(self):
        dist = matrix_algorithm(["v1", "v2", "v1", "v1"])
        assert dist.frequency_of("v1") == 3.0
        assert dist.frequency_of("v2") == 1.0

    def test_total_is_scan_length(self):
        column = [1, 2, 3, 1, 2, 1]
        assert matrix_algorithm(column).total == len(column)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            matrix_algorithm([])


class TestMatrixAlgorithm2d:
    def test_pair_counts(self):
        matrix = matrix_algorithm_2d([("a", 1), ("a", 1), ("b", 2)])
        assert matrix.total == 3.0
        assert matrix.shape == (2, 2)

    def test_frequency_set_matches(self):
        matrix = matrix_algorithm_2d([("a", 1), ("a", 1), ("b", 2)])
        assert sorted(matrix.frequency_set().frequencies.tolist()) == [0.0, 0.0, 1.0, 2.0]


class TestJointMatrixAlgorithm:
    def test_example_2_2_style(self):
        """Two-way join on a shared attribute: joint table + size."""
        left = ["v1"] * 20 + ["v2"] * 15
        right = ["v1"] * 25 + ["v2"] * 3 + ["v3"] * 7
        rows = joint_matrix_algorithm(left, right)
        by_value = {r.value: r for r in rows}
        assert set(by_value) == {"v1", "v2"}  # v3 has no left partner
        assert by_value["v1"].frequency_left == 20.0
        assert by_value["v1"].frequency_right == 25.0
        assert joint_table_result_size(rows) == 20 * 25 + 15 * 3

    def test_matches_bruteforce_join_count(self, rng):
        left = list(rng.integers(0, 6, 50))
        right = list(rng.integers(0, 6, 70))
        rows = joint_matrix_algorithm(left, right)
        brute = sum(1 for a in left for b in right if a == b)
        assert joint_table_result_size(rows) == brute

    def test_disjoint_columns_empty_table(self):
        rows = joint_matrix_algorithm([1, 2], [3, 4])
        assert rows == []
        assert joint_table_result_size(rows) == 0.0

    def test_row_type(self):
        rows = joint_matrix_algorithm([1], [1])
        assert isinstance(rows[0], JointFrequencyRow)
        assert rows[0] == JointFrequencyRow(1, 1.0, 1.0)
