"""Tests for repro.core.optimality — the Section 3 machinery."""

import numpy as np
import pytest

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import AttributeDistribution
from repro.core.heuristic import equi_depth_histogram, trivial_histogram
from repro.core.histogram import Histogram
from repro.core.optimality import (
    analytic_v_error_two_way,
    approximate_self_join_size,
    exact_expected_difference_two_way,
    exact_v_error_two_way,
    monte_carlo_v_error_two_way,
    self_join_error,
    self_join_sigma,
    self_join_size,
)
from repro.core.serial import v_opt_hist_exhaustive
from repro.data.zipf import zipf_frequencies


class TestSelfJoinFormulas:
    def test_self_join_size(self):
        assert self_join_size([3.0, 4.0]) == 25.0

    def test_estimate_matches_formula_two(self, zipf_small):
        hist = v_opt_hist_exhaustive(zipf_small, 3)
        assert approximate_self_join_size(hist) == pytest.approx(hist.self_join_estimate())

    def test_error_matches_formula_three(self, zipf_small):
        hist = v_opt_hist_exhaustive(zipf_small, 3)
        expected = self_join_size(zipf_small) - hist.self_join_estimate()
        assert self_join_error(hist) == pytest.approx(expected)

    def test_rounded_estimate_differs(self):
        hist = Histogram.from_sorted_sizes([10.0, 3.0, 2.0], (1, 2))
        exact_avg = approximate_self_join_size(hist)
        rounded = approximate_self_join_size(hist, rounded=True)
        # Bucket (3,2) averages 2.5 -> rounds to 2: estimates differ.
        assert exact_avg != rounded


class TestSelfJoinSigma:
    def test_deterministic_for_frequency_based(self, zipf_small):
        sigma = self_join_sigma(
            zipf_small,
            lambda dist: v_opt_bias_hist(dist.frequencies, 3),
            trials=5,
            rng=0,
        )
        hist = v_opt_bias_hist(zipf_small, 3)
        assert sigma == pytest.approx(hist.self_join_error())

    def test_trivial_sigma_is_total_sse(self, zipf_small):
        sigma = self_join_sigma(zipf_small, trivial_histogram, trials=1, rng=0)
        assert sigma == pytest.approx(zipf_small.size * zipf_small.var())

    def test_equi_depth_sigma_positive(self, zipf_small):
        sigma = self_join_sigma(
            zipf_small,
            lambda dist: equi_depth_histogram(dist, 3),
            trials=20,
            rng=0,
        )
        assert sigma > 0

    def test_seed_reproducibility(self, zipf_small):
        build = lambda dist: equi_depth_histogram(dist, 3)
        a = self_join_sigma(zipf_small, build, trials=10, rng=42)
        b = self_join_sigma(zipf_small, build, trials=10, rng=42)
        assert a == b


def _two_way_setup(m=5, beta0=2, beta1=3):
    a = zipf_frequencies(60, m, 1.0)
    b = zipf_frequencies(80, m, 0.5)
    return a, b, v_opt_bias_hist(a, beta0), v_opt_bias_hist(b, beta1)


class TestTheorem32:
    """E[S − S'] = 0 for every histogram pair."""

    def test_optimal_histograms(self):
        a, b, ha, hb = _two_way_setup()
        assert exact_expected_difference_two_way(a, b, ha, hb) == pytest.approx(0.0, abs=1e-9)

    def test_arbitrary_partitions(self):
        a = zipf_frequencies(50, 4, 1.5)
        b = zipf_frequencies(70, 4, 0.0)
        ha = Histogram(np.sort(a)[::-1], [(0, 2), (1, 3)])  # non-serial
        hb = Histogram.single_bucket(b)
        assert exact_expected_difference_two_way(a, b, ha, hb) == pytest.approx(0.0, abs=1e-9)

    def test_brute_force_expectation(self):
        """Directly average S − S' over all relative permutations."""
        from itertools import permutations

        a, b, ha, hb = _two_way_setup(m=4)
        a_sorted = np.sort(a)[::-1]
        b_sorted = np.sort(b)[::-1]
        a_approx = ha.approximate_array(a_sorted)
        b_approx = hb.approximate_array(b_sorted)
        diffs = []
        for tau in permutations(range(4)):
            s = sum(a_sorted[i] * b_sorted[tau[i]] for i in range(4))
            s_prime = sum(a_approx[i] * b_approx[tau[i]] for i in range(4))
            diffs.append(s - s_prime)
        assert np.mean(diffs) == pytest.approx(0.0, abs=1e-9)


class TestVErrorComputations:
    def test_analytic_matches_exhaustive(self):
        for m in (3, 4, 5, 6):
            a, b, ha, hb = _two_way_setup(m=m)
            assert analytic_v_error_two_way(a, b, ha, hb) == pytest.approx(
                exact_v_error_two_way(a, b, ha, hb), rel=1e-9
            )

    def test_monte_carlo_converges(self):
        a, b, ha, hb = _two_way_setup(m=6)
        exact = exact_v_error_two_way(a, b, ha, hb)
        sampled = monte_carlo_v_error_two_way(a, b, ha, hb, trials=4000, rng=0)
        assert sampled == pytest.approx(exact, rel=0.15)

    def test_perfect_histograms_zero_v_error(self):
        a = zipf_frequencies(50, 4, 1.0)
        b = zipf_frequencies(70, 4, 2.0)
        ha = Histogram.from_sorted_sizes(a, (1, 1, 1, 1))
        hb = Histogram.from_sorted_sizes(b, (1, 1, 1, 1))
        assert exact_v_error_two_way(a, b, ha, hb) == pytest.approx(0.0, abs=1e-9)
        assert analytic_v_error_two_way(a, b, ha, hb) == pytest.approx(0.0, abs=1e-9)

    def test_single_value_domain(self):
        a, b = np.array([5.0]), np.array([3.0])
        ha, hb = Histogram.single_bucket(a), Histogram.single_bucket(b)
        assert analytic_v_error_two_way(a, b, ha, hb) == pytest.approx(0.0)

    def test_domain_mismatch_rejected(self):
        a = zipf_frequencies(10, 3, 1.0)
        b = zipf_frequencies(10, 4, 1.0)
        ha, hb = Histogram.single_bucket(a), Histogram.single_bucket(b)
        with pytest.raises(ValueError, match="must match"):
            analytic_v_error_two_way(a, b, ha, hb)

    def test_exhaustive_refuses_large_domains(self):
        a = zipf_frequencies(10, 10, 1.0)
        ha = Histogram.single_bucket(a)
        with pytest.raises(ValueError, match="not sensible"):
            exact_v_error_two_way(a, a, ha, ha)

    def test_better_histograms_lower_v_error(self):
        """More buckets can only reduce the v-error of the optimal choice."""
        a = zipf_frequencies(60, 6, 1.5)
        b = zipf_frequencies(80, 6, 1.0)
        hb = v_opt_bias_hist(b, 3)
        errors = [
            analytic_v_error_two_way(a, b, v_opt_hist_exhaustive(a, beta), hb)
            for beta in (1, 2, 3, 6)
        ]
        assert errors[-1] <= errors[0] + 1e-9
        assert errors[3] == pytest.approx(
            analytic_v_error_two_way(
                a, b, Histogram.from_sorted_sizes(a, (1,) * 6), hb
            )
        )
