"""Tests for repro.core.estimator."""

import numpy as np
import pytest

from repro.core.biased import v_opt_bias_hist
from repro.core.estimator import (
    EstimateOptions,
    approximate_chain,
    approximate_chain_matrices,
    estimate_chain,
    estimate_chain_size,
    estimate_equality,
    estimate_equality_selection,
    estimate_in_selection,
    estimate_join,
    estimate_join_size,
    estimate_membership,
    estimate_not_equal,
    estimate_not_equals,
    estimate_range,
    estimate_range_selection,
    estimate_self_join,
    relative_error,
)
from repro.core.frequency import AttributeDistribution
from repro.core.heuristic import trivial_histogram
from repro.core.histogram import Histogram
from repro.core.matrix import FrequencyMatrix, arrange_frequency_set, chain_result_size
from repro.data.zipf import zipf_frequencies


def value_aware_hist(values, freqs, beta):
    return v_opt_bias_hist(freqs, beta, values=values)


class TestSelectionEstimates:
    def test_equality_explicit_value_is_exact(self):
        hist = value_aware_hist(["a", "b", "c", "d"], [50.0, 10.0, 9.0, 8.0], 2)
        assert estimate_equality(hist, "a") == 50.0

    def test_equality_bucketed_value_uses_average(self):
        hist = value_aware_hist(["a", "b", "c", "d"], [50.0, 10.0, 9.0, 8.0], 2)
        assert estimate_equality(hist, "c") == pytest.approx(9.0)

    def test_equality_unknown_value_zero(self):
        hist = value_aware_hist(["a", "b"], [5.0, 3.0], 2)
        assert estimate_equality(hist, "zzz") == 0.0

    def test_membership_sums(self):
        hist = value_aware_hist(["a", "b", "c"], [6.0, 3.0, 1.0], 3)
        assert estimate_membership(hist, ["a", "c"]) == pytest.approx(7.0)

    def test_membership_deduplicates(self):
        hist = value_aware_hist(["a", "b"], [6.0, 3.0], 2)
        assert estimate_membership(hist, ["a", "a"]) == 6.0

    def test_not_equal_is_complement(self):
        dist = AttributeDistribution(["a", "b", "c"], [6.0, 3.0, 1.0])
        hist = trivial_histogram(dist)
        total_approx = hist.approximate_frequencies().sum()
        assert estimate_not_equal(hist, "a") == pytest.approx(
            total_approx - hist.approx_of_value("a")
        )

    def test_range(self):
        hist = value_aware_hist([1, 2, 3, 4, 5], [10.0, 8.0, 6.0, 4.0, 2.0], 5)
        assert estimate_range(hist, low=2, high=4) == pytest.approx(8 + 6 + 4)

    def test_range_exclusive_bounds(self):
        hist = value_aware_hist([1, 2, 3], [5.0, 3.0, 1.0], 3)
        options = EstimateOptions(include_low=False, include_high=False)
        assert estimate_range(
            hist, low=1, high=3, options=options
        ) == pytest.approx(3.0)

    def test_range_open_ended(self):
        hist = value_aware_hist([1, 2, 3], [5.0, 3.0, 1.0], 3)
        assert estimate_range(hist, low=2) == pytest.approx(4.0)
        assert estimate_range(hist, high=2) == pytest.approx(8.0)

    def test_range_exact_with_perfect_histogram(self):
        """Section 6: with all values exact, range estimates are exact."""
        values = list(range(10))
        freqs = zipf_frequencies(100, 10, 1.0)
        hist = Histogram.from_sorted_sizes(freqs, (1,) * 10, values=values)
        dist = hist.approximate_distribution()
        expected = sum(dist.frequency_of(v) for v in values if 3 <= v <= 7)
        assert estimate_range(hist, 3, 7) == pytest.approx(expected)

    def test_requires_values(self, zipf_small):
        hist = Histogram.single_bucket(zipf_small)
        with pytest.raises(ValueError, match="requires a histogram"):
            estimate_equality(hist, "a")


class TestJoinEstimates:
    def test_perfect_histograms_give_exact_size(self):
        values = ["a", "b", "c"]
        f0 = np.array([5.0, 3.0, 1.0])
        f1 = np.array([2.0, 4.0, 6.0])
        h0 = Histogram.from_sorted_sizes(f0, (1, 1, 1), values=values)
        h1 = Histogram.from_sorted_sizes(f1, (1, 1, 1), values=values)
        # from_sorted_sizes keeps reference order, so values align to freqs.
        assert estimate_join(h0, h1) == pytest.approx(5 * 2 + 3 * 4 + 1 * 6)

    def test_disjoint_domains_estimate_zero(self):
        h0 = value_aware_hist(["a"], [5.0], 1)
        h1 = value_aware_hist(["b"], [5.0], 1)
        assert estimate_join(h0, h1) == 0.0

    def test_symmetry(self):
        values = list(range(6))
        f0 = zipf_frequencies(60, 6, 1.0)
        f1 = zipf_frequencies(40, 6, 0.5)
        h0 = v_opt_bias_hist(f0, 3, values=values)
        h1 = v_opt_bias_hist(f1, 2, values=values)
        assert estimate_join(h0, h1) == pytest.approx(estimate_join(h1, h0))

    def test_self_join_formula(self, zipf_small):
        hist = v_opt_bias_hist(zipf_small, 4)
        assert estimate_self_join(hist) == pytest.approx(hist.self_join_estimate())


class TestChainEstimates:
    def _chain_setup(self, rng):
        sets = [
            zipf_frequencies(100, 5, 1.0),
            zipf_frequencies(100, 25, 0.5),
            zipf_frequencies(100, 5, 2.0),
        ]
        matrices = [
            arrange_frequency_set(sets[0], (1, 5), rng),
            arrange_frequency_set(sets[1], (5, 5), rng),
            arrange_frequency_set(sets[2], (5, 1), rng),
        ]
        return sets, matrices

    def test_perfect_histograms_recover_exact_size(self, rng):
        sets, matrices = self._chain_setup(rng)
        histograms = [
            Histogram.from_sorted_sizes(s, (1,) * s.size) for s in sets
        ]
        exact = chain_result_size(matrices)
        assert estimate_chain(histograms, matrices) == pytest.approx(exact)

    def test_trivial_histograms_chain(self, rng):
        sets, matrices = self._chain_setup(rng)
        histograms = [Histogram.single_bucket(s) for s in sets]
        estimate = estimate_chain(histograms, matrices)
        # Uniform approximation of every relation: product of T/M based sums.
        assert estimate > 0

    def test_approximate_matrices_shapes(self, rng):
        sets, matrices = self._chain_setup(rng)
        histograms = [Histogram.single_bucket(s) for s in sets]
        approx = approximate_chain(histograms, matrices)
        assert [a.shape for a in approx] == [(1, 5), (5, 5), (5, 1)]

    def test_count_mismatch_rejected(self, rng):
        sets, matrices = self._chain_setup(rng)
        with pytest.raises(ValueError, match="histograms"):
            estimate_chain([Histogram.single_bucket(sets[0])], matrices)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(100.0, 80.0) == pytest.approx(0.2)

    def test_overestimate(self):
        assert relative_error(100.0, 150.0) == pytest.approx(0.5)

    def test_both_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_exact_nonzero_estimate(self):
        assert relative_error(0.0, 5.0) == float("inf")

    def test_exact_match(self):
        assert relative_error(7.0, 7.0) == 0.0


class TestDeprecatedShims:
    """The pre-1.1 spellings warn but still forward to the canonical paths."""

    @pytest.fixture
    def hist(self):
        return value_aware_hist([1, 2, 3, 4, 5], [10.0, 8.0, 6.0, 4.0, 2.0], 5)

    def test_equality_selection_warns_and_matches(self, hist):
        with pytest.warns(DeprecationWarning, match="estimate_equality"):
            legacy = estimate_equality_selection(hist, 2)
        assert legacy == estimate_equality(hist, 2)

    def test_in_selection_warns_and_matches(self, hist):
        with pytest.warns(DeprecationWarning, match="estimate_membership"):
            legacy = estimate_in_selection(hist, [1, 3, 3])
        assert legacy == estimate_membership(hist, [1, 3, 3])

    def test_not_equals_warns_and_matches(self, hist):
        with pytest.warns(DeprecationWarning, match="estimate_not_equal"):
            legacy = estimate_not_equals(hist, 1)
        assert legacy == estimate_not_equal(hist, 1)

    def test_range_selection_warns_and_maps_bounds(self, hist):
        with pytest.warns(DeprecationWarning, match="estimate_range"):
            legacy = estimate_range_selection(
                hist, low=1, high=4, include_low=False, include_high=False
            )
        options = EstimateOptions(include_low=False, include_high=False)
        assert legacy == estimate_range(hist, 1, 4, options=options)

    def test_join_size_warns_and_matches(self, hist):
        other = value_aware_hist([1, 2, 3], [3.0, 2.0, 1.0], 3)
        with pytest.warns(DeprecationWarning, match="estimate_join"):
            legacy = estimate_join_size(hist, other)
        assert legacy == estimate_join(hist, other)

    def test_chain_shims_flip_argument_order(self, rng):
        sets = [zipf_frequencies(100, 5, 1.0), zipf_frequencies(100, 5, 2.0)]
        matrices = [
            arrange_frequency_set(sets[0], (1, 5), rng),
            arrange_frequency_set(sets[1], (5, 1), rng),
        ]
        histograms = [Histogram.single_bucket(s) for s in sets]
        with pytest.warns(DeprecationWarning, match="estimate_chain"):
            legacy = estimate_chain_size(matrices, histograms)
        assert legacy == estimate_chain(histograms, matrices)
        with pytest.warns(DeprecationWarning, match="approximate_chain"):
            legacy_matrices = approximate_chain_matrices(matrices, histograms)
        fresh = approximate_chain(histograms, matrices)
        for a, b in zip(legacy_matrices, fresh):
            np.testing.assert_array_equal(a, b)
