"""Tests for repro.core.heuristic — trivial, equi-width, equi-depth."""

import numpy as np
import pytest

from repro.core.frequency import AttributeDistribution, FrequencySet
from repro.core.heuristic import equi_depth_histogram, equi_width_histogram, trivial_histogram
from repro.data.zipf import zipf_frequencies


class TestTrivialHistogram:
    def test_single_bucket(self, tiny_distribution):
        hist = trivial_histogram(tiny_distribution)
        assert hist.bucket_count == 1
        assert hist.is_trivial()

    def test_uniform_assumption(self, tiny_distribution):
        hist = trivial_histogram(tiny_distribution)
        mean = tiny_distribution.frequencies.mean()
        assert np.allclose(hist.approximate_frequencies(), mean)

    def test_accepts_frequency_set(self, zipf_small):
        hist = trivial_histogram(FrequencySet(zipf_small))
        assert hist.bucket_count == 1

    def test_accepts_plain_array(self, zipf_small):
        assert trivial_histogram(zipf_small).bucket_count == 1

    def test_zero_error_on_uniform(self):
        hist = trivial_histogram([5.0, 5.0, 5.0])
        assert hist.self_join_error() == 0.0


class TestEquiWidth:
    def test_bucket_count(self, tiny_distribution):
        assert equi_width_histogram(tiny_distribution, 2).bucket_count == 2

    def test_equal_value_counts(self):
        dist = AttributeDistribution(range(12), np.arange(1.0, 13.0))
        hist = equi_width_histogram(dist, 4)
        assert [b.count for b in hist.buckets] == [3, 3, 3, 3]

    def test_remainder_goes_to_early_buckets(self):
        dist = AttributeDistribution(range(10), np.arange(1.0, 11.0))
        hist = equi_width_histogram(dist, 3)
        assert [b.count for b in hist.buckets] == [4, 3, 3]

    def test_buckets_are_value_ranges(self):
        dist = AttributeDistribution(range(6), [9.0, 1.0, 8.0, 2.0, 7.0, 3.0])
        hist = equi_width_histogram(dist, 3)
        assert hist.buckets[0].values == (0, 1)
        assert hist.buckets[1].values == (2, 3)
        assert hist.buckets[2].values == (4, 5)

    def test_value_order_not_frequency_order(self):
        """Equi-width ignores frequencies entirely — the paper's critique."""
        dist = AttributeDistribution(range(4), [100.0, 1.0, 100.0, 1.0])
        hist = equi_width_histogram(dist, 2)
        # Both buckets mix a high and a low frequency.
        for bucket in hist.buckets:
            assert bucket.max_frequency == 100.0 and bucket.min_frequency == 1.0

    def test_beta_equals_m_is_exact(self, tiny_distribution):
        hist = equi_width_histogram(tiny_distribution, 5)
        assert hist.self_join_error() == 0.0

    def test_too_many_buckets_rejected(self, tiny_distribution):
        with pytest.raises(ValueError, match="cannot build"):
            equi_width_histogram(tiny_distribution, 6)

    def test_kind_label(self, tiny_distribution):
        assert equi_width_histogram(tiny_distribution, 2).kind == "equi-width"


class TestEquiDepth:
    def test_bucket_count(self, tiny_distribution):
        assert equi_depth_histogram(tiny_distribution, 3).bucket_count == 3

    def test_balanced_mass(self):
        """Bucket totals should be near T/β when frequencies allow it."""
        freqs = np.full(100, 10.0)
        dist = AttributeDistribution(range(100), freqs)
        hist = equi_depth_histogram(dist, 5)
        for bucket in hist.buckets:
            assert bucket.total == pytest.approx(200.0)

    def test_mass_balance_on_zipf(self, rng):
        freqs = rng.permutation(zipf_frequencies(1000, 100, 1.0))
        dist = AttributeDistribution(range(100), freqs)
        hist = equi_depth_histogram(dist, 4)
        totals = [b.total for b in hist.buckets]
        # Each bucket within one max-frequency of the target depth.
        target = 250.0
        for total in totals:
            assert abs(total - target) <= freqs.max() + 1e-9

    def test_buckets_are_contiguous_value_ranges(self):
        dist = AttributeDistribution(range(8), [5.0, 1.0, 1.0, 5.0, 1.0, 1.0, 5.0, 1.0])
        hist = equi_depth_histogram(dist, 4)
        flat = [v for bucket in hist.buckets for v in bucket.values]
        assert flat == list(range(8))

    def test_all_buckets_non_empty(self, rng):
        """A single huge frequency must not starve later buckets."""
        freqs = np.array([1000.0] + [1.0] * 9)
        dist = AttributeDistribution(range(10), freqs)
        hist = equi_depth_histogram(dist, 5)
        assert hist.bucket_count == 5
        assert all(b.count >= 1 for b in hist.buckets)

    def test_skew_at_end(self):
        freqs = np.array([1.0] * 9 + [1000.0])
        dist = AttributeDistribution(range(10), freqs)
        hist = equi_depth_histogram(dist, 3)
        assert hist.bucket_count == 3
        assert sum(b.count for b in hist.buckets) == 10

    def test_beta_equals_m(self, tiny_distribution):
        hist = equi_depth_histogram(tiny_distribution, 5)
        assert hist.bucket_count == 5
        assert hist.self_join_error() == 0.0

    def test_too_many_buckets_rejected(self, tiny_distribution):
        with pytest.raises(ValueError):
            equi_depth_histogram(tiny_distribution, 6)

    def test_kind_label(self, tiny_distribution):
        assert equi_depth_histogram(tiny_distribution, 2).kind == "equi-depth"

    def test_beats_equi_width_on_skew_in_aggregate(self, rng):
        """Piatetsky-Shapiro & Connell's finding, which the paper verifies.

        Individual arrangements are noisy, so compare the RMS self-join
        error over many random value↔frequency associations (the σ the
        figures plot).
        """
        freqs = zipf_frequencies(1000, 100, 1.5)
        trials = 60
        depth_sq = width_sq = 0.0
        for _ in range(trials):
            dist = AttributeDistribution(range(100), rng.permutation(freqs))
            depth_sq += equi_depth_histogram(dist, 5).self_join_error() ** 2
            width_sq += equi_width_histogram(dist, 5).self_join_error() ** 2
        assert depth_sq < width_sq
