"""Tests for repro.core.matrix — Theorem 2.1 machinery."""

import numpy as np
import pytest

from repro.core.frequency import FrequencySet
from repro.core.matrix import (
    FrequencyMatrix,
    arrange_frequency_set,
    chain_result_size,
    selection_vector,
)


class TestFrequencyMatrix:
    def test_basic_construction(self, worksfor_matrix):
        matrix = FrequencyMatrix(worksfor_matrix)
        assert matrix.shape == (4, 5)
        assert matrix.total == pytest.approx(worksfor_matrix.sum())

    def test_labels(self):
        matrix = FrequencyMatrix(
            [[1.0, 2.0]], row_values=None, col_values=["x", "y"]
        )
        assert matrix.col_values == ("x", "y")

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError, match="row_values"):
            FrequencyMatrix([[1.0], [2.0]], row_values=["only-one-label-for-two-rows"])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            FrequencyMatrix([[1.0, 2.0]], col_values=["x", "x"])

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError, match="non-negative"):
            FrequencyMatrix([[1.0, -2.0]])

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="row_vector"):
            FrequencyMatrix([1.0, 2.0])

    def test_row_vector(self):
        vec = FrequencyMatrix.row_vector([3.0, 4.0], values=["a", "b"])
        assert vec.shape == (1, 2)
        assert vec.col_values == ("a", "b")

    def test_column_vector(self):
        vec = FrequencyMatrix.column_vector([3.0, 4.0])
        assert vec.shape == (2, 1)

    def test_from_joint_counts(self):
        pairs = [("toy", 1990), ("toy", 1990), ("shoe", 1991)]
        matrix = FrequencyMatrix.from_joint_counts(pairs)
        assert matrix.row_values == ("shoe", "toy")
        assert matrix.col_values == (1990, 1991)
        assert matrix.array[1, 0] == 2.0  # (toy, 1990)
        assert matrix.array[0, 1] == 1.0  # (shoe, 1991)
        assert matrix.array[0, 0] == 0.0

    def test_frequency_set_flattens(self, worksfor_matrix):
        matrix = FrequencyMatrix(worksfor_matrix)
        assert matrix.frequency_set() == FrequencySet(worksfor_matrix.ravel())

    def test_transpose(self):
        matrix = FrequencyMatrix([[1.0, 2.0], [3.0, 4.0]], row_values=["r1", "r2"], col_values=["c1", "c2"])
        transposed = matrix.transpose()
        assert transposed.row_values == ("c1", "c2")
        assert np.array_equal(transposed.array, matrix.array.T)

    def test_immutability(self):
        matrix = FrequencyMatrix([[1.0]])
        with pytest.raises(ValueError):
            matrix.array[0, 0] = 9.0

    def test_equality(self):
        assert FrequencyMatrix([[1.0, 2.0]]) == FrequencyMatrix([[1.0, 2.0]])
        assert FrequencyMatrix([[1.0, 2.0]]) != FrequencyMatrix([[2.0, 1.0]])


class TestChainResultSize:
    def test_two_way_join(self):
        """Two vectors over a shared domain: S = Σ a_i b_i."""
        left = FrequencyMatrix.row_vector([20.0, 15.0])
        right = FrequencyMatrix.column_vector([25.0, 3.0])
        assert chain_result_size([left, right]) == 20 * 25 + 15 * 3

    def test_three_relation_chain(self):
        """A worked Example-2.2-style chain (paper's figure is OCR-garbled,
        so the expected value is computed by hand)."""
        r0 = FrequencyMatrix.row_vector([20.0, 15.0])
        r1 = FrequencyMatrix([[25.0, 10.0, 0.0], [0.0, 5.0, 3.0]])
        r2 = FrequencyMatrix.column_vector([21.0, 16.0, 5.0])
        expected = 20 * (25 * 21 + 10 * 16) + 15 * (5 * 16 + 3 * 5)
        assert chain_result_size([r0, r1, r2]) == expected

    def test_self_join_equivalence(self, zipf_small):
        """A diagonal interior matrix encodes a self-join: S = Σ f²."""
        vec = FrequencyMatrix.row_vector(np.ones_like(zipf_small))
        diag = FrequencyMatrix(np.diag(zipf_small) @ np.diag(zipf_small))
        ones = FrequencyMatrix.column_vector(np.ones_like(zipf_small))
        assert chain_result_size([vec, diag, ones]) == pytest.approx(
            float(np.dot(zipf_small, zipf_small))
        )

    def test_accepts_plain_arrays(self):
        assert chain_result_size([np.array([[2.0, 3.0]]), np.array([[4.0], [5.0]])]) == 23.0

    def test_rejects_bad_first_shape(self):
        with pytest.raises(ValueError, match="single row"):
            chain_result_size([np.ones((2, 2)), np.ones((2, 1))])

    def test_rejects_bad_last_shape(self):
        with pytest.raises(ValueError, match="single column"):
            chain_result_size([np.ones((1, 2)), np.ones((2, 2))])

    def test_rejects_domain_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            chain_result_size([np.ones((1, 2)), np.ones((3, 1))])

    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError, match="at least one"):
            chain_result_size([])

    def test_scalar_single_relation(self):
        assert chain_result_size([np.array([[7.0]])]) == 7.0


class TestArrangeFrequencySet:
    def test_multiset_preserved(self, zipf_small, rng):
        matrix = arrange_frequency_set(zipf_small, (2, 5), rng)
        assert sorted(matrix.array.ravel()) == sorted(zipf_small)

    def test_shape(self, zipf_small, rng):
        assert arrange_frequency_set(zipf_small, (5, 2), rng).shape == (5, 2)

    def test_deterministic_with_seed(self, zipf_small):
        a = arrange_frequency_set(zipf_small, (2, 5), 11)
        b = arrange_frequency_set(zipf_small, (2, 5), 11)
        assert a == b

    def test_size_mismatch_rejected(self, zipf_small):
        with pytest.raises(ValueError, match="cannot arrange"):
            arrange_frequency_set(zipf_small, (3, 4))

    def test_arrangements_vary(self, zipf_small):
        gen = np.random.default_rng(0)
        a = arrange_frequency_set(zipf_small, (2, 5), gen)
        b = arrange_frequency_set(zipf_small, (2, 5), gen)
        assert a != b


class TestSelectionVector:
    def test_indicator(self):
        vec = selection_vector(["u1", "u2", "u3"], {"u1", "u3"})
        assert vec.array.ravel().tolist() == [1.0, 0.0, 1.0]
        assert vec.shape == (3, 1)

    def test_row_orientation(self):
        vec = selection_vector(["u1", "u2"], {"u2"}, column=False)
        assert vec.shape == (1, 2)

    def test_selection_size_via_chain(self):
        """Example 2.2: the 0/1 transpose vector computes the selection size."""
        relation = FrequencyMatrix.row_vector([25.0, 10.0, 3.0], values=["u1", "u2", "u3"])
        selector = selection_vector(["u1", "u2", "u3"], {"u1", "u3"})
        assert chain_result_size([relation, selector]) == 28.0

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError, match="not in domain"):
            selection_vector(["a"], {"b"})

    def test_empty_selection(self):
        vec = selection_vector(["a", "b"], set())
        assert vec.array.sum() == 0.0
