"""Tests for repro.api — the blessed one-import surface."""

import warnings

import pytest

from repro import api


class TestSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert hasattr(api, name), f"repro.api.{name} missing"

    def test_layers_present(self):
        # One representative name per layer.
        assert callable(api.zipf_frequencies)
        assert callable(api.v_opt_bias_hist)
        assert callable(api.estimate_range)
        assert callable(api.analyze_relation)
        assert callable(api.MaintainedEndBiased)
        assert callable(api.EstimationService)
        assert callable(api.CardinalityEstimator)
        assert callable(api.Database)

    def test_no_deprecated_spellings(self):
        # The facade is the post-redesign surface only.
        for legacy in (
            "estimate_equality_selection",
            "estimate_in_selection",
            "estimate_not_equals",
            "estimate_range_selection",
            "estimate_join_size",
            "estimate_chain_size",
            "approximate_chain_matrices",
        ):
            assert legacy not in api.__all__
            assert not hasattr(api, legacy)


class TestNoInternalDeprecatedCallers:
    def test_no_module_calls_deprecated_estimators(self):
        """Only the defining module and re-exporting __init__s may mention
        the deprecated spellings; no internal caller may use them."""
        from pathlib import Path

        import repro

        package_dir = Path(repro.__file__).resolve().parent
        allowed = {
            package_dir / "core" / "estimator.py",  # definitions
            package_dir / "core" / "__init__.py",  # re-exports
            package_dir / "__init__.py",  # re-exports
        }
        deprecated = (
            "estimate_equality_selection",
            "estimate_in_selection",
            "estimate_not_equals(",
            "estimate_range_selection",
            "estimate_join_size",
            "estimate_chain_size",
            "approximate_chain_matrices",
        )
        offenders = []
        for path in package_dir.rglob("*.py"):
            if path in allowed:
                continue
            text = path.read_text(encoding="utf-8")
            for name in deprecated:
                if name in text:
                    offenders.append(f"{path.name}: {name}")
        assert not offenders, f"internal deprecated callers: {offenders}"


class TestEndToEnd:
    def test_histogram_to_estimate(self):
        freqs = api.zipf_frequencies(total=100, domain_size=10, z=1.0)
        hist = api.v_opt_bias_hist(freqs, 4, values=list(range(10)))
        eq = api.estimate_equality(hist, 0)
        mass = api.estimate_range(hist, 0, 9)
        assert eq > 0
        assert mass == pytest.approx(float(hist.approximate_frequencies().sum()))

    def test_catalog_to_service(self):
        relation = api.Relation.from_columns("R", {"a": [1] * 30 + [2] * 10})
        catalog = api.StatsCatalog()
        api.analyze_relation(relation, "a", catalog, kind="end-biased", buckets=2)
        service = api.EstimationService(catalog)
        batch = service.estimate_batch(
            [api.EqualityProbe("R", "a", 1), api.RangeProbe("R", "a", 1, 2)]
        )
        assert batch[0] == pytest.approx(30.0)
        assert batch[1] == pytest.approx(40.0)

    def test_facade_emits_no_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            freqs = api.zipf_frequencies(total=50, domain_size=5, z=0.5)
            hist = api.v_opt_bias_hist(freqs, 2, values=list(range(5)))
            api.estimate_membership(hist, [0, 1, 1])
            api.estimate_not_equal(hist, 0)
            api.estimate_join(hist, hist)
