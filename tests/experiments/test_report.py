"""Tests for repro.experiments.report."""

import pytest

from repro.experiments.report import format_series, format_table


class TestFormatTable:
    def test_basic(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]
        assert "2.5000" in lines[2]

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_none_renders_dash(self):
        text = format_table(["x", "y"], [[1, None]])
        assert text.splitlines()[-1].strip().endswith("-")

    def test_nan_renders(self):
        text = format_table(["x"], [[float("nan")]])
        assert "nan" in text

    def test_precision(self):
        text = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in text
        assert "1.2346" not in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_wide_values_expand_columns(self):
        text = format_table(["x"], [[123456789.0]])
        header, sep, row = text.splitlines()
        assert len(header) == len(sep) == len(row)


class TestFormatSeries:
    def test_shared_axis(self):
        series = {"s1": {1.0: 10.0, 2.0: 20.0}, "s2": {2.0: 5.0}}
        text = format_series("x", series)
        lines = text.splitlines()
        assert "s1" in lines[0] and "s2" in lines[0]
        # x=1 row has a dash for s2.
        assert "-" in lines[2]

    def test_sorted_x(self):
        series = {"s": {3.0: 1.0, 1.0: 2.0, 2.0: 3.0}}
        text = format_series("x", series)
        rows = text.splitlines()[2:]
        xs = [float(r.split()[0]) for r in rows]
        assert xs == sorted(xs)


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        import csv

        from repro.experiments.report import write_csv

        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2.5], [3, None]])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]
        assert rows[2] == ["3", ""]

    def test_creates_parent_directories(self, tmp_path):
        from repro.experiments.report import write_csv

        path = write_csv(tmp_path / "nested" / "dir" / "out.csv", ["x"], [[1]])
        assert path.exists()

    def test_row_width_validated(self, tmp_path):
        from repro.experiments.report import write_csv

        with pytest.raises(ValueError, match="cells"):
            write_csv(tmp_path / "bad.csv", ["a", "b"], [[1]])


class TestSeriesRows:
    def test_conversion(self):
        from repro.experiments.report import series_rows

        headers, rows = series_rows({"s1": {1.0: 10.0}, "s2": {1.0: 5.0, 2.0: 6.0}})
        assert headers == ["x", "s1", "s2"]
        assert rows == [[1.0, 10.0, 5.0], [2.0, None, 6.0]]

    def test_csv_integration(self, tmp_path):
        from repro.experiments.report import series_rows, write_csv

        headers, rows = series_rows({"s": {1.0: 2.0}})
        path = write_csv(tmp_path / "series.csv", headers, rows)
        assert path.read_text().startswith("x,s")
