"""Tests for repro.experiments.timing — Table 1 machinery."""

import pytest

from repro.experiments.config import TimingExperimentConfig
from repro.experiments.timing import construction_timing_table, time_construction

FAST = TimingExperimentConfig(
    serial_sizes=(10, 14),
    serial_buckets=(3,),
    end_biased_sizes=(100, 1000),
    end_biased_buckets=10,
    repeats=1,
)


class TestTimeConstruction:
    def test_returns_positive_seconds(self):
        seconds = time_construction(lambda: sum(range(1000)), repeats=2)
        assert seconds >= 0

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            time_construction(lambda: None, repeats=0)


class TestConstructionTimingTable:
    def test_rows_cover_all_sizes(self):
        rows = construction_timing_table(FAST)
        assert [r.set_size for r in rows] == [10, 14, 100, 1000]

    def test_serial_timed_only_for_serial_sizes(self):
        rows = construction_timing_table(FAST)
        by_size = {r.set_size: r for r in rows}
        assert by_size[10].serial_seconds[3] is not None
        assert by_size[100].serial_seconds[3] is None

    def test_end_biased_timed_only_for_its_sizes(self):
        rows = construction_timing_table(FAST)
        by_size = {r.set_size: r for r in rows}
        assert by_size[100].end_biased_seconds is not None
        assert by_size[10].end_biased_seconds is None

    def test_partition_counts_recorded(self):
        rows = construction_timing_table(FAST)
        by_size = {r.set_size: r for r in rows}
        assert by_size[10].serial_partitions[3] == 36  # C(9, 2)

    def test_infeasible_serial_skipped(self):
        config = TimingExperimentConfig(
            serial_sizes=(40,), serial_buckets=(5,), end_biased_sizes=(), repeats=1
        )
        rows = construction_timing_table(config, max_partitions=1000)
        assert rows[0].serial_seconds[5] is None
        assert rows[0].serial_partitions[5] > 1000

    def test_blowup_shape(self):
        """The Table 1 shape: serial cost explodes with M, end-biased stays flat."""
        config = TimingExperimentConfig(
            serial_sizes=(10, 18),
            serial_buckets=(4,),
            end_biased_sizes=(1_000, 100_000),
            repeats=1,
        )
        rows = construction_timing_table(config)
        by_size = {r.set_size: r for r in rows}
        small_serial = by_size[10].serial_seconds[4]
        big_serial = by_size[18].serial_seconds[4]
        assert big_serial > small_serial  # C(17,3)=680 vs C(9,3)=84
        eb_small = by_size[1_000].end_biased_seconds
        eb_big = by_size[100_000].end_biased_seconds
        # End-biased is near-linear: 100x data < 1000x time (loose sanity).
        assert eb_big < max(eb_small, 1e-4) * 1000
