"""Tests for repro.experiments.chains — Figures 6-7 machinery."""

import pytest

from repro.experiments.chains import (
    CHAIN_HISTOGRAM_TYPES,
    mean_relative_error,
    sweep_chain_buckets,
    sweep_joins,
)
from repro.experiments.config import ChainExperimentConfig
from repro.experiments.selfjoin import HistogramType
from repro.queries.chain import make_zipf_chain
from repro.queries.workload import QueryClass

FAST = ChainExperimentConfig(
    join_sweep=(1, 3, 5),
    bucket_sweep=(1, 5, 15),
    permutations=6,
    queries_per_class=2,
    seed=11,
)


class TestMeanRelativeError:
    @pytest.fixture
    def query(self):
        return make_zipf_chain(3, domain=8, z_values=[1.5, 2.0, 1.0, 2.5])

    def test_positive_for_skewed_chain(self, query):
        error = mean_relative_error(query, HistogramType.TRIVIAL, 5, permutations=5, rng=0)
        assert error > 0

    def test_zero_for_uniform_chain(self):
        query = make_zipf_chain(2, domain=5, z_values=[0.0, 0.0, 0.0])
        for histogram_type in CHAIN_HISTOGRAM_TYPES:
            error = mean_relative_error(query, histogram_type, 3, permutations=4, rng=0)
            assert error == pytest.approx(0.0, abs=1e-9)

    def test_optimal_types_beat_trivial(self, query):
        trivial = mean_relative_error(query, HistogramType.TRIVIAL, 5, permutations=10, rng=0)
        serial = mean_relative_error(query, HistogramType.SERIAL, 5, permutations=10, rng=0)
        end_biased = mean_relative_error(query, HistogramType.END_BIASED, 5, permutations=10, rng=0)
        assert serial < trivial
        assert end_biased < trivial

    def test_deterministic(self, query):
        a = mean_relative_error(query, HistogramType.SERIAL, 5, permutations=5, rng=4)
        b = mean_relative_error(query, HistogramType.SERIAL, 5, permutations=5, rng=4)
        assert a == b

    def test_value_order_types_rejected(self, query):
        with pytest.raises(ValueError, match="frequency set alone"):
            mean_relative_error(query, HistogramType.EQUI_DEPTH, 5)

    def test_buckets_clamped_to_end_relations(self, query):
        """β may exceed the end relations' 8-value domains without error."""
        error = mean_relative_error(query, HistogramType.END_BIASED, 20, permutations=3, rng=0)
        assert error >= 0


class TestSweeps:
    def test_sweep_joins_structure(self):
        points = sweep_joins(FAST, classes=(QueryClass.HIGH_SKEW,))
        assert [p.parameter for p in points] == [1, 3, 5]
        for point in points:
            assert set(point.errors) == set(CHAIN_HISTOGRAM_TYPES)

    def test_errors_grow_with_joins_for_trivial(self):
        """Figure 6 / error propagation: more joins, bigger trivial error."""
        points = sweep_joins(FAST, classes=(QueryClass.HIGH_SKEW,))
        trivial = [p.error(HistogramType.TRIVIAL) for p in points]
        assert trivial[-1] > trivial[0]

    def test_low_skew_much_easier_than_high(self):
        points = sweep_joins(FAST, classes=(QueryClass.LOW_SKEW, QueryClass.HIGH_SKEW))
        low = [p for p in points if p.query_class is QueryClass.LOW_SKEW]
        high = [p for p in points if p.query_class is QueryClass.HIGH_SKEW]
        # Compare at the largest join count.
        assert low[-1].error(HistogramType.TRIVIAL) < high[-1].error(HistogramType.TRIVIAL)

    def test_sweep_buckets_errors_fall(self):
        points = sweep_chain_buckets(FAST, classes=(QueryClass.HIGH_SKEW,))
        end_biased = [p.error(HistogramType.END_BIASED) for p in points]
        assert end_biased[-1] < end_biased[0]

    def test_small_beta_already_tolerable(self):
        """Section 5.2: 'even with β = 5 the errors drop significantly'."""
        config = ChainExperimentConfig(
            bucket_sweep=(1, 5), permutations=8, queries_per_class=3, seed=2
        )
        points = sweep_chain_buckets(config, classes=(QueryClass.MIXED_SKEW,))
        beta1 = points[0].error(HistogramType.END_BIASED)
        beta5 = points[1].error(HistogramType.END_BIASED)
        assert beta5 < 0.5 * beta1

    def test_classes_reported(self):
        points = sweep_joins(FAST)
        assert {p.query_class for p in points} == set(QueryClass)

    def test_reproducible(self):
        a = sweep_joins(FAST, classes=(QueryClass.LOW_SKEW,))
        b = sweep_joins(FAST, classes=(QueryClass.LOW_SKEW,))
        assert [p.errors for p in a] == [p.errors for p in b]
