"""Tests for repro.experiments.trees — the star-query sweep."""

import pytest

from repro.experiments.selfjoin import HistogramType
from repro.experiments.trees import (
    TREE_HISTOGRAM_TYPES,
    sweep_star_leaves,
    tree_mean_relative_error,
)
from repro.queries.tree import make_zipf_star
from repro.queries.workload import QueryClass


class TestTreeMeanRelativeError:
    @pytest.fixture
    def star(self):
        return make_zipf_star(2, domain=4, z_values=[2.0, 1.0, 1.5])

    def test_positive_on_skew(self, star):
        error = tree_mean_relative_error(
            star, HistogramType.TRIVIAL, 5, permutations=5, rng=0
        )
        assert error > 0

    def test_zero_on_uniform(self):
        star = make_zipf_star(2, domain=3, z_values=[0.0, 0.0, 0.0])
        for histogram_type in TREE_HISTOGRAM_TYPES:
            error = tree_mean_relative_error(
                star, histogram_type, 3, permutations=4, rng=0
            )
            assert error == pytest.approx(0.0, abs=1e-9)

    def test_optimal_beats_trivial(self, star):
        trivial = tree_mean_relative_error(
            star, HistogramType.TRIVIAL, 5, permutations=10, rng=1
        )
        serial = tree_mean_relative_error(
            star, HistogramType.SERIAL, 5, permutations=10, rng=1
        )
        assert serial < trivial

    def test_deterministic(self, star):
        a = tree_mean_relative_error(star, HistogramType.END_BIASED, 4, permutations=5, rng=2)
        b = tree_mean_relative_error(star, HistogramType.END_BIASED, 4, permutations=5, rng=2)
        assert a == b

    def test_value_order_types_rejected(self, star):
        with pytest.raises(ValueError, match="frequency set alone"):
            tree_mean_relative_error(star, HistogramType.EQUI_DEPTH, 4)


class TestSweepStarLeaves:
    def test_structure(self):
        points = sweep_star_leaves(
            (1, 2), classes=(QueryClass.HIGH_SKEW,), permutations=4,
            queries_per_class=2, domain=4,
        )
        assert [p.num_leaves for p in points] == [1, 2]
        for point in points:
            assert set(point.errors) == set(TREE_HISTOGRAM_TYPES)

    def test_high_skew_harder(self):
        points = sweep_star_leaves(
            (2,), classes=(QueryClass.LOW_SKEW, QueryClass.HIGH_SKEW),
            permutations=6, queries_per_class=2, domain=4,
        )
        low = next(p for p in points if p.query_class is QueryClass.LOW_SKEW)
        high = next(p for p in points if p.query_class is QueryClass.HIGH_SKEW)
        assert high.errors[HistogramType.TRIVIAL] > low.errors[HistogramType.TRIVIAL]

    def test_reproducible(self):
        kwargs = dict(
            classes=(QueryClass.HIGH_SKEW,), permutations=4, queries_per_class=2,
            domain=4, seed=5,
        )
        a = sweep_star_leaves((1, 2), **kwargs)
        b = sweep_star_leaves((1, 2), **kwargs)
        assert [p.errors for p in a] == [p.errors for p in b]
