"""Tests for repro.experiments.arrangements — the Section 3.1 study."""

import pytest

from repro.data.zipf import zipf_frequencies
from repro.experiments.arrangements import ArrangementStudy, optimal_biased_pair_study


class TestOptimalBiasedPairStudy:
    def test_fractions_in_range(self):
        study = optimal_biased_pair_study(
            zipf_frequencies(100, 5, 1.0),
            zipf_frequencies(100, 5, 0.5),
            3,
        )
        for fraction in (
            study.at_least_one_end_biased,
            study.both_end_biased,
            study.aligned_singletons,
        ):
            assert 0.0 <= fraction <= 1.0

    def test_one_implies_at_least_both_relation(self):
        study = optimal_biased_pair_study(
            zipf_frequencies(100, 5, 2.0),
            zipf_frequencies(100, 5, 1.0),
            3,
        )
        assert study.at_least_one_end_biased >= study.both_end_biased

    def test_exhaustive_enumeration_count(self):
        study = optimal_biased_pair_study(
            zipf_frequencies(50, 4, 1.0), zipf_frequencies(50, 4, 1.5), 2
        )
        assert study.arrangements == 24  # 4!

    def test_sampling_cap(self):
        study = optimal_biased_pair_study(
            zipf_frequencies(100, 7, 1.0),
            zipf_frequencies(100, 7, 0.5),
            3,
            max_arrangements=50,
            rng=0,
        )
        assert study.arrangements == 50

    def test_majority_has_end_biased_member(self):
        """The paper reports ~90%; we assert a (loose) majority to keep the
        check robust across parameterisations."""
        study = optimal_biased_pair_study(
            zipf_frequencies(1000, 6, 1.0),
            zipf_frequencies(1000, 6, 2.0),
            3,
            max_arrangements=200,
            rng=1,
        )
        assert study.at_least_one_end_biased > 0.5

    def test_identical_sets_self_join_arrangement(self):
        """The identity arrangement of a self-join is solved by end-biased
        pairs (Theorem 3.1 / Corollary 3.1) — included in the fractions."""
        freqs = zipf_frequencies(100, 5, 1.5)
        study = optimal_biased_pair_study(freqs, freqs, 3)
        assert study.at_least_one_end_biased > 0

    def test_domain_mismatch_rejected(self):
        with pytest.raises(ValueError, match="match"):
            optimal_biased_pair_study(
                zipf_frequencies(10, 4, 1.0), zipf_frequencies(10, 5, 1.0), 2
            )

    def test_buckets_bounds(self):
        freqs = zipf_frequencies(10, 4, 1.0)
        with pytest.raises(ValueError, match="buckets"):
            optimal_biased_pair_study(freqs, freqs, 1)
        with pytest.raises(ValueError, match="buckets"):
            optimal_biased_pair_study(freqs, freqs, 5)

    def test_str(self):
        study = ArrangementStudy(10, 0.9, 0.2, 0.5)
        text = str(study)
        assert "90.0%" in text and "20.0%" in text
