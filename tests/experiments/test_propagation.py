"""Tests for repro.experiments.propagation."""

import math

import pytest

from repro.experiments.chains import ChainErrorPoint, sweep_joins
from repro.experiments.config import ChainExperimentConfig
from repro.experiments.propagation import GrowthFit, fit_error_growth
from repro.experiments.selfjoin import HistogramType
from repro.queries.workload import QueryClass


def synthetic_points(growth, base=0.01, joins=(1, 2, 3, 4, 5)):
    return [
        ChainErrorPoint(
            float(n),
            QueryClass.HIGH_SKEW,
            {HistogramType.TRIVIAL: base * growth**n},
        )
        for n in joins
    ]


class TestFitErrorGrowth:
    def test_recovers_exact_exponential(self):
        points = synthetic_points(growth=3.0)
        (fit,) = fit_error_growth(points)
        assert fit.growth_factor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.points_used == 5

    def test_flat_series_growth_one(self):
        points = synthetic_points(growth=1.0)
        (fit,) = fit_error_growth(points)
        assert fit.growth_factor == pytest.approx(1.0)

    def test_drops_zero_errors(self):
        points = synthetic_points(growth=2.0) + [
            ChainErrorPoint(9.0, QueryClass.HIGH_SKEW, {HistogramType.TRIVIAL: 0.0})
        ]
        (fit,) = fit_error_growth(points)
        assert fit.points_used == 5

    def test_too_few_points_skipped(self):
        points = synthetic_points(growth=2.0, joins=(1, 2))
        assert fit_error_growth(points) == []

    def test_multiple_classes_and_types(self):
        points = []
        for query_class in (QueryClass.LOW_SKEW, QueryClass.HIGH_SKEW):
            for n in (1, 2, 3, 4):
                points.append(
                    ChainErrorPoint(
                        float(n),
                        query_class,
                        {
                            HistogramType.TRIVIAL: 0.1 * 2.0**n,
                            HistogramType.SERIAL: 0.01 * 1.5**n,
                        },
                    )
                )
        fits = fit_error_growth(points)
        assert len(fits) == 4
        by_key = {(f.query_class, f.histogram_type): f for f in fits}
        assert by_key[(QueryClass.HIGH_SKEW, HistogramType.SERIAL)].growth_factor == pytest.approx(1.5)

    def test_on_real_sweep_high_skew_grows(self):
        """On actual Figure 6 data, high-skew trivial error grows per join."""
        config = ChainExperimentConfig(
            join_sweep=(1, 2, 3, 4, 5, 6),
            permutations=8,
            queries_per_class=3,
            seed=3,
        )
        points = sweep_joins(config, classes=(QueryClass.HIGH_SKEW,))
        fits = {f.histogram_type: f for f in fit_error_growth(points)}
        assert fits[HistogramType.TRIVIAL].growth_factor > 1.3
        # Optimal histograms grow too (error propagation is inherent), but
        # from a far smaller base: compare absolute errors at the endpoint.
        last = points[-1]
        assert last.errors[HistogramType.SERIAL] < last.errors[HistogramType.TRIVIAL] / 10
