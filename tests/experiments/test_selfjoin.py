"""Tests for repro.experiments.selfjoin — Figures 3-5 machinery."""

import numpy as np
import pytest

from repro.core.frequency import AttributeDistribution
from repro.data.zipf import zipf_frequencies
from repro.experiments.config import SelfJoinExperimentConfig
from repro.experiments.selfjoin import (
    HistogramType,
    build_histogram,
    self_join_sigmas,
    sweep_buckets,
    sweep_domain_size,
    sweep_skew,
)

FAST = SelfJoinExperimentConfig(
    bucket_sweep=(1, 2, 5, 10),
    domain_sweep=(10, 50, 100),
    z_sweep=(0.0, 1.0, 2.0, 4.0),
    trials=8,
    seed=7,
)


class TestBuildHistogram:
    @pytest.mark.parametrize("histogram_type", list(HistogramType))
    def test_builds_each_type(self, histogram_type):
        dist = AttributeDistribution(range(10), zipf_frequencies(100, 10, 1.0))
        hist = build_histogram(histogram_type, dist, 3)
        assert hist.bucket_count == (1 if histogram_type is HistogramType.TRIVIAL else 3)

    def test_arrangement_dependence_flags(self):
        assert HistogramType.EQUI_WIDTH.arrangement_dependent
        assert HistogramType.EQUI_DEPTH.arrangement_dependent
        assert not HistogramType.SERIAL.arrangement_dependent
        assert not HistogramType.END_BIASED.arrangement_dependent
        assert not HistogramType.TRIVIAL.arrangement_dependent


class TestSelfJoinSigmas:
    def test_all_types_present(self, zipf_medium):
        sigmas = self_join_sigmas(zipf_medium, 5, trials=5, rng=0)
        assert set(sigmas) == set(HistogramType)

    def test_paper_ranking_at_beta5(self, zipf_medium):
        """Figure 3's ranking: serial <= end-biased << equi-depth <= trivial."""
        sigmas = self_join_sigmas(zipf_medium, 5, trials=30, rng=0)
        assert sigmas[HistogramType.SERIAL] <= sigmas[HistogramType.END_BIASED] + 1e-9
        assert sigmas[HistogramType.END_BIASED] < sigmas[HistogramType.EQUI_DEPTH]
        assert sigmas[HistogramType.EQUI_DEPTH] <= sigmas[HistogramType.TRIVIAL] * 1.05

    def test_end_biased_within_2x_serial_here(self, zipf_medium):
        """Section 5.1: 'usually less than twice the error of optimal serial'
        — and much less than half the equi-depth error (checked at β=5,
        the paper's canonical point)."""
        sigmas = self_join_sigmas(zipf_medium, 5, trials=20, rng=1)
        assert sigmas[HistogramType.END_BIASED] < 0.5 * sigmas[HistogramType.EQUI_DEPTH]

    def test_equi_width_close_to_trivial(self, zipf_medium):
        """'equi-width and trivial are almost always identical' under random
        value↔frequency association."""
        sigmas = self_join_sigmas(zipf_medium, 5, trials=40, rng=2)
        ratio = sigmas[HistogramType.EQUI_WIDTH] / sigmas[HistogramType.TRIVIAL]
        assert 0.8 < ratio <= 1.05

    def test_single_bucket_all_equal(self, zipf_medium):
        """With β = 1 every histogram is the trivial one."""
        sigmas = self_join_sigmas(zipf_medium, 1, trials=5, rng=0)
        values = [sigmas[t] for t in HistogramType]
        assert max(values) - min(values) < 1e-6 * max(values)

    def test_deterministic(self, zipf_medium):
        a = self_join_sigmas(zipf_medium, 4, trials=10, rng=3)
        b = self_join_sigmas(zipf_medium, 4, trials=10, rng=3)
        assert a == b


class TestSweeps:
    def test_sweep_buckets_shape(self):
        points = sweep_buckets(FAST)
        assert [p.parameter for p in points] == [1, 2, 5, 10]

    def test_sweep_buckets_serial_monotone(self):
        points = sweep_buckets(FAST)
        serial = [p.sigma(HistogramType.SERIAL) for p in points]
        for earlier, later in zip(serial, serial[1:]):
            assert later <= earlier + 1e-9

    def test_sweep_buckets_trivial_flat(self):
        """The trivial histogram ignores β (always one bucket)."""
        points = sweep_buckets(FAST)
        trivial = [p.sigma(HistogramType.TRIVIAL) for p in points]
        assert max(trivial) == pytest.approx(min(trivial))

    def test_sweep_buckets_respects_serial_limit(self):
        config = SelfJoinExperimentConfig(
            bucket_sweep=(2, 8), serial_bucket_limit=5, trials=3
        )
        points = sweep_buckets(config)
        assert HistogramType.SERIAL in points[0].sigmas
        assert HistogramType.SERIAL not in points[1].sigmas

    def test_sweep_domain_size(self):
        points = sweep_domain_size(FAST)
        assert [p.parameter for p in points] == [10, 50, 100]
        for point in points:
            assert point.sigma(HistogramType.SERIAL) <= point.sigma(HistogramType.TRIVIAL) + 1e-9

    def test_sweep_skew_frequency_types_peak(self):
        """Figure 5: frequency-based histograms peak then fall with z."""
        config = SelfJoinExperimentConfig(
            z_sweep=(0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5), trials=5, seed=1
        )
        points = sweep_skew(config)
        end_biased = [p.sigma(HistogramType.END_BIASED) for p in points]
        # Zero at z=0, rises, then falls by the end of the sweep.
        assert end_biased[0] == pytest.approx(0.0, abs=1e-6)
        peak = max(end_biased)
        assert end_biased[-1] < peak

    def test_sweep_skew_trivial_grows(self):
        points = sweep_skew(FAST)
        trivial = [p.sigma(HistogramType.TRIVIAL) for p in points]
        assert trivial[-1] > trivial[0]

    def test_zero_skew_all_zero_error(self):
        config = SelfJoinExperimentConfig(z_sweep=(0.0,), trials=3)
        point = sweep_skew(config)[0]
        for sigma in point.sigmas.values():
            assert sigma == pytest.approx(0.0, abs=1e-6)
