"""Unit tests for the client retry schedule: jitter and the elapsed cap.

All timing is driven by a fake monotonic clock and a seeded RNG, so the
assertions are exact: exponential growth, jitter bounds, the total-
elapsed budget stopping and clamping delays, and exhaustion returning
``None``.
"""

import pytest

from repro.net import RetrySchedule
from repro.net.client import (
    DEFAULT_JITTER,
    DEFAULT_MAX_ELAPSED,
    ConnectionFailedError,
    EstimationClient,
)
from repro.util.rng import derive_rng


class FakeMonotonic:
    def __init__(self, now: float = 50.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


def schedule(**kwargs):
    kwargs.setdefault("retries", 5)
    kwargs.setdefault("base", 1.0)
    kwargs.setdefault("clock", FakeMonotonic())
    return RetrySchedule(**kwargs)


class TestDelays:
    def test_exponential_growth_without_jitter(self):
        sched = schedule(jitter=0.0, max_elapsed=None)
        assert [sched.next_delay(a) for a in range(5)] == [
            1.0,
            2.0,
            4.0,
            8.0,
            16.0,
        ]

    def test_jitter_stays_within_bounds(self):
        sched = schedule(
            jitter=0.25, max_elapsed=None, rng=derive_rng(9), retries=50
        )
        for attempt in range(50):
            delay = sched.next_delay(attempt)
            nominal = 2.0**attempt
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_jitter_spreads_identical_attempts(self):
        # Two clients with different seeds must not sleep in lockstep —
        # that is the whole point of jitter (no thundering herd).
        first = schedule(jitter=0.25, max_elapsed=None, rng=derive_rng(1))
        second = schedule(jitter=0.25, max_elapsed=None, rng=derive_rng(2))
        assert first.next_delay(3) != second.next_delay(3)

    def test_retries_exhausted_returns_none(self):
        sched = schedule(retries=2, jitter=0.0, max_elapsed=None)
        assert sched.next_delay(1) is not None
        assert sched.next_delay(2) is None
        assert sched.next_delay(99) is None

    def test_zero_retries_never_sleeps(self):
        assert schedule(retries=0).next_delay(0) is None


class TestElapsedCap:
    def test_elapsed_tracks_injected_clock(self):
        clock = FakeMonotonic()
        sched = schedule(clock=clock)
        assert sched.elapsed() == 0.0
        clock.advance(3.5)
        assert sched.elapsed() == pytest.approx(3.5)

    def test_budget_exhausted_stops_retrying(self):
        clock = FakeMonotonic()
        sched = schedule(jitter=0.0, max_elapsed=10.0, clock=clock)
        assert sched.next_delay(0) == 1.0
        clock.advance(10.0)  # the budget is spent
        assert sched.next_delay(1) is None

    def test_delay_clamped_to_remaining_budget(self):
        clock = FakeMonotonic()
        sched = schedule(jitter=0.0, max_elapsed=10.0, clock=clock)
        clock.advance(7.0)
        # Attempt 2 nominally sleeps 4.0 s but only 3.0 s remain.
        assert sched.next_delay(2) == pytest.approx(3.0)

    def test_unlimited_budget_never_clamps(self):
        clock = FakeMonotonic()
        sched = schedule(jitter=0.0, max_elapsed=None, clock=clock)
        clock.advance(1_000_000.0)
        assert sched.next_delay(4) == 16.0


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            schedule(retries=-1)
        with pytest.raises(ValueError):
            schedule(base=-0.1)
        with pytest.raises(ValueError):
            schedule(jitter=1.0)
        with pytest.raises(ValueError):
            schedule(jitter=-0.1)
        with pytest.raises(ValueError):
            schedule(max_elapsed=0.0)


class TestClientWiring:
    def test_client_exposes_and_validates_retry_knobs(self):
        client = EstimationClient("127.0.0.1", 1, jitter=0.1, max_elapsed=2.0)
        assert client.jitter == 0.1
        assert client.max_elapsed == 2.0
        sched = client._schedule()
        assert sched.jitter == 0.1
        assert sched.max_elapsed == 2.0

    def test_client_defaults_match_module_constants(self):
        client = EstimationClient("127.0.0.1", 1)
        assert client.jitter == DEFAULT_JITTER
        assert client.max_elapsed == DEFAULT_MAX_ELAPSED

    def test_connect_gives_up_within_the_elapsed_budget(self):
        # Port 1 refuses immediately; with a tiny budget the client must
        # stop fast instead of sleeping through every backoff step.
        client = EstimationClient(
            "127.0.0.1",
            1,
            retries=50,
            backoff=0.01,
            max_elapsed=0.2,
            timeout=0.2,
        )
        with pytest.raises(ConnectionFailedError, match="attempts"):
            client.connect()
