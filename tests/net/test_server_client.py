"""Loopback tests: asyncio server + both SDK flavors against one service.

The acceptance bar for the network front-end: a mixed 10k batch answered
through the sync SDK, the async SDK, and the in-process service must
produce three bit-identical float64 vectors — including degraded entries
and their trace reasons — and admission control must surface as typed
per-probe degradation, never as a dropped connection.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
import socket
import time

import numpy as np
import pytest

from repro.core.biased import v_opt_bias_hist
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import CatalogEntry, StatsCatalog
from repro.engine.relation import Relation
from repro.net import (
    AsyncEstimationClient,
    AuthenticationError,
    EstimationClient,
    RemoteBatchError,
    TenantConfig,
    protocol,
    serve_in_thread,
)
from repro.net.protocol import probes_to_wire
from repro.obs import runtime
from repro.obs.tracing import add_span_sink, clear_span_sinks
from repro.serve import (
    EqualityProbe,
    EstimationService,
    JoinProbe,
    RangeProbe,
)
from repro.serve.service import REASON_BACKPRESSURE, REASON_QUOTA_EXCEEDED


@pytest.fixture(autouse=True)
def fresh_obs():
    runtime.reset()
    clear_span_sinks()
    yield
    runtime.reset()
    clear_span_sinks()


@pytest.fixture
def catalog():
    catalog = StatsCatalog()
    r = Relation.from_columns(
        "R", {"a": [1] * 40 + [2] * 25 + [3] * 20 + [4] * 10 + [5] * 5}
    )
    s = Relation.from_columns("S", {"a": [1] * 10 + [2] * 10 + [3] * 10})
    analyze_relation(r, "a", catalog, kind="serial", buckets=3)
    analyze_relation(s, "a", catalog, kind="end-biased", buckets=2)
    # A non-numeric domain: ranges answer first-class for string bounds
    # and degrade (incomparable-bound) for numeric ones.
    hist = v_opt_bias_hist([6.0, 3.0, 1.0], 2, values=["a", "b", "c"])
    catalog.put(CatalogEntry("T", "s", "biased", hist, None, 3, 10.0))
    return catalog


@pytest.fixture
def service(catalog):
    return EstimationService(catalog)


@pytest.fixture
def server(service):
    with serve_in_thread(service, name="test-net") as handle:
        yield handle


def mixed_probes(n):
    """A deterministic mixed batch: healthy and poisoned, every kind."""
    probes = []
    for i in range(n):
        pick = i % 10
        if pick < 3:
            probes.append(EqualityProbe("R", "a", (i % 7)))
        elif pick < 5:
            low = None if i % 4 == 0 else (i % 5)
            high = None if i % 6 == 0 else (i % 5) + 2
            probes.append(RangeProbe("R", "a", low, high, include_low=i % 2 == 0))
        elif pick == 5:
            probes.append(JoinProbe("R", "a", "S", "a"))
        elif pick == 6:
            probes.append(EqualityProbe("T", "s", "abc"[i % 3]))
        elif pick == 7:
            # Numeric bound over a string domain: incomparable-bound.
            probes.append(RangeProbe("T", "s", 1, None))
        elif pick == 8:
            probes.append(EqualityProbe("ZZZ", "a", 1))  # unknown-relation
        else:
            probes.append(JoinProbe("ZZZ", "a", "R", "a"))  # unknown-relation
    return probes


def trace_key(trace):
    value = "nan" if math.isnan(trace.value) else float(trace.value).hex()
    return (
        trace.position,
        trace.kind,
        trace.relation,
        trace.attribute,
        trace.reason,
        trace.degraded,
        value,
    )


class TestLoopbackBitIdentity:
    @pytest.mark.parametrize("on_error", ["fallback", "nan"])
    def test_10k_mixed_batch_three_ways(self, service, server, on_error):
        """Sync SDK, async SDK, and in-process: three bit-identical
        vectors and identical trace streams for a 10k mixed batch."""
        probes = mixed_probes(10_000)
        host, port = server.address

        local_traces = []
        local = service.estimate_batch(
            probes, on_error=on_error, trace=local_traces.append
        )

        sync_traces = []
        with EstimationClient(host, port) as client:
            via_sync = client.estimate_batch(
                probes, on_error=on_error, trace=sync_traces.append
            )

        async_traces = []

        async def drive():
            async with AsyncEstimationClient(host, port) as client:
                return await client.estimate_batch(
                    probes, on_error=on_error, trace=async_traces.append
                )

        via_async = asyncio.run(drive())

        assert local.dtype == via_sync.dtype == via_async.dtype == np.float64
        assert via_sync.tobytes() == local.tobytes()
        assert via_async.tobytes() == local.tobytes()

        # Degradations really happened (the batch is poisoned on purpose)…
        assert local_traces
        reasons = {trace.reason for trace in local_traces}
        assert "unknown-relation" in reasons
        assert "incomparable-bound" in reasons
        # …and the wire carried every trace with its reason, bit-exact.
        expected = sorted(trace_key(t) for t in local_traces)
        assert sorted(trace_key(t) for t in sync_traces) == expected
        assert sorted(trace_key(t) for t in async_traces) == expected

    def test_raise_policy_is_a_typed_remote_error(self, service, server):
        host, port = server.address
        probes = [EqualityProbe("R", "a", 1), EqualityProbe("ZZZ", "a", 1)]
        with EstimationClient(host, port) as client:
            with pytest.raises(RemoteBatchError) as excinfo:
                client.estimate_batch(probes, on_error="raise")
            assert excinfo.value.code == "batch-failed"
            assert excinfo.value.error_type == "KeyError"
            # The connection survives the failed batch.
            follow_up = client.estimate_batch([EqualityProbe("R", "a", 1)])
            assert follow_up.shape == (1,)

        async def drive():
            async with AsyncEstimationClient(host, port) as client:
                with pytest.raises(RemoteBatchError):
                    await client.estimate_batch(probes, on_error="raise")
                return await client.estimate_batch([EqualityProbe("R", "a", 1)])

        assert asyncio.run(drive()).shape == (1,)

    def test_empty_batch(self, server):
        host, port = server.address
        with EstimationClient(host, port) as client:
            out = client.estimate_batch([])
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_ping(self, server):
        host, port = server.address
        with EstimationClient(host, port) as client:
            assert client.ping() is True


class TestStreaming:
    def test_multi_chunk_stream_reassembles_bit_exactly(self, service):
        probes = mixed_probes(50)
        local = service.estimate_batch(probes)
        with serve_in_thread(service, chunk_probes=7) as handle:
            host, port = handle.address
            with EstimationClient(host, port) as client:
                chunks = list(client.stream_batch(probes))
            assert [start for start, _ in chunks] == list(range(0, 50, 7))
            assert all(chunk.size <= 7 for _, chunk in chunks)
            joined = np.concatenate([chunk for _, chunk in chunks])
            assert joined.tobytes() == local.tobytes()

            async def drive():
                collected = []
                async with AsyncEstimationClient(host, port) as client:
                    async for start, chunk in client.stream_batch(probes):
                        collected.append((start, chunk))
                return collected

            async_chunks = asyncio.run(drive())
            joined = np.concatenate([chunk for _, chunk in async_chunks])
            assert joined.tobytes() == local.tobytes()


class TestAuthentication:
    def test_bad_token_is_refused_not_reset(self, service):
        tenants = [TenantConfig(name="acme", token="s3cret")]
        with serve_in_thread(service, tenants=tenants) as handle:
            host, port = handle.address
            with pytest.raises(AuthenticationError):
                EstimationClient(host, port, token="wrong").connect()
            with pytest.raises(AuthenticationError):
                asyncio.run(
                    AsyncEstimationClient(host, port, token=None).connect()
                )
            with EstimationClient(host, port, token="s3cret") as client:
                assert client.tenant == "acme"
                out = client.estimate_batch([EqualityProbe("R", "a", 1)])
            assert out.shape == (1,)


class TestAdmission:
    def test_quota_rejects_tail_probes_not_the_connection(self, service):
        tenants = [
            TenantConfig(name="acme", token="tok", max_probes_per_batch=5)
        ]
        with serve_in_thread(service, tenants=tenants) as handle:
            host, port = handle.address
            probes = [EqualityProbe("R", "a", 1)] * 8
            in_process = service.estimate_batch(probes[:5])
            with EstimationClient(host, port, token="tok") as client:
                traces = []
                out = client.estimate_batch(probes, trace=traces.append)
                # The prefix inside quota answers bit-identically…
                assert out[:5].tobytes() == in_process.tobytes()
                # …the tail degrades with the typed reason.
                rejected = [t for t in traces if t.reason == REASON_QUOTA_EXCEEDED]
                assert sorted(t.position for t in rejected) == [5, 6, 7]
                assert all(t.degraded for t in rejected)
                # Rejected equality probes fall back to |R| * 0.1.
                assert np.all(out[5:] == pytest.approx(10.0))
                # The connection survives and the next batch is answered.
                again = client.estimate_batch(probes[:3], trace=traces.append)
                assert again.tobytes() == in_process[:3].tobytes()

    def test_quota_rejection_under_nan_policy(self, service):
        tenants = [
            TenantConfig(name="acme", token="tok", max_probes_per_batch=2)
        ]
        with serve_in_thread(service, tenants=tenants) as handle:
            host, port = handle.address
            with EstimationClient(host, port, token="tok") as client:
                out = client.estimate_batch(
                    [EqualityProbe("R", "a", 1)] * 4, on_error="nan"
                )
            assert np.all(np.isfinite(out[:2]))
            assert np.all(np.isnan(out[2:]))

    def test_backpressure_bounds_pending_probes(self, service):
        tenants = [
            TenantConfig(name="acme", token="tok", max_pending_probes=4)
        ]
        with serve_in_thread(service, tenants=tenants) as handle:
            host, port = handle.address
            probes = [EqualityProbe("R", "a", i % 5) for i in range(10)]
            with EstimationClient(host, port, token="tok") as client:
                for _ in range(2):  # pending releases between batches
                    traces = []
                    out = client.estimate_batch(probes, trace=traces.append)
                    rejected = [
                        t for t in traces if t.reason == REASON_BACKPRESSURE
                    ]
                    assert sorted(t.position for t in rejected) == list(range(4, 10))
                    assert out.shape == (10,)

    def test_rejections_surface_in_service_metrics(self, service):
        tenants = [
            TenantConfig(name="acme", token="tok", max_probes_per_batch=1)
        ]
        with serve_in_thread(service, tenants=tenants) as handle:
            host, port = handle.address
            with EstimationClient(host, port, token="tok") as client:
                client.estimate_batch([EqualityProbe("R", "a", 1)] * 3)
        stats = service.stats()
        assert stats.rejected_probes == 2
        assert stats.rejection_reasons == {REASON_QUOTA_EXCEEDED: 2}
        assert stats.probes_served == 3
        assert "admission control" in stats.format()


class TestMalformedWire:
    def _framed_exchange(self, address, frames):
        """Send frames over a raw socket; return every reply frame."""
        with socket.create_connection(address, timeout=10) as sock:
            for frame in frames:
                sock.sendall(protocol.encode_frame(frame))
            decoder = protocol.FrameDecoder()
            received = []
            sock.settimeout(10)
            while True:
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    break
                if not data:
                    break
                received.extend(decoder.feed(data))
                if any(f.get("op") == "error" or f.get("eof") for f in received):
                    break
            return received

    def test_undecodable_probe_degrades_alone(self, service, server):
        """A malformed entry resolves as wire-decode-failed; its batch
        siblings are answered bit-identically to in-process."""
        good = [EqualityProbe("R", "a", 1), EqualityProbe("R", "a", 2)]
        local = service.estimate_batch(good)
        wire_probes = probes_to_wire(good)
        wire_probes.insert(1, {"kind": "mystery"})
        request = protocol.batch_request(
            wire_probes, request_id=7, on_error=None, want_traces=True
        )
        frames = self._framed_exchange(
            server.address, [protocol.hello_request(token=None), request]
        )
        assert frames[0]["op"] == "welcome"
        chunks = [f for f in frames if f.get("op") == "chunk"]
        assert chunks and chunks[-1]["eof"]
        estimates = np.concatenate(
            [protocol.decode_estimates(f["estimates"]) for f in chunks]
        )
        assert estimates.shape == (3,)
        assert estimates[0] == local[0]
        assert estimates[2] == local[1]
        traces = [
            protocol.trace_from_wire(t)
            for f in chunks
            for t in f.get("traces", [])
        ]
        assert [t.reason for t in traces] == [protocol.REASON_WIRE_DECODE]
        assert traces[0].position == 1
        assert service.stats().rejection_reasons == {
            protocol.REASON_WIRE_DECODE: 1
        }

    def test_version_mismatch_answered_with_typed_error(self, server):
        frames = self._framed_exchange(
            server.address, [{"v": 999, "op": "hello", "token": None}]
        )
        assert frames[0]["op"] == "error"
        assert frames[0]["code"] == "wire-version"

    def test_unknown_op_answered_not_dropped(self, server):
        frames = self._framed_exchange(
            server.address,
            [protocol.hello_request(token=None), protocol.message("dance")],
        )
        assert frames[0]["op"] == "welcome"
        assert frames[1]["op"] == "error"
        assert frames[1]["code"] == "unknown-op"


class TestHttpShim:
    def test_health(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("GET", "/v1/health")
        response = conn.getresponse()
        assert response.status == 200
        assert json.loads(response.read())["status"] == "ok"

    def test_batch_is_bit_identical(self, service, server):
        probes = mixed_probes(64)
        local = service.estimate_batch(probes)
        host, port = server.address
        body = json.dumps(
            protocol.batch_request(
                probes_to_wire(probes), request_id=1, on_error=None,
                want_traces=True,
            )
        )
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("POST", "/v1/batch", body=body)
        response = conn.getresponse()
        assert response.status == 200
        payload = json.loads(response.read())
        estimates = protocol.decode_estimates(payload["estimates"])
        assert estimates.tobytes() == local.tobytes()
        assert payload["traces"]

    def test_auth_required_when_tenanted(self, service):
        tenants = [TenantConfig(name="acme", token="tok")]
        with serve_in_thread(service, tenants=tenants) as handle:
            host, port = handle.address
            body = json.dumps(
                protocol.batch_request(
                    [], request_id=1, on_error=None, want_traces=False
                )
            )
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("POST", "/v1/batch", body=body)
            assert conn.getresponse().status == 401
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request(
                "POST",
                "/v1/batch",
                body=body,
                headers={"Authorization": "Bearer tok"},
            )
            assert conn.getresponse().status == 200

    def test_unknown_endpoint_404(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("GET", "/v2/nope")
        assert conn.getresponse().status == 404

    def test_invalid_policy_422(self, service, server):
        host, port = server.address
        body = json.dumps(
            protocol.batch_request(
                probes_to_wire([EqualityProbe("R", "a", 1)]),
                request_id=1,
                on_error="explode",
                want_traces=False,
            )
        )
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("POST", "/v1/batch", body=body)
        response = conn.getresponse()
        assert response.status == 422
        assert json.loads(response.read())["error_type"] == "ValueError"


class TestInstrumentation:
    def test_net_spans_and_per_tenant_counters(self, service):
        records = []
        add_span_sink(records.append)
        tenants = [TenantConfig(name="acme", token="tok")]
        with serve_in_thread(service, tenants=tenants, name="obs-net") as handle:
            host, port = handle.address
            with EstimationClient(host, port, token="tok") as client:
                client.estimate_batch(mixed_probes(8))
                # A ping round-trip guarantees the batch/stream spans
                # (closed before the pong is written) have been sunk.
                client.ping()
        # The connection is closed now, so net.accept has ended too.
        deadline = 50
        while deadline and "net.accept" not in {r.name for r in records}:
            deadline -= 1
            time.sleep(0.05)
        names = {record.name for record in records}
        assert {"net.accept", "net.batch", "net.stream"} <= names
        batch_span = next(r for r in records if r.name == "net.batch")
        assert dict(batch_span.tags)["tenant"] == "acme"
        text = runtime.get_registry().to_prometheus()
        assert "repro_net_connections_total" in text
        assert "repro_net_batches_total" in text
        assert 'tenant="acme"' in text
        assert "repro_net_probes_total" in text

    def test_rejected_counter_exported(self, service):
        tenants = [
            TenantConfig(name="acme", token="tok", max_probes_per_batch=1)
        ]
        with serve_in_thread(service, tenants=tenants) as handle:
            host, port = handle.address
            with EstimationClient(host, port, token="tok") as client:
                client.estimate_batch([EqualityProbe("R", "a", 1)] * 4)
        text = runtime.get_registry().to_prometheus()
        assert "repro_net_rejected_probes_total" in text
        assert "repro_serve_rejected_probes_total" in text
        assert 'reason="quota-exceeded"' in text
