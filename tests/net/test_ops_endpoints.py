"""The ops surface: /v1/metrics, /v1/ready, /v1/tracez, readiness checks."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.biased import v_opt_bias_hist
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import CatalogEntry, StatsCatalog
from repro.engine.relation import Relation
from repro.maint.queue import DurableJobQueue
from repro.net import (
    EstimationClient,
    agent_lease_check,
    serve_in_thread,
)
from repro.obs import runtime
from repro.obs.tracing import clear_span_sinks
from repro.serve import EqualityProbe, EstimationService


@pytest.fixture(autouse=True)
def fresh_obs():
    runtime.reset()
    clear_span_sinks()
    yield
    runtime.reset()
    clear_span_sinks()


class FakeClock:
    def __init__(self, now: float = 1_000.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


@pytest.fixture
def service():
    catalog = StatsCatalog()
    r = Relation.from_columns("R", {"a": [1] * 40 + [2] * 25 + [3] * 20})
    analyze_relation(r, "a", catalog, kind="serial", buckets=3)
    hist = v_opt_bias_hist([6.0, 3.0, 1.0], 2, values=["a", "b", "c"])
    catalog.put(CatalogEntry("T", "s", "biased", hist, None, 3, 10.0))
    return EstimationService(catalog)


def http_get(address, path):
    conn = http.client.HTTPConnection(*address, timeout=30.0)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def check_by_name(payload, name):
    return next(c for c in payload["checks"] if c["name"] == name)


class TestReadiness:
    def test_cold_cache_is_unready_then_ready_after_first_batch(self, service):
        with serve_in_thread(service) as handle:
            status, body = http_get(handle.address, "/v1/ready")
            payload = json.loads(body)
            assert status == 503
            assert payload["status"] == "unready"
            assert check_by_name(payload, "cache-warm")["ok"] is False
            # Catalog and quarantine checks pass independently.
            assert check_by_name(payload, "catalog-published")["ok"] is True
            assert check_by_name(payload, "quarantine-empty")["ok"] is True

            with EstimationClient(*handle.address) as client:
                client.estimate_batch([EqualityProbe("R", "a", 1)])

            status, body = http_get(handle.address, "/v1/ready")
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "ok"
            assert all(c["ok"] for c in payload["checks"])

    def test_quarantine_flips_unready_and_names_the_pair(self, service):
        with serve_in_thread(service) as handle:
            with EstimationClient(*handle.address) as client:
                client.estimate_batch([EqualityProbe("R", "a", 1)])
            service.quarantine("R", "a")
            status, body = http_get(handle.address, "/v1/ready")
            payload = json.loads(body)
            assert status == 503
            failing = check_by_name(payload, "quarantine-empty")
            assert failing["ok"] is False
            assert "R.a" in failing["detail"]
            # Repair: clear the hold and serve one probe (quarantining
            # evicted the compiled table, so the cache must re-warm).
            service.clear_quarantine("R", "a")
            with EstimationClient(*handle.address) as client:
                client.estimate_batch([EqualityProbe("R", "a", 1)])
            status, body = http_get(handle.address, "/v1/ready")
            assert status == 200

    def test_empty_catalog_is_unready(self):
        service = EstimationService(StatsCatalog())
        with serve_in_thread(service) as handle:
            status, body = http_get(handle.address, "/v1/ready")
            payload = json.loads(body)
            assert status == 503
            assert check_by_name(payload, "catalog-published")["ok"] is False

    def test_agent_lease_check_flags_expired_leases(self, service, tmp_path):
        clock = FakeClock()
        queue = DurableJobQueue(
            tmp_path / "queue.jsonl", lease_duration=30.0, clock=clock, rng=3
        )
        check = agent_lease_check(queue, clock=clock)
        assert check() == (True, "all claimed leases fresh")
        queue.enqueue("checkpoint")
        lease = queue.claim("worker-1")
        assert check()[0] is True  # claimed but fresh
        clock.advance(31.0)
        ok, detail = check()
        assert ok is False
        assert lease.job.id in detail

    def test_add_readiness_check_over_http(self, service, tmp_path):
        clock = FakeClock()
        queue = DurableJobQueue(
            tmp_path / "queue.jsonl", lease_duration=30.0, clock=clock, rng=3
        )
        queue.enqueue("checkpoint")
        queue.claim("worker-1")
        clock.advance(31.0)
        with serve_in_thread(service) as handle:
            handle.server.add_readiness_check(
                "agent-lease-fresh", agent_lease_check(queue, clock=clock)
            )
            status, body = http_get(handle.address, "/v1/ready")
            payload = json.loads(body)
            assert status == 503
            failing = check_by_name(payload, "agent-lease-fresh")
            assert failing["ok"] is False
            assert "expired lease" in failing["detail"]

    def test_raising_check_reports_failing_not_fatal(self, service):
        with serve_in_thread(service) as handle:
            def boom():
                raise RuntimeError("probe exploded")

            handle.server.add_readiness_check("explosive", boom)
            status, body = http_get(handle.address, "/v1/ready")
            payload = json.loads(body)
            assert status == 503
            failing = check_by_name(payload, "explosive")
            assert failing["ok"] is False
            assert "probe exploded" in failing["detail"]
            # The server is still serving.
            assert http_get(handle.address, "/v1/health")[0] == 200

    def test_check_registration_validation(self, service):
        with serve_in_thread(service) as handle:
            server = handle.server
            with pytest.raises(ValueError, match="already registered"):
                server.add_readiness_check("cache-warm", lambda: (True, ""))
            with pytest.raises(ValueError, match="non-empty"):
                server.add_readiness_check("", lambda: (True, ""))
            with pytest.raises(TypeError, match="callable"):
                server.add_readiness_check("x", "not-callable")


class TestMetricsEndpoint:
    def test_prometheus_text_with_trace_exemplars(self, service):
        with serve_in_thread(service) as handle:
            with EstimationClient(*handle.address) as client:
                client.estimate_batch([EqualityProbe("R", "a", 1)])
            status, body = http_get(handle.address, "/v1/metrics")
        assert status == 200
        assert "repro_net_batches_total" in body
        assert "repro_span_duration_seconds" in body
        # Latency-histogram exemplars link buckets to sampled trace IDs.
        exemplar_lines = [
            line
            for line in body.splitlines()
            if "_bucket" in line and '# {trace_id="' in line
        ]
        assert exemplar_lines, "no trace exemplars on histogram buckets"

    def test_metrics_needs_no_auth(self, service):
        from repro.net import TenantConfig

        tenants = [TenantConfig(name="t1", token="s3cret")]
        with serve_in_thread(service, tenants=tenants) as handle:
            assert http_get(handle.address, "/v1/metrics")[0] == 200
            assert http_get(handle.address, "/v1/ready")[0] in (200, 503)


class TestTracezEndpoint:
    def test_recent_traces_include_batch_spans(self, service):
        with serve_in_thread(service) as handle:
            with EstimationClient(*handle.address) as client:
                client.estimate_batch([EqualityProbe("R", "a", 1)])
            status, body = http_get(handle.address, "/v1/tracez")
        assert status == 200
        payload = json.loads(body)
        names = {name for row in payload["traces"] for name in row["names"]}
        assert "net.batch" in names
        assert "serve.batch" in names
        batch_rows = [r for r in payload["traces"] if "net.batch" in r["names"]]
        assert all(row["trace_id"] for row in batch_rows)
        assert all("net.batch" in row["tree"] for row in batch_rows)

    def test_tracez_empty_before_traffic(self, service):
        with serve_in_thread(service) as handle:
            status, body = http_get(handle.address, "/v1/tracez")
        assert status == 200
        payload = json.loads(body)
        # Only this request's own connection span can be present.
        assert all(
            set(row["names"]) <= {"net.accept"} for row in payload["traces"]
        )

    def test_unknown_endpoint_is_404(self, service):
        with serve_in_thread(service) as handle:
            assert http_get(handle.address, "/v1/nope")[0] == 404
