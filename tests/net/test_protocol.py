"""Wire-schema codecs: round-trip fidelity, rejection rules, framing."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.catalog import StatsCatalog
from repro.engine.persist import QuarantinedEntry, RecoveryReport
from repro.net import protocol
from repro.net.protocol import (
    FrameDecoder,
    WireCodecError,
    WireVersionError,
    decode_estimates,
    decode_frame,
    decode_value,
    encode_estimates,
    encode_frame,
    encode_value,
    probe_from_wire,
    probe_to_wire,
    probes_from_wire,
    probes_to_wire,
    recovery_report_from_wire,
    recovery_report_to_wire,
    trace_from_wire,
    trace_to_wire,
)
from repro.serve import EqualityProbe, JoinProbe, ProbeTrace, RangeProbe

# ---------------------------------------------------------------------------
# Value strategies: every domain shape the service accepts — numeric,
# non-numeric (strings/bytes), unorderable-mix material (tuples, bools),
# and None bounds.
# ---------------------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False)
scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**30), max_value=10**30),
    finite_floats,
    st.text(max_size=40),
    st.binary(max_size=24),
)
wire_values = st.one_of(
    scalar_values,
    st.tuples(scalar_values, scalar_values),
    st.tuples(scalar_values, st.tuples(scalar_values, scalar_values)),
)

names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
)

equality_probes = st.builds(EqualityProbe, relation=names, attribute=names, value=wire_values)
range_probes = st.builds(
    RangeProbe,
    relation=names,
    attribute=names,
    low=st.one_of(st.none(), wire_values),
    high=st.one_of(st.none(), wire_values),
    include_low=st.booleans(),
    include_high=st.booleans(),
)
join_probes = st.builds(
    JoinProbe,
    left_relation=names,
    left_attribute=names,
    right_relation=names,
    right_attribute=names,
)
any_probe = st.one_of(equality_probes, range_probes, join_probes)


class TestValueCodec:
    @given(wire_values)
    @settings(max_examples=300)
    def test_round_trip_identity(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    @given(finite_floats)
    def test_floats_round_trip_bit_exactly(self, value):
        decoded = decode_value(encode_value(value))
        assert math.copysign(1.0, decoded) == math.copysign(1.0, value)
        assert decoded.hex() == value.hex()

    def test_int_float_distinction_survives(self):
        assert decode_value(encode_value(1)) == 1 and isinstance(
            decode_value(encode_value(1)), int
        )
        assert isinstance(decode_value(encode_value(1.0)), float)
        assert isinstance(decode_value(encode_value(True)), bool)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_rejected_at_encode(self, bad):
        with pytest.raises(WireCodecError, match="non-finite"):
            encode_value(bad)
        with pytest.raises(WireCodecError):
            encode_value((1, bad))

    def test_unsupported_type_rejected(self):
        with pytest.raises(WireCodecError, match="no wire encoding"):
            encode_value(object())

    def test_json_representable(self):
        for value in [None, True, 7, 2.5, "x", b"\x00\xff", (1, ("a", None))]:
            json.dumps(encode_value(value))

    def test_malformed_wire_rejected(self):
        for junk in [{"t": "wat"}, {"t": "int", "v": "zz"}, 7, ["x"]]:
            with pytest.raises(WireCodecError):
                decode_value(junk)


class TestProbeCodec:
    @given(any_probe)
    @settings(max_examples=300)
    def test_round_trip_equality(self, probe):
        wire = probe_to_wire(probe)
        json.dumps(wire)  # the wire form must be plain JSON
        assert probe_from_wire(wire) == probe

    @given(st.lists(any_probe, max_size=8))
    def test_batch_round_trip(self, probes):
        assert probes_from_wire(probes_to_wire(probes)) == probes

    def test_nan_probe_value_rejected_at_encode(self):
        with pytest.raises(WireCodecError):
            probe_to_wire(EqualityProbe("R", "a", float("nan")))
        with pytest.raises(WireCodecError):
            probe_to_wire(RangeProbe("R", "a", low=float("inf")))

    def test_none_bounds_round_trip(self):
        probe = RangeProbe("R", "a", low=None, high=None)
        assert probe_from_wire(probe_to_wire(probe)) == probe

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireCodecError, match="unknown probe kind"):
            probe_from_wire({"kind": "mystery"})

    def test_non_object_rejected(self):
        with pytest.raises(WireCodecError):
            probe_from_wire("equality")
        with pytest.raises(WireCodecError):
            probes_from_wire({"kind": "equality"})


class TestTraceCodec:
    @given(
        kind=st.sampled_from(["equality", "range", "join", "membership", "not_equal"]),
        relation=names,
        attribute=st.one_of(st.none(), names),
        reason=names,
        value=st.one_of(
            finite_floats, st.just(float("nan")), st.just(float("inf"))
        ),
        degraded=st.booleans(),
        position=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
    )
    def test_round_trip(self, kind, relation, attribute, reason, value, degraded, position):
        trace = ProbeTrace(
            kind=kind,
            relation=relation,
            attribute=attribute,
            reason=reason,
            value=value,
            degraded=degraded,
            position=position,
        )
        decoded = trace_from_wire(trace_to_wire(trace))
        # NaN != NaN, so compare served values through their hex form.
        assert decoded.value.hex() == trace.value.hex() or (
            math.isnan(decoded.value) and math.isnan(trace.value)
        )
        assert decoded == ProbeTrace(
            kind=kind,
            relation=relation,
            attribute=attribute,
            reason=reason,
            value=decoded.value,
            degraded=degraded,
            position=position,
        )


class TestRecoveryReportCodec:
    def test_round_trip_summary(self):
        report = RecoveryReport(
            catalog=StatsCatalog(),
            snapshot_path="/tmp/x.snap",
            snapshot_found=True,
            snapshot_ok=False,
            entries_loaded=4,
            quarantined=[
                QuarantinedEntry(relation="R", attribute="a", reason="bad-checksum"),
                QuarantinedEntry(relation="S", attribute=None, reason="torn"),
            ],
            journal_path="/tmp/x.wal",
            journal_torn=True,
            journal_replayed=3,
            journal_fenced=1,
            journal_orphaned=2,
            journal_anomalies=1,
        )
        wire = recovery_report_to_wire(report)
        json.dumps(wire)
        decoded = recovery_report_from_wire(wire)
        assert decoded.snapshot_path == report.snapshot_path
        assert decoded.snapshot_ok is False
        assert decoded.quarantined == report.quarantined
        assert decoded.journal_replayed == 3
        assert decoded.journal_torn is True
        assert decoded.clean == report.clean

    def test_version_checked(self):
        wire = recovery_report_to_wire(
            RecoveryReport(catalog=StatsCatalog(), snapshot_path="p")
        )
        wire["v"] = 999
        with pytest.raises(WireVersionError):
            recovery_report_from_wire(wire)


class TestEstimatesCodec:
    def test_bit_identity_including_nan(self):
        vector = np.array(
            [0.0, -0.0, 1.5, float("nan"), float("inf"), -1e308], dtype=np.float64
        )
        decoded = decode_estimates(encode_estimates(vector))
        assert decoded.dtype == np.float64
        assert decoded.tobytes() == vector.tobytes()

    def test_empty_vector(self):
        decoded = decode_estimates(encode_estimates(np.zeros(0)))
        assert decoded.size == 0

    def test_length_mismatch_rejected(self):
        wire = encode_estimates(np.ones(3))
        wire["n"] = 4
        with pytest.raises(WireCodecError, match="mismatch"):
            decode_estimates(wire)


class TestFraming:
    def test_frame_round_trip(self):
        body = protocol.message("hello", token="t")
        frames = FrameDecoder().feed(encode_frame(body))
        assert frames == [body]

    def test_incremental_reassembly_every_split(self):
        frames_bytes = encode_frame(protocol.message("a")) + encode_frame(
            protocol.message("b", data="x" * 100)
        )
        for split in range(len(frames_bytes) + 1):
            decoder = FrameDecoder()
            got = decoder.feed(frames_bytes[:split])
            got += decoder.feed(frames_bytes[split:])
            assert [frame["op"] for frame in got] == ["a", "b"]
            assert decoder.pending_bytes == 0

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(WireCodecError, match="not speaking this protocol"):
            decoder.feed(b"\xff\xff\xff\xff")

    def test_nan_cannot_sneak_into_a_frame(self):
        with pytest.raises(ValueError):
            encode_frame({"x": float("nan")})

    def test_decode_frame_rejects_non_objects(self):
        with pytest.raises(WireCodecError):
            decode_frame(b"[1,2]")
        with pytest.raises(WireCodecError):
            decode_frame(b"\xff\xfe")

    def test_version_check(self):
        protocol.check_version(protocol.message("ping"))
        with pytest.raises(WireVersionError):
            protocol.check_version({"v": protocol.WIRE_SCHEMA_VERSION + 1})
        with pytest.raises(WireVersionError):
            protocol.check_version({})
