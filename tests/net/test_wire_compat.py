"""Wire schema v1 <-> v2 interop: old peers keep working, bit-identically.

The v2 bump adds exactly one optional field (``trace_context`` on batch
requests).  The compatibility contract:

* an **old (v1) client** against a new server sees only v1-stamped
  frames — byte-for-byte what a v1 server would have sent — and its 10k
  mixed batch answers bit-identically to in-process estimation;
* a **new client** against an old (v1-only) server downgrades via the
  ``wire-version`` error frame, redoes the handshake at v1, and its 10k
  mixed batch also round-trips bit-identically — with the
  ``trace_context`` field *absent* from what it sends, never ``null``.
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.core.biased import v_opt_bias_hist
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import CatalogEntry, StatsCatalog
from repro.engine.relation import Relation
from repro.net import EstimationClient, protocol, serve_in_thread
from repro.net.protocol import TRACE_CONTEXT_MIN_VERSION
from repro.obs import runtime
from repro.obs.tracing import clear_span_sinks
from repro.serve import EstimationService

from tests.net.test_server_client import mixed_probes


@pytest.fixture(autouse=True)
def fresh_obs():
    runtime.reset()
    clear_span_sinks()
    yield
    runtime.reset()
    clear_span_sinks()


@pytest.fixture
def service():
    catalog = StatsCatalog()
    r = Relation.from_columns(
        "R", {"a": [1] * 40 + [2] * 25 + [3] * 20 + [4] * 10 + [5] * 5}
    )
    s = Relation.from_columns("S", {"a": [1] * 10 + [2] * 10 + [3] * 10})
    analyze_relation(r, "a", catalog, kind="serial", buckets=3)
    analyze_relation(s, "a", catalog, kind="end-biased", buckets=2)
    hist = v_opt_bias_hist([6.0, 3.0, 1.0], 2, values=["a", "b", "c"])
    catalog.put(CatalogEntry("T", "s", "biased", hist, None, 3, 10.0))
    return EstimationService(catalog)


class V1Socket:
    """A strict old-build client: speaks v1 and rejects any other tag."""

    def __init__(self, host, port):
        self._sock = socket.create_connection((host, port), timeout=30.0)
        self._decoder = protocol.FrameDecoder()
        self._pending = []

    def close(self):
        self._sock.close()

    def send(self, frame):
        self._sock.sendall(protocol.encode_frame(frame))

    def recv(self):
        if self._pending:
            return self._pending.pop(0)
        while True:
            data = self._sock.recv(65536)
            assert data, "server closed the connection"
            frames = self._decoder.feed(data)
            if frames:
                self._pending.extend(frames[1:])
                frame = frames[0]
                # The old build's strict check: v must equal 1 exactly.
                assert frame.get("v") == 1, f"v1 peer got {frame.get('v')!r}"
                return frame


class TestOldClientNewServer:
    def test_10k_mixed_batch_bit_identical_at_v1(self, service):
        probes = mixed_probes(10_000)
        local = service.estimate_batch(probes, on_error="fallback")
        with serve_in_thread(service, name="compat-net") as handle:
            host, port = handle.address
            peer = V1Socket(host, port)
            try:
                peer.send(protocol.hello_request(version=1))
                welcome = peer.recv()
                assert welcome["op"] == "welcome"
                request = protocol.batch_request(
                    protocol.probes_to_wire(probes),
                    request_id=7,
                    on_error="fallback",
                    version=1,
                )
                assert "trace_context" not in request
                peer.send(request)
                chunks = []
                while True:
                    frame = peer.recv()
                    assert frame["op"] == "chunk"
                    # No v2-only fields leak into v1 responses.
                    assert "trace_context" not in frame
                    chunks.append(protocol.decode_estimates(frame["estimates"]))
                    if frame.get("eof"):
                        break
                via_v1 = np.concatenate(chunks)
            finally:
                peer.close()
        assert via_v1.tobytes() == local.tobytes()

    def test_v1_ping_answered_at_v1(self, service):
        with serve_in_thread(service, name="compat-net") as handle:
            host, port = handle.address
            peer = V1Socket(host, port)
            try:
                peer.send(protocol.hello_request(version=1))
                assert peer.recv()["op"] == "welcome"
                peer.send(protocol.message("ping", version=1))
                assert peer.recv()["op"] == "pong"  # recv asserts v == 1
            finally:
                peer.close()

    def test_unsupported_version_refused_with_typed_error(self, service):
        with serve_in_thread(service, name="compat-net") as handle:
            host, port = handle.address
            peer = V1Socket(host, port)
            try:
                peer.send(protocol.hello_request(version=99))
                error = peer.recv()  # stamped with the oldest version
                assert error["op"] == "error"
                assert error["code"] == "wire-version"
            finally:
                peer.close()


class OldServer:
    """A v1-only server stub: the wire behavior of the previous build.

    Answers hello/batch/ping exactly as a v1 build would — including
    refusing a v2 hello with a ``wire-version`` error frame — and
    records every request frame so tests can assert what clients sent.
    """

    def __init__(self, service):
        self.service = service
        self.requests = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def close(self):
        self._stop.set()
        self._listener.close()
        self._thread.join(timeout=10.0)

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            with conn:
                try:
                    self._handle(conn)
                except (ConnectionError, AssertionError):
                    pass

    def _recv(self, conn, decoder, pending):
        if pending:
            return pending.pop(0)
        while True:
            data = conn.recv(65536)
            if not data:
                return None
            frames = decoder.feed(data)
            if frames:
                pending.extend(frames[1:])
                return frames[0]

    def _handle(self, conn):
        decoder = protocol.FrameDecoder()
        pending = []
        hello = self._recv(conn, decoder, pending)
        if hello is None:
            return
        self.requests.append(hello)
        if hello.get("v") != 1:
            conn.sendall(
                protocol.encode_frame(
                    protocol.message(
                        "error",
                        version=1,
                        code="wire-version",
                        detail=f"this build speaks [1], got {hello.get('v')!r}",
                    )
                )
            )
            return
        conn.sendall(
            protocol.encode_frame(
                protocol.message("welcome", version=1, tenant="public", server="old")
            )
        )
        while True:
            request = self._recv(conn, decoder, pending)
            if request is None:
                return
            self.requests.append(request)
            assert request.get("v") == 1, f"old server got v={request.get('v')!r}"
            if request.get("op") == "ping":
                conn.sendall(protocol.encode_frame(protocol.message("pong", version=1)))
                continue
            assert request.get("op") == "batch"
            probes = protocol.probes_from_wire(request["probes"])
            estimates = self.service.estimate_batch(
                probes, on_error=request.get("on_error")
            )
            conn.sendall(
                protocol.encode_frame(
                    protocol.message(
                        "chunk",
                        version=1,
                        id=request.get("id"),
                        start=0,
                        count=int(estimates.size),
                        estimates=protocol.encode_estimates(estimates),
                        eof=True,
                    )
                )
            )


class TestNewClientOldServer:
    def test_downgrade_then_10k_mixed_batch_bit_identical(self, service):
        probes = mixed_probes(10_000)
        local = service.estimate_batch(probes, on_error="fallback")
        old = OldServer(service)
        try:
            with EstimationClient(*old.address) as client:
                assert client.wire_version == 1  # negotiated down
                via_old = client.estimate_batch(probes, on_error="fallback")
                assert client.ping() is True
        finally:
            old.close()
        assert via_old.tobytes() == local.tobytes()
        # Everything the new client sent after the downgrade was pure v1:
        # version tag 1 and the trace field *absent* (not null).
        post = [f for f in old.requests if f.get("v") == 1]
        assert post, "client never re-spoke at v1"
        assert all("trace_context" not in frame for frame in post)
        assert any(frame.get("op") == "batch" for frame in post)

    def test_trace_context_only_emitted_at_v2(self):
        from repro.obs.tracing import TraceContext

        context = TraceContext(trace_id="ab" * 8, span_id="cd" * 8)
        v1 = protocol.batch_request(
            [], request_id=1, trace_context=context, version=1
        )
        assert "trace_context" not in v1
        v2 = protocol.batch_request(
            [], request_id=1, trace_context=context,
            version=TRACE_CONTEXT_MIN_VERSION,
        )
        assert v2["trace_context"] == {"trace_id": "ab" * 8, "span_id": "cd" * 8}
        # Never null: omitting the context omits the field entirely.
        bare = protocol.batch_request([], request_id=1)
        assert "trace_context" not in bare
