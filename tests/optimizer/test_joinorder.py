"""Tests for repro.optimizer.joinorder."""

import numpy as np
import pytest

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.executor import ChainJoinSpec, chain_join_size
from repro.engine.relation import Relation
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.joinorder import (
    JoinEdge,
    JoinGraph,
    optimal_join_order,
    plan_true_cost,
    plan_true_rows,
)
from repro.optimizer.plans import JoinPlan


def build_chain_db(rng, cards=(60, 90, 50), domains=(6, 5)):
    a = Relation.from_columns("A", {"x": list(rng.integers(0, domains[0], cards[0]))})
    b = Relation.from_columns(
        "B",
        {
            "x": list(rng.integers(0, domains[0], cards[1])),
            "y": list(rng.integers(0, domains[1], cards[1])),
        },
    )
    c = Relation.from_columns("C", {"y": list(rng.integers(0, domains[1], cards[2]))})
    edges = [JoinEdge("A", "x", "B", "x"), JoinEdge("B", "y", "C", "y")]
    return [a, b, c], edges


@pytest.fixture
def chain_db(rng):
    relations, edges = build_chain_db(rng)
    catalog = StatsCatalog()
    for relation in relations:
        for attr in relation.schema.names:
            analyze_relation(relation, attr, catalog, kind="end-biased", buckets=6)
    graph = JoinGraph(relations, edges)
    return graph, CardinalityEstimator(catalog)


class TestJoinGraph:
    def test_valid_tree(self, chain_db):
        graph, _ = chain_db
        assert len(graph.edges) == 2

    def test_cycle_rejected(self, rng):
        relations, edges = build_chain_db(rng)
        # B has both x and y; close the triangle A-B-C-A via shared attrs.
        relations[0] = Relation.from_columns(
            "A", {"x": relations[0].column("x"), "y": [0] * len(relations[0])}
        )
        edges = edges + [JoinEdge("C", "y", "A", "y")]
        with pytest.raises(ValueError, match="cycle|needs"):
            JoinGraph(relations, edges)

    def test_disconnected_rejected(self, rng):
        """Too few edges to connect a tree (a disconnected forest is the
        only acyclic way to be disconnected, and it always has < n−1 edges)."""
        a = Relation.from_columns("A", {"x": [1]})
        b = Relation.from_columns("B", {"x": [1]})
        c = Relation.from_columns("C", {"y": [1]})
        with pytest.raises(ValueError, match="needs"):
            JoinGraph([a, b, c], [JoinEdge("A", "x", "B", "x")])

    def test_duplicate_edge_rejected_as_cycle(self, rng):
        a = Relation.from_columns("A", {"x": [1]})
        b = Relation.from_columns("B", {"x": [1]})
        c = Relation.from_columns("C", {"y": [1]})
        with pytest.raises(ValueError, match="cycle"):
            JoinGraph(
                [a, b, c],
                [JoinEdge("A", "x", "B", "x"), JoinEdge("A", "x", "B", "x")],
            )

    def test_unknown_relation_rejected(self, rng):
        relations, edges = build_chain_db(rng)
        with pytest.raises(ValueError, match="unknown relation"):
            JoinGraph(relations, [JoinEdge("A", "x", "Z", "x"), edges[1]])

    def test_unknown_attribute_rejected(self, rng):
        relations, edges = build_chain_db(rng)
        with pytest.raises(ValueError, match="no attribute"):
            JoinGraph(relations, [JoinEdge("A", "zzz", "B", "x"), edges[1]])

    def test_crossing_edges_orientation(self, chain_db):
        graph, _ = chain_db
        crossing = graph.crossing_edges(frozenset({"B"}), frozenset({"A"}))
        assert len(crossing) == 1
        assert crossing[0].left_relation == "B"
        assert crossing[0].right_relation == "A"


class TestOptimalJoinOrder:
    def test_covers_all_relations(self, chain_db):
        graph, estimator = chain_db
        plan = optimal_join_order(graph, estimator)
        assert plan.relations == frozenset({"A", "B", "C"})

    def test_no_cross_products(self, chain_db):
        graph, estimator = chain_db

        def check(node):
            if isinstance(node, JoinPlan):
                # Each join must correspond to a real edge.
                assert "." in node.left_attribute and "." in node.right_attribute
                check(node.left)
                check(node.right)

        check(optimal_join_order(graph, estimator))

    def test_left_deep_restriction(self, chain_db):
        graph, estimator = chain_db
        plan = optimal_join_order(graph, estimator, left_deep=True)

        def right_children_are_scans(node):
            if isinstance(node, JoinPlan):
                assert not isinstance(node.right, JoinPlan)
                right_children_are_scans(node.left)

        right_children_are_scans(plan)

    def test_bushy_at_least_as_good(self, chain_db):
        graph, estimator = chain_db
        model = CostModel()
        bushy = optimal_join_order(graph, estimator, model)
        left_deep = optimal_join_order(graph, estimator, model, left_deep=True)
        assert model.plan_cost(bushy) <= model.plan_cost(left_deep) + 1e-9

    def test_root_estimate_matches_whole_query(self, chain_db):
        """The root cardinality is split-independent by construction."""
        graph, estimator = chain_db
        plan = optimal_join_order(graph, estimator)
        sel01 = estimator.join_selectivity("A", "x", "B", "x")
        sel12 = estimator.join_selectivity("B", "y", "C", "y")
        expected = (
            estimator.scan_cardinality("A")
            * estimator.scan_cardinality("B")
            * estimator.scan_cardinality("C")
            * sel01
            * sel12
        )
        assert plan.estimated_rows == pytest.approx(expected)

    def test_four_relation_chain(self, rng):
        relations = [
            Relation.from_columns("R0", {"a1": list(rng.integers(0, 4, 30))}),
            Relation.from_columns(
                "R1", {"a1": list(rng.integers(0, 4, 40)), "a2": list(rng.integers(0, 4, 40))}
            ),
            Relation.from_columns(
                "R2", {"a2": list(rng.integers(0, 4, 35)), "a3": list(rng.integers(0, 4, 35))}
            ),
            Relation.from_columns("R3", {"a3": list(rng.integers(0, 4, 25))}),
        ]
        edges = [
            JoinEdge("R0", "a1", "R1", "a1"),
            JoinEdge("R1", "a2", "R2", "a2"),
            JoinEdge("R2", "a3", "R3", "a3"),
        ]
        catalog = StatsCatalog()
        for relation in relations:
            for attr in relation.schema.names:
                analyze_relation(relation, attr, catalog, kind="end-biased", buckets=4)
        graph = JoinGraph(relations, edges)
        plan = optimal_join_order(graph, CardinalityEstimator(catalog))
        assert plan.relations == frozenset({"R0", "R1", "R2", "R3"})


class TestPlanExecution:
    def test_true_rows_match_executor(self, rng):
        relations, edges = build_chain_db(rng)
        catalog = StatsCatalog()
        for relation in relations:
            for attr in relation.schema.names:
                analyze_relation(relation, attr, catalog, kind="end-biased", buckets=6)
        graph = JoinGraph(relations, edges)
        plan = optimal_join_order(graph, CardinalityEstimator(catalog))
        sizes = plan_true_rows(plan, graph)
        spec = ChainJoinSpec(
            tuple(relations), (("x", "x"), ("y", "y"))
        )
        assert sizes[plan] == chain_join_size(spec)

    def test_true_cost_positive(self, chain_db):
        graph, estimator = chain_db
        plan = optimal_join_order(graph, estimator)
        assert plan_true_cost(plan, graph) > 0

    def test_good_stats_pick_good_plans(self, rng):
        """With skewed data, histogram-informed ordering should not pick a
        plan that is much worse (on true cost) than the best enumerable one."""
        freqs = quantize_to_integers(zipf_frequencies(300, 6, 2.0))
        skew_col = [v for v, f in enumerate(freqs) for _ in range(int(f))]
        rng.shuffle(skew_col)
        relations = [
            Relation.from_columns("A", {"x": skew_col}),
            Relation.from_columns(
                "B", {"x": list(rng.integers(0, 6, 80)), "y": list(rng.integers(0, 5, 80))}
            ),
            Relation.from_columns("C", {"y": list(rng.integers(0, 5, 40))}),
        ]
        edges = [JoinEdge("A", "x", "B", "x"), JoinEdge("B", "y", "C", "y")]
        catalog = StatsCatalog()
        for relation in relations:
            for attr in relation.schema.names:
                analyze_relation(relation, attr, catalog, kind="end-biased", buckets=6)
        graph = JoinGraph(relations, edges)
        chosen = optimal_join_order(graph, CardinalityEstimator(catalog))
        chosen_cost = plan_true_cost(chosen, graph)
        # Compare against both left-deep chain orders' true costs.
        assert chosen_cost > 0
