"""Tests for repro.optimizer.cardinality."""

import numpy as np
import pytest

from repro.data.quantize import quantize_to_integers
from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.operators import hash_join
from repro.engine.relation import Relation
from repro.optimizer.cardinality import DEFAULT_EQ_SELECTIVITY, CardinalityEstimator


def zipf_column(total, domain, z, rng):
    freqs = quantize_to_integers(zipf_frequencies(total, domain, z))
    column = [v for v, f in enumerate(freqs) for _ in range(int(f))]
    rng.shuffle(column)
    return column


@pytest.fixture
def analyzed(rng):
    left = Relation.from_columns("L", {"k": zipf_column(800, 30, 1.2, rng)})
    right = Relation.from_columns("R", {"k": zipf_column(600, 30, 0.8, rng)})
    catalog = StatsCatalog()
    analyze_relation(left, "k", catalog, kind="end-biased", buckets=8)
    analyze_relation(right, "k", catalog, kind="end-biased", buckets=8)
    return left, right, catalog, CardinalityEstimator(catalog)


class TestScanAndSelection:
    def test_scan_cardinality(self, analyzed):
        left, _, _, estimator = analyzed
        assert estimator.scan_cardinality("L") == 800.0

    def test_scan_missing_relation(self, analyzed):
        *_, estimator = analyzed
        with pytest.raises(KeyError, match="ANALYZE"):
            estimator.scan_cardinality("nope")

    def test_equality_selection_explicit_value_exact(self, analyzed):
        left, _, _, estimator = analyzed
        dist = left.frequency_distribution("k")
        top = max(dist.values, key=dist.frequency_of)
        assert estimator.equality_selection("L", "k", top) == pytest.approx(
            dist.frequency_of(top)
        )

    def test_equality_selection_without_stats_uses_default(self, analyzed):
        left, _, catalog, estimator = analyzed
        estimate = estimator.equality_selection("L", "other_attr", 5)
        assert estimate == pytest.approx(800 * DEFAULT_EQ_SELECTIVITY)

    def test_range_selection_with_histogram(self, analyzed):
        left, _, _, estimator = analyzed
        full = estimator.range_selection("L", "k", low=None, high=None)
        assert full == pytest.approx(800.0)

    def test_range_selection_partial(self, analyzed):
        left, _, _, estimator = analyzed
        low_half = estimator.range_selection("L", "k", low=0, high=14)
        high_half = estimator.range_selection("L", "k", low=15, high=29)
        assert low_half + high_half == pytest.approx(800.0)


class TestJoinEstimates:
    def test_join_estimate_close_to_truth(self, analyzed):
        left, right, _, estimator = analyzed
        truth = hash_join(left, right, "k", "k").cardinality
        estimate = estimator.join_cardinality("L", "k", "R", "k")
        assert estimate == pytest.approx(truth, rel=0.35)

    def test_histograms_beat_uniform_assumption(self, analyzed):
        """The motivating claim: better stats, better estimates."""
        left, right, catalog, estimator = analyzed
        truth = hash_join(left, right, "k", "k").cardinality
        with_hist = estimator.join_cardinality("L", "k", "R", "k")
        left_entry = catalog.require("L", "k")
        right_entry = catalog.require("R", "k")
        uniform = (
            left_entry.total_tuples
            * right_entry.total_tuples
            / max(left_entry.distinct_count, right_entry.distinct_count, 1)
        )
        assert abs(with_hist - truth) < abs(uniform - truth)

    def test_more_buckets_tighter_estimate(self, rng):
        left = Relation.from_columns("L", {"k": zipf_column(800, 30, 1.5, rng)})
        right = Relation.from_columns("R", {"k": zipf_column(600, 30, 1.5, rng)})
        truth = hash_join(left, right, "k", "k").cardinality
        errors = []
        for buckets in (1, 4, 16):
            catalog = StatsCatalog()
            analyze_relation(left, "k", catalog, kind="end-biased", buckets=buckets)
            analyze_relation(right, "k", catalog, kind="end-biased", buckets=buckets)
            estimate = CardinalityEstimator(catalog).join_cardinality("L", "k", "R", "k")
            errors.append(abs(estimate - truth))
        assert errors[2] <= errors[0]

    def test_perfect_histograms_exact_join(self, rng):
        left = Relation.from_columns("L", {"k": zipf_column(100, 8, 1.0, rng)})
        right = Relation.from_columns("R", {"k": zipf_column(90, 8, 0.5, rng)})
        catalog = StatsCatalog()
        analyze_relation(left, "k", catalog, kind="end-biased", buckets=8)
        analyze_relation(right, "k", catalog, kind="end-biased", buckets=8)
        estimator = CardinalityEstimator(catalog)
        truth = hash_join(left, right, "k", "k").cardinality
        assert estimator.join_cardinality("L", "k", "R", "k") == pytest.approx(truth)

    def test_missing_stats_default(self, analyzed):
        left, right, _, estimator = analyzed
        estimate = estimator.join_cardinality("L", "nostat", "R", "nostat")
        assert estimate == pytest.approx(800 * 600 * DEFAULT_EQ_SELECTIVITY)

    def test_selectivity_normalisation(self, analyzed):
        left, right, _, estimator = analyzed
        sel = estimator.join_selectivity("L", "k", "R", "k")
        estimate = estimator.join_cardinality("L", "k", "R", "k")
        assert sel == pytest.approx(estimate / (800 * 600))

    def test_join_symmetric(self, analyzed):
        *_, estimator = analyzed
        ab = estimator.join_cardinality("L", "k", "R", "k")
        ba = estimator.join_cardinality("R", "k", "L", "k")
        assert ab == pytest.approx(ba)
