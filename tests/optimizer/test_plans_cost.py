"""Tests for repro.optimizer.plans and repro.optimizer.cost."""

import pytest

from repro.optimizer.cost import CostModel
from repro.optimizer.plans import JoinPlan, ScanPlan


@pytest.fixture
def small_plan():
    left = ScanPlan("A", 100.0)
    right = ScanPlan("B", 50.0)
    return JoinPlan(left, right, "A.k", "B.k", estimated_rows=300.0)


class TestPlans:
    def test_scan_properties(self):
        scan = ScanPlan("A", 42.0)
        assert scan.relations == frozenset({"A"})
        assert scan.estimated_cost == 42.0

    def test_join_relations(self, small_plan):
        assert small_plan.relations == frozenset({"A", "B"})

    def test_join_cost_accumulates(self, small_plan):
        assert small_plan.local_cost == 100 + 50 + 300
        assert small_plan.estimated_cost == 100 + 50 + (100 + 50 + 300)

    def test_nested_join(self, small_plan):
        top = JoinPlan(small_plan, ScanPlan("C", 10.0), "B.y", "C.y", 600.0)
        assert top.relations == frozenset({"A", "B", "C"})
        assert top.estimated_cost == small_plan.estimated_cost + 10 + (300 + 10 + 600)

    def test_pretty_output(self, small_plan):
        text = small_plan.pretty()
        assert "HashJoin(A.k = B.k)" in text
        assert "Scan(A)" in text and "Scan(B)" in text


class TestCostModel:
    def test_default_matches_plan_cost(self, small_plan):
        model = CostModel()
        # build = min side, probe = max side, plus children scans.
        expected = 100 + 50 + (50 + 100 + 300)
        assert model.plan_cost(small_plan) == expected

    def test_weights(self, small_plan):
        model = CostModel(scan_weight=0.0, build_weight=2.0, probe_weight=1.0, output_weight=0.5)
        expected = 2.0 * 50 + 1.0 * 100 + 0.5 * 300
        assert model.plan_cost(small_plan) == expected

    def test_row_source_substitution(self, small_plan):
        """Evaluating the same plan with true sizes changes the cost."""
        model = CostModel()
        true_rows = {small_plan: 1000.0, small_plan.left: 100.0, small_plan.right: 50.0}
        cost = model.plan_cost(small_plan, row_source=lambda node: true_rows[node])
        assert cost == 100 + 50 + (50 + 100 + 1000)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CostModel(scan_weight=-1.0)
