"""Tests for repro.optimizer.enumeration and repro.optimizer.truth."""

import numpy as np
import pytest

from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.enumeration import enumerate_plans
from repro.optimizer.joinorder import (
    JoinEdge,
    JoinGraph,
    optimal_join_order,
    plan_true_rows,
)
from repro.optimizer.plans import JoinPlan
from repro.optimizer.truth import CountedTruth, plan_true_rows_counted


def build_graph(rng, num_relations=3, domain=5, rows=60):
    relations = []
    for position in range(num_relations):
        columns = {}
        if position > 0:
            columns[f"a{position - 1}"] = list(rng.integers(0, domain, rows))
        if position < num_relations - 1:
            columns[f"a{position}"] = list(rng.integers(0, domain, rows))
        relations.append(Relation.from_columns(f"R{position}", columns))
    edges = [
        JoinEdge(f"R{j}", f"a{j}", f"R{j + 1}", f"a{j}")
        for j in range(num_relations - 1)
    ]
    return JoinGraph(relations, edges)


def analyzed_estimator(graph, kind="end-biased", buckets=5):
    catalog = StatsCatalog()
    for relation in graph.relations.values():
        for attr in relation.schema.names:
            analyze_relation(relation, attr, catalog, kind=kind, buckets=buckets)
    return CardinalityEstimator(catalog)


class TestEnumeratePlans:
    def test_three_relation_chain_has_two_shapes(self, rng):
        graph = build_graph(rng, 3)
        plans = enumerate_plans(graph, analyzed_estimator(graph))
        assert len(plans) == 2  # (R0⋈R1)⋈R2 and R0⋈(R1⋈R2)

    def test_four_relation_chain_has_five_shapes(self, rng):
        graph = build_graph(rng, 4)
        plans = enumerate_plans(graph, analyzed_estimator(graph))
        assert len(plans) == 5  # Catalan(3) binary shapes over a chain

    def test_all_plans_cover_all_relations(self, rng):
        graph = build_graph(rng, 4)
        for plan in enumerate_plans(graph, analyzed_estimator(graph)):
            assert plan.relations == frozenset(graph.relations)

    def test_dp_winner_is_enumeration_minimum(self, rng):
        graph = build_graph(rng, 4)
        estimator = analyzed_estimator(graph)
        model = CostModel()
        dp_plan = optimal_join_order(graph, estimator, model)
        plans = enumerate_plans(graph, estimator)
        best = min(model.plan_cost(p) for p in plans)
        assert model.plan_cost(dp_plan) == pytest.approx(best)

    def test_relation_cap(self, rng):
        graph = build_graph(rng, 3)
        import repro.optimizer.enumeration as enumeration

        original = enumeration.MAX_RELATIONS_FOR_ENUMERATION
        enumeration.MAX_RELATIONS_FOR_ENUMERATION = 2
        try:
            with pytest.raises(ValueError, match="at most"):
                enumerate_plans(graph, analyzed_estimator(graph))
        finally:
            enumeration.MAX_RELATIONS_FOR_ENUMERATION = original


class TestCountedTruth:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_materialised_truth(self, seed):
        gen = np.random.default_rng(seed)
        graph = build_graph(gen, 3)
        estimator = analyzed_estimator(graph)
        for plan in enumerate_plans(graph, estimator):
            counted = plan_true_rows_counted(plan, graph)
            materialised = plan_true_rows(plan, graph)
            for node in materialised:
                assert counted[node] == pytest.approx(materialised[node])

    def test_four_relations(self, rng):
        graph = build_graph(rng, 4, rows=30)
        estimator = analyzed_estimator(graph)
        plan = optimal_join_order(graph, estimator)
        counted = plan_true_rows_counted(plan, graph)
        materialised = plan_true_rows(plan, graph)
        assert counted[plan] == pytest.approx(materialised[plan])

    def test_subset_cache(self, rng):
        graph = build_graph(rng, 3)
        truth = CountedTruth(graph)
        subset = frozenset({"R0", "R1"})
        first = truth.subset_cardinality(subset)
        second = truth.subset_cardinality(subset)
        assert first == second

    def test_single_relation_subset(self, rng):
        graph = build_graph(rng, 3, rows=40)
        truth = CountedTruth(graph)
        assert truth.subset_cardinality(frozenset({"R0"})) == 40.0

    def test_empty_subset_rejected(self, rng):
        graph = build_graph(rng, 3)
        with pytest.raises(ValueError, match="non-empty"):
            CountedTruth(graph).subset_cardinality(frozenset())


class TestPlanRankingStudy:
    def test_runs_and_reports(self):
        from repro.experiments.planrank import PLAN_RANK_KINDS, plan_ranking_study

        results = plan_ranking_study(databases=3, rng=0)
        assert [r.kind for r in results] == list(PLAN_RANK_KINDS)
        for result in results:
            assert 0.0 <= result.hit_rate <= 1.0
            assert result.mean_regret >= 1.0 - 1e-9
            assert result.plans_per_database == 5.0

    def test_informed_rankings_at_least_as_good(self):
        from repro.experiments.planrank import plan_ranking_study

        results = {r.kind: r for r in plan_ranking_study(databases=8, rng=3)}
        assert (
            results["end-biased"].mean_rank_correlation
            >= results["trivial"].mean_rank_correlation - 1e-9
        )

    def test_correlated_mode(self):
        from repro.experiments.planrank import plan_ranking_study

        results = plan_ranking_study(databases=3, rng=1, correlated=True)
        assert all(r.mean_regret >= 1.0 - 1e-9 for r in results)

    def test_deterministic(self):
        from repro.experiments.planrank import plan_ranking_study

        a = plan_ranking_study(databases=3, rng=5)
        b = plan_ranking_study(databases=3, rng=5)
        assert [(r.hit_rate, r.mean_regret) for r in a] == [
            (r.hit_rate, r.mean_regret) for r in b
        ]
