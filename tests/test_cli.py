"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main


class TestZipfCommand:
    def test_prints_ranked_frequencies(self, capsys):
        assert main(["zipf", "--total", "100", "--domain", "4", "--z", "1.0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        rank, freq = lines[0].split("\t")
        assert rank == "1"
        assert float(freq) == pytest.approx(48.0)

    def test_quantize_sums_to_total(self, capsys):
        main(["zipf", "--total", "100", "--domain", "7", "--z", "1.5", "--quantize"])
        lines = capsys.readouterr().out.strip().splitlines()
        total = sum(int(line.split("\t")[1]) for line in lines)
        assert total == 100


class TestHistogramCommand:
    def test_end_biased(self, capsys):
        assert main(["histogram", "--domain", "10", "--buckets", "3"]) == 0
        out = capsys.readouterr().out
        assert "kind=end-biased buckets=3" in out
        assert "self-join exact=" in out

    def test_serial(self, capsys):
        assert main(["histogram", "--domain", "12", "--buckets", "4", "--kind", "serial"]) == 0
        assert "kind=serial" in capsys.readouterr().out

    def test_trivial(self, capsys):
        assert main(["histogram", "--domain", "12", "--kind", "trivial"]) == 0
        assert "buckets=1" in capsys.readouterr().out


class TestAdviseCommand:
    def test_reports_minimum(self, capsys):
        code = main(
            ["advise", "--total", "1000", "--domain", "30", "--z", "1.0",
             "--tolerance", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "minimum end-biased buckets" in out
        assert "beta=" in out


class TestSelfJoinCommand:
    def test_all_types_reported(self, capsys):
        code = main(
            ["selfjoin", "--domain", "30", "--buckets", "4", "--trials", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("trivial", "equi-width", "equi-depth", "end-biased", "serial"):
            assert name in out


class TestChainCommand:
    def test_reports_errors(self, capsys):
        code = main(
            ["chain", "--joins", "2", "--buckets", "3", "--permutations", "4",
             "--skew-class", "high"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chain query: 2 joins" in out
        assert "E[|S-S'|/S]" in out


class TestTable1Command:
    def test_prints_table(self, capsys):
        code = main(
            ["table1", "--serial-sizes", "8", "10", "--end-biased-sizes", "100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "attribute values" in out
        assert "end-biased b=10" in out


class TestArrangementsCommand:
    def test_prints_study(self, capsys):
        code = main(
            ["arrangements", "--domain", "5", "--max-arrangements", "30"]
        )
        assert code == 0
        assert "end-biased" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestDescribeCommand:
    def test_profiles_distribution(self, capsys):
        assert main(["describe", "--total", "1000", "--domain", "50", "--z", "1.5"]) == 0
        out = capsys.readouterr().out
        assert "M=50" in out and "gini=" in out
        # The effective-z fit recovers the generating parameter.
        assert "z≈1.50" in out


class TestTuneCommand:
    def test_recommends_and_applies(self, capsys):
        code = main(
            ["tune", "--domain", "20", "--z-values", "0.05", "2.0",
             "--tolerance", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "R0.a" in out and "R1.a" in out
        assert "catalog now holds 2 analyzed attributes" in out


class TestStatsCommands:
    @staticmethod
    def _write_catalog(tmp_path):
        import json

        from repro.engine.analyze import analyze_relation
        from repro.engine.catalog import StatsCatalog
        from repro.engine.persist import save_catalog
        from repro.engine.relation import Relation

        catalog = StatsCatalog()
        r = Relation.from_columns("R", {"a": [1] * 6 + [2] * 3 + [3]})
        s = Relation.from_columns("S", {"b": [1] * 4 + [2] * 2})
        analyze_relation(r, "a", catalog, kind="end-biased", buckets=2)
        analyze_relation(s, "b", catalog, kind="end-biased", buckets=2)
        path = tmp_path / "catalog.json"
        save_catalog(catalog, path)
        return path, json

    def test_check_clean_exits_zero(self, capsys, tmp_path):
        path, _ = self._write_catalog(tmp_path)
        assert main(["stats", "check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "status: clean" in out

    def test_check_corrupt_exits_one(self, capsys, tmp_path):
        path, json = self._write_catalog(tmp_path)
        blob = json.loads(path.read_text())
        blob["entries"][0]["payload"]["total_tuples"] = -1.0
        path.write_text(json.dumps(blob))
        assert main(["stats", "check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "quarantined" in out

    def test_check_reports_journal_replay(self, capsys, tmp_path):
        from repro.engine.journal import MaintenanceJournal

        path, _ = self._write_catalog(tmp_path)
        wal = tmp_path / "wal.jsonl"
        MaintenanceJournal(wal).append_insert("R", "a", 1)
        assert main(["stats", "check", str(path), "--journal", str(wal)]) == 0
        assert "replayed" in capsys.readouterr().out

    def test_repair_writes_clean_snapshot(self, capsys, tmp_path):
        path, json = self._write_catalog(tmp_path)
        blob = json.loads(path.read_text())
        blob["entries"][0]["payload"]["total_tuples"] = -1.0
        path.write_text(json.dumps(blob))
        fixed = tmp_path / "fixed.json"
        # Corruption was found (and repaired): the distinct exit code 3
        # lets scripts tell "had to repair" apart from "was clean" and
        # from an I/O failure (4); see docs/PERSISTENCE.md.
        assert main(["stats", "repair", str(path), "--output", str(fixed)]) == 3
        out = capsys.readouterr().out
        assert "repaired snapshot written" in out
        assert "re-run ANALYZE" in out
        capsys.readouterr()
        assert main(["stats", "check", str(fixed)]) == 0

    def test_repair_in_place(self, capsys, tmp_path):
        path, json = self._write_catalog(tmp_path)
        blob = json.loads(path.read_text())
        blob["entries"][0]["payload"]["total_tuples"] = -1.0
        path.write_text(json.dumps(blob))
        assert main(["stats", "repair", str(path)]) == 3
        capsys.readouterr()
        assert main(["stats", "check", str(path)]) == 0
        capsys.readouterr()
        # A second repair over the now-clean snapshot finds nothing: exit 0.
        assert main(["stats", "repair", str(path)]) == 0

    def test_stats_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["stats"])


class TestObsCommands:
    @pytest.fixture(autouse=True)
    def fresh_registry(self):
        from repro.obs import runtime

        runtime.reset()
        yield
        runtime.reset()

    def test_dump_prom_exposes_live_workload(self, capsys):
        assert main(["obs", "dump", "--format", "prom", "--probes", "50"]) == 0
        out = capsys.readouterr().out
        # Spans, serve-layer counters, accuracy samples, and recovery
        # metrics all come from one real serve+maintain+recover workload.
        assert "repro_span_total" in out
        assert 'repro_span_duration_seconds_bucket{span="serve.batch",le="+Inf"}' in out
        assert 'repro_serve_probes_total{service="obs-workload"}' in out
        assert "repro_accuracy_observations_total" in out
        assert "repro_maint_deltas_total" in out
        assert 'repro_persist_loads_total{mode="recover"}' in out
        assert "# TYPE repro_span_duration_seconds histogram" in out

    def test_dump_json_parses_and_carries_events(self, capsys):
        import json

        assert main(["obs", "dump", "--format", "json", "--probes", "50"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = {metric["name"] for metric in data["metrics"]}
        assert "repro_span_duration_seconds" in names
        assert "repro_journal_appends_total" in names
        event_names = {event["name"] for event in data["events"]}
        assert "journal.checkpoint" in event_names
        assert "persist.recover" in event_names

    def test_dump_without_workload_is_quietly_empty(self, capsys):
        assert main(["obs", "dump", "--no-workload"]) == 0
        out = capsys.readouterr().out
        assert "repro_serve_probes_total" not in out

    def test_serve_stats_obs_appends_registry(self, capsys):
        code = main(
            ["serve-stats", "--total", "500", "--domain", "20",
             "--z-values", "1.0", "--probes", "20", "--obs"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_serve_probes_total" in out
        assert "repro_span_duration_seconds" in out

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["obs"])


class TestWireArtifacts:
    SMALL = ["serve-stats", "--total", "500", "--domain", "20",
             "--z-values", "1.0", "--probes", "25"]

    def test_emit_and_replay_round_trip(self, capsys, tmp_path):
        """--emit-wire then --probes-from answers the identical batch."""
        artifact = tmp_path / "batch.json"
        assert main(self.SMALL + ["--emit-wire", str(artifact)]) == 0
        first = capsys.readouterr().out
        assert f"wrote wire batch artifact to {artifact}" in first
        assert main(self.SMALL + ["--probes-from", str(artifact)]) == 0
        second = capsys.readouterr().out
        assert f"replaying 25 probes from {artifact}" in second

        def mass(out):
            line = next(l for l in out.splitlines() if "estimate mass" in l)
            return line.rsplit("estimate mass", 1)[1].strip()

        assert mass(first) == mass(second)

    def test_emit_wire_to_stdout(self, capsys):
        import json

        assert main(self.SMALL + ["--emit-wire", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["op"] == "batch"
        assert len(payload["probes"]) == 25

    def test_replay_raw_probe_array(self, capsys, tmp_path):
        import json

        from repro.net import probes_to_wire
        from repro.serve import EqualityProbe

        artifact = tmp_path / "raw.json"
        artifact.write_text(json.dumps(probes_to_wire([EqualityProbe("R0", "a", 1)])))
        assert main(self.SMALL + ["--probes-from", str(artifact)]) == 0
        assert "answered 1 probes" in capsys.readouterr().out


class TestServeCommand:
    def test_serves_and_answers_over_loopback(self, capsys):
        import threading

        from repro.net import EstimationClient
        from repro.serve import EqualityProbe

        answered = {}

        def drive(host, port):
            with EstimationClient(host, port) as client:
                answered["out"] = client.estimate_batch(
                    [EqualityProbe("R0", "a", 1)]
                )

        # The server prints its bound address before sleeping for
        # --duration; run it on a thread and probe it from here.
        def run_server():
            main(["serve", "--total", "500", "--domain", "20",
                  "--z-values", "1.0", "--duration", "3", "--port", "0"])

        server_thread = threading.Thread(target=run_server, daemon=True)
        # capsys can't observe the other thread reliably; read the bound
        # port from the redirected stdout of main itself.
        server_thread.start()
        import re
        import time

        address = None
        for _ in range(100):
            out = capsys.readouterr().out
            match = re.search(r"serving \d+ analyzed columns on ([\d.]+):(\d+)", out)
            if match:
                address = (match.group(1), int(match.group(2)))
                break
            time.sleep(0.05)
        assert address is not None, "server never printed its address"
        drive(*address)
        assert answered["out"].shape == (1,)
        server_thread.join(timeout=10)

    def test_bad_tenant_spec_is_an_argument_error(self, capsys):
        code = main(["serve", "--tenant", "no-token-here", "--duration", "0.1"])
        assert code == 2
        assert "NAME=TOKEN" in capsys.readouterr().err
