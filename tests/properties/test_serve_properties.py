"""Property-based tests: batched service answers == scalar answers, bitwise.

The serving layer's core guarantee is that ``estimate_batch`` is not an
approximation of the scalar paths — both answer from the same compiled
tables, so every float must be *identical*, across histogram kinds
(serial, end-biased) and compact catalog layouts, and across equality,
range, and join probes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.analyze import analyze_relation
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.relation import Relation
from repro.serve import (
    EqualityProbe,
    EstimationService,
    JoinProbe,
    RangeProbe,
)

KINDS = ("serial", "end-biased")


@st.composite
def analyzed_catalog(draw):
    """Two analyzed single-column relations plus the catalog over them."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    domain = draw(st.integers(min_value=1, max_value=12))
    rows_r = draw(st.integers(min_value=1, max_value=80))
    rows_s = draw(st.integers(min_value=1, max_value=80))
    kind_r = draw(st.sampled_from(KINDS))
    kind_s = draw(st.sampled_from(KINDS))
    buckets = draw(st.integers(min_value=1, max_value=6))
    gen = np.random.default_rng(seed)
    catalog = StatsCatalog()
    r = Relation.from_columns(
        "R", {"a": [int(x) for x in gen.integers(0, domain, rows_r)]}
    )
    s = Relation.from_columns(
        "S", {"a": [int(x) for x in gen.integers(0, domain, rows_s)]}
    )
    analyze_relation(r, "a", catalog, kind=kind_r, buckets=buckets)
    analyze_relation(s, "a", catalog, kind=kind_s, buckets=buckets)
    return catalog, domain


@st.composite
def compact_catalog(draw):
    """A catalog whose entries carry only compact end-biased statistics."""
    explicit_size = draw(st.integers(min_value=0, max_value=5))
    explicit = {
        value: float(draw(st.integers(min_value=1, max_value=50)))
        for value in range(explicit_size)
    }
    remainder_count = draw(st.integers(min_value=0, max_value=10))
    remainder_average = float(draw(st.integers(min_value=0, max_value=9)))
    compact = CompactEndBiased(
        explicit=explicit,
        remainder_count=remainder_count,
        remainder_average=remainder_average,
    )
    total = sum(explicit.values()) + remainder_count * remainder_average
    catalog = StatsCatalog()
    catalog.put(
        CatalogEntry(
            relation="R",
            attribute="a",
            kind="sampled",
            histogram=None,
            compact=compact,
            distinct_count=explicit_size + remainder_count,
            total_tuples=float(total),
        )
    )
    return catalog


class TestBatchScalarEquivalence:
    @given(analyzed_catalog(), st.lists(st.integers(-2, 13), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_equality_probes_bit_identical(self, case, values):
        catalog, _ = case
        service = EstimationService(catalog)
        probes = [EqualityProbe("R", "a", v) for v in values]
        batch = service.estimate_batch(probes)
        scalar = np.asarray(
            [service.estimate_equality("R", "a", v) for v in values]
        )
        assert np.array_equal(batch, scalar)

    @given(
        analyzed_catalog(),
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-2, 13)),
                st.one_of(st.none(), st.integers(-2, 13)),
                st.booleans(),
                st.booleans(),
            ),
            max_size=15,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_probes_bit_identical(self, case, bounds):
        catalog, _ = case
        service = EstimationService(catalog)
        probes = [
            RangeProbe("R", "a", low, high, include_low=il, include_high=ih)
            for low, high, il, ih in bounds
        ]
        batch = service.estimate_batch(probes)
        scalar = np.asarray(
            [
                service.estimate_range(
                    "R", "a", low, high, include_low=il, include_high=ih
                )
                for low, high, il, ih in bounds
            ]
        )
        assert np.array_equal(batch, scalar)

    @given(analyzed_catalog())
    @settings(max_examples=40, deadline=None)
    def test_join_probes_bit_identical(self, case):
        catalog, _ = case
        service = EstimationService(catalog)
        probes = [
            JoinProbe("R", "a", "S", "a"),
            JoinProbe("S", "a", "R", "a"),
            JoinProbe("R", "a", "R", "a"),
        ]
        batch = service.estimate_batch(probes)
        scalar = np.asarray(
            [
                service.estimate_join("R", "a", "S", "a"),
                service.estimate_join("S", "a", "R", "a"),
                service.estimate_join("R", "a", "R", "a"),
            ]
        )
        assert np.array_equal(batch, scalar)

    @given(analyzed_catalog(), st.lists(st.integers(-2, 13), max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_mixed_batch_bit_identical(self, case, values):
        catalog, _ = case
        service = EstimationService(catalog)
        probes = []
        expected = []
        for index, value in enumerate(values):
            if index % 3 == 0:
                probes.append(EqualityProbe("S", "a", value))
                expected.append(service.estimate_equality("S", "a", value))
            elif index % 3 == 1:
                probes.append(RangeProbe("R", "a", value, value + 3))
                expected.append(service.estimate_range("R", "a", value, value + 3))
            else:
                probes.append(JoinProbe("R", "a", "S", "a"))
                expected.append(service.estimate_join("R", "a", "S", "a"))
        batch = service.estimate_batch(probes)
        assert np.array_equal(batch, np.asarray(expected))

    @given(compact_catalog(), st.lists(st.integers(-2, 20), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_compact_entries_bit_identical(self, catalog, values):
        service = EstimationService(catalog)
        probes = [EqualityProbe("R", "a", v) for v in values]
        batch = service.estimate_batch(probes)
        scalar = np.asarray(
            [service.estimate_equality("R", "a", v) for v in values]
        )
        assert np.array_equal(batch, scalar)


class TestCacheStability:
    @given(analyzed_catalog(), st.lists(st.integers(-2, 13), max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_repeated_batches_answer_identically_without_recompiles(
        self, case, values
    ):
        catalog, _ = case
        service = EstimationService(catalog)
        probes = [EqualityProbe("R", "a", v) for v in values] + [
            RangeProbe("R", "a", 1, 5)
        ]
        first = service.estimate_batch(probes)
        misses = service.stats().table_misses
        for _ in range(3):
            again = service.estimate_batch(probes)
            assert np.array_equal(first, again)
        assert service.stats().table_misses == misses

    @given(analyzed_catalog())
    @settings(max_examples=25, deadline=None)
    def test_reanalyze_bumps_version_and_recompiles(self, case):
        catalog, domain = case
        service = EstimationService(catalog)
        service.estimate_equality("R", "a", 0)
        misses = service.stats().table_misses
        version = catalog.version
        fresh = Relation.from_columns("R", {"a": [0] * 7})
        analyze_relation(fresh, "a", catalog, kind="end-biased", buckets=1)
        assert catalog.version > version
        assert service.estimate_equality("R", "a", 0) == pytest.approx(7.0)
        assert service.stats().table_misses == misses + 1
