"""Property-based tests for catalog persistence.

The load/save pair must be an identity: for any catalog the engine can
produce, ``load_catalog(save_catalog(c)) == c`` — including histogram
entries, compact end-biased entries, per-entry version counters and
journal fences.  Identity is checked on the canonical serialised form,
which covers every persisted field at once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frequency import AttributeDistribution
from repro.core.heuristic import equi_depth_histogram, equi_width_histogram
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.persist import (
    catalog_from_dict,
    catalog_to_dict,
    load_catalog,
    save_catalog,
)

frequencies = st.lists(
    st.floats(min_value=0.25, max_value=500.0, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=8,
)

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=6
)

scalar_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(alphabet="abcdefxyz0123456789", min_size=1, max_size=6),
)


@st.composite
def histogram_entries(draw, relation, attribute):
    freqs = draw(frequencies)
    beta = draw(st.integers(min_value=1, max_value=len(freqs)))
    build = draw(st.sampled_from([equi_width_histogram, equi_depth_histogram]))
    histogram = build(AttributeDistribution(list(range(len(freqs))), freqs), beta)
    return CatalogEntry(
        relation=relation,
        attribute=attribute,
        kind=histogram.kind,
        histogram=histogram,
        compact=None,
        distinct_count=len(freqs),
        total_tuples=float(sum(freqs)),
    )


@st.composite
def compact_entries(draw, relation, attribute):
    explicit_values = draw(
        st.lists(scalar_values, min_size=0, max_size=6, unique=True)
    )
    explicit = {
        value: draw(st.floats(min_value=0.5, max_value=100.0))
        for value in explicit_values
    }
    remainder_count = draw(st.integers(min_value=0, max_value=20))
    remainder_average = (
        draw(st.floats(min_value=0.25, max_value=10.0)) if remainder_count else 0.0
    )
    compact = CompactEndBiased(
        explicit=explicit,
        remainder_count=remainder_count,
        remainder_average=remainder_average,
    )
    return CatalogEntry(
        relation=relation,
        attribute=attribute,
        kind="end-biased",
        histogram=None,
        compact=compact,
        distinct_count=compact.distinct_count,
        total_tuples=compact.total,
    )


@st.composite
def catalogs(draw):
    keys = draw(
        st.lists(st.tuples(names, names), min_size=0, max_size=5, unique=True)
    )
    catalog = StatsCatalog()
    for relation, attribute in keys:
        maker = draw(st.sampled_from([histogram_entries, compact_entries]))
        entry = draw(maker(relation, attribute))
        catalog.put(entry)
        # Persisted counters are arbitrary in a long-lived store.
        entry.version = draw(st.integers(min_value=1, max_value=50))
        entry.journal_seq = draw(st.integers(min_value=0, max_value=200))
    return catalog


class TestRoundTripIdentity:
    @given(catalog=catalogs())
    @settings(max_examples=60, deadline=None)
    def test_save_then_load_is_identity(self, catalog, tmp_path_factory):
        path = tmp_path_factory.mktemp("persist") / "catalog.json"
        save_catalog(catalog, path)
        restored = load_catalog(path)
        assert catalog_to_dict(restored) == catalog_to_dict(catalog)

    @given(catalog=catalogs())
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip_is_identity(self, catalog):
        first = catalog_to_dict(catalog)
        assert catalog_to_dict(catalog_from_dict(first)) == first

    @given(catalog=catalogs())
    @settings(max_examples=40, deadline=None)
    def test_recovery_load_of_clean_file_is_identity(
        self, catalog, tmp_path_factory
    ):
        path = tmp_path_factory.mktemp("persist") / "catalog.json"
        save_catalog(catalog, path)
        report = load_catalog(path, recover=True)
        assert report.clean
        assert report.entries_loaded == len(list(catalog.entries()))
        assert catalog_to_dict(report.catalog) == catalog_to_dict(catalog)

    @given(catalog=catalogs())
    @settings(max_examples=40, deadline=None)
    def test_save_is_deterministic(self, catalog, tmp_path_factory):
        base = tmp_path_factory.mktemp("persist")
        save_catalog(catalog, base / "one.json")
        save_catalog(catalog, base / "two.json")
        assert (base / "one.json").read_text() == (base / "two.json").read_text()
