"""Property suite: batch == scalar bit-identity over adversarial domains.

The serving layer's core contract is that the vectorized float64 fast
path and the exact per-value path return the **same floats** — for any
domain the catalog can hold and any probe a caller can send.  The three
fixed fast-path bugs (float64 key collapse, membership's unhashable
``TypeError``, NaN scalar/batch divergence) were all violations of this
contract, so these properties drive it with exactly the adversarial
inputs that found them: integers at/beyond 2**53, NaN, ±0.0, booleans,
and mixed/unorderable domains.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.zipf import zipf_frequencies
from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.serve import (
    EqualityProbe,
    EstimationService,
    JoinProbe,
    ProbeFrame,
    RangeProbe,
)
from repro.serve.tables import CompiledCompact, CompiledHistogram

# ---------------------------------------------------------------------------
# Adversarial value strategies
# ---------------------------------------------------------------------------

BIG = 2**53

large_ints = st.one_of(
    st.integers(min_value=BIG - 2, max_value=BIG + 4),
    st.integers(min_value=-BIG - 4, max_value=-BIG + 2),
    st.integers(min_value=2**62, max_value=2**62 + 4),
)

adversarial_numbers = st.one_of(
    st.integers(min_value=-10, max_value=10),
    large_ints,
    st.booleans(),
    st.sampled_from([0.0, -0.0, 0.5, float("nan"), float("inf"), float("-inf")]),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
)

#: Domain values must be hashable; probes may additionally be unhashable.
domain_values = st.one_of(
    adversarial_numbers,
    st.text(alphabet="abcxyz", min_size=1, max_size=3),
)

probe_values = st.one_of(
    domain_values,
    st.just([1, 2]),  # unhashable: 0-mass by contract
)

frequencies = st.floats(min_value=0.25, max_value=100.0, allow_nan=False)


@st.composite
def compiled_histograms(draw):
    values = draw(st.lists(domain_values, min_size=1, max_size=12))
    freqs = draw(
        st.lists(frequencies, min_size=len(values), max_size=len(values))
    )
    return CompiledHistogram(values, freqs)


@st.composite
def compiled_compacts(draw):
    values = draw(st.lists(domain_values, min_size=1, max_size=10))
    freqs = draw(
        st.lists(frequencies, min_size=len(values), max_size=len(values))
    )
    remainder_count = draw(st.integers(min_value=0, max_value=5))
    remainder_average = draw(frequencies)
    return CompiledCompact(
        dict(zip(values, freqs)), remainder_count, remainder_average
    )


# ---------------------------------------------------------------------------
# Table-level bit-identity
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(
    table=compiled_histograms(),
    probes=st.lists(probe_values, min_size=0, max_size=15),
)
def test_equality_batch_matches_scalar(table, probes):
    batch = table.equality_batch(probes)
    scalar = np.asarray([table.equality(v) for v in probes], dtype=np.float64)
    assert np.array_equal(batch, scalar)


@settings(max_examples=80, deadline=None)
@given(
    table=compiled_histograms(),
    probes=st.lists(probe_values, min_size=0, max_size=12),
)
def test_membership_matches_deduplicated_scalar_sum(table, probes):
    distinct, seen = [], set()
    for value in probes:
        try:
            if value in seen:
                continue
            seen.add(value)
        except TypeError:
            continue  # unhashable: 0-mass, not deduplicable
        distinct.append(value)
    expected = float(
        np.sum(
            np.asarray([table.equality(v) for v in distinct], dtype=np.float64),
            dtype=np.float64,
        )
    )
    assert table.membership(probes) == expected


range_bounds = st.one_of(
    st.none(),
    st.integers(min_value=-(2**60), max_value=2**60),
    large_ints,
    st.floats(allow_nan=False, allow_infinity=True, width=64),
    st.booleans(),
)


@settings(max_examples=120, deadline=None)
@given(
    values=st.lists(adversarial_numbers, min_size=1, max_size=12),
    freqs_seed=st.integers(min_value=0, max_value=2**31),
    bounds=st.lists(
        st.tuples(range_bounds, range_bounds), min_size=1, max_size=8
    ),
    include_low=st.booleans(),
    include_high=st.booleans(),
)
def test_range_batch_matches_scalar(
    values, freqs_seed, bounds, include_low, include_high
):
    gen = np.random.default_rng(freqs_seed)
    table = CompiledHistogram(
        values, gen.uniform(0.25, 100.0, size=len(values)).tolist()
    )
    if not table.is_orderable:
        return
    lows = [low for low, _ in bounds]
    highs = [high for _, high in bounds]
    batch = table.range_batch(
        lows, highs, include_low=include_low, include_high=include_high
    )
    scalar = np.asarray(
        [
            table.range_sum(
                low, high, include_low=include_low, include_high=include_high
            )
            for low, high in bounds
        ],
        dtype=np.float64,
    )
    assert np.array_equal(batch, scalar)


@settings(max_examples=100, deadline=None)
@given(left=compiled_histograms(), right=compiled_histograms())
def test_join_matches_exact_reference(left, right):
    def is_nan_like(value):
        try:
            return bool(value != value)
        except (TypeError, ValueError):
            return False

    reference = 0.0
    right_map = right.as_mapping()
    for value, freq in left.as_mapping().items():
        if is_nan_like(value):
            continue
        match = right_map.get(value)
        if match is not None:
            reference += freq * match
    assert np.isclose(left.join_with(right), reference, rtol=1e-12, atol=1e-9)
    # Symmetry of the estimate itself (both orders intersect one domain).
    assert np.isclose(
        left.join_with(right), right.join_with(left), rtol=1e-12, atol=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(
    compact=compiled_compacts(),
    probes=st.lists(probe_values, min_size=0, max_size=12),
    assume_in_domain=st.booleans(),
)
def test_compact_frequency_batch_matches_scalar(compact, probes, assume_in_domain):
    batch = compact.frequency_batch(probes, assume_in_domain=assume_in_domain)
    scalar = np.asarray(
        [compact.frequency(v, assume_in_domain=assume_in_domain) for v in probes],
        dtype=np.float64,
    )
    assert np.array_equal(batch, scalar)


# ---------------------------------------------------------------------------
# Service-level bit-identity (the batched dispatch itself)
# ---------------------------------------------------------------------------


def _build_service():
    catalog = StatsCatalog()
    for index, kind in enumerate(("serial", "end-biased")):
        freqs = zipf_frequencies(400, 20, 0.8)
        column = [v for v, f in enumerate(freqs) for _ in range(max(1, int(f)))]
        relation = Relation.from_columns(f"R{index}", {"a": column})
        analyze_relation(relation, "a", catalog, kind=kind, buckets=4)
    return EstimationService(catalog)


_SERVICE = _build_service()


@st.composite
def service_probes(draw):
    kind = draw(st.integers(min_value=0, max_value=2))
    relation = f"R{draw(st.integers(min_value=0, max_value=1))}"
    if kind == 0:
        return EqualityProbe(relation, "a", draw(probe_values))
    if kind == 1:
        low = draw(range_bounds)
        high = draw(range_bounds)
        return RangeProbe(
            relation,
            "a",
            low,
            high,
            include_low=draw(st.booleans()),
            include_high=draw(st.booleans()),
        )
    other = f"R{draw(st.integers(min_value=0, max_value=1))}"
    return JoinProbe(relation, "a", other, "a")


@settings(max_examples=60, deadline=None)
@given(probes=st.lists(service_probes(), min_size=0, max_size=12))
def test_estimate_batch_matches_scalar_and_frame(probes):
    batch = _SERVICE.estimate_batch(probes)
    framed = _SERVICE.estimate_batch(ProbeFrame.from_probes(probes))
    scalar = np.empty(len(probes), dtype=np.float64)
    for position, probe in enumerate(probes):
        if isinstance(probe, EqualityProbe):
            scalar[position] = _SERVICE.estimate_equality(
                probe.relation, probe.attribute, probe.value
            )
        elif isinstance(probe, RangeProbe):
            scalar[position] = _SERVICE.estimate_range(
                probe.relation,
                probe.attribute,
                probe.low,
                probe.high,
                include_low=probe.include_low,
                include_high=probe.include_high,
            )
        else:
            scalar[position] = _SERVICE.estimate_join(
                probe.left_relation,
                probe.left_attribute,
                probe.right_relation,
                probe.right_attribute,
            )
    assert np.array_equal(batch, scalar)
    assert np.array_equal(batch, framed)
