"""Property-based tests for the advisor, allocator and value-order family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.advisor import allocate_bucket_budget, optimal_error_for_buckets
from repro.core.frequency import AttributeDistribution
from repro.core.heuristic import equi_depth_histogram, equi_width_histogram
from repro.core.valueorder import v_optimal_value_histogram

frequencies = st.lists(
    st.floats(min_value=0.01, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=10,
)


def total_sse(histogram):
    reference = histogram.frequencies
    approx = histogram.approximate_frequencies()
    return float(((reference - approx) ** 2).sum())


class TestValueOrderProperties:
    @given(frequencies, st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_dp_dominates_heuristics_in_family(self, freqs, beta):
        beta = min(beta, len(freqs))
        dist = AttributeDistribution(range(len(freqs)), freqs)
        optimal = total_sse(v_optimal_value_histogram(dist, beta))
        assert optimal <= total_sse(equi_width_histogram(dist, beta)) + 1e-6
        assert optimal <= total_sse(equi_depth_histogram(dist, beta)) + 1e-6

    @given(frequencies)
    @settings(max_examples=40, deadline=None)
    def test_sse_monotone_in_buckets(self, freqs):
        dist = AttributeDistribution(range(len(freqs)), freqs)
        sses = [
            total_sse(v_optimal_value_histogram(dist, beta))
            for beta in range(1, len(freqs) + 1)
        ]
        for earlier, later in zip(sses, sses[1:]):
            assert later <= earlier + 1e-6
        assert sses[-1] == pytest.approx(0.0, abs=1e-6)

    @given(frequencies, st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_buckets_partition_value_order(self, freqs, beta):
        beta = min(beta, len(freqs))
        dist = AttributeDistribution(range(len(freqs)), freqs)
        hist = v_optimal_value_histogram(dist, beta)
        flat = [v for bucket in hist.buckets for v in bucket.values]
        assert flat == list(range(len(freqs)))


@st.composite
def allocation_case(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    sets = [
        draw(
            st.lists(
                st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
                min_size=2,
                max_size=6,
            )
        )
        for _ in range(count)
    ]
    extra = draw(st.integers(min_value=0, max_value=8))
    return sets, count + extra


class TestAllocatorProperties:
    @given(allocation_case())
    @settings(max_examples=40, deadline=None)
    def test_every_attribute_served_within_budget(self, case):
        sets, budget = case
        allocation = allocate_bucket_budget(sets, budget)
        assert len(allocation) == len(sets)
        assert all(k >= 1 for k in allocation)
        assert sum(allocation) <= budget
        for fset, buckets in zip(sets, allocation):
            assert buckets <= len(fset)

    @given(allocation_case())
    @settings(max_examples=30, deadline=None)
    def test_no_single_move_improves(self, case):
        """The DP allocation is 1-move optimal: shifting one bucket from any
        attribute to any other never reduces the total error.  (A greedy
        allocator fails this — end-biased marginal gains are non-monotone —
        which is why the implementation is an exact dynamic program.)"""
        sets, budget = case
        allocation = allocate_bucket_budget(sets, budget)

        def error(index, buckets):
            return optimal_error_for_buckets(sets[index], buckets)

        base = sum(error(i, k) for i, k in enumerate(allocation))
        for donor in range(len(sets)):
            if allocation[donor] <= 1:
                continue
            for receiver in range(len(sets)):
                if receiver == donor or allocation[receiver] >= len(sets[receiver]):
                    continue
                moved = list(allocation)
                moved[donor] -= 1
                moved[receiver] += 1
                candidate = sum(error(i, k) for i, k in enumerate(moved))
                assert candidate >= base - 1e-6
