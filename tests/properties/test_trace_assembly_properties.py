"""Property-based tests for trace assembly and head sampling.

The assembler's contract: *any* span stream — shuffled, interleaved
across traces, truncated mid-trace, carrying duplicate IDs or dangling
parent links — assembles into well-formed forests.  Well-formed means:

* every input span appears in exactly one trace (dedupe by span ID,
  first record wins);
* every tree edge is a real ``parent_id`` link within the same trace —
  no orphan is silently grafted (orphans surface as flagged roots);
* no cycles survive — rendering and traversal terminate;
* nothing assumes parent duration covers child duration (truncated
  streams routinely violate it).

Sampling's contract: the head decision is a pure function of the trace
ID, so every span of a trace — on any thread, in any process — lands on
the same side of the cut.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.export import assemble_traces, render_trace_tree
from repro.obs.tracing import HeadSampler, SpanRecord, TraceIdSource

SPAN_NAME = st.sampled_from(["serve.batch", "net.batch", "agent.job", "x"])

# Small ID pools force collisions: duplicate span IDs, self-parenting,
# cross-trace parent references, and dangling links all get generated.
SPAN_ID = st.integers(min_value=0, max_value=7).map(lambda i: f"{i:016x}")
TRACE_ID = st.integers(min_value=0, max_value=2).map(lambda i: f"{i + 10:016x}")


@st.composite
def span_records(draw):
    start = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    # end may be *before* start (clock ambiguity in truncated streams):
    # assembly must not assume parent durations >= child durations.
    end = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    return SpanRecord(
        name=draw(SPAN_NAME),
        start=start,
        end=end,
        depth=0,
        parent=None,
        error=draw(st.booleans()),
        tags={},
        trace_id=draw(TRACE_ID),
        span_id=draw(SPAN_ID),
        parent_id=draw(st.one_of(st.just(""), SPAN_ID)),
    )


def walk(node, seen):
    assert node.record.span_id not in seen, "span appears twice in one forest"
    seen.add(node.record.span_id)
    for child in node.children:
        assert child.record.parent_id == node.record.span_id
        assert child.record.trace_id == node.record.trace_id
        assert not child.orphan
        walk(child, seen)


@given(st.lists(span_records(), max_size=40))
@settings(max_examples=200, deadline=None)
def test_any_stream_assembles_into_well_formed_forests(records):
    traces = assemble_traces(records)

    # Every unique (trace_id, span_id) appears exactly once, somewhere.
    unique: dict[tuple, SpanRecord] = {}
    for record in records:
        unique.setdefault((record.trace_id, record.span_id), record)
    assert sum(t.span_count for t in traces) == len(unique)
    assert len({t.trace_id for t in traces}) == len(traces)

    for trace in traces:
        seen: set = set()
        for root in trace.roots:
            # A root either has no parent link or is a flagged orphan
            # (its parent never arrived, or a cycle was broken here).
            assert root.record.parent_id == "" or root.orphan
            walk(root, seen)  # terminates: no cycles survive assembly
        assert len(seen) == trace.span_count
        # Rendering is total — it must never trip over any shape.
        assert render_trace_tree(trace)


@given(st.lists(span_records(), max_size=30), st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_assembly_is_order_insensitive(records, rng):
    """Shuffling an interleaved stream cannot change the forest shape
    when span IDs are unique (first-wins dedupe is the only order
    dependence, and it needs duplicates to matter)."""
    deduped = list({r.span_id: r for r in records}.values())
    baseline = assemble_traces(deduped)
    shuffled = list(deduped)
    rng.shuffle(shuffled)
    again = assemble_traces(shuffled)
    assert [render_trace_tree(t) for t in baseline] == [
        render_trace_tree(t) for t in again
    ]


@given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(0, 1000))
@settings(max_examples=200, deadline=None)
def test_sampling_decision_is_consistent_per_trace_id(seed, per_mille):
    rate = per_mille / 1000.0
    sampler = HeadSampler(default_rate=rate)
    trace_id = TraceIdSource(seed=seed).next_id()
    decisions = {sampler.decision(trace_id) for _ in range(5)}
    assert len(decisions) == 1
    if rate == 0.0:
        assert decisions == {False}
    if rate == 1.0:
        assert decisions == {True}


@given(st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=100, deadline=None)
def test_id_source_is_seed_deterministic_and_collision_free(seed):
    source_a = TraceIdSource(seed=seed)
    source_b = TraceIdSource(seed=seed)
    a = [source_a.next_id() for _ in range(50)]
    b = [source_b.next_id() for _ in range(50)]
    assert a == b
    assert len(set(a)) == len(a)
    assert all(len(i) == 16 and int(i, 16) != 0 for i in a)
