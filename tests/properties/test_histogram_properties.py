"""Property-based tests (hypothesis) on histogram invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import AttributeDistribution, FrequencySet
from repro.core.heuristic import equi_depth_histogram, equi_width_histogram, trivial_histogram
from repro.core.histogram import Histogram
from repro.core.serial import serial_error_from_sizes, v_opt_hist_dp, v_opt_hist_exhaustive

# Frequency multisets: positive, bounded, small enough for exhaustive oracles.
frequencies = st.lists(
    st.floats(min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)
small_frequencies = st.lists(
    st.floats(min_value=0.01, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=8,
)


@st.composite
def frequencies_and_buckets(draw, source=frequencies):
    freqs = draw(source)
    beta = draw(st.integers(min_value=1, max_value=len(freqs)))
    return freqs, beta


class TestApproximationInvariants:
    @given(frequencies_and_buckets())
    @settings(max_examples=60)
    def test_bucket_averages_preserve_total(self, case):
        freqs, beta = case
        hist = v_opt_bias_hist(freqs, beta)
        assert hist.approximate_frequencies().sum() == pytest.approx(
            float(np.sum(freqs)), rel=1e-9
        )

    @given(frequencies_and_buckets())
    @settings(max_examples=60)
    def test_self_join_error_non_negative(self, case):
        freqs, beta = case
        hist = v_opt_bias_hist(freqs, beta)
        assert hist.self_join_error() >= -1e-9

    @given(frequencies_and_buckets())
    @settings(max_examples=60)
    def test_estimate_never_exceeds_exact(self, case):
        """Jensen's inequality: Σ f̂² <= Σ f² for bucket-average histograms."""
        freqs, beta = case
        hist = v_opt_hist_dp(freqs, beta)
        assert hist.self_join_estimate() <= float(np.dot(freqs, freqs)) + 1e-6

    @given(frequencies_and_buckets(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_approximate_array_permutation_invariance(self, case, seed):
        """Applying the histogram commutes with permuting the arrangement."""
        freqs, beta = case
        hist = v_opt_bias_hist(freqs, beta)
        gen = np.random.default_rng(seed)
        permutation = gen.permutation(len(freqs))
        base = np.asarray(freqs, dtype=float)
        approx_then_permute = hist.approximate_array(base)[permutation]
        permute_then_approx = hist.approximate_array(base[permutation])
        assert np.allclose(np.sort(approx_then_permute), np.sort(permute_then_approx))

    @given(frequencies)
    @settings(max_examples=40)
    def test_trivial_histogram_constant(self, freqs):
        hist = trivial_histogram(freqs)
        approx = hist.approximate_frequencies()
        assert np.allclose(approx, approx[0])


class TestOptimalityProperties:
    @given(small_frequencies, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_dp_equals_exhaustive(self, freqs, beta):
        if beta > len(freqs):
            beta = len(freqs)
        dp = v_opt_hist_dp(freqs, beta)
        exhaustive = v_opt_hist_exhaustive(freqs, beta)
        assert dp.self_join_error() == pytest.approx(
            exhaustive.self_join_error(), rel=1e-9, abs=1e-7
        )

    @given(frequencies_and_buckets(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_serial_optimum_beats_random_partition(self, case, seed):
        freqs, beta = case
        best = v_opt_hist_dp(freqs, beta).self_join_error()
        gen = np.random.default_rng(seed)
        indices = gen.permutation(len(freqs))
        groups = [tuple(g) for g in np.array_split(indices, beta) if len(g)]
        if len(groups) < beta:
            return  # split produced empty groups; partition not comparable
        candidate = Histogram(freqs, groups).self_join_error()
        assert best <= candidate + 1e-6

    @given(frequencies_and_buckets())
    @settings(max_examples=40)
    def test_end_biased_optimum_is_serial_and_end_biased(self, case):
        freqs, beta = case
        hist = v_opt_bias_hist(freqs, beta)
        assert hist.is_serial()
        assert hist.is_end_biased()

    @given(small_frequencies)
    @settings(max_examples=30)
    def test_error_monotone_in_buckets(self, freqs):
        errors = [
            v_opt_hist_dp(freqs, beta).self_join_error()
            for beta in range(1, len(freqs) + 1)
        ]
        for earlier, later in zip(errors, errors[1:]):
            assert later <= earlier + 1e-6
        assert errors[-1] == pytest.approx(0.0, abs=1e-6)

    @given(frequencies_and_buckets())
    @settings(max_examples=40)
    def test_serial_error_formula_consistency(self, case):
        freqs, beta = case
        hist = v_opt_hist_dp(freqs, beta)
        sorted_sizes = tuple(
            len(g)
            for g in sorted(
                hist.index_groups,
                key=lambda g: -max(np.asarray(freqs, dtype=float)[list(g)]),
            )
        )
        # Prefix-sum SSE suffers catastrophic cancellation near zero error,
        # so the comparison uses a modest relative tolerance.
        assert serial_error_from_sizes(freqs, sorted_sizes) == pytest.approx(
            hist.self_join_error(), rel=1e-6, abs=1e-4
        )


class TestHeuristicProperties:
    @given(frequencies_and_buckets(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_equi_depth_total_balance(self, case, seed):
        freqs, beta = case
        gen = np.random.default_rng(seed)
        dist = AttributeDistribution(
            range(len(freqs)), gen.permutation(np.asarray(freqs, dtype=float))
        )
        hist = equi_depth_histogram(dist, beta)
        assert hist.bucket_count == beta
        target = dist.total / beta
        max_freq = float(dist.frequencies.max())
        for bucket in hist.buckets[:-1]:
            # Greedy quantile cuts keep each (non-final) bucket within one
            # maximal frequency of the target depth.
            assert bucket.total <= target + max_freq + 1e-9

    @given(frequencies_and_buckets())
    @settings(max_examples=40)
    def test_equi_width_value_counts(self, case):
        freqs, beta = case
        dist = AttributeDistribution(range(len(freqs)), freqs)
        hist = equi_width_histogram(dist, beta)
        counts = [b.count for b in hist.buckets]
        assert max(counts) - min(counts) <= 1
        assert sum(counts) == len(freqs)


class TestFrequencySetProperties:
    @given(frequencies)
    @settings(max_examples=40)
    def test_frequency_set_sorted(self, freqs):
        fset = FrequencySet(freqs)
        assert np.all(np.diff(fset.frequencies) <= 0)

    @given(frequencies, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_permutation_invariance(self, freqs, seed):
        gen = np.random.default_rng(seed)
        assert FrequencySet(freqs) == FrequencySet(gen.permutation(freqs))
