"""Property-based tests for the extension modules (tensors, §6 operators,
successor histograms, SQL parsing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import AttributeDistribution
from repro.core.histogram import Histogram
from repro.core.inequality import not_equals_join_size, range_join_size
from repro.core.serial import v_opt_hist_dp
from repro.core.successors import compressed_histogram, max_diff_histogram
from repro.core.tensor import FrequencyTensor, tree_result_size

frequencies = st.lists(
    st.floats(min_value=0.01, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=10,
)


@st.composite
def freq_and_buckets(draw):
    freqs = draw(frequencies)
    beta = draw(st.integers(min_value=1, max_value=len(freqs)))
    return freqs, beta


@st.composite
def two_distributions(draw):
    size_left = draw(st.integers(min_value=1, max_value=6))
    size_right = draw(st.integers(min_value=1, max_value=6))
    f_left = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=size_left,
            max_size=size_left,
        )
    )
    f_right = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=size_right,
            max_size=size_right,
        )
    )
    values_left = draw(
        st.lists(st.integers(0, 20), min_size=size_left, max_size=size_left, unique=True)
    )
    values_right = draw(
        st.lists(st.integers(0, 20), min_size=size_right, max_size=size_right, unique=True)
    )
    left = AttributeDistribution(values_left, np.asarray(f_left) + 0.01)
    right = AttributeDistribution(values_right, np.asarray(f_right) + 0.01)
    return left, right


class TestInequalityProperties:
    @given(two_distributions())
    @settings(max_examples=60)
    def test_equality_complement_partition(self, pair):
        """= and ≠ partition the Cartesian product for any distributions."""
        left, right = pair
        eq = left.join_size(right)
        ne = not_equals_join_size(left, right)
        assert eq + ne == pytest.approx(left.total * right.total, rel=1e-9)

    @given(two_distributions())
    @settings(max_examples=60)
    def test_comparison_trichotomy(self, pair):
        left, right = pair
        lt = range_join_size(left, right, "<")
        gt = range_join_size(left, right, ">")
        eq = left.join_size(right)
        assert lt + gt + eq == pytest.approx(left.total * right.total, rel=1e-9)

    @given(two_distributions())
    @settings(max_examples=60)
    def test_weak_vs_strict_orders(self, pair):
        left, right = pair
        assert range_join_size(left, right, "<=") == pytest.approx(
            range_join_size(left, right, "<") + left.join_size(right), rel=1e-9
        )
        assert range_join_size(left, right, ">=") == pytest.approx(
            range_join_size(left, right, ">") + left.join_size(right), rel=1e-9
        )


class TestSuccessorProperties:
    @given(freq_and_buckets())
    @settings(max_examples=50, deadline=None)
    def test_maxdiff_bounded_by_optimal(self, case):
        freqs, beta = case
        optimal = v_opt_hist_dp(freqs, beta).self_join_error()
        maxdiff = max_diff_histogram(freqs, beta).self_join_error()
        assert maxdiff >= optimal - 1e-6

    @given(freq_and_buckets())
    @settings(max_examples=50, deadline=None)
    def test_compressed_bounded_by_optimal(self, case):
        freqs, beta = case
        optimal = v_opt_hist_dp(freqs, beta).self_join_error()
        compressed = compressed_histogram(freqs, beta).self_join_error()
        assert compressed >= optimal - 1e-6

    @given(freq_and_buckets())
    @settings(max_examples=50)
    def test_successors_are_serial_with_right_bucket_count(self, case):
        freqs, beta = case
        for builder in (max_diff_histogram, compressed_histogram):
            hist = builder(freqs, beta)
            assert hist.is_serial()
            assert hist.bucket_count == beta

    @given(freq_and_buckets())
    @settings(max_examples=50)
    def test_successors_preserve_totals(self, case):
        freqs, beta = case
        for builder in (max_diff_histogram, compressed_histogram):
            hist = builder(freqs, beta)
            assert hist.approximate_frequencies().sum() == pytest.approx(
                float(np.sum(freqs)), rel=1e-9
            )


class TestTensorProperties:
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40)
    def test_two_way_contraction_is_dot_product(self, m, _unused, seed):
        gen = np.random.default_rng(seed)
        a = gen.uniform(0, 10, size=m)
        b = gen.uniform(0, 10, size=m)
        result = tree_result_size(
            [FrequencyTensor(a, axes=(0,)), FrequencyTensor(b, axes=(0,))]
        )
        assert result == pytest.approx(float(np.dot(a, b)))

    @given(
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40)
    def test_contraction_invariant_to_tensor_order(self, m, n, seed):
        gen = np.random.default_rng(seed)
        hub = gen.uniform(0, 5, size=(m, n))
        left = gen.uniform(0, 5, size=m)
        right = gen.uniform(0, 5, size=n)
        tensors = [
            FrequencyTensor(left, axes=(0,)),
            FrequencyTensor(hub, axes=(0, 1)),
            FrequencyTensor(right, axes=(1,)),
        ]
        forward = tree_result_size(tensors)
        backward = tree_result_size(list(reversed(tensors)))
        assert forward == pytest.approx(backward)

    @given(
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30)
    def test_histogram_on_tensor_preserves_contraction_totals(self, m, seed):
        """Trivial histograms on every relation give the uniform estimate
        (T_0·T_1/M for a 2-way join) — the totals flow through."""
        gen = np.random.default_rng(seed)
        a = gen.uniform(0.1, 10, size=m)
        b = gen.uniform(0.1, 10, size=m)
        ha = Histogram.single_bucket(a)
        hb = Histogram.single_bucket(b)
        estimate = tree_result_size(
            [
                FrequencyTensor(ha.approximate_array(a), axes=(0,)),
                FrequencyTensor(hb.approximate_array(b), axes=(0,)),
            ]
        )
        assert estimate == pytest.approx(float(a.sum() * b.sum() / m))


class TestSqlParserProperties:
    identifier = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
        lambda s: s.upper()
        not in {"SELECT", "FROM", "WHERE", "AND", "IN", "BETWEEN", "AS", "NOT", "COUNT"}
    )

    @given(identifier, identifier, st.integers(-1000, 1000))
    @settings(max_examples=50)
    def test_roundtrip_simple_selection(self, table, column, value):
        from repro.sql.ast import ColumnRef, Comparison, Literal
        from repro.sql.parser import parse_select

        stmt = parse_select(f"SELECT * FROM {table} WHERE {column} = {value}")
        assert stmt.tables[0].name == table
        assert stmt.predicates[0] == Comparison(
            ColumnRef(column), "=", Literal(value)
        )

    @given(st.lists(identifier, min_size=1, max_size=4, unique=True))
    @settings(max_examples=50)
    def test_roundtrip_column_list(self, columns):
        from repro.sql.parser import parse_select

        stmt = parse_select(f"SELECT {', '.join(columns)} FROM t")
        assert [c.column for c in stmt.columns] == columns

    @given(st.text(alphabet="abc'() ,=<>123", max_size=30))
    @settings(max_examples=80)
    def test_never_crashes_unexpectedly(self, text):
        """Arbitrary input raises only the documented error types."""
        from repro.sql.lexer import SqlLexError
        from repro.sql.parser import SqlParseError, parse_select

        try:
            parse_select(f"SELECT * FROM t WHERE {text}")
        except (SqlLexError, SqlParseError, ValueError):
            pass
