"""Property-based tests of the Section 3 theory and Theorem 2.1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.biased import v_opt_bias_hist
from repro.core.histogram import Histogram
from repro.core.matrix import arrange_frequency_set, chain_result_size
from repro.core.optimality import (
    analytic_v_error_two_way,
    exact_expected_difference_two_way,
    exact_v_error_two_way,
)
from repro.data.quantize import quantize_to_integers
from repro.util.majorization import is_majorized_by

domain_frequencies = st.lists(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=5,
)


@st.composite
def histogram_for(draw, freqs):
    """An arbitrary partition-based histogram over *freqs*."""
    size = len(freqs)
    beta = draw(st.integers(min_value=1, max_value=size))
    assignment = draw(
        st.lists(st.integers(min_value=0, max_value=beta - 1), min_size=size, max_size=size)
    )
    groups: dict[int, list[int]] = {}
    for index, label in enumerate(assignment):
        groups.setdefault(label, []).append(index)
    return Histogram(freqs, [tuple(g) for g in groups.values()])


@st.composite
def two_way_case(draw):
    a = draw(domain_frequencies)
    b = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False),
            min_size=len(a),
            max_size=len(a),
        )
    )
    ha = draw(histogram_for(a))
    hb = draw(histogram_for(b))
    return a, b, ha, hb


class TestTheorem32Property:
    @given(two_way_case())
    @settings(max_examples=60)
    def test_expected_difference_zero(self, case):
        a, b, ha, hb = case
        assert exact_expected_difference_two_way(a, b, ha, hb) == pytest.approx(
            0.0, abs=1e-6
        )


class TestVErrorProperty:
    @given(two_way_case())
    @settings(max_examples=40, deadline=None)
    def test_analytic_equals_exhaustive(self, case):
        a, b, ha, hb = case
        analytic = analytic_v_error_two_way(a, b, ha, hb)
        exact = exact_v_error_two_way(a, b, ha, hb)
        assert analytic == pytest.approx(exact, rel=1e-6, abs=1e-6)

    @given(two_way_case())
    @settings(max_examples=40, deadline=None)
    def test_v_error_non_negative(self, case):
        """Non-negative up to float cancellation (the quantity is a variance
        computed as a difference of large terms)."""
        a, b, ha, hb = case
        scale = 1.0 + float(np.dot(a, a)) * float(np.dot(b, b))
        assert analytic_v_error_two_way(a, b, ha, hb) >= -1e-12 * scale


class TestTheorem21Property:
    @given(
        st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                min_size=2,
                max_size=4,
            ),
            min_size=2,
            max_size=4,
        ),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_chain_product_equals_tuple_count(self, columns, seed):
        """Chain product over hash-counted matrices == brute-force join count.

        Builds a chain of relations from integer-quantized frequency vectors
        and compares Theorem 2.1 against nested-loop counting.
        """
        gen = np.random.default_rng(seed)
        # Normalise each column of weights into integer frequencies.
        domains = [len(c) for c in columns]
        freq_vectors = []
        for weights in columns:
            weights = np.asarray(weights) + 0.1
            scaled = np.round(weights / weights.sum() * 20)
            freq_vectors.append(scaled.astype(int))

        # Relations: R0 over domain0, interior R_j over (domain_{j-1}, domain_j),
        # last over domain_{-1}. Keep it to a 2-relation chain for the brute
        # force: R0 (vector) join R1 (vector) over the same domain size.
        size = min(domains[0], domains[1])
        left = freq_vectors[0][:size]
        right = freq_vectors[1][:size]
        if left.sum() == 0 or right.sum() == 0:
            return
        from repro.core.matrix import FrequencyMatrix

        exact = chain_result_size(
            [
                FrequencyMatrix.row_vector(left.astype(float)),
                FrequencyMatrix.column_vector(right.astype(float)),
            ]
        )
        left_col = [v for v, f in enumerate(left) for _ in range(f)]
        right_col = [v for v, f in enumerate(right) for _ in range(f)]
        brute = sum(1 for x in left_col for y in right_col if x == y)
        assert exact == brute


class TestArrangementProperties:
    @given(domain_frequencies, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_self_join_size_schur_convexity(self, freqs, seed):
        """Averaging any two entries produces a majorized vector with a
        smaller-or-equal self-join size."""
        arr = np.asarray(freqs, dtype=float)
        gen = np.random.default_rng(seed)
        i, j = gen.choice(len(arr), size=2, replace=False)
        smoothed = arr.copy()
        smoothed[[i, j]] = (arr[i] + arr[j]) / 2
        assert is_majorized_by(smoothed, arr)
        assert np.dot(smoothed, smoothed) <= np.dot(arr, arr) + 1e-9

    @given(domain_frequencies, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_histogram_matrix_majorized_by_original(self, freqs, seed):
        """Every histogram matrix is majorized by the true frequency vector
        (bucket averaging is a sequence of Robin Hood transfers)."""
        beta = max(1, len(freqs) // 2)
        hist = v_opt_bias_hist(freqs, beta)
        approx = hist.approximate_frequencies()
        assert is_majorized_by(approx, np.asarray(freqs, dtype=float))


class TestQuantizeProperty:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=50)
    def test_quantize_preserves_integral_total(self, weights, total):
        weights = np.asarray(weights) + 1e-3
        freqs = weights / weights.sum() * total
        quantized = quantize_to_integers(freqs)
        assert quantized.sum() == total
        assert np.all(quantized >= 0)
