"""Property-based tests for the durable job queue's crash-replay story.

The core claim: the queue's in-memory state is a **pure function of the
log prefix that survived**.  For any randomized operation history and
any byte-level crash prefix of the resulting log:

* reopening never raises — recovery always yields a servable queue;
* the surviving events are exactly a prefix of the full history (a crash
  can lose a tail, never reorder or half-apply);
* replay is idempotent — opening the same bytes twice (the first open
  may physically repair a torn tail) produces the identical applied-
  effects state;
* the recovered queue stays fully operational.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.eventlog import scan_log
from repro.maint.queue import (
    DurableJobQueue,
    LeaseLostError,
    RetryPolicy,
    _validate_event,
)


class FakeClock:
    def __init__(self, now: float = 1_000.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


OPS = st.lists(
    st.sampled_from(
        [
            "enqueue",
            "enqueue_dedupe",
            "claim",
            "renew",
            "ack",
            "fail",
            "requeue",
            "advance",
            "checkpoint",
        ]
    ),
    min_size=1,
    max_size=25,
)


def open_queue(path, clock):
    return DurableJobQueue(
        path,
        lease_duration=5.0,
        retry=RetryPolicy(base=0.5, jitter=0.0, max_attempts=2),
        clock=clock,
        rng=17,
    )


def drive(queue, clock, ops):
    """Apply an arbitrary op sequence, skipping ops with no target."""
    leases = []
    for op in ops:
        if op == "enqueue":
            queue.enqueue("rebuild", {"relation": "R", "attribute": "a"})
        elif op == "enqueue_dedupe":
            queue.enqueue("checkpoint", dedupe_key="k")
        elif op == "claim":
            lease = queue.claim("w")
            if lease is not None:
                leases.append(lease)
        elif op == "renew" and leases:
            try:
                leases[-1] = queue.renew(leases[-1])
            except LeaseLostError:
                leases.pop()
        elif op == "ack" and leases:
            try:
                queue.ack(leases.pop())
            except LeaseLostError:
                pass
        elif op == "fail" and leases:
            try:
                queue.fail(leases.pop(), "injected failure")
            except LeaseLostError:
                pass
        elif op == "requeue":
            lane = queue.dead_letters()
            if lane:
                queue.requeue_dead(lane[0]["id"])
        elif op == "advance":
            clock.advance(7.0)  # expires live leases, passes backoffs
        elif op == "checkpoint":
            queue.checkpoint()


@settings(max_examples=40, deadline=None)
@given(ops=OPS, cut_fraction=st.floats(min_value=0.0, max_value=1.0))
def test_replay_of_any_crash_prefix_is_idempotent(ops, cut_fraction):
    # A fresh directory per example (tmp_path is function-scoped, which
    # hypothesis rejects: it would be shared across all examples).
    with tempfile.TemporaryDirectory() as tmp_dir:
        _check_crash_prefix(Path(tmp_dir), ops, cut_fraction)


def _check_crash_prefix(tmp_path, ops, cut_fraction):
    full_path = tmp_path / "full.jsonl"
    clock = FakeClock()
    queue = open_queue(full_path, clock)
    drive(queue, clock, ops)

    # An all-no-op sequence never creates the log: an absent file and an
    # empty file must both recover to the empty queue.
    raw = full_path.read_bytes() if full_path.exists() else b""
    cut = int(len(raw) * cut_fraction)
    torn_path = tmp_path / "torn.jsonl"
    torn_path.write_bytes(raw[:cut])

    # Survivors are a strict prefix of the full history: nothing
    # reordered, nothing half-applied.
    full_events = scan_log(full_path, validate=_validate_event).payloads
    torn_events = scan_log(torn_path, validate=_validate_event).payloads
    assert torn_events == full_events[: len(torn_events)]

    # Recovery never raises, and replaying the repaired log a second
    # time applies the identical effects.
    recovered = open_queue(torn_path, clock)
    first_state = recovered.jobs()
    assert recovered.depth() == len(first_state)
    replayed = open_queue(torn_path, clock)
    assert replayed.jobs() == first_state

    # Structural invariants of the replayed state.
    for state in first_state:
        assert state["status"] in ("pending", "claimed", "done", "dead")
        assert state["attempts"] >= 0
        if state["status"] == "claimed":
            assert state["owner"] is not None

    # The recovered queue remains fully operational.
    probe = replayed.enqueue("drift-audit")
    clock.advance(1_000.0)  # everything claimable: leases long expired
    for _ in range(replayed.depth() + 1):
        lease = replayed.claim("prover")
        assert lease is not None  # probe is eligible until resolved
        replayed.ack(lease)
        if lease.job.id == probe.id:
            break
    final = {j["id"]: j["status"] for j in replayed.jobs()}
    assert final[probe.id] == "done"
