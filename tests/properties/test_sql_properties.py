"""Property-based tests on SQL estimates and execution consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import Database


@st.composite
def small_database(draw):
    """A two-relation database with random small columns, analyzed."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rows_r = draw(st.integers(min_value=1, max_value=60))
    rows_s = draw(st.integers(min_value=1, max_value=60))
    domain = draw(st.integers(min_value=1, max_value=8))
    gen = np.random.default_rng(seed)
    db = Database()
    db.create("r", {"a": [int(x) for x in gen.integers(0, domain, rows_r)]})
    db.create("s", {"a": [int(x) for x in gen.integers(0, domain, rows_s)]})
    db.analyze(buckets=draw(st.integers(min_value=1, max_value=6)))
    return db, domain


class TestEstimateBounds:
    @given(small_database(), st.integers(min_value=0, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_selection_estimate_bounded_by_relation(self, case, value):
        db, _ = case
        estimate = db.estimate(f"SELECT * FROM r WHERE a = {value}")
        assert 0.0 <= estimate <= db.relation("r").cardinality + 1e-9

    @given(small_database())
    @settings(max_examples=40, deadline=None)
    def test_join_estimate_bounded_by_cartesian(self, case):
        db, _ = case
        estimate = db.estimate("SELECT * FROM r, s WHERE r.a = s.a")
        cartesian = db.relation("r").cardinality * db.relation("s").cardinality
        assert 0.0 <= estimate <= cartesian + 1e-6

    @given(small_database())
    @settings(max_examples=40, deadline=None)
    def test_complement_estimates_sum_to_total(self, case):
        db, _ = case
        total = db.relation("r").cardinality
        eq = db.estimate("SELECT * FROM r WHERE a = 1")
        ne = db.estimate("SELECT * FROM r WHERE a <> 1")
        assert eq + ne == pytest.approx(total, rel=1e-6)

    @given(small_database())
    @settings(max_examples=30, deadline=None)
    def test_group_estimate_bounded_by_distinct(self, case):
        db, _ = case
        estimate = db.estimate("SELECT a, COUNT(*) FROM r GROUP BY a")
        assert estimate <= db.relation("r").distinct_count("a") + 1e-9


class TestExecutionConsistency:
    @given(small_database())
    @settings(max_examples=30, deadline=None)
    def test_join_execution_matches_bruteforce(self, case):
        db, _ = case
        result = db.execute("SELECT COUNT(*) FROM r, s WHERE r.a = s.a")
        ((count,),) = list(result.rows())
        brute = sum(
            1
            for x in db.relation("r").column("a")
            for y in db.relation("s").column("a")
            if x == y
        )
        assert count == brute

    @given(small_database(), st.integers(min_value=0, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_selection_partition(self, case, value):
        """= and <> partition the relation under execution."""
        db, _ = case
        eq = db.execute(f"SELECT * FROM r WHERE a = {value}").cardinality
        ne = db.execute(f"SELECT * FROM r WHERE a <> {value}").cardinality
        assert eq + ne == db.relation("r").cardinality

    @given(small_database())
    @settings(max_examples=30, deadline=None)
    def test_group_counts_sum_to_cardinality(self, case):
        db, _ = case
        result = db.execute("SELECT a, COUNT(*) FROM r GROUP BY a")
        assert sum(count for _, count in result.rows()) == db.relation("r").cardinality
