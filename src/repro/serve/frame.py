"""Columnar probe batches: the array-native front door of the service.

"Selectivity Estimation of Inequality Joins In Databases" (PAPERS.md)
works on per-relation histograms held as plain arrays, with every
operation a whole-column pass.  This module brings the same shape to the
serving hot path: a heterogeneous probe batch is converted **once** into
a :class:`ProbeFrame` — probes bucketed by (relation, attribute, kind)
through index arrays, values/bounds pre-converted to numeric columns
where possible — and :meth:`EstimationService.estimate_batch
<repro.serve.service.EstimationService.estimate_batch>` then answers
each group with one vectorized table call and scatters the results back
by position.

Building a frame is the only part of a batch that must walk Python
objects (one attribute extraction per probe).  Callers with a stable
probe workload can build the frame once with
:meth:`ProbeFrame.from_probes` and pass it to ``estimate_batch``
repeatedly: every later call skips the grouping entirely and runs as a
handful of numpy array operations per group.

The probe dataclasses themselves live here (the service module re-exports
them, so ``from repro.serve.service import EqualityProbe`` keeps working).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.serve.tables import probe_code_array, range_bound_arrays


@dataclass(frozen=True)
class EqualityProbe:
    """One ``σ_{attribute = value}(relation)`` cardinality request."""

    relation: str
    attribute: str
    value: Hashable


@dataclass(frozen=True)
class RangeProbe:
    """One range-selection cardinality request (``None`` bounds are open)."""

    relation: str
    attribute: str
    low: Optional[Hashable] = None
    high: Optional[Hashable] = None
    include_low: bool = True
    include_high: bool = True


@dataclass(frozen=True)
class JoinProbe:
    """One two-way equality-join cardinality request."""

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str


Probe = Union[EqualityProbe, RangeProbe, JoinProbe]

_KIND_EQUALITY = 0
_KIND_RANGE = 1
_KIND_JOIN = 2

#: Exact-type dispatch for the hot conversion loop; subclasses fall back
#: to the isinstance path below (and are memoized here afterwards).
_KIND_BY_TYPE: dict[type, int] = {
    EqualityProbe: _KIND_EQUALITY,
    RangeProbe: _KIND_RANGE,
    JoinProbe: _KIND_JOIN,
}


def _kind_code(probe: object) -> int:
    if isinstance(probe, EqualityProbe):
        code = _KIND_EQUALITY
    elif isinstance(probe, RangeProbe):
        code = _KIND_RANGE
    elif isinstance(probe, JoinProbe):
        code = _KIND_JOIN
    else:
        raise TypeError(
            f"unsupported probe type {type(probe).__name__}; expected "
            "EqualityProbe, RangeProbe, or JoinProbe"
        )
    _KIND_BY_TYPE[type(probe)] = code
    return code


class EqualityGroup:
    """One (relation, attribute) equality bucket of a frame."""

    __slots__ = ("relation", "attribute", "positions", "values")

    def __init__(
        self,
        relation: str,
        attribute: str,
        positions: np.ndarray,
        values: Union[np.ndarray, list],
    ):
        self.relation = relation
        self.attribute = attribute
        #: Indices into the original batch (the scatter targets).
        self.positions = positions
        #: Probe values: a numeric ndarray when the whole equality column
        #: vectorizes, a plain list otherwise.
        self.values = values


class RangeGroup:
    """One (relation, attribute, inclusivity) range bucket of a frame."""

    __slots__ = (
        "relation",
        "attribute",
        "include_low",
        "include_high",
        "positions",
        "lows",
        "highs",
        "low_codes",
        "high_codes",
        "low_open",
        "high_open",
    )

    def __init__(
        self,
        relation: str,
        attribute: str,
        include_low: bool,
        include_high: bool,
        positions: np.ndarray,
        lows: list,
        highs: list,
        low_codes: Optional[np.ndarray],
        high_codes: Optional[np.ndarray],
        low_open: Optional[np.ndarray] = None,
        high_open: Optional[np.ndarray] = None,
    ):
        self.relation = relation
        self.attribute = attribute
        self.include_low = include_low
        self.include_high = include_high
        self.positions = positions
        #: Original bounds (needed for exact-path tables and error text).
        self.lows = lows
        self.highs = highs
        #: Pre-converted float64 bound columns (open bounds at ±inf), or
        #: ``None`` when some bound is not numeric.
        self.low_codes = low_codes
        self.high_codes = high_codes
        #: Open-bound masks matching the code columns (``None`` when that
        #: side has no ``None`` bound).
        self.low_open = low_open
        self.high_open = high_open


class JoinGroup:
    """One distinct join key of a frame (computed once, scattered to all)."""

    __slots__ = (
        "left_relation",
        "left_attribute",
        "right_relation",
        "right_attribute",
        "positions",
    )

    def __init__(
        self,
        left_relation: str,
        left_attribute: str,
        right_relation: str,
        right_attribute: str,
        positions: np.ndarray,
    ):
        self.left_relation = left_relation
        self.left_attribute = left_attribute
        self.right_relation = right_relation
        self.right_attribute = right_attribute
        self.positions = positions


def _intern(names: list) -> tuple[list, Optional[dict]]:
    """Distinct names in first-occurrence order, plus a name -> id map."""
    distinct = list(dict.fromkeys(names))
    if len(distinct) == 1:
        return distinct, None
    return distinct, {name: i for i, name in enumerate(distinct)}


def _group_slices(gids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(order, starts, ends) partitioning ``gids`` into equal-id runs."""
    order = np.argsort(gids, kind="stable")
    sorted_gids = gids[order]
    cuts = np.nonzero(sorted_gids[1:] != sorted_gids[:-1])[0] + 1
    starts = np.concatenate(([0], cuts))
    ends = np.concatenate((cuts, [gids.size]))
    return order, starts, ends


def _group_equalities(
    probes: list, positions: np.ndarray
) -> list[EqualityGroup]:
    rels = [p.relation for p in probes]
    attrs = [p.attribute for p in probes]
    values = [p.value for p in probes]
    rel_names, rel_ids = _intern(rels)
    attr_names, attr_ids = _intern(attrs)
    if rel_ids is None and attr_ids is None:
        arr = probe_code_array(values)
        return [
            EqualityGroup(
                rel_names[0],
                attr_names[0],
                positions,
                values if arr is None else arr,
            )
        ]
    n_attr = len(attr_names)
    if rel_ids is None:
        gids = np.fromiter(
            map(attr_ids.__getitem__, attrs), dtype=np.int64, count=len(attrs)
        )
    else:
        gids = np.fromiter(
            map(rel_ids.__getitem__, rels), dtype=np.int64, count=len(rels)
        )
        if attr_ids is not None:
            gids *= n_attr
            gids += np.fromiter(
                map(attr_ids.__getitem__, attrs), dtype=np.int64, count=len(attrs)
            )
    order, starts, ends = _group_slices(gids)
    positions_sorted = positions[order]
    arr = probe_code_array(values)
    values_sorted = arr[order] if arr is not None else None
    order_list = order.tolist()
    groups: list[EqualityGroup] = []
    for start, end in zip(starts.tolist(), ends.tolist()):
        # The run's first probe is its representative: the grouping key
        # is constant within the run.
        head = probes[order_list[start]]
        if values_sorted is not None:
            group_values: Union[np.ndarray, list] = values_sorted[start:end]
        else:
            group_values = [values[i] for i in order_list[start:end]]
        groups.append(
            EqualityGroup(
                head.relation,
                head.attribute,
                positions_sorted[start:end],
                group_values,
            )
        )
    return groups


def _group_ranges(probes: list, positions: np.ndarray) -> list[RangeGroup]:
    rels = [p.relation for p in probes]
    attrs = [p.attribute for p in probes]
    lows = [p.low for p in probes]
    highs = [p.high for p in probes]
    incl_low = [p.include_low for p in probes]
    incl_high = [p.include_high for p in probes]
    rel_names, rel_ids = _intern(rels)
    attr_names, attr_ids = _intern(attrs)
    count = len(probes)
    single_incl = all(incl_low) or not any(incl_low)
    single_inch = all(incl_high) or not any(incl_high)
    if rel_ids is None and attr_ids is None and single_incl and single_inch:
        bounds = range_bound_arrays(lows, highs)
        if bounds is None:
            bounds = (None, None, None, None)
        return [
            RangeGroup(
                rel_names[0],
                attr_names[0],
                bool(incl_low[0]),
                bool(incl_high[0]),
                positions,
                lows,
                highs,
                *bounds,
            )
        ]
    n_attr = len(attr_names)
    if rel_ids is None:
        gids = np.zeros(count, dtype=np.int64)
    else:
        gids = np.fromiter(
            map(rel_ids.__getitem__, rels), dtype=np.int64, count=count
        )
    if attr_ids is not None:
        gids = gids * n_attr + np.fromiter(
            map(attr_ids.__getitem__, attrs), dtype=np.int64, count=count
        )
    # Inclusivity bits are usually uniform across a workload; encode them
    # into the group id only when they actually vary.
    if not single_incl:
        gids = gids * 2 + np.fromiter(incl_low, dtype=np.int64, count=count)
    if not single_inch:
        gids = gids * 2 + np.fromiter(incl_high, dtype=np.int64, count=count)
    order, starts, ends = _group_slices(gids)
    positions_sorted = positions[order]
    order_list = order.tolist()
    groups: list[RangeGroup] = []
    for start, end in zip(starts.tolist(), ends.tolist()):
        indices = order_list[start:end]
        # The run's first probe is its representative: every encoded
        # grouping key is constant within the run.
        head = probes[indices[0]]
        group_lows = [lows[i] for i in indices]
        group_highs = [highs[i] for i in indices]
        bounds = range_bound_arrays(group_lows, group_highs)
        if bounds is None:
            bounds = (None, None, None, None)
        groups.append(
            RangeGroup(
                head.relation,
                head.attribute,
                bool(head.include_low),
                bool(head.include_high),
                positions_sorted[start:end],
                group_lows,
                group_highs,
                *bounds,
            )
        )
    return groups


def _group_joins(probes: list, positions: np.ndarray) -> list[JoinGroup]:
    buckets: dict[tuple, list[int]] = {}
    for offset, probe in enumerate(probes):
        key = (
            probe.left_relation,
            probe.left_attribute,
            probe.right_relation,
            probe.right_attribute,
        )
        buckets.setdefault(key, []).append(offset)
    return [
        JoinGroup(*key, positions[np.asarray(offsets, dtype=np.intp)])
        for key, offsets in buckets.items()
    ]


class ProbeFrame:
    """A probe batch in columnar, pre-grouped form.

    Construction walks the Python probe objects exactly once; answering a
    frame is then pure per-group array work, and the same frame can be
    answered repeatedly (each call returns a fresh result vector).
    """

    __slots__ = ("probes", "equality_groups", "range_groups", "join_groups", "_length")

    def __init__(
        self,
        probes: list,
        equality_groups: list[EqualityGroup],
        range_groups: list[RangeGroup],
        join_groups: list[JoinGroup],
    ):
        self.probes = probes
        self.equality_groups = equality_groups
        self.range_groups = range_groups
        self.join_groups = join_groups
        self._length = len(probes)

    def __len__(self) -> int:
        return self._length

    @property
    def group_count(self) -> int:
        """Total number of (relation, attribute, kind) buckets."""
        return (
            len(self.equality_groups)
            + len(self.range_groups)
            + len(self.join_groups)
        )

    @classmethod
    def from_probes(cls, probes: Union[Sequence[Probe], Iterable[Probe]]) -> "ProbeFrame":
        """Group a probe sequence into its columnar serving form.

        Raises ``TypeError`` for any element that is not an
        ``EqualityProbe``, ``RangeProbe``, or ``JoinProbe`` — the same
        contract the per-probe dispatch loop used to enforce.
        """
        probe_list = probes if isinstance(probes, list) else list(probes)
        n = len(probe_list)
        if n == 0:
            return cls(probe_list, [], [], [])
        try:
            kinds = np.fromiter(
                map(_KIND_BY_TYPE.__getitem__, map(type, probe_list)),
                dtype=np.uint8,
                count=n,
            )
        except KeyError:
            # Unknown or subclassed probe type: resolve per probe (and
            # memoize subclasses), raising the documented TypeError for
            # anything that is not a probe at all.
            kinds = np.fromiter(
                map(_kind_code, probe_list), dtype=np.uint8, count=n
            )
        counts = np.bincount(kinds, minlength=3)
        equality_groups: list[EqualityGroup] = []
        range_groups: list[RangeGroup] = []
        join_groups: list[JoinGroup] = []
        for kind, count in enumerate(counts.tolist()):
            if not count:
                continue
            if count == n:
                positions = np.arange(n, dtype=np.intp)
                subset = probe_list
            else:
                positions = np.nonzero(kinds == kind)[0]
                subset = [probe_list[i] for i in positions.tolist()]
            if kind == _KIND_EQUALITY:
                equality_groups = _group_equalities(subset, positions)
            elif kind == _KIND_RANGE:
                range_groups = _group_ranges(subset, positions)
            else:
                join_groups = _group_joins(subset, positions)
        return cls(probe_list, equality_groups, range_groups, join_groups)
