"""Lightweight counters for the estimation service.

A serving layer is only trustworthy when it can report what it did: how
often compiled tables were reused versus rebuilt, how much time compilation
cost, and how many probes were answered.  These counters are plain Python
ints/floats — cheap enough to update on every probe — and are surfaced by
``repro serve-stats`` and :mod:`benchmarks.bench_serve_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass
class ServiceMetrics:
    """Cumulative counters for one :class:`~repro.serve.EstimationService`."""

    #: Probes answered from an already-compiled table.
    table_hits: int = 0
    #: Probes that had to (re)compile a table first (cold or stale).
    table_misses: int = 0
    #: Compiled tables discarded by the LRU bound.
    tables_evicted: int = 0
    #: Wall-clock seconds spent compiling lookup tables.
    compile_seconds: float = 0.0
    #: Individual probes answered (batch members count individually).
    probes_served: int = 0
    #: ``estimate_batch`` invocations.
    batches_served: int = 0

    def snapshot(self) -> "ServiceMetrics":
        """An independent copy, for before/after comparisons."""
        return replace(self)

    def hit_rate(self) -> float:
        """Fraction of table lookups served from cache (0 when untouched)."""
        lookups = self.table_hits + self.table_misses
        if lookups == 0:
            return 0.0
        return self.table_hits / lookups

    def as_dict(self) -> dict[str, float]:
        """Counter values keyed by field name."""
        return {
            "table_hits": self.table_hits,
            "table_misses": self.table_misses,
            "tables_evicted": self.tables_evicted,
            "compile_seconds": self.compile_seconds,
            "probes_served": self.probes_served,
            "batches_served": self.batches_served,
        }

    def format(self) -> str:
        """A human-readable multi-line rendering for CLIs."""
        return (
            f"compiled-table cache: {self.table_hits} hits, "
            f"{self.table_misses} misses ({self.hit_rate():.1%} hit rate), "
            f"{self.tables_evicted} evicted\n"
            f"compile time: {self.compile_seconds * 1e3:.3f} ms\n"
            f"probes served: {self.probes_served} "
            f"in {self.batches_served} batches"
        )
