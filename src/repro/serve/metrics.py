"""Thread-safe, degradation-aware counters for the estimation service.

A serving layer is only trustworthy when it can report what it did: how
often compiled tables were reused versus rebuilt, how much time compilation
cost, how many probes of each shape were answered — and, crucially, how
many of those answers were **degraded**: served from a documented fallback
because the statistics needed to answer them properly did not exist, or
resolved through the service's ``on_error`` policy because the probe could
not be answered at all (unknown relation, unorderable domain, unhashable
value).

All counters are guarded by one lock so concurrent service threads never
lose updates; reads of individual fields are plain attribute access (ints
are replaced atomically under the lock), and :meth:`ServiceMetrics.snapshot`
takes a consistent point-in-time copy.  Recording is **batch-level**: the
service calls each ``record_*`` method once per (kind, group) with a
``count``, never once per probe, so the lock is taken O(groups) times per
batch while the counter values stay probe-granular.  Surfaced by
``repro serve-stats`` and :mod:`benchmarks.bench_serve_batch`.
"""

from __future__ import annotations

import threading

from repro.obs.registry import Sample

#: Upper edges (seconds, inclusive) of the batch-latency histogram buckets;
#: one final unbounded bucket catches everything slower.
LATENCY_BUCKET_BOUNDS: tuple[float, ...] = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)

#: The probe shapes the service distinguishes in its per-type counters.
PROBE_KINDS: tuple[str, ...] = (
    "equality",
    "range",
    "join",
    "membership",
    "not_equal",
)


#: Probe kind → counter attribute, precomputed so the per-batch hot path
#: does one dict probe instead of building two f-strings per call.
_PROBE_KIND_ATTRS: dict[str, str] = {kind: f"{kind}_probes" for kind in PROBE_KINDS}


def latency_bucket_labels() -> tuple[str, ...]:
    """Human-readable labels for the latency histogram buckets."""
    labels = [f"<={bound:g}s" for bound in LATENCY_BUCKET_BOUNDS]
    labels.append(f">{LATENCY_BUCKET_BOUNDS[-1]:g}s")
    return tuple(labels)


class ServiceMetrics:
    """Cumulative counters for one :class:`~repro.serve.EstimationService`.

    Thread-safe: every ``record_*`` method takes the internal lock, so the
    counters stay consistent when many threads probe one service.  The
    invariant ``probes_served == equality_probes + range_probes +
    join_probes + membership_probes + not_equal_probes`` holds on every
    path — probes are counted once, *after* their answers are produced
    (including answers resolved through the ``on_error`` policy), never
    before a batch can still fail.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Probes answered from an already-compiled table.
        self.table_hits = 0
        #: Probes that had to (re)compile a table first (cold or stale).
        self.table_misses = 0
        #: Compiled tables discarded by the LRU bound.
        self.tables_evicted = 0
        #: Wall-clock seconds spent compiling lookup tables.
        self.compile_seconds = 0.0
        #: Individual probes answered (batch members count individually).
        self.probes_served = 0
        #: ``estimate_batch`` invocations that returned a result vector.
        self.batches_served = 0
        #: ``estimate_batch`` invocations that raised (``on_error="raise"``
        #: or an invalid probe); their already-answered probes stay counted.
        self.batches_failed = 0
        #: Per-shape probe counters; they always sum to ``probes_served``.
        self.equality_probes = 0
        self.range_probes = 0
        self.join_probes = 0
        self.membership_probes = 0
        self.not_equal_probes = 0
        #: Probes answered from a documented no-statistics fallback (System
        #: R magic constants): the relation is known but the statistics
        #: needed for a first-class answer are missing.
        self.fallback_probes = 0
        #: Probes that could not be answered at all and were resolved
        #: through the ``on_error`` policy (``"fallback"`` or ``"nan"``).
        self.degraded_probes = 0
        #: Degraded-probe counts keyed by reason string (e.g.
        #: ``"unknown-relation"``, ``"unorderable-domain"``).
        self.degradation_reasons: dict[str, int] = {}
        #: Probes refused by admission control (quota/backpressure via the
        #: ``admission=`` hook of ``estimate_batch``) — a subset of
        #: ``degraded_probes``, counted separately so operators can tell
        #: "tenant over quota" from "statistics missing" at a glance.
        self.rejected_probes = 0
        #: Admission rejections keyed by reason (``"quota-exceeded"``,
        #: ``"backpressure"``, ...).
        self.rejection_reasons: dict[str, int] = {}
        #: Probes refused because their statistics are quarantined (a
        #: subset of ``degraded_probes``; reason ``quarantined-statistics``).
        self.quarantined_probes = 0
        #: Catalog entries a table compile raised on (served degraded).
        self.compile_failures = 0
        #: ``apply_recovery`` calls the service absorbed.
        self.recoveries_applied = 0
        #: Catalog entries quarantined across those recoveries.
        self.entries_quarantined = 0
        #: Journal deltas the absorbed recoveries had replayed.
        self.journal_deltas_replayed = 0
        #: ``trace=`` hooks that raised and were swallowed (observer code
        #: must never fail the observed path).
        self.trace_hook_errors = 0
        #: Batch-latency histogram aligned with ``LATENCY_BUCKET_BOUNDS``
        #: plus one unbounded tail bucket.
        self.latency_counts: list[int] = [0] * (len(LATENCY_BUCKET_BOUNDS) + 1)

    # ------------------------------------------------------------------
    # Recording (all thread-safe)
    # ------------------------------------------------------------------

    def record_table_hit(self) -> None:
        """Count one compiled-table cache hit."""
        with self._lock:
            self.table_hits += 1

    def record_table_miss(self) -> None:
        """Count one compiled-table cache miss (cold or stale)."""
        with self._lock:
            self.table_misses += 1

    def record_eviction(self, count: int = 1) -> None:
        """Count *count* compiled tables discarded by the LRU bound."""
        with self._lock:
            self.tables_evicted += count

    def record_compile(self, seconds: float) -> None:
        """Accumulate wall-clock table-compilation time."""
        with self._lock:
            self.compile_seconds += seconds

    def record_probes(self, kind: str, count: int) -> None:
        """Count *count* answered probes of *kind* (see ``PROBE_KINDS``)."""
        attr = _PROBE_KIND_ATTRS.get(kind)
        if attr is None:
            raise ValueError(f"unknown probe kind {kind!r}; expected one of {PROBE_KINDS}")
        with self._lock:
            setattr(self, attr, getattr(self, attr) + count)
            self.probes_served += count

    def record_fallback(self, count: int = 1) -> None:
        """Count *count* probes answered from a no-statistics fallback."""
        with self._lock:
            self.fallback_probes += count

    def record_degraded(self, reason: str, count: int = 1) -> None:
        """Count *count* probes resolved through the ``on_error`` policy."""
        with self._lock:
            self.degraded_probes += count
            self.degradation_reasons[reason] = (
                self.degradation_reasons.get(reason, 0) + count
            )

    def record_rejected(self, reason: str, count: int = 1) -> None:
        """Count *count* probes refused by admission control."""
        with self._lock:
            self.rejected_probes += count
            self.rejection_reasons[reason] = (
                self.rejection_reasons.get(reason, 0) + count
            )

    def record_quarantined(self, count: int = 1) -> None:
        """Count *count* probes refused because of quarantined statistics."""
        with self._lock:
            self.quarantined_probes += count

    def record_compile_failure(self, count: int = 1) -> None:
        """Count *count* catalog entries whose table compile raised."""
        with self._lock:
            self.compile_failures += count

    def record_recovery(self, *, entries_quarantined: int, deltas_replayed: int) -> None:
        """Absorb one :class:`~repro.engine.persist.RecoveryReport`."""
        with self._lock:
            self.recoveries_applied += 1
            self.entries_quarantined += entries_quarantined
            self.journal_deltas_replayed += deltas_replayed

    def record_trace_hook_error(self, count: int = 1) -> None:
        """Count *count* ``trace=`` hook invocations that raised."""
        with self._lock:
            self.trace_hook_errors += count

    def record_batch(self, *, failed: bool = False) -> None:
        """Count one ``estimate_batch`` call (served or failed)."""
        with self._lock:
            if failed:
                self.batches_failed += 1
            else:
                self.batches_served += 1

    def record_latency(self, seconds: float) -> None:
        """Place one batch latency into the histogram."""
        index = len(LATENCY_BUCKET_BOUNDS)
        for position, bound in enumerate(LATENCY_BUCKET_BOUNDS):
            if seconds <= bound:
                index = position
                break
        with self._lock:
            self.latency_counts[index] += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def snapshot(self) -> "ServiceMetrics":
        """An independent, consistent copy for before/after comparisons.

        The copy is fully detached: it carries its own lock and owns
        fresh container objects, so mutating a snapshot (or the live
        instance afterwards) never bleeds across.  Fields are copied
        generically from ``__dict__`` so a counter added later can never
        be silently missed.
        """
        copy = ServiceMetrics()
        with self._lock:
            for name, value in self.__dict__.items():
                if name == "_lock":
                    continue
                if isinstance(value, dict):
                    setattr(copy, name, dict(value))
                elif isinstance(value, list):
                    setattr(copy, name, list(value))
                elif isinstance(value, set):
                    setattr(copy, name, set(value))
                else:
                    setattr(copy, name, value)
        return copy

    def probe_type_total(self) -> int:
        """Sum of the per-shape counters; always equals ``probes_served``."""
        return (
            self.equality_probes
            + self.range_probes
            + self.join_probes
            + self.membership_probes
            + self.not_equal_probes
        )

    def hit_rate(self) -> float:
        """Fraction of table lookups served from cache (0 when untouched)."""
        lookups = self.table_hits + self.table_misses
        if lookups == 0:
            return 0.0
        return self.table_hits / lookups

    def as_dict(self) -> dict[str, float]:
        """Counter values keyed by field name (reasons/latency flattened)."""
        out: dict[str, float] = {
            "table_hits": self.table_hits,
            "table_misses": self.table_misses,
            "tables_evicted": self.tables_evicted,
            "compile_seconds": self.compile_seconds,
            "probes_served": self.probes_served,
            "batches_served": self.batches_served,
            "batches_failed": self.batches_failed,
            "equality_probes": self.equality_probes,
            "range_probes": self.range_probes,
            "join_probes": self.join_probes,
            "membership_probes": self.membership_probes,
            "not_equal_probes": self.not_equal_probes,
            "fallback_probes": self.fallback_probes,
            "degraded_probes": self.degraded_probes,
            "rejected_probes": self.rejected_probes,
            "quarantined_probes": self.quarantined_probes,
            "compile_failures": self.compile_failures,
            "recoveries_applied": self.recoveries_applied,
            "entries_quarantined": self.entries_quarantined,
            "journal_deltas_replayed": self.journal_deltas_replayed,
            "trace_hook_errors": self.trace_hook_errors,
        }
        for reason, count in sorted(self.degradation_reasons.items()):
            out[f"degraded[{reason}]"] = count
        for reason, count in sorted(self.rejection_reasons.items()):
            out[f"rejected[{reason}]"] = count
        for label, count in zip(latency_bucket_labels(), self.latency_counts):
            out[f"latency[{label}]"] = count
        return out

    def collect(self, **labels: object) -> list[Sample]:
        """Registry samples exporting every counter through *labels*.

        This is how a service's metrics surface in
        :meth:`repro.obs.MetricRegistry.to_prometheus` — the service
        registers a weak collector at construction, so the hot probe
        paths keep writing plain Python ints under one lock and the
        conversion to samples happens only at exposition time.
        """
        frozen = self.snapshot()
        label_items = tuple((str(k), str(v)) for k, v in sorted(labels.items()))
        counters = (
            ("repro_serve_table_hits_total", frozen.table_hits, "compiled-table cache hits"),
            ("repro_serve_table_misses_total", frozen.table_misses, "compiled-table cache misses"),
            ("repro_serve_tables_evicted_total", frozen.tables_evicted, "compiled tables discarded by the LRU bound"),
            ("repro_serve_probes_total", frozen.probes_served, "individual probes answered"),
            ("repro_serve_batches_total", frozen.batches_served, "estimate_batch calls that returned"),
            ("repro_serve_batches_failed_total", frozen.batches_failed, "estimate_batch calls that raised"),
            ("repro_serve_fallback_probes_total", frozen.fallback_probes, "probes answered from no-statistics fallbacks"),
            ("repro_serve_degraded_probes_total", frozen.degraded_probes, "probes resolved through the on_error policy"),
            ("repro_serve_rejected_probes_total", frozen.rejected_probes, "probes refused by admission control"),
            ("repro_serve_quarantined_probes_total", frozen.quarantined_probes, "probes refused over quarantined statistics"),
            ("repro_serve_compile_failures_total", frozen.compile_failures, "catalog entries whose table compile raised"),
            ("repro_serve_recoveries_applied_total", frozen.recoveries_applied, "recovery reports absorbed"),
            ("repro_serve_trace_hook_errors_total", frozen.trace_hook_errors, "trace= hooks that raised and were swallowed"),
        )
        samples = [
            Sample(name=name, labels=label_items, value=float(value), kind="counter", help=help_text)
            for name, value, help_text in counters
        ]
        samples.append(
            Sample(
                name="repro_serve_compile_seconds_total",
                labels=label_items,
                value=frozen.compile_seconds,
                kind="counter",
                help="wall-clock seconds spent compiling lookup tables",
            )
        )
        samples.append(
            Sample(
                name="repro_serve_hit_rate",
                labels=label_items,
                value=frozen.hit_rate(),
                kind="gauge",
                help="fraction of table lookups served from cache",
            )
        )
        for kind in PROBE_KINDS:
            samples.append(
                Sample(
                    name="repro_serve_probe_kind_total",
                    labels=label_items + (("kind", kind),),
                    value=float(getattr(frozen, f"{kind}_probes")),
                    kind="counter",
                    help="answered probes by shape",
                )
            )
        for reason, count in sorted(frozen.degradation_reasons.items()):
            samples.append(
                Sample(
                    name="repro_serve_degraded_reason_total",
                    labels=label_items + (("reason", reason),),
                    value=float(count),
                    kind="counter",
                    help="degraded probes by on_error reason",
                )
            )
        for reason, count in sorted(frozen.rejection_reasons.items()):
            samples.append(
                Sample(
                    name="repro_serve_rejected_reason_total",
                    labels=label_items + (("reason", reason),),
                    value=float(count),
                    kind="counter",
                    help="admission-rejected probes by reason",
                )
            )
        cumulative = 0
        bucket_edges = [f"{bound!r}" for bound in LATENCY_BUCKET_BOUNDS] + ["+Inf"]
        for edge, count in zip(bucket_edges, frozen.latency_counts):
            cumulative += count
            samples.append(
                Sample(
                    name="repro_serve_batch_latency_bucket",
                    labels=label_items + (("le", edge),),
                    value=float(cumulative),
                    kind="counter",
                    help="batch latencies at or under the bucket bound (seconds)",
                )
            )
        return samples

    def format(self) -> str:
        """A human-readable multi-line rendering for CLIs."""
        lines = [
            f"compiled-table cache: {self.table_hits} hits, "
            f"{self.table_misses} misses ({self.hit_rate():.1%} hit rate), "
            f"{self.tables_evicted} evicted",
            f"compile time: {self.compile_seconds * 1e3:.3f} ms",
            f"probes served: {self.probes_served} "
            f"in {self.batches_served} batches"
            + (f" ({self.batches_failed} failed)" if self.batches_failed else ""),
            "probe mix: "
            + ", ".join(
                f"{getattr(self, kind + '_probes')} {kind}" for kind in PROBE_KINDS
            ),
            f"degraded: {self.degraded_probes} via on_error policy, "
            f"{self.fallback_probes} from no-statistics fallbacks",
        ]
        if self.degradation_reasons:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.degradation_reasons.items())
            )
            lines.append(f"degradation reasons: {reasons}")
        if self.rejected_probes:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.rejection_reasons.items())
            )
            lines.append(
                f"admission control: {self.rejected_probes} probes rejected "
                f"({reasons})"
            )
        if self.quarantined_probes or self.compile_failures:
            lines.append(
                f"faulty statistics: {self.quarantined_probes} probes answered "
                f"around quarantined entries, {self.compile_failures} compile "
                "failures"
            )
        if self.recoveries_applied:
            lines.append(
                f"recovery: {self.recoveries_applied} reports applied, "
                f"{self.entries_quarantined} entries quarantined, "
                f"{self.journal_deltas_replayed} journal deltas replayed"
            )
        if self.trace_hook_errors:
            lines.append(
                f"trace hooks: {self.trace_hook_errors} raised and were swallowed"
            )
        if any(self.latency_counts):
            histogram = ", ".join(
                f"{label}: {count}"
                for label, count in zip(latency_bucket_labels(), self.latency_counts)
                if count
            )
            lines.append(f"batch latency: {histogram}")
        return "\n".join(lines)
