"""The batched estimation service: histograms as long-lived serving state.

A production optimizer does not rebuild lookup structures per predicate —
it compiles each catalog histogram once and answers *batches* of probes
against the compiled state.  :class:`EstimationService` is that layer:

* each (relation, attribute) entry of a :class:`~repro.engine.catalog.StatsCatalog`
  is compiled on first touch into a :class:`~repro.serve.tables.CompiledHistogram`
  and/or :class:`~repro.serve.tables.CompiledCompact`;
* compiled tables live in a **lock-guarded** bounded LRU keyed by the
  catalog's version counters, so an ``ANALYZE`` or a maintenance publish
  invalidates exactly the stale tables, and concurrent reader threads
  never observe a half-built cache;
* :meth:`EstimationService.estimate_batch` accepts arrays of equality /
  range / join probes and returns one numpy vector of cardinalities,
  vectorizing each (relation, attribute) group in a single pass.

Scalar convenience methods answer through the same compiled tables, so the
batched and scalar paths return **bit-identical** floats.

Fault isolation (the ``on_error`` policy)
-----------------------------------------

A probe that *cannot* be answered — its relation has no statistics at all,
its range domain is not orderable, its equality value is unhashable or its
range bound incomparable with the domain — never aborts the rest of a
batch.  Each such probe resolves individually through the service-wide
(or per-call) ``on_error`` policy:

``"fallback"`` (default)
    The probe resolves to a documented bounded fallback: ``0.0`` for an
    unknown relation or an unhashable equality value (nothing stored can
    match), and the System R ``|R|·1/3`` guess for an unanswerable range
    over a known relation.  The resolution is counted in
    ``ServiceMetrics.degraded_probes`` (keyed by reason).

``"nan"``
    The probe resolves to ``float("nan")`` so downstream consumers can
    detect exactly which answers are missing; counted as degraded.

``"raise"``
    The pre-hardening behaviour: the underlying ``KeyError`` /
    ``ValueError`` / ``TypeError`` propagates and the batch aborts.

Probes over a *known* relation that merely lack the right statistics form
(no histogram for a range, an un-ANALYZEd attribute) keep their classical
System R magic-constant fallbacks; those are first-class answers, counted
separately in ``ServiceMetrics.fallback_probes``.

Statistics **quarantined** by crash recovery (fed in through
:meth:`EstimationService.apply_recovery` from a
:class:`~repro.engine.persist.RecoveryReport`) are never served: probes
touching them resolve through the same ``on_error`` policy with reason
``"quarantined-statistics"``.  An entry whose lookup-table *compile*
raises is likewise isolated (reason ``"table-compile-failed"``) instead of
aborting the batch; both are visible in the metrics.

Pass ``trace=`` (any callable accepting a :class:`ProbeTrace`) to any
estimate entry point to observe *why* each fallback or degraded answer was
served, including the probe's position inside ``estimate_batch`` inputs.
"""

from __future__ import annotations

import itertools
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Hashable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.persist import RecoveryReport
from repro.obs import runtime as obs
from repro.obs.tracing import span
from repro.serve.frame import (
    EqualityProbe,
    JoinProbe,
    Probe,
    ProbeFrame,
    RangeProbe,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.tables import (
    CompiledCompact,
    CompiledHistogram,
    compile_compact,
    compile_histogram,
    probe_code_array,
    range_bound_arrays,
)
from repro.testing.faults import POINT_SERVE_COMPILE, fault_point
from repro.util.validation import ensure_positive_int

#: Fallback equality-join/selection selectivity when no statistics exist —
#: the venerable System R magic constant.
DEFAULT_EQ_SELECTIVITY = 0.1

#: Fallback range selectivity without a value-aware histogram (System R).
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

#: Default bound on the compiled-table LRU.
DEFAULT_MAX_TABLES = 256

#: Source of the auto-generated ``service-N`` names used as the
#: ``service`` metric label when no explicit name is given.
_SERVICE_SEQ = itertools.count(1)

#: The accepted ``on_error`` policies (see the module docstring).
ON_ERROR_POLICIES: tuple[str, ...] = ("fallback", "nan", "raise")

#: Degradation reasons reported through metrics and ``trace=`` hooks.
REASON_UNKNOWN_RELATION = "unknown-relation"
REASON_UNORDERABLE_DOMAIN = "unorderable-domain"
REASON_UNHASHABLE_VALUE = "unhashable-value"
REASON_INCOMPARABLE_BOUND = "incomparable-bound"
#: The entry's statistics were quarantined by crash recovery (see
#: :meth:`EstimationService.apply_recovery`) and must not be served.
REASON_QUARANTINED = "quarantined-statistics"
#: A maintenance rebuild is underway for an entry that was **already
#: quarantined** — the refined form of ``"quarantined-statistics"``
#: telling callers the outage is being repaired autonomously.  A rebuild
#: of a *healthy* entry never degrades anything: the service keeps
#: serving the last published snapshot until the new one lands in the
#: catalog (see :meth:`EstimationService.mark_rebuilding`).
REASON_REBUILD_IN_PROGRESS = "rebuild-in-progress"
#: Compiling the entry's lookup table raised; the corrupt/buggy statistics
#: are isolated instead of aborting the batch.
REASON_COMPILE_FAILED = "table-compile-failed"
#: Admission control (quota/backpressure) rejected the probe before it
#: reached the estimators — typed so network tenants see *why* in their
#: SDK traces and per-tenant metrics, never a dropped connection.
REASON_QUOTA_EXCEEDED = "quota-exceeded"
REASON_BACKPRESSURE = "backpressure"
#: Fallback (non-degraded) reasons: the relation is known, the statistics
#: form needed for a first-class answer is not.
REASON_NO_STATISTICS = "no-statistics"
REASON_NO_HISTOGRAM = "no-histogram"


class TableCompileError(RuntimeError):
    """A catalog entry could not be compiled into a serving table.

    Raised internally when :func:`~repro.serve.tables.compile_histogram` /
    :func:`~repro.serve.tables.compile_compact` fail on an entry (corrupt
    statistics that slipped past load-time checks, or an injected compile
    fault).  Estimate paths catch it and resolve the affected probes
    through the ``on_error`` policy with reason ``"table-compile-failed"``;
    under ``on_error="raise"`` it propagates to the caller.
    """


# EqualityProbe / RangeProbe / JoinProbe / Probe / ProbeFrame live in
# :mod:`repro.serve.frame` (imported above and re-exported here for
# compatibility — ``from repro.serve.service import EqualityProbe`` keeps
# working).


@dataclass(frozen=True)
class ProbeTrace:
    """Why one probe's answer was served from a fallback or degraded.

    Emitted through the ``trace=`` hook of the estimate entry points —
    once per affected probe, never for probes answered first-class from
    compiled statistics.
    """

    #: Probe shape: ``"equality"``, ``"range"``, ``"join"``,
    #: ``"membership"``, or ``"not_equal"``.
    kind: str
    relation: str
    attribute: Optional[str]
    #: One of the ``REASON_*`` constants.
    reason: str
    #: The answer actually served (may be ``nan`` under the nan policy).
    value: float
    #: True when resolved through the ``on_error`` policy (the probe was
    #: unanswerable); False for documented no-statistics fallbacks.
    degraded: bool
    #: Index into the ``estimate_batch`` input, when served from a batch.
    position: Optional[int] = None


#: Signature of the ``trace=`` hook.
TraceHook = Callable[[ProbeTrace], None]

#: Signature of the ``admission=`` hook accepted by
#: :meth:`EstimationService.estimate_batch`.  Called once per batch with
#: the probe sequence; returns ``None`` to admit everything, or a
#: sequence aligned with the probes where each non-``None`` entry is a
#: rejection reason string (e.g. :data:`REASON_QUOTA_EXCEEDED`).
#: Rejected probes resolve through the ``on_error`` policy exactly like
#: unanswerable probes — per-probe degradation, never a dropped batch.
AdmissionHook = Callable[[Sequence["Probe"]], Optional[Sequence[Optional[str]]]]


def _probe_position(positions: Optional[Sequence[int]], index: int) -> Optional[int]:
    if positions is None:
        return None
    # Positions may live in an intp index array; traces (and their JSON
    # wire form) carry plain Python ints.
    return int(positions[index])


@dataclass
class _CompiledSlot:
    """Everything the service compiled from one catalog entry."""

    version: int
    total_tuples: float
    distinct_count: int
    histogram_table: Optional[CompiledHistogram]
    stored_compact: Optional[CompiledCompact]
    join_compact: Optional[CompiledCompact]

    @classmethod
    def from_entry(cls, entry: CatalogEntry) -> "_CompiledSlot":
        fault_point(
            POINT_SERVE_COMPILE, detail=f"{entry.relation}.{entry.attribute}"
        )
        histogram_table: Optional[CompiledHistogram] = None
        if entry.histogram is not None and entry.histogram.values is not None:
            histogram_table = compile_histogram(entry.histogram)
        stored_compact: Optional[CompiledCompact] = None
        if entry.compact is not None:
            stored_compact = compile_compact(entry.compact)
        # Join estimation may *derive* a compact view from a biased
        # value-aware histogram (the optimizer's MCV fallback ladder).
        join_compact = stored_compact
        if (
            join_compact is None
            and histogram_table is not None
            and entry.histogram.is_biased()
        ):
            join_compact = compile_compact(
                CompactEndBiased.from_histogram(entry.histogram)
            )
        return cls(
            version=entry.version,
            total_tuples=float(entry.total_tuples),
            distinct_count=int(entry.distinct_count),
            histogram_table=histogram_table,
            stored_compact=stored_compact,
            join_compact=join_compact,
        )

    def average_frequency(self) -> float:
        """``T / M`` — the uniform-assumption frequency."""
        if self.distinct_count <= 0:
            return 0.0
        return self.total_tuples / self.distinct_count

    def frequency_batch(self, values: Sequence[Hashable]) -> np.ndarray:
        """Per-value frequencies, preferring the same form the catalog does.

        The preference order mirrors ``CatalogEntry.estimate_frequency``:
        stored compact layout first, then the value-aware histogram, then
        the uniform assumption — so service answers are bit-identical to
        the legacy scalar path.
        """
        if self.stored_compact is not None:
            return self.stored_compact.frequency_batch(values)
        if self.histogram_table is not None:
            return self.histogram_table.equality_batch(values)
        return np.full(len(values), self.average_frequency(), dtype=np.float64)


class EstimationService:
    """Batched, cache-compiled cardinality estimation over a catalog.

    Thread-safe: the compiled-table LRU is guarded by one re-entrant lock
    (lookup, compile, insert, and eviction happen atomically), the catalog
    is consulted through its own lock, and every metrics update is atomic —
    so concurrent reader threads may share one service while an ``ANALYZE``
    or maintenance ``publish`` refreshes the catalog underneath them.  The
    version re-check on every probe guarantees that once a catalog mutation
    completes, no later probe is answered from the stale compiled table.

    Parameters
    ----------
    catalog:
        The statistics catalog to serve from.  The service holds a
        reference (not a copy); catalog mutations are picked up through
        the version counters.
    max_tables:
        LRU bound on concurrently cached compiled tables.
    on_error:
        Service-wide policy for probes that cannot be answered —
        ``"fallback"`` (default), ``"nan"``, or ``"raise"``; see the
        module docstring.  Every estimate entry point also accepts a
        per-call ``on_error=`` override.
    """

    def __init__(
        self,
        catalog: StatsCatalog,
        *,
        max_tables: int = DEFAULT_MAX_TABLES,
        on_error: str = "fallback",
        recovery: Optional[RecoveryReport] = None,
        name: Optional[str] = None,
    ):
        if not isinstance(catalog, StatsCatalog):
            raise TypeError(
                f"catalog must be a StatsCatalog, got {type(catalog).__name__}"
            )
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
            )
        if name is not None and not isinstance(name, str):
            raise TypeError(f"name must be a str, got {type(name).__name__}")
        self._catalog = catalog
        self._max_tables = ensure_positive_int(max_tables, "max_tables")
        self._on_error = on_error
        self._slots: OrderedDict[tuple[str, str], _CompiledSlot] = OrderedDict()
        # (relation, attribute) pairs recovery withheld; attribute None
        # quarantines the whole relation.  Probes touching them degrade
        # through the on_error policy with reason "quarantined-statistics".
        self._quarantined: set[tuple[str, Optional[str]]] = set()
        # Pairs the maintenance agent is actively rebuilding.  Refines the
        # degradation reason of *quarantined* pairs to "rebuild-in-progress";
        # healthy pairs in this set serve normally from the last snapshot.
        self._rebuilding: set[tuple[str, Optional[str]]] = set()
        self._lock = threading.RLock()
        self.name = name if name is not None else f"service-{next(_SERVICE_SEQ)}"
        self.metrics = ServiceMetrics()
        # Export the counters through the default registry.  The collector
        # holds only a weak reference to the metrics object (and the lambda
        # captures just the name string), so registration never extends
        # this service's lifetime; its samples disappear when it does.
        service_label = self.name
        obs.get_registry().register_collector(
            lambda metrics: metrics.collect(service=service_label),
            owner=self.metrics,
        )
        if recovery is not None:
            self.apply_recovery(recovery)

    # ------------------------------------------------------------------
    # Compiled-table cache
    # ------------------------------------------------------------------

    @property
    def catalog(self) -> StatsCatalog:
        """The catalog this service answers from."""
        return self._catalog

    @property
    def on_error(self) -> str:
        """The service-wide error policy (per-call overrides allowed)."""
        return self._on_error

    @property
    def max_tables(self) -> int:
        """The LRU bound on cached compiled tables."""
        return self._max_tables

    @property
    def cached_tables(self) -> int:
        """Number of compiled tables currently held."""
        with self._lock:
            return len(self._slots)

    def invalidate(self) -> int:
        """Drop every compiled table; returns how many were discarded."""
        with self._lock:
            dropped = len(self._slots)
            self._slots.clear()
            return dropped

    # ------------------------------------------------------------------
    # Recovery and quarantine
    # ------------------------------------------------------------------

    @property
    def quarantined(self) -> frozenset:
        """The (relation, attribute) pairs currently quarantined.

        An ``attribute`` of ``None`` means the whole relation is held.
        """
        with self._lock:
            return frozenset(self._quarantined)

    def apply_recovery(self, report: RecoveryReport) -> int:
        """Absorb a crash-recovery report; returns entries newly quarantined.

        Every entry the recovery load quarantined is registered so probes
        against it resolve through the ``on_error`` policy (reason
        ``"quarantined-statistics"``) instead of being served from corrupt
        statistics, and the recovery is surfaced in the metrics
        (``recoveries_applied`` / ``entries_quarantined`` /
        ``journal_deltas_replayed``).
        """
        if not isinstance(report, RecoveryReport):
            raise TypeError(
                f"report must be a RecoveryReport, got {type(report).__name__}"
            )
        added = 0
        with self._lock:
            for item in report.quarantined:
                if item.relation is None:
                    continue
                key = (item.relation, item.attribute)
                if key not in self._quarantined:
                    self._quarantined.add(key)
                    if item.attribute is None:
                        # A whole-relation hold must evict every compiled
                        # slot under the relation, or stale tables would
                        # outlive clear_quarantine.
                        for slot_key in [
                            k for k in self._slots if k[0] == item.relation
                        ]:
                            del self._slots[slot_key]
                    else:
                        self._slots.pop(key, None)
                    added += 1
        self.metrics.record_recovery(
            entries_quarantined=added, deltas_replayed=report.journal_replayed
        )
        return added

    def quarantine(self, relation: str, attribute: Optional[str] = None) -> None:
        """Manually hold *relation* (or one attribute) out of serving."""
        if not isinstance(relation, str) or not relation:
            raise TypeError(f"relation must be a non-empty str, got {relation!r}")
        with self._lock:
            self._quarantined.add((relation, attribute))
            if attribute is None:
                for key in [k for k in self._slots if k[0] == relation]:
                    del self._slots[key]
            else:
                self._slots.pop((relation, attribute), None)

    def clear_quarantine(
        self, relation: str, attribute: Optional[str] = None
    ) -> bool:
        """Release a quarantine (after re-ANALYZE/repair); True if held."""
        with self._lock:
            try:
                self._quarantined.remove((relation, attribute))
                return True
            except KeyError:
                return False

    def mark_rebuilding(
        self, relation: str, attribute: Optional[str] = None
    ) -> None:
        """Note that a maintenance rebuild of *relation* is underway.

        This never degrades serving by itself: probes against a healthy
        entry keep answering from the last published snapshot until the
        rebuilt one is ``put`` into the catalog (the version bump then
        recompiles tables lazily).  Only when the pair is *also*
        quarantined does the degradation reason refine from
        ``"quarantined-statistics"`` to ``"rebuild-in-progress"``.
        """
        if not isinstance(relation, str) or not relation:
            raise TypeError(f"relation must be a non-empty str, got {relation!r}")
        with self._lock:
            self._rebuilding.add((relation, attribute))

    def clear_rebuilding(
        self, relation: str, attribute: Optional[str] = None
    ) -> bool:
        """The rebuild finished (or failed); True if it was marked."""
        with self._lock:
            try:
                self._rebuilding.remove((relation, attribute))
                return True
            except KeyError:
                return False

    @property
    def rebuilding(self) -> frozenset:
        """The (relation, attribute) pairs with a rebuild underway."""
        with self._lock:
            return frozenset(self._rebuilding)

    def _quarantine_reason(self, relation: str, attribute: Optional[str]) -> str:
        """The degradation reason for a quarantined pair right now."""
        with self._lock:
            if (
                (relation, attribute) in self._rebuilding
                or (relation, None) in self._rebuilding
            ):
                return REASON_REBUILD_IN_PROGRESS
        return REASON_QUARANTINED

    def _is_quarantined(self, relation: str, attribute: Optional[str]) -> bool:
        # Lock-free emptiness probe: quarantine is rare, and a stale read
        # only delays (or briefly extends) quarantine by one request — the
        # authoritative check below retakes the lock before answering.
        if not self._quarantined:  # repolint: disable=R009
            return False
        with self._lock:
            return (
                (relation, attribute) in self._quarantined
                or (relation, None) in self._quarantined
            )

    @staticmethod
    def _quarantined_error(
        relation: str, attribute: Optional[str]
    ) -> Callable[[], Exception]:
        target = relation if attribute is None else f"{relation}.{attribute}"
        return lambda: RuntimeError(
            f"statistics for {target} are quarantined after crash recovery; "
            "re-run ANALYZE or `repro stats repair` before serving them"
        )

    def _slot_for_entry(self, entry: CatalogEntry) -> _CompiledSlot:
        key = (entry.relation, entry.attribute)
        with self._lock:
            slot = self._slots.get(key)
            if slot is not None and slot.version == entry.version:
                self.metrics.record_table_hit()
                self._slots.move_to_end(key)
                return slot
            self.metrics.record_table_miss()
            started = perf_counter()
            try:
                with span(
                    "serve.table.compile",
                    relation=entry.relation,
                    attribute=entry.attribute,
                ):
                    slot = _CompiledSlot.from_entry(entry)
            except Exception as exc:
                # Nothing is cached for a failed compile: a re-ANALYZE
                # replaces the entry (new version) and compiles fresh.
                self.metrics.record_compile_failure()
                raise TableCompileError(
                    f"failed to compile serving tables for "
                    f"{entry.relation}.{entry.attribute}: {exc}"
                ) from exc
            self.metrics.record_compile(perf_counter() - started)
            self._slots[key] = slot
            self._slots.move_to_end(key)
            evicted = 0
            while len(self._slots) > self._max_tables:
                self._slots.popitem(last=False)
                evicted += 1
            if evicted:
                self.metrics.record_eviction(evicted)
                obs.emit_event(
                    "serve.table.evicted",
                    service=self.name,
                    count=evicted,
                    cached=len(self._slots),
                )
            return slot

    def _slot(self, relation: str, attribute: str) -> Optional[_CompiledSlot]:
        entry = self._catalog.get(relation, attribute)
        if entry is None:
            return None
        return self._slot_for_entry(entry)

    # ------------------------------------------------------------------
    # Error-policy plumbing
    # ------------------------------------------------------------------

    def _resolve_policy(self, override: Optional[str]) -> str:
        policy = self._on_error if override is None else override
        if policy not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, got {policy!r}"
            )
        return policy

    def _emit_trace(self, trace: Optional[TraceHook], record: ProbeTrace) -> None:
        """Deliver *record* to the ``trace=`` hook without letting it fail us.

        Observer code must never fail the observed path: a hook that
        raises would otherwise propagate out of the batch and abort its
        sibling probes.  The exception is swallowed and counted in
        ``ServiceMetrics.trace_hook_errors`` (exported as
        ``repro_serve_trace_hook_errors_total``).
        """
        if trace is None:
            return
        try:
            trace(record)
        except Exception:
            self.metrics.record_trace_hook_error()

    def _degrade_group(
        self,
        policy: str,
        *,
        kind: str,
        relation: str,
        attribute: Optional[str],
        reason: str,
        fallback: float,
        error: Callable[[], Exception],
        trace: Optional[TraceHook],
        positions: Optional[Sequence[int]],
        count: int,
    ) -> float:
        """Resolve a whole group of unanswerable probes through the policy.

        Metrics are batch-level — one counter add for the *count* probes,
        never one per probe; the per-probe loop exists only when a
        ``trace=`` hook wants individual positions.  Returns the one value
        every probe in the group resolves to (callers scatter it with a
        mask/fancy-index assignment).
        """
        if policy == "raise":
            raise error()
        value = math.nan if policy == "nan" else fallback
        self.metrics.record_degraded(reason, count)
        if reason in (REASON_QUARANTINED, REASON_REBUILD_IN_PROGRESS):
            self.metrics.record_quarantined(count)
        if trace is not None:
            for index in range(count):
                self._emit_trace(
                    trace,
                    ProbeTrace(
                        kind=kind,
                        relation=relation,
                        attribute=attribute,
                        reason=reason,
                        value=value,
                        degraded=True,
                        position=_probe_position(positions, index),
                    ),
                )
        return value

    def _degrade(
        self,
        policy: str,
        *,
        kind: str,
        relation: str,
        attribute: Optional[str],
        reason: str,
        fallback: float,
        error: Callable[[], Exception],
        trace: Optional[TraceHook],
        position: Optional[int],
    ) -> float:
        """Resolve one unanswerable probe through the error policy."""
        return self._degrade_group(
            policy,
            kind=kind,
            relation=relation,
            attribute=attribute,
            reason=reason,
            fallback=fallback,
            error=error,
            trace=trace,
            positions=None if position is None else [position],
            count=1,
        )

    def _note_fallbacks(
        self,
        *,
        kind: str,
        relation: str,
        attribute: Optional[str],
        reason: str,
        value: float,
        trace: Optional[TraceHook],
        positions: Optional[Sequence[int]],
        count: int,
    ) -> None:
        """Count (and optionally trace) no-statistics fallback answers."""
        self.metrics.record_fallback(count)
        if trace is None:
            return
        for index in range(count):
            self._emit_trace(
                trace,
                ProbeTrace(
                    kind=kind,
                    relation=relation,
                    attribute=attribute,
                    reason=reason,
                    value=value,
                    degraded=False,
                    position=_probe_position(positions, index),
                ),
            )

    @staticmethod
    def _unknown_relation_error(relation: str) -> Callable[[], Exception]:
        return lambda: KeyError(
            f"no statistics for relation {relation!r}; run ANALYZE"
        )

    # ------------------------------------------------------------------
    # Scan and selection estimates
    # ------------------------------------------------------------------

    def scan_cardinality(self, relation: str) -> float:
        """Tuple count of *relation* according to the catalog.

        Deliberately strict: raises ``KeyError`` for a relation with no
        statistics, regardless of the ``on_error`` policy — this is the
        introspection entry point, not an estimate.  Estimate paths route
        unknown relations through the policy instead (via the catalog's
        per-relation row index, :meth:`StatsCatalog.relation_rows`).
        """
        rows = self._catalog.relation_rows(relation)
        if rows is None:
            raise KeyError(f"no statistics for relation {relation!r}; run ANALYZE")
        return rows

    def _answer_equalities(
        self,
        relation: str,
        attribute: str,
        values: Sequence[Hashable],
        *,
        policy: str,
        trace: Optional[TraceHook],
        positions: Optional[Sequence[int]] = None,
        kind: str = "equality",
    ) -> np.ndarray:
        """Answer one (relation, attribute) equality group, fault-isolated.

        ``values`` may be a plain sequence or a pre-converted numeric
        ndarray (the frame fast path); a numeric array skips the
        per-value hashability scan outright — nothing in it can be
        unhashable.  Degradations resolve mask-based: one
        :meth:`_degrade_group` per (reason, group), scattered with a
        single fancy-index assignment.
        """
        count = len(values)
        if self._is_quarantined(relation, attribute):
            rows = self._catalog.relation_rows(relation)
            fallback = 0.0 if rows is None else rows * DEFAULT_EQ_SELECTIVITY
            value = self._degrade_group(
                policy,
                kind=kind,
                relation=relation,
                attribute=attribute,
                reason=self._quarantine_reason(relation, attribute),
                fallback=fallback,
                error=self._quarantined_error(relation, attribute),
                trace=trace,
                positions=positions,
                count=count,
            )
            return np.full(count, value, dtype=np.float64)
        arr = probe_code_array(values)
        if arr is not None:
            good_index: Optional[list[int]] = None
            bad_index: list[int] = []
            good_values: Union[np.ndarray, list[Hashable]] = arr
        else:
            good_index = []
            bad_index = []
            good_list: list[Hashable] = []
            for index, value in enumerate(values):
                try:
                    hash(value)
                except TypeError:
                    bad_index.append(index)
                else:
                    good_index.append(index)
                    good_list.append(value)
            good_values = good_list
        out: Optional[np.ndarray] = None
        if bad_index:
            out = np.empty(count, dtype=np.float64)
            first_bad = values[bad_index[0]]
            bad_value = self._degrade_group(
                policy,
                kind=kind,
                relation=relation,
                attribute=attribute,
                reason=REASON_UNHASHABLE_VALUE,
                fallback=0.0,
                error=lambda value=first_bad: TypeError(
                    f"unhashable probe value of type {type(value).__name__} "
                    f"for {relation}.{attribute}"
                ),
                trace=trace,
                positions=(
                    None
                    if positions is None
                    else [positions[index] for index in bad_index]
                ),
                count=len(bad_index),
            )
            out[np.asarray(bad_index, dtype=np.intp)] = bad_value
            if not good_values:
                return out
        good_count = len(good_values)
        good_positions = positions
        if positions is not None and good_index is not None and bad_index:
            good_positions = [positions[index] for index in good_index]
        try:
            slot = self._slot(relation, attribute)
        except TableCompileError as exc:
            rows = self._catalog.relation_rows(relation)
            fallback = 0.0 if rows is None else rows * DEFAULT_EQ_SELECTIVITY
            value = self._degrade_group(
                policy,
                kind=kind,
                relation=relation,
                attribute=attribute,
                reason=REASON_COMPILE_FAILED,
                fallback=fallback,
                error=lambda exc=exc: exc,
                trace=trace,
                positions=good_positions,
                count=good_count,
            )
            answers: np.ndarray = np.full(good_count, value, dtype=np.float64)
        else:
            if slot is not None:
                answers = slot.frequency_batch(good_values)
            else:
                rows = self._catalog.relation_rows(relation)
                if rows is None:
                    value = self._degrade_group(
                        policy,
                        kind=kind,
                        relation=relation,
                        attribute=attribute,
                        reason=REASON_UNKNOWN_RELATION,
                        fallback=0.0,
                        error=self._unknown_relation_error(relation),
                        trace=trace,
                        positions=good_positions,
                        count=good_count,
                    )
                    answers = np.full(good_count, value, dtype=np.float64)
                else:
                    fallback = rows * DEFAULT_EQ_SELECTIVITY
                    answers = np.full(good_count, fallback, dtype=np.float64)
                    self._note_fallbacks(
                        kind=kind,
                        relation=relation,
                        attribute=attribute,
                        reason=REASON_NO_STATISTICS,
                        value=fallback,
                        trace=trace,
                        positions=good_positions,
                        count=good_count,
                    )
        if not bad_index:
            return np.asarray(answers, dtype=np.float64)
        out[np.asarray(good_index, dtype=np.intp)] = answers
        return out

    def estimate_equalities(
        self,
        relation: str,
        attribute: str,
        values: Sequence[Hashable],
        *,
        on_error: Optional[str] = None,
        trace: Optional[TraceHook] = None,
    ) -> np.ndarray:
        """Equality-selection cardinalities for many probe values at once.

        ``values`` may be a numeric ndarray, which is answered without
        any per-value Python iteration (the array-native fast path).
        """
        policy = self._resolve_policy(on_error)
        if not isinstance(values, np.ndarray):
            values = list(values)
        if len(values) == 0:
            return np.zeros(0, dtype=np.float64)
        result = self._answer_equalities(
            relation, attribute, values, policy=policy, trace=trace
        )
        self.metrics.record_probes("equality", len(values))
        return result

    def estimate_equality(
        self,
        relation: str,
        attribute: str,
        value: Hashable,
        *,
        on_error: Optional[str] = None,
        trace: Optional[TraceHook] = None,
    ) -> float:
        """Scalar equality-selection estimate (same floats as the batch)."""
        return float(
            self.estimate_equalities(
                relation, attribute, [value], on_error=on_error, trace=trace
            )[0]
        )

    def estimate_membership(
        self,
        relation: str,
        attribute: str,
        values: Iterable[Hashable],
        *,
        on_error: Optional[str] = None,
        trace: Optional[TraceHook] = None,
    ) -> float:
        """Disjunctive (``IN``) selection mass over the *distinct* values.

        Clamped to the relation's tuple count: each no-statistics value
        contributes ``0.1·|R|``, so a long ``IN`` list would otherwise
        estimate more tuples than the relation holds.
        """
        policy = self._resolve_policy(on_error)
        distinct: list[Hashable] = []
        seen: set[Hashable] = set()
        for value in values:
            try:
                if value in seen:
                    continue
                seen.add(value)
            except TypeError:
                pass  # unhashable: cannot dedup; each occurrence degrades
            distinct.append(value)
        if not distinct:
            self.metrics.record_probes("membership", 1)
            return 0.0
        mass = float(
            np.sum(
                self._answer_equalities(
                    relation,
                    attribute,
                    distinct,
                    policy=policy,
                    trace=trace,
                    kind="membership",
                ),
                dtype=np.float64,
            )
        )
        self.metrics.record_probes("membership", 1)
        if math.isnan(mass):
            return mass
        rows = self._catalog.relation_rows(relation)
        if rows is None:
            return mass
        return min(mass, rows)

    def _answer_ranges(
        self,
        relation: str,
        attribute: str,
        lows: Sequence[Optional[Hashable]],
        highs: Sequence[Optional[Hashable]],
        include_low: bool,
        include_high: bool,
        *,
        policy: str,
        trace: Optional[TraceHook],
        positions: Optional[Sequence[int]] = None,
        low_codes: Optional[np.ndarray] = None,
        high_codes: Optional[np.ndarray] = None,
        low_open: Optional[np.ndarray] = None,
        high_open: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Answer one range group, isolating unanswerable probes.

        ``low_codes``/``high_codes`` are optional pre-converted float64
        bound columns (open bounds at ±inf) from a
        :class:`~repro.serve.frame.ProbeFrame`, with
        ``low_open``/``high_open`` their open-bound masks; they are
        consulted only when the compiled table itself is numeric, so
        demoted/exact tables keep comparing the *original* bounds
        exactly.  Degradations are mask-based: one :meth:`_degrade_group`
        call per (reason, group).
        """
        count = len(lows)
        rows = self._catalog.relation_rows(relation)
        if self._is_quarantined(relation, attribute):
            fallback = 0.0 if rows is None else rows * DEFAULT_RANGE_SELECTIVITY
            value = self._degrade_group(
                policy,
                kind="range",
                relation=relation,
                attribute=attribute,
                reason=self._quarantine_reason(relation, attribute),
                fallback=fallback,
                error=self._quarantined_error(relation, attribute),
                trace=trace,
                positions=positions,
                count=count,
            )
            return np.full(count, value, dtype=np.float64)
        try:
            slot = self._slot(relation, attribute)
        except TableCompileError as exc:
            fallback = 0.0 if rows is None else rows * DEFAULT_RANGE_SELECTIVITY
            value = self._degrade_group(
                policy,
                kind="range",
                relation=relation,
                attribute=attribute,
                reason=REASON_COMPILE_FAILED,
                fallback=fallback,
                error=lambda exc=exc: exc,
                trace=trace,
                positions=positions,
                count=count,
            )
            return np.full(count, value, dtype=np.float64)
        if slot is None:
            if rows is None:
                value = self._degrade_group(
                    policy,
                    kind="range",
                    relation=relation,
                    attribute=attribute,
                    reason=REASON_UNKNOWN_RELATION,
                    fallback=0.0,
                    error=self._unknown_relation_error(relation),
                    trace=trace,
                    positions=positions,
                    count=count,
                )
                return np.full(count, value, dtype=np.float64)
            fallback = rows * DEFAULT_RANGE_SELECTIVITY
            self._note_fallbacks(
                kind="range",
                relation=relation,
                attribute=attribute,
                reason=REASON_NO_STATISTICS,
                value=fallback,
                trace=trace,
                positions=positions,
                count=count,
            )
            return np.full(count, fallback, dtype=np.float64)
        table = slot.histogram_table
        guess = (
            rows if rows is not None else slot.total_tuples
        ) * DEFAULT_RANGE_SELECTIVITY
        if table is None:
            self._note_fallbacks(
                kind="range",
                relation=relation,
                attribute=attribute,
                reason=REASON_NO_HISTOGRAM,
                value=guess,
                trace=trace,
                positions=positions,
                count=count,
            )
            return np.full(count, guess, dtype=np.float64)
        if not table.is_orderable:
            value = self._degrade_group(
                policy,
                kind="range",
                relation=relation,
                attribute=attribute,
                reason=REASON_UNORDERABLE_DOMAIN,
                fallback=guess,
                error=lambda: ValueError(
                    "range estimation needs an orderable domain; "
                    f"the {relation}.{attribute} histogram's values are "
                    "not mutually comparable"
                ),
                trace=trace,
                positions=positions,
                count=count,
            )
            return np.full(count, value, dtype=np.float64)
        if table.is_numeric:
            bounds = (
                (low_codes, high_codes, low_open, high_open)
                if low_codes is not None and high_codes is not None
                else range_bound_arrays(lows, highs)
            )
            if bounds is not None:
                # Pure array path: numeric bounds over a numeric table
                # cannot raise, so no per-probe isolation is needed.
                return table.range_batch(
                    bounds[0],
                    bounds[1],
                    include_low=include_low,
                    include_high=include_high,
                    low_open=bounds[2],
                    high_open=bounds[3],
                )
        else:
            try:
                return table.range_batch(
                    lows, highs, include_low=include_low, include_high=include_high
                )
            except TypeError:
                pass  # some bound is incomparable with the domain
        # Mixed-quality bounds: isolate per probe, then resolve every
        # incomparable bound through the policy in one group call.
        out = np.empty(count, dtype=np.float64)
        failed_index: list[int] = []
        first_error: Optional[tuple] = None
        for index, (low, high) in enumerate(zip(lows, highs)):
            try:
                out[index] = table.range_sum(
                    low, high, include_low=include_low, include_high=include_high
                )
            except (TypeError, OverflowError):
                failed_index.append(index)
                if first_error is None:
                    first_error = (low, high)
        if failed_index:
            value = self._degrade_group(
                policy,
                kind="range",
                relation=relation,
                attribute=attribute,
                reason=REASON_INCOMPARABLE_BOUND,
                fallback=guess,
                error=lambda pair=first_error: TypeError(
                    f"range bounds ({pair[0]!r}, {pair[1]!r}) are not "
                    f"comparable with the {relation}.{attribute} domain"
                ),
                trace=trace,
                positions=(
                    None
                    if positions is None
                    else [positions[index] for index in failed_index]
                ),
                count=len(failed_index),
            )
            out[np.asarray(failed_index, dtype=np.intp)] = value
        return out

    def estimate_ranges(
        self,
        relation: str,
        attribute: str,
        lows: Sequence[Optional[Hashable]],
        highs: Sequence[Optional[Hashable]],
        *,
        include_low: bool = True,
        include_high: bool = True,
        on_error: Optional[str] = None,
        trace: Optional[TraceHook] = None,
    ) -> np.ndarray:
        """Range-selection cardinalities for many (low, high) probes.

        Requires a value-aware histogram; without one every probe falls
        back to the System R ``|R|/3`` guess.
        """
        policy = self._resolve_policy(on_error)
        lows = list(lows)
        highs = list(highs)
        if len(lows) != len(highs):
            raise ValueError(
                f"lows and highs must align, got {len(lows)} and {len(highs)}"
            )
        if not lows:
            return np.zeros(0, dtype=np.float64)
        result = self._answer_ranges(
            relation,
            attribute,
            lows,
            highs,
            include_low,
            include_high,
            policy=policy,
            trace=trace,
        )
        self.metrics.record_probes("range", len(lows))
        return result

    def estimate_range(
        self,
        relation: str,
        attribute: str,
        low: Optional[Hashable] = None,
        high: Optional[Hashable] = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
        on_error: Optional[str] = None,
        trace: Optional[TraceHook] = None,
    ) -> float:
        """Scalar range-selection estimate (same floats as the batch)."""
        return float(
            self.estimate_ranges(
                relation,
                attribute,
                [low],
                [high],
                include_low=include_low,
                include_high=include_high,
                on_error=on_error,
                trace=trace,
            )[0]
        )

    def estimate_not_equal(
        self,
        relation: str,
        attribute: str,
        value: Hashable,
        *,
        on_error: Optional[str] = None,
        trace: Optional[TraceHook] = None,
    ) -> float:
        """``attribute ≠ value`` — complement of the equality selection.

        Clamped to the relation's tuple count, and counted in the metrics
        on every path (including the no-statistics fallback).
        """
        policy = self._resolve_policy(on_error)
        result = self._answer_not_equal(
            relation, attribute, value, policy=policy, trace=trace
        )
        self.metrics.record_probes("not_equal", 1)
        return result

    def _answer_not_equal(
        self,
        relation: str,
        attribute: str,
        value: Hashable,
        *,
        policy: str,
        trace: Optional[TraceHook],
    ) -> float:
        rows = self._catalog.relation_rows(relation)
        if self._is_quarantined(relation, attribute):
            return self._degrade(
                policy,
                kind="not_equal",
                relation=relation,
                attribute=attribute,
                reason=self._quarantine_reason(relation, attribute),
                fallback=(
                    0.0 if rows is None else rows * (1.0 - DEFAULT_EQ_SELECTIVITY)
                ),
                error=self._quarantined_error(relation, attribute),
                trace=trace,
                position=None,
            )
        try:
            slot = self._slot(relation, attribute)
        except TableCompileError as exc:
            return self._degrade(
                policy,
                kind="not_equal",
                relation=relation,
                attribute=attribute,
                reason=REASON_COMPILE_FAILED,
                fallback=(
                    0.0 if rows is None else rows * (1.0 - DEFAULT_EQ_SELECTIVITY)
                ),
                error=lambda exc=exc: exc,
                trace=trace,
                position=None,
            )
        if slot is None:
            if rows is None:
                return self._degrade(
                    policy,
                    kind="not_equal",
                    relation=relation,
                    attribute=attribute,
                    reason=REASON_UNKNOWN_RELATION,
                    fallback=0.0,
                    error=self._unknown_relation_error(relation),
                    trace=trace,
                    position=None,
                )
            fallback = rows * (1.0 - DEFAULT_EQ_SELECTIVITY)
            self._note_fallbacks(
                kind="not_equal",
                relation=relation,
                attribute=attribute,
                reason=REASON_NO_STATISTICS,
                value=fallback,
                trace=trace,
                positions=None,
                count=1,
            )
            return fallback
        equality = float(
            self._answer_equalities(
                relation,
                attribute,
                [value],
                policy=policy,
                trace=trace,
                kind="not_equal",
            )[0]
        )
        if math.isnan(equality):
            return equality
        result = max(0.0, slot.total_tuples - equality)
        if rows is not None:
            result = min(result, rows)
        return result

    # ------------------------------------------------------------------
    # Join estimates
    # ------------------------------------------------------------------

    def estimate_join(
        self,
        left_relation: str,
        left_attribute: str,
        right_relation: str,
        right_attribute: str,
        *,
        on_error: Optional[str] = None,
        trace: Optional[TraceHook] = None,
    ) -> float:
        """Two-way equality-join cardinality between two base relations."""
        policy = self._resolve_policy(on_error)
        result = self._answer_join(
            left_relation,
            left_attribute,
            right_relation,
            right_attribute,
            policy=policy,
            trace=trace,
            positions=None,
        )
        self.metrics.record_probes("join", 1)
        return result

    def _answer_join(
        self,
        left_relation: str,
        left_attribute: str,
        right_relation: str,
        right_attribute: str,
        *,
        policy: str,
        trace: Optional[TraceHook],
        positions: Optional[Sequence[int]],
        count: int = 1,
    ) -> float:
        """Answer one join group (identical probes share one computation)."""
        quarantined_side: Optional[tuple[str, str]] = None
        if self._is_quarantined(left_relation, left_attribute):
            quarantined_side = (left_relation, left_attribute)
        elif self._is_quarantined(right_relation, right_attribute):
            quarantined_side = (right_relation, right_attribute)
        if quarantined_side is not None:
            rows_left = self._catalog.relation_rows(left_relation)
            rows_right = self._catalog.relation_rows(right_relation)
            fallback = (
                rows_left * rows_right * DEFAULT_EQ_SELECTIVITY
                if rows_left is not None and rows_right is not None
                else 0.0
            )
            return self._degrade_group(
                policy,
                kind="join",
                relation=quarantined_side[0],
                attribute=quarantined_side[1],
                reason=self._quarantine_reason(*quarantined_side),
                fallback=fallback,
                error=self._quarantined_error(*quarantined_side),
                trace=trace,
                positions=positions,
                count=count,
            )
        left = self._catalog.get(left_relation, left_attribute)
        right = self._catalog.get(right_relation, right_attribute)
        if left is not None and right is not None:
            try:
                return self.join_entries(left, right)
            except TableCompileError as exc:
                rows_left = self._catalog.relation_rows(left_relation)
                rows_right = self._catalog.relation_rows(right_relation)
                fallback = (
                    rows_left * rows_right * DEFAULT_EQ_SELECTIVITY
                    if rows_left is not None and rows_right is not None
                    else 0.0
                )
                return self._degrade_group(
                    policy,
                    kind="join",
                    relation=left_relation,
                    attribute=left_attribute,
                    reason=REASON_COMPILE_FAILED,
                    fallback=fallback,
                    error=lambda exc=exc: exc,
                    trace=trace,
                    positions=positions,
                    count=count,
                )
        rows_left = self._catalog.relation_rows(left_relation)
        rows_right = self._catalog.relation_rows(right_relation)
        if rows_left is None or rows_right is None:
            missing = left_relation if rows_left is None else right_relation
            return self._degrade_group(
                policy,
                kind="join",
                relation=missing,
                attribute=None,
                reason=REASON_UNKNOWN_RELATION,
                fallback=0.0,
                error=self._unknown_relation_error(missing),
                trace=trace,
                positions=positions,
                count=count,
            )
        fallback = rows_left * rows_right * DEFAULT_EQ_SELECTIVITY
        self._note_fallbacks(
            kind="join",
            relation=left_relation,
            attribute=left_attribute,
            reason=REASON_NO_STATISTICS,
            value=fallback,
            trace=trace,
            positions=positions,
            count=count,
        )
        return fallback

    def join_entries(self, left: CatalogEntry, right: CatalogEntry) -> float:
        """Join estimate from two catalog entries.

        Preference order of the available information:

        1. **Full value-aware histograms on both sides** — compiled-table
           intersection and dot product (Theorem 2.1 on the two histogram
           matrices).
        2. **Compact (end-biased) statistics** — explicit matches exactly;
           implicit remainders match under uniformity + containment.
        3. **Uniform assumption** — ``|L|·|R| / max(d_L, d_R)``.
        """
        left_slot = self._slot_for_entry(left)
        right_slot = self._slot_for_entry(right)
        if (
            left_slot.histogram_table is not None
            and right_slot.histogram_table is not None
        ):
            return left_slot.histogram_table.join_with(right_slot.histogram_table)
        left_compact = left_slot.join_compact
        right_compact = right_slot.join_compact
        if left_compact is None or right_compact is None:
            distinct = max(left_slot.distinct_count, right_slot.distinct_count, 1)
            return left_slot.total_tuples * right_slot.total_tuples / distinct
        return self._join_compacts(left_compact, right_compact)

    @staticmethod
    def _join_compacts(left: CompiledCompact, right: CompiledCompact) -> float:
        total = 0.0
        for value, freq in left.explicit_items():
            if right.has_explicit(value):
                total += freq * right.frequency(value)
            elif right.remainder_count > 0:
                total += freq * right.remainder_average
        for value, freq in right.explicit_items():
            if not left.has_explicit(value) and left.remainder_count > 0:
                total += freq * left.remainder_average
        common_remainder = min(left.remainder_count, right.remainder_count)
        total += common_remainder * left.remainder_average * right.remainder_average
        return total

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------

    def estimate_batch(
        self,
        probes: Union[Sequence[Probe], ProbeFrame],
        *,
        on_error: Optional[str] = None,
        trace: Optional[TraceHook] = None,
        admission: Optional[AdmissionHook] = None,
    ) -> np.ndarray:
        """Answer a heterogeneous batch of probes in one pass.

        Probes are grouped by (relation, attribute) — and, for ranges, by
        bound inclusivity — so each group is answered by one vectorized
        sweep over its compiled table.  The result vector is aligned with
        the input order.

        Accepts either a probe sequence or a pre-built
        :class:`~repro.serve.frame.ProbeFrame`.  Passing a frame skips
        the per-probe grouping pass entirely, so a frame built once can
        be re-answered (e.g. against refreshed statistics) at pure
        array-sweep cost.

        Fault-isolated: an unanswerable probe (unknown relation,
        unorderable range domain, unhashable value) resolves individually
        through the ``on_error`` policy and never aborts the batch under
        the default ``"fallback"`` (or ``"nan"``) policy.  Batch latency
        is recorded into ``ServiceMetrics.latency_counts``; metric and
        trace bookkeeping is batch-level — one counter update per
        (kind, group), never per probe.

        ``admission=`` plugs quota/backpressure control into the same
        degradation machinery: the hook sees the whole batch up front and
        names a rejection reason per refused probe (see
        :data:`AdmissionHook`); refused probes resolve through the
        ``on_error`` policy with that reason and are counted in
        ``ServiceMetrics.rejected_probes`` — the network server's
        per-tenant quotas ride this hook.
        """
        policy = self._resolve_policy(on_error)
        frame = probes if isinstance(probes, ProbeFrame) else ProbeFrame.from_probes(probes)
        started = perf_counter()
        with span("serve.batch", service=self.name, probes=len(frame)):
            try:
                out = self._answer_frame(frame, policy, trace, admission)
            except Exception:
                self.metrics.record_batch(failed=True)
                raise
        self.metrics.record_batch()
        self.metrics.record_latency(perf_counter() - started)
        return out

    def _probe_kind(self, probe: Probe) -> str:
        if isinstance(probe, EqualityProbe):
            return "equality"
        if isinstance(probe, RangeProbe):
            return "range"
        return "join"

    def _rejected_fallback(self, probe: Probe) -> float:
        """The bounded fallback served for an admission-rejected probe.

        Mirrors the unanswerable-probe fallbacks: the System R magic
        constants over known relation sizes, ``0.0`` when even the sizes
        are unknown.
        """
        if isinstance(probe, JoinProbe):
            rows_left = self._catalog.relation_rows(probe.left_relation)
            rows_right = self._catalog.relation_rows(probe.right_relation)
            if rows_left is None or rows_right is None:
                return 0.0
            return rows_left * rows_right * DEFAULT_EQ_SELECTIVITY
        rows = self._catalog.relation_rows(probe.relation)
        if rows is None:
            return 0.0
        if isinstance(probe, RangeProbe):
            return rows * DEFAULT_RANGE_SELECTIVITY
        return rows * DEFAULT_EQ_SELECTIVITY

    def _reject_probe(
        self,
        probe: Probe,
        reason: str,
        *,
        policy: str,
        trace: Optional[TraceHook],
        position: int,
    ) -> float:
        """Resolve one admission-rejected probe through the error policy."""
        kind = self._probe_kind(probe)
        if isinstance(probe, JoinProbe):
            relation = probe.left_relation
            attribute: Optional[str] = probe.left_attribute
        else:
            relation = probe.relation
            attribute = probe.attribute
        self.metrics.record_rejected(reason)
        value = self._degrade(
            policy,
            kind=kind,
            relation=relation,
            attribute=attribute,
            reason=reason,
            fallback=self._rejected_fallback(probe),
            error=lambda reason=reason: PermissionError(
                f"probe rejected by admission control: {reason}"
            ),
            trace=trace,
            position=position,
        )
        self.metrics.record_probes(kind, 1)
        return value

    def _apply_admission(
        self,
        probes: Sequence[Probe],
        admission: Optional[AdmissionHook],
    ) -> Optional[Sequence[Optional[str]]]:
        if admission is None:
            return None
        verdicts = admission(probes)
        if verdicts is None:
            return None
        if len(verdicts) != len(probes):
            raise ValueError(
                f"admission hook returned {len(verdicts)} verdicts for "
                f"{len(probes)} probes; they must align"
            )
        return verdicts

    def _answer_batch(
        self,
        probes: Union[Sequence[Probe], ProbeFrame],
        policy: str,
        trace: Optional[TraceHook],
        admission: Optional[AdmissionHook] = None,
    ) -> np.ndarray:
        frame = probes if isinstance(probes, ProbeFrame) else ProbeFrame.from_probes(probes)
        return self._answer_frame(frame, policy, trace, admission)

    def _answer_frame(
        self,
        frame: ProbeFrame,
        policy: str,
        trace: Optional[TraceHook],
        admission: Optional[AdmissionHook] = None,
    ) -> np.ndarray:
        """Answer a pre-grouped frame: one vectorized sweep per group.

        The hot path never touches individual probes — groups carry
        contiguous position/value arrays built by
        :meth:`ProbeFrame.from_probes`, each is answered by one batch
        table call, and the answers are scattered back by position.
        Admission rejections (cold path) are handled up front through a
        boolean mask; surviving group members are sliced out with it.
        """
        out = np.zeros(len(frame), dtype=np.float64)
        verdicts = self._apply_admission(frame.probes, admission)
        rejected: Optional[np.ndarray] = None
        if verdicts is not None:
            mask = np.zeros(len(frame), dtype=bool)
            for position, verdict in enumerate(verdicts):
                if verdict is not None:
                    mask[position] = True
                    out[position] = self._reject_probe(
                        frame.probes[position],
                        str(verdict),
                        policy=policy,
                        trace=trace,
                        position=position,
                    )
            if mask.any():
                rejected = mask
        for group in frame.equality_groups:
            positions = group.positions
            values = group.values
            if rejected is not None:
                keep = ~rejected[positions]
                if not keep.all():
                    if not keep.any():
                        continue
                    positions = positions[keep]
                    if isinstance(values, np.ndarray):
                        values = values[keep]
                    else:
                        values = [values[i] for i in np.nonzero(keep)[0]]
            out[positions] = self._answer_equalities(
                group.relation,
                group.attribute,
                values,
                policy=policy,
                trace=trace,
                positions=positions,
            )
            self.metrics.record_probes("equality", len(positions))
        for group in frame.range_groups:
            positions = group.positions
            lows = group.lows
            highs = group.highs
            low_codes = group.low_codes
            high_codes = group.high_codes
            low_open = group.low_open
            high_open = group.high_open
            if rejected is not None:
                keep = ~rejected[positions]
                if not keep.all():
                    if not keep.any():
                        continue
                    keep_index = np.nonzero(keep)[0]
                    positions = positions[keep]
                    lows = [lows[i] for i in keep_index]
                    highs = [highs[i] for i in keep_index]
                    low_codes = None if low_codes is None else low_codes[keep]
                    high_codes = None if high_codes is None else high_codes[keep]
                    low_open = None if low_open is None else low_open[keep]
                    high_open = None if high_open is None else high_open[keep]
            out[positions] = self._answer_ranges(
                group.relation,
                group.attribute,
                lows,
                highs,
                group.include_low,
                group.include_high,
                policy=policy,
                trace=trace,
                positions=positions,
                low_codes=low_codes,
                high_codes=high_codes,
                low_open=low_open,
                high_open=high_open,
            )
            self.metrics.record_probes("range", len(positions))
        for group in frame.join_groups:
            positions = group.positions
            if rejected is not None:
                keep = ~rejected[positions]
                if not keep.all():
                    if not keep.any():
                        continue
                    positions = positions[keep]
            out[positions] = self._answer_join(
                group.left_relation,
                group.left_attribute,
                group.right_relation,
                group.right_attribute,
                policy=policy,
                trace=trace,
                positions=positions,
                count=len(positions),
            )
            self.metrics.record_probes("join", len(positions))
        return out

    def stats(self) -> ServiceMetrics:
        """A point-in-time snapshot of the service counters."""
        return self.metrics.snapshot()
