"""The batched estimation service: histograms as long-lived serving state.

A production optimizer does not rebuild lookup structures per predicate —
it compiles each catalog histogram once and answers *batches* of probes
against the compiled state.  :class:`EstimationService` is that layer:

* each (relation, attribute) entry of a :class:`~repro.engine.catalog.StatsCatalog`
  is compiled on first touch into a :class:`~repro.serve.tables.CompiledHistogram`
  and/or :class:`~repro.serve.tables.CompiledCompact`;
* compiled tables live in a bounded LRU keyed by the catalog's version
  counters, so an ``ANALYZE`` or a maintenance publish invalidates exactly
  the stale tables;
* :meth:`EstimationService.estimate_batch` accepts arrays of equality /
  range / join probes and returns one numpy vector of cardinalities,
  vectorizing each (relation, attribute) group in a single pass.

Scalar convenience methods answer through the same compiled tables, so the
batched and scalar paths return **bit-identical** floats.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Hashable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.serve.metrics import ServiceMetrics
from repro.serve.tables import CompiledCompact, CompiledHistogram, compile_compact, compile_histogram
from repro.util.validation import ensure_positive_int

#: Fallback equality-join/selection selectivity when no statistics exist —
#: the venerable System R magic constant.
DEFAULT_EQ_SELECTIVITY = 0.1

#: Fallback range selectivity without a value-aware histogram (System R).
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

#: Default bound on the compiled-table LRU.
DEFAULT_MAX_TABLES = 256


@dataclass(frozen=True)
class EqualityProbe:
    """One ``σ_{attribute = value}(relation)`` cardinality request."""

    relation: str
    attribute: str
    value: Hashable


@dataclass(frozen=True)
class RangeProbe:
    """One range-selection cardinality request (``None`` bounds are open)."""

    relation: str
    attribute: str
    low: Optional[Hashable] = None
    high: Optional[Hashable] = None
    include_low: bool = True
    include_high: bool = True


@dataclass(frozen=True)
class JoinProbe:
    """One two-way equality-join cardinality request."""

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str


Probe = Union[EqualityProbe, RangeProbe, JoinProbe]


@dataclass
class _CompiledSlot:
    """Everything the service compiled from one catalog entry."""

    version: int
    total_tuples: float
    distinct_count: int
    histogram_table: Optional[CompiledHistogram]
    stored_compact: Optional[CompiledCompact]
    join_compact: Optional[CompiledCompact]

    @classmethod
    def from_entry(cls, entry: CatalogEntry) -> "_CompiledSlot":
        histogram_table: Optional[CompiledHistogram] = None
        if entry.histogram is not None and entry.histogram.values is not None:
            histogram_table = compile_histogram(entry.histogram)
        stored_compact: Optional[CompiledCompact] = None
        if entry.compact is not None:
            stored_compact = compile_compact(entry.compact)
        # Join estimation may *derive* a compact view from a biased
        # value-aware histogram (the optimizer's MCV fallback ladder).
        join_compact = stored_compact
        if (
            join_compact is None
            and histogram_table is not None
            and entry.histogram.is_biased()
        ):
            join_compact = compile_compact(
                CompactEndBiased.from_histogram(entry.histogram)
            )
        return cls(
            version=entry.version,
            total_tuples=float(entry.total_tuples),
            distinct_count=int(entry.distinct_count),
            histogram_table=histogram_table,
            stored_compact=stored_compact,
            join_compact=join_compact,
        )

    def average_frequency(self) -> float:
        """``T / M`` — the uniform-assumption frequency."""
        if self.distinct_count <= 0:
            return 0.0
        return self.total_tuples / self.distinct_count

    def frequency_batch(self, values: Sequence[Hashable]) -> np.ndarray:
        """Per-value frequencies, preferring the same form the catalog does.

        The preference order mirrors ``CatalogEntry.estimate_frequency``:
        stored compact layout first, then the value-aware histogram, then
        the uniform assumption — so service answers are bit-identical to
        the legacy scalar path.
        """
        if self.stored_compact is not None:
            return self.stored_compact.frequency_batch(values)
        if self.histogram_table is not None:
            return self.histogram_table.equality_batch(values)
        return np.full(len(values), self.average_frequency(), dtype=np.float64)


class EstimationService:
    """Batched, cache-compiled cardinality estimation over a catalog.

    Parameters
    ----------
    catalog:
        The statistics catalog to serve from.  The service holds a
        reference (not a copy); catalog mutations are picked up through
        the version counters.
    max_tables:
        LRU bound on concurrently cached compiled tables.
    """

    def __init__(self, catalog: StatsCatalog, *, max_tables: int = DEFAULT_MAX_TABLES):
        if not isinstance(catalog, StatsCatalog):
            raise TypeError(
                f"catalog must be a StatsCatalog, got {type(catalog).__name__}"
            )
        self._catalog = catalog
        self._max_tables = ensure_positive_int(max_tables, "max_tables")
        self._slots: OrderedDict[tuple[str, str], _CompiledSlot] = OrderedDict()
        self.metrics = ServiceMetrics()

    # ------------------------------------------------------------------
    # Compiled-table cache
    # ------------------------------------------------------------------

    @property
    def catalog(self) -> StatsCatalog:
        """The catalog this service answers from."""
        return self._catalog

    @property
    def cached_tables(self) -> int:
        """Number of compiled tables currently held."""
        return len(self._slots)

    def invalidate(self) -> int:
        """Drop every compiled table; returns how many were discarded."""
        dropped = len(self._slots)
        self._slots.clear()
        return dropped

    def _slot_for_entry(self, entry: CatalogEntry) -> _CompiledSlot:
        key = (entry.relation, entry.attribute)
        slot = self._slots.get(key)
        if slot is not None and slot.version == entry.version:
            self.metrics.table_hits += 1
            self._slots.move_to_end(key)
            return slot
        self.metrics.table_misses += 1
        started = perf_counter()
        slot = _CompiledSlot.from_entry(entry)
        self.metrics.compile_seconds += perf_counter() - started
        self._slots[key] = slot
        self._slots.move_to_end(key)
        while len(self._slots) > self._max_tables:
            self._slots.popitem(last=False)
            self.metrics.tables_evicted += 1
        return slot

    def _slot(self, relation: str, attribute: str) -> Optional[_CompiledSlot]:
        entry = self._catalog.get(relation, attribute)
        if entry is None:
            return None
        return self._slot_for_entry(entry)

    # ------------------------------------------------------------------
    # Scan and selection estimates
    # ------------------------------------------------------------------

    def scan_cardinality(self, relation: str) -> float:
        """Tuple count of *relation* according to the catalog."""
        totals = [
            e.total_tuples for e in self._catalog.entries() if e.relation == relation
        ]
        if not totals:
            raise KeyError(f"no statistics for relation {relation!r}; run ANALYZE")
        return max(totals)

    def estimate_equalities(
        self, relation: str, attribute: str, values: Sequence[Hashable]
    ) -> np.ndarray:
        """Equality-selection cardinalities for many probe values at once."""
        values = list(values)
        self.metrics.probes_served += len(values)
        if not values:
            return np.zeros(0, dtype=np.float64)
        slot = self._slot(relation, attribute)
        if slot is None:
            fallback = self.scan_cardinality(relation) * DEFAULT_EQ_SELECTIVITY
            return np.full(len(values), fallback, dtype=np.float64)
        return slot.frequency_batch(values)

    def estimate_equality(self, relation: str, attribute: str, value: Hashable) -> float:
        """Scalar equality-selection estimate (same floats as the batch)."""
        return float(self.estimate_equalities(relation, attribute, [value])[0])

    def estimate_membership(
        self, relation: str, attribute: str, values: Iterable[Hashable]
    ) -> float:
        """Disjunctive (``IN``) selection mass over the *distinct* values."""
        distinct = list(dict.fromkeys(values))
        if not distinct:
            return 0.0
        return float(
            np.sum(self.estimate_equalities(relation, attribute, distinct), dtype=np.float64)
        )

    def estimate_ranges(
        self,
        relation: str,
        attribute: str,
        lows: Sequence[Optional[Hashable]],
        highs: Sequence[Optional[Hashable]],
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> np.ndarray:
        """Range-selection cardinalities for many (low, high) probes.

        Requires a value-aware histogram; without one every probe falls
        back to the System R ``|R|/3`` guess.
        """
        lows = list(lows)
        highs = list(highs)
        if len(lows) != len(highs):
            raise ValueError(
                f"lows and highs must align, got {len(lows)} and {len(highs)}"
            )
        self.metrics.probes_served += len(lows)
        if not lows:
            return np.zeros(0, dtype=np.float64)
        slot = self._slot(relation, attribute)
        if slot is None or slot.histogram_table is None:
            fallback = self.scan_cardinality(relation) * DEFAULT_RANGE_SELECTIVITY
            return np.full(len(lows), fallback, dtype=np.float64)
        return slot.histogram_table.range_batch(
            lows, highs, include_low=include_low, include_high=include_high
        )

    def estimate_range(
        self,
        relation: str,
        attribute: str,
        low: Optional[Hashable] = None,
        high: Optional[Hashable] = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> float:
        """Scalar range-selection estimate (same floats as the batch)."""
        return float(
            self.estimate_ranges(
                relation,
                attribute,
                [low],
                [high],
                include_low=include_low,
                include_high=include_high,
            )[0]
        )

    def estimate_not_equal(
        self, relation: str, attribute: str, value: Hashable
    ) -> float:
        """``attribute ≠ value`` — complement of the equality selection."""
        slot = self._slot(relation, attribute)
        if slot is None:
            rows = self.scan_cardinality(relation)
            return rows * (1.0 - DEFAULT_EQ_SELECTIVITY)
        return max(
            0.0,
            slot.total_tuples
            - self.estimate_equality(relation, attribute, value),
        )

    # ------------------------------------------------------------------
    # Join estimates
    # ------------------------------------------------------------------

    def estimate_join(
        self,
        left_relation: str,
        left_attribute: str,
        right_relation: str,
        right_attribute: str,
    ) -> float:
        """Two-way equality-join cardinality between two base relations."""
        self.metrics.probes_served += 1
        left = self._catalog.get(left_relation, left_attribute)
        right = self._catalog.get(right_relation, right_attribute)
        if left is None or right is None:
            rows_left = self.scan_cardinality(left_relation)
            rows_right = self.scan_cardinality(right_relation)
            return rows_left * rows_right * DEFAULT_EQ_SELECTIVITY
        return self.join_entries(left, right)

    def join_entries(self, left: CatalogEntry, right: CatalogEntry) -> float:
        """Join estimate from two catalog entries.

        Preference order of the available information:

        1. **Full value-aware histograms on both sides** — compiled-table
           intersection and dot product (Theorem 2.1 on the two histogram
           matrices).
        2. **Compact (end-biased) statistics** — explicit matches exactly;
           implicit remainders match under uniformity + containment.
        3. **Uniform assumption** — ``|L|·|R| / max(d_L, d_R)``.
        """
        left_slot = self._slot_for_entry(left)
        right_slot = self._slot_for_entry(right)
        if (
            left_slot.histogram_table is not None
            and right_slot.histogram_table is not None
        ):
            return left_slot.histogram_table.join_with(right_slot.histogram_table)
        left_compact = left_slot.join_compact
        right_compact = right_slot.join_compact
        if left_compact is None or right_compact is None:
            distinct = max(left_slot.distinct_count, right_slot.distinct_count, 1)
            return left_slot.total_tuples * right_slot.total_tuples / distinct
        return self._join_compacts(left_compact, right_compact)

    @staticmethod
    def _join_compacts(left: CompiledCompact, right: CompiledCompact) -> float:
        total = 0.0
        for value, freq in left.explicit_items():
            if right.has_explicit(value):
                total += freq * right.frequency(value)
            elif right.remainder_count > 0:
                total += freq * right.remainder_average
        for value, freq in right.explicit_items():
            if not left.has_explicit(value) and left.remainder_count > 0:
                total += freq * left.remainder_average
        common_remainder = min(left.remainder_count, right.remainder_count)
        total += common_remainder * left.remainder_average * right.remainder_average
        return total

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------

    def estimate_batch(self, probes: Sequence[Probe]) -> np.ndarray:
        """Answer a heterogeneous batch of probes in one pass.

        Probes are grouped by (relation, attribute) — and, for ranges, by
        bound inclusivity — so each group is answered by one vectorized
        sweep over its compiled table.  The result vector is aligned with
        the input order.
        """
        probes = list(probes)
        out = np.zeros(len(probes), dtype=np.float64)
        equality_groups: dict[tuple[str, str], tuple[list[int], list[Hashable]]] = {}
        range_groups: dict[
            tuple[str, str, bool, bool],
            tuple[list[int], list[Optional[Hashable]], list[Optional[Hashable]]],
        ] = {}
        joins: list[tuple[int, JoinProbe]] = []
        for position, probe in enumerate(probes):
            if isinstance(probe, EqualityProbe):
                positions, values = equality_groups.setdefault(
                    (probe.relation, probe.attribute), ([], [])
                )
                positions.append(position)
                values.append(probe.value)
            elif isinstance(probe, RangeProbe):
                positions, lows, highs = range_groups.setdefault(
                    (
                        probe.relation,
                        probe.attribute,
                        probe.include_low,
                        probe.include_high,
                    ),
                    ([], [], []),
                )
                positions.append(position)
                lows.append(probe.low)
                highs.append(probe.high)
            elif isinstance(probe, JoinProbe):
                joins.append((position, probe))
            else:
                raise TypeError(
                    f"unsupported probe type {type(probe).__name__}; expected "
                    "EqualityProbe, RangeProbe, or JoinProbe"
                )
        for (relation, attribute), (positions, values) in equality_groups.items():
            out[np.asarray(positions, dtype=np.intp)] = self.estimate_equalities(
                relation, attribute, values
            )
        for (
            (relation, attribute, include_low, include_high),
            (positions, lows, highs),
        ) in range_groups.items():
            out[np.asarray(positions, dtype=np.intp)] = self.estimate_ranges(
                relation,
                attribute,
                lows,
                highs,
                include_low=include_low,
                include_high=include_high,
            )
        for position, probe in joins:
            out[position] = self.estimate_join(
                probe.left_relation,
                probe.left_attribute,
                probe.right_relation,
                probe.right_attribute,
            )
        self.metrics.batches_served += 1
        return out

    def stats(self) -> ServiceMetrics:
        """A point-in-time snapshot of the service counters."""
        return self.metrics.snapshot()
