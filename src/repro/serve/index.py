"""Tree-like bucket index over a compiled table's sorted code array.

"Enhancing Histograms by Tree-Like Bucket Indices" (PAPERS.md) observes
that a histogram whose buckets carry a small search tree answers range
and inequality lookups sublinearly in the bucket count instead of
scanning buckets.  The serving layer's compiled tables keep their whole
domain in one sorted float64 ``codes`` array; this module adds the tree
layer on top of it:

* a contiguous *fence* array holding the maximum code of each
  fixed-fanout chunk (the tree's one internal level — for the domain
  sizes histograms reach, two levels are always enough);
* a first ``np.searchsorted`` over the fences locates each probe's
  chunk in C;
* a fully vectorized binary search refines every probe inside its
  chunk simultaneously — ``ceil(log2(fanout)) + 1`` array passes,
  independent of the domain size.

The index is a drop-in replacement for ``np.searchsorted`` over the
same codes and is required to be **bit-identical** to it for both
``side="left"`` and ``side="right"``, including NaN probes and NaN
codes (property-tested in ``tests/serve/test_index.py``).  Compiled
tables engage it only above :data:`TREE_INDEX_MIN_SIZE` codes, where
the fence array's cache locality pays for the extra bookkeeping; below
that the flat binary search is already effectively free.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

#: Chunk width of the fence level.  64 float64 codes per chunk keeps a
#: chunk inside one or two cache lines' worth of fences while bounding
#: the vectorized refinement at seven passes.
DEFAULT_FANOUT = 64

#: Smallest ``codes`` array for which compiled tables build the index.
TREE_INDEX_MIN_SIZE = 4096


class TreeBucketIndex:
    """Two-level searchsorted over one sorted float64 code array."""

    __slots__ = ("_codes", "_fences", "_fanout", "_depth")

    def __init__(self, codes: Union[np.ndarray, Sequence[float]], fanout: int = DEFAULT_FANOUT):
        codes = np.asarray(codes, dtype=np.float64)
        if codes.ndim != 1:
            raise ValueError(f"codes must be one-dimensional, got shape {codes.shape}")
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout}")
        self._codes = codes
        self._fanout = int(fanout)
        # Fences are chunk maxima: codes[f-1], codes[2f-1], ... — the tail
        # chunk (possibly short) needs no fence, its window is clamped to n.
        self._fences = codes[self._fanout - 1 :: self._fanout]
        depth = 1
        while (1 << depth) < self._fanout:
            depth += 1
        # A window of w elements converges in ceil(log2(w + 1)) halvings.
        self._depth = depth + 1

    @property
    def size(self) -> int:
        """Number of codes indexed."""
        return int(self._codes.size)

    @property
    def fanout(self) -> int:
        """Chunk width of the fence level."""
        return self._fanout

    @property
    def fence_count(self) -> int:
        """Number of internal-level fences."""
        return int(self._fences.size)

    def searchsorted(
        self, probes: Union[np.ndarray, Sequence[float]], side: str = "left"
    ) -> np.ndarray:
        """Insertion positions of *probes*, bit-identical to numpy's.

        Equivalent to ``np.searchsorted(codes, probes, side=side)`` —
        the flat search is the specification, the tree is the layout.
        """
        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        probes = np.asarray(probes, dtype=np.float64)
        if probes.ndim != 1:
            raise ValueError(f"probes must be one-dimensional, got shape {probes.shape}")
        codes = self._codes
        n = codes.size
        chunk = np.searchsorted(self._fences, probes, side=side)
        lo = chunk * self._fanout
        np.minimum(lo, n, out=lo)
        hi = np.minimum(lo + self._fanout, n)
        for _ in range(self._depth):
            active = lo < hi
            if not active.any():
                break
            mid = (lo + hi) >> 1
            vals = codes[np.minimum(mid, n - 1)]
            if side == "left":
                go_right = vals < probes
            else:
                go_right = vals <= probes
            go_right &= active
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
        nan_probes = np.isnan(probes)
        if nan_probes.any():
            # NaN compares false both ways, which would pin a NaN probe to
            # its window start; numpy orders NaN after every other value.
            lo[nan_probes] = np.searchsorted(codes, probes[nan_probes], side=side)
        return lo
