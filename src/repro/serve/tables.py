"""Compiled histogram lookup tables: the serving-time form of a histogram.

The paper's practicality argument (Section 4) is that a histogram's cost must
be paid at *construction* time, not at *lookup* time.  The estimation helpers
in :mod:`repro.core.estimator` historically rebuilt a ``value -> bucket
average`` dict on every call; this module compiles each value-aware histogram
**once** into vectorized lookup state:

* ``codes`` — the domain values, sorted (a float64 array when the domain is
  numeric, a plain sorted sequence otherwise);
* ``approx`` — the per-value bucket-average approximations aligned with the
  sorted order;
* ``prefix`` — exclusive prefix sums of ``approx``, so any range selection is
  two binary searches and one subtraction (Section 6 reduces ranges to
  disjunctive equality selections — a contiguous slice of the sorted domain).

:class:`CompiledCompact` is the analogous form for the catalog's end-biased
layout (explicit values + implicit remainder, Section 4.1/4.2).

Both the scalar estimators and the batched
:class:`~repro.serve.service.EstimationService` answer probes from the same
compiled state, which makes scalar and batched results bit-identical by
construction.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.obs.tracing import span

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.histogram import Histogram
    from repro.engine.catalog import CompactEndBiased

#: Scalar types eligible for the vectorized (``searchsorted``) fast path.
_NUMERIC_TYPES = (int, float, np.integer, np.floating)


def _is_numeric_domain(values: Iterable[Hashable]) -> bool:
    """True when every value is a real number (bools excluded)."""
    return all(
        isinstance(v, _NUMERIC_TYPES) and not isinstance(v, bool) for v in values
    )


class CompiledHistogram:
    """Vectorized lookup state compiled from one value-aware histogram.

    All estimation answers derive from three aligned arrays (sorted values,
    per-value approximations, and their prefix sums), so equality probes are
    one binary search, range probes are two, and joins are a sorted-domain
    intersection followed by a dot product.
    """

    __slots__ = (
        "_by_value",
        "_sorted_values",
        "_codes",
        "_approx",
        "_prefix",
        "_numeric",
        "_orderable",
    )

    def __init__(self, values: Sequence[Hashable], approximations: Sequence[float]):
        if len(values) != len(approximations):
            raise ValueError(
                f"values and approximations must align, got {len(values)} "
                f"values and {len(approximations)} approximations"
            )
        # Last write wins on duplicate values — the semantics of the legacy
        # per-call dict the compiled table replaces.
        by_value: dict[Hashable, float] = {}
        for value, approx in zip(values, approximations):
            by_value[value] = float(approx)
        self._by_value = by_value
        self._numeric = _is_numeric_domain(by_value)
        if self._numeric:
            codes = np.asarray(list(by_value), dtype=np.float64)
            order = np.argsort(codes, kind="stable")
            self._codes = codes[order]
            ordered = list(by_value.items())
            self._sorted_values = [ordered[int(i)][0] for i in order]
            approx_sorted = np.asarray(
                [ordered[int(i)][1] for i in order], dtype=np.float64
            )
            self._orderable = True
        else:
            self._codes = None
            try:
                self._sorted_values = sorted(by_value)
                self._orderable = True
            except TypeError:
                # Mixed, unorderable domain: equality and joins still work;
                # range probes raise.
                self._sorted_values = list(by_value)
                self._orderable = False
            approx_sorted = np.asarray(
                [by_value[v] for v in self._sorted_values], dtype=np.float64
            )
        self._approx = approx_sorted
        prefix = np.zeros(approx_sorted.size + 1, dtype=np.float64)
        np.cumsum(approx_sorted, dtype=np.float64, out=prefix[1:])
        self._prefix = prefix

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_histogram(cls, histogram: "Histogram") -> "CompiledHistogram":
        """Compile a value-aware histogram (value -> bucket average)."""
        if histogram.values is None:
            raise ValueError(
                "estimation by value requires a histogram built with domain values"
            )
        values: list[Hashable] = []
        approximations: list[float] = []
        for bucket in histogram.buckets:
            average = bucket.average
            for value in bucket.values:
                values.append(value)
                approximations.append(average)
        return cls(values, approximations)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def domain_size(self) -> int:
        """Number of distinct domain values recorded."""
        return len(self._by_value)

    @property
    def total(self) -> float:
        """Sum of all per-value approximations (the approximate |R|)."""
        return float(self._prefix[-1])

    @property
    def is_numeric(self) -> bool:
        """True when probes go through the vectorized float64 fast path."""
        return self._numeric

    @property
    def is_orderable(self) -> bool:
        """True when the domain is mutually comparable (ranges answerable)."""
        return self._orderable

    def as_mapping(self) -> dict[Hashable, float]:
        """A fresh ``value -> approximation`` dict (legacy-compatible view)."""
        return dict(self._by_value)

    # ------------------------------------------------------------------
    # Equality
    # ------------------------------------------------------------------

    def equality(self, value: Hashable) -> float:
        """Approximate frequency of one value (0 outside the domain)."""
        try:
            return self._by_value.get(value, 0.0)
        except TypeError:  # unhashable probe value
            return 0.0

    def equality_batch(self, values: Sequence[Hashable]) -> np.ndarray:
        """Approximate frequencies for many probe values in one pass."""
        if self._numeric:
            try:
                probes = np.asarray(values, dtype=np.float64)
            except (TypeError, ValueError):
                probes = None
            if probes is not None and probes.ndim == 1:
                size = self._codes.size
                pos = np.searchsorted(self._codes, probes)
                clipped = np.minimum(pos, size - 1)
                hit = (pos < size) & (self._codes[clipped] == probes)
                return np.where(hit, self._approx[clipped], 0.0)
        return np.asarray([self.equality(v) for v in values], dtype=np.float64)

    def membership(self, values: Iterable[Hashable]) -> float:
        """Disjunctive-equality mass of the *distinct* probe values.

        Repeated probes are deduplicated (first occurrence wins the
        position), because ``a IN (c, c)`` selects each matching tuple once.
        """
        distinct = list(dict.fromkeys(values))
        if not distinct:
            return 0.0
        return float(np.sum(self.equality_batch(distinct), dtype=np.float64))

    def not_equal(self, value: Hashable) -> float:
        """Complement of the equality selection (Section 6)."""
        return float(self.total - self.equality(value))

    # ------------------------------------------------------------------
    # Ranges
    # ------------------------------------------------------------------

    def _bound_indices(
        self,
        low: Optional[Hashable],
        high: Optional[Hashable],
        include_low: bool,
        include_high: bool,
    ) -> tuple[int, int]:
        if not self._orderable:
            raise ValueError(
                "range estimation needs an orderable domain; this histogram's "
                "values are not mutually comparable"
            )
        if self._numeric:
            lo = (
                0
                if low is None
                else int(
                    np.searchsorted(
                        self._codes, low, side="left" if include_low else "right"
                    )
                )
            )
            hi = (
                self._codes.size
                if high is None
                else int(
                    np.searchsorted(
                        self._codes, high, side="right" if include_high else "left"
                    )
                )
            )
            return lo, hi
        lo = (
            0
            if low is None
            else (
                bisect_left(self._sorted_values, low)
                if include_low
                else bisect_right(self._sorted_values, low)
            )
        )
        hi = (
            len(self._sorted_values)
            if high is None
            else (
                bisect_right(self._sorted_values, high)
                if include_high
                else bisect_left(self._sorted_values, high)
            )
        )
        return lo, hi

    def range_sum(
        self,
        low: Optional[Hashable] = None,
        high: Optional[Hashable] = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> float:
        """Mass of a range selection: a prefix-sum difference."""
        lo, hi = self._bound_indices(low, high, include_low, include_high)
        if hi <= lo:
            return 0.0
        return float(self._prefix[hi] - self._prefix[lo])

    def range_batch(
        self,
        lows: Sequence[Optional[Hashable]],
        highs: Sequence[Optional[Hashable]],
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> np.ndarray:
        """Masses of many range selections sharing one inclusivity setting."""
        if len(lows) != len(highs):
            raise ValueError(
                f"lows and highs must align, got {len(lows)} and {len(highs)}"
            )
        if self._numeric and self._orderable:
            try:
                low_arr = np.asarray(
                    [(-np.inf if v is None else v) for v in lows], dtype=np.float64
                )
                high_arr = np.asarray(
                    [(np.inf if v is None else v) for v in highs], dtype=np.float64
                )
            except (TypeError, ValueError):
                low_arr = None
                high_arr = None
            if low_arr is not None:
                lo = np.searchsorted(
                    self._codes, low_arr, side="left" if include_low else "right"
                )
                hi = np.searchsorted(
                    self._codes, high_arr, side="right" if include_high else "left"
                )
                mass = self._prefix[hi] - self._prefix[lo]
                return np.where(hi > lo, mass, 0.0)
        return np.asarray(
            [
                self.range_sum(
                    low, high, include_low=include_low, include_high=include_high
                )
                for low, high in zip(lows, highs)
            ],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def join_with(self, other: "CompiledHistogram") -> float:
        """Two-way equality-join estimate against another compiled table.

        ``Σ_v f̂_left(v) · f̂_right(v)`` over the domain intersection —
        Theorem 2.1 applied to the two histogram matrices.
        """
        if not isinstance(other, CompiledHistogram):
            raise TypeError(
                f"join_with expects a CompiledHistogram, got {type(other).__name__}"
            )
        if self._numeric and other._numeric:
            _, mine, theirs = np.intersect1d(
                self._codes, other._codes, assume_unique=True, return_indices=True
            )
            return float(
                np.dot(self._approx[mine], other._approx[theirs])
            )
        small, big = (
            (self, other) if self.domain_size <= other.domain_size else (other, self)
        )
        total = 0.0
        for value, freq in small._by_value.items():
            match = big._by_value.get(value)
            if match is not None:
                total += freq * match
        return float(total)


class CompiledCompact:
    """Compiled form of the catalog's compact end-biased layout.

    Mirrors :class:`repro.engine.catalog.CompactEndBiased` semantics exactly
    — explicitly stored values answer with their exact frequency; any other
    probe falls into the implicit remainder bucket — but answers batches of
    probes through one vectorized pass when the domain is numeric.
    """

    __slots__ = (
        "_explicit",
        "_codes",
        "_freqs",
        "_numeric",
        "remainder_count",
        "remainder_average",
    )

    def __init__(
        self,
        explicit: dict[Hashable, float],
        remainder_count: int,
        remainder_average: float,
    ):
        if remainder_count < 0:
            raise ValueError(
                f"remainder_count must be non-negative, got {remainder_count}"
            )
        self._explicit = {value: float(freq) for value, freq in explicit.items()}
        self.remainder_count = int(remainder_count)
        self.remainder_average = float(remainder_average)
        self._numeric = _is_numeric_domain(self._explicit)
        if self._numeric and self._explicit:
            codes = np.asarray(list(self._explicit), dtype=np.float64)
            order = np.argsort(codes, kind="stable")
            freqs = np.asarray(list(self._explicit.values()), dtype=np.float64)
            self._codes = codes[order]
            self._freqs = freqs[order]
        else:
            self._codes = None
            self._freqs = None

    @classmethod
    def from_compact(cls, compact: "CompactEndBiased") -> "CompiledCompact":
        """Compile the stored catalog form."""
        return cls(
            dict(compact.explicit), compact.remainder_count, compact.remainder_average
        )

    @property
    def explicit_count(self) -> int:
        """Number of explicitly stored values."""
        return len(self._explicit)

    @property
    def total(self) -> float:
        """Total tuple count represented by the compiled statistics."""
        return float(
            sum(self._explicit.values())
            + self.remainder_count * self.remainder_average
        )

    def explicit_items(self) -> Iterable[tuple[Hashable, float]]:
        """The explicit (value, frequency) pairs in storage order."""
        return self._explicit.items()

    def has_explicit(self, value: Hashable) -> bool:
        """True when *value* is explicitly stored."""
        return value in self._explicit

    def frequency(self, value: Hashable, *, assume_in_domain: bool = True) -> float:
        """Approximate frequency of one value (the "missing bucket" rule)."""
        try:
            found = self._explicit.get(value)
        except TypeError:  # unhashable probe value: matches nothing stored
            found = None
        if found is not None:
            return found
        if assume_in_domain and self.remainder_count > 0:
            return self.remainder_average
        return 0.0

    def frequency_batch(
        self, values: Sequence[Hashable], *, assume_in_domain: bool = True
    ) -> np.ndarray:
        """Approximate frequencies for many probe values in one pass."""
        miss = (
            self.remainder_average
            if (assume_in_domain and self.remainder_count > 0)
            else 0.0
        )
        if self._numeric and self._codes is not None:
            try:
                probes = np.asarray(values, dtype=np.float64)
            except (TypeError, ValueError):
                probes = None
            if probes is not None and probes.ndim == 1:
                size = self._codes.size
                pos = np.searchsorted(self._codes, probes)
                clipped = np.minimum(pos, size - 1)
                hit = (pos < size) & (self._codes[clipped] == probes)
                return np.where(hit, self._freqs[clipped], miss)
        return np.asarray(
            [self.frequency(v, assume_in_domain=assume_in_domain) for v in values],
            dtype=np.float64,
        )


def compile_histogram(histogram: "Histogram") -> CompiledHistogram:
    """Compile (and cache on the histogram) its vectorized lookup table.

    Histograms are immutable, so the compiled table is computed once per
    histogram and reused by every scalar estimator call and every service
    batch that touches it.
    """
    from repro.core.histogram import Histogram

    if not isinstance(histogram, Histogram):
        raise TypeError(
            f"expected a Histogram, got {type(histogram).__name__}"
        )
    cached = getattr(histogram, "_compiled", None)
    if cached is not None:
        return cached
    with span("serve.layout.compile", layout="histogram"):
        compiled = CompiledHistogram.from_histogram(histogram)
    histogram._compiled = compiled
    return compiled


def compile_compact(compact: "CompactEndBiased") -> CompiledCompact:
    """Compile a catalog compact layout into its batched lookup form."""
    from repro.engine.catalog import CompactEndBiased

    if not isinstance(compact, CompactEndBiased):
        raise TypeError(
            f"expected a CompactEndBiased, got {type(compact).__name__}"
        )
    with span("serve.layout.compile", layout="compact"):
        return CompiledCompact.from_compact(compact)
