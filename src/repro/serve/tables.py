"""Compiled histogram lookup tables: the serving-time form of a histogram.

The paper's practicality argument (Section 4) is that a histogram's cost must
be paid at *construction* time, not at *lookup* time.  The estimation helpers
in :mod:`repro.core.estimator` historically rebuilt a ``value -> bucket
average`` dict on every call; this module compiles each value-aware histogram
**once** into fully array-native lookup state:

* ``codes`` — the domain values as one contiguous sorted float64 array;
* ``approx`` — the per-value bucket-average approximations (a float64
  column aligned with the sorted order);
* ``prefix`` — exclusive prefix sums of ``approx``, so any range selection is
  two binary searches and one subtraction (Section 6 reduces ranges to
  disjunctive equality selections — a contiguous slice of the sorted domain);
* above :data:`~repro.serve.index.TREE_INDEX_MIN_SIZE` codes, a
  :class:`~repro.serve.index.TreeBucketIndex` so range/inequality position
  lookups go through a two-level fence tree instead of one flat binary
  search over every bucketed value.

The legacy ``value -> approximation`` dict is retained only as the **exact
fallback** for domains the float64 fast path cannot represent faithfully
(see :func:`probe_code_array` and the compile-time collapse check below).

Numeric fast-path domain rules
------------------------------

A table vectorizes only when the conversion to float64 codes is *lossless*:

* every domain value is a real number (``int``/``float``/numpy scalars;
  ``bool`` is excluded — it is an identity-preserving dict key, not a code);
* every value fits a float64 (an ``int`` beyond its range overflows the
  conversion and demotes the table);
* no two **distinct** domain values collapse onto one float64 code.
  Distinct integers at or beyond 2**53 can round to the same code, which
  would let ``equality_batch`` match a probe to its neighbour and would
  silently violate ``np.intersect1d(assume_unique=True)`` in
  :meth:`CompiledHistogram.join_with`.  Collapse is detected at compile
  time (equal adjacent sorted codes) and routes the table to the exact
  dict path.

Probe batches vectorize under the mirror-image rules, checked by
:func:`probe_code_array`: numeric dtype, and — for integer probes that
survived conversion — a per-element exact re-check of any *hit* at or
beyond 2**53, so a lossy probe code can never match a neighbouring domain
value.  NaN probes are defined as 0-mass in both the scalar and batched
paths (NaN equals nothing, including itself).

Both the scalar estimators and the batched
:class:`~repro.serve.service.EstimationService` answer probes from the same
compiled state, which makes scalar and batched results bit-identical by
construction.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.obs.tracing import span
from repro.serve.index import TREE_INDEX_MIN_SIZE, TreeBucketIndex

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.histogram import Histogram
    from repro.engine.catalog import CompactEndBiased

#: Scalar types eligible for the vectorized (``searchsorted``) fast path.
_NUMERIC_TYPES = (int, float, np.integer, np.floating)

#: First magnitude at which float64 stops representing every integer.
_TWO53 = 9007199254740992.0
_TWO53_INT = 9007199254740992

#: Probe-array dtype kinds the fast path accepts (signed/unsigned ints,
#: floats, bools).
_FAST_DTYPE_KINDS = "iufb"


def _is_numeric_domain(values: Iterable[Hashable]) -> bool:
    """True when every value is a real number (bools excluded)."""
    return all(
        isinstance(v, _NUMERIC_TYPES) and not isinstance(v, bool) for v in values
    )


def _is_nan_like(value: object) -> bool:
    """True for values that compare unequal to themselves (NaN family)."""
    try:
        return bool(value != value)
    except (TypeError, ValueError):
        # Arrays and exotic __ne__ results: not a NaN scalar.
        return False


def _codes_are_lossless(values: Iterable[Hashable]) -> bool:
    """True when every value *is* its float64 code (exact round-trip).

    A large integer float64 must round (|v| > 2**53, odd steps) gets a
    code that no longer equals the value.  Even when such codes stay
    unique within one table, they are wrong *across* tables — a rounded
    2**53 + 1 collides with another table's exact 2**53 in ``join_with``
    — and they false-match float probes whose code lands on the rounded
    value.  Domains carrying any lossy code serve via the exact path.
    """
    for value in values:
        if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
            as_int = int(value)
            if as_int >= _TWO53_INT or as_int <= -_TWO53_INT:
                try:
                    if float(as_int) != as_int:
                        return False
                except OverflowError:
                    return False
    return True


def probe_code_array(values: Sequence[Hashable]) -> Optional[np.ndarray]:  # repolint: boundary-exempt — returning None *is* the rejection path
    """The 1-D numeric array form of a probe batch, or ``None``.

    Returns an array (original dtype preserved) only when every probe can
    ride the float64 fast path.  A ``None`` means the caller must answer
    through the exact per-value path: mixed/object/string inputs, nested
    sequences, integers beyond the int64/uint64 range, or — the subtle
    case — a float-inferred array whose *input* held a Python/numpy
    integer at or beyond 2**53, which numpy would have rounded silently.
    """
    if isinstance(values, np.ndarray):
        arr = values
    else:
        try:
            # Dtype deliberately inferred: the int-vs-float distinction of
            # the input decides whether the 2**53 exactness scan is needed.
            arr = np.asarray(values)  # repolint: disable=R003
        except (TypeError, ValueError, OverflowError):
            return None
        if (
            arr.dtype.kind == "f"
            and arr.size
            and bool(np.any(np.abs(arr) >= _TWO53))
        ):
            # Inference to float64 may have rounded a large integer in the
            # input list; only an exact per-element check can tell.
            for value in values:
                if (
                    isinstance(value, (int, np.integer))
                    and not isinstance(value, bool)
                    and (value >= _TWO53_INT or value <= -_TWO53_INT)
                ):
                    return None
    if arr.ndim != 1 or arr.dtype.kind not in _FAST_DTYPE_KINDS:
        return None
    return arr


def range_bound_arrays(  # repolint: boundary-exempt — returning None *is* the rejection path
    lows: Sequence[Optional[Hashable]], highs: Sequence[Optional[Hashable]]
) -> Optional[tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]]:
    """Float64 bound columns plus open-bound masks, or ``None``.

    Returns ``(low_codes, high_codes, low_open, high_open)``.  Open
    (``None``) bounds are encoded as ±inf in the code columns, but the
    scalar path answers them with the prefix-sum *endpoints* — which an
    ±inf ``searchsorted`` does not reproduce when the domain itself
    contains ±inf or NaN codes.  The boolean masks (``None`` when a side
    has no open bound) let the vectorized path pin those rows to the
    exact endpoint indices, preserving bit-identity.  A top-level
    ``None`` means some bound is not numeric (or overflows float64) and
    the caller must fall back to the per-probe exact path.
    """
    try:
        low_arr = np.asarray(
            [(-np.inf if v is None else v) for v in lows], dtype=np.float64
        )
        high_arr = np.asarray(
            [(np.inf if v is None else v) for v in highs], dtype=np.float64
        )
    except (TypeError, ValueError, OverflowError):
        return None
    low_open = None
    if any(v is None for v in lows):
        low_open = np.fromiter((v is None for v in lows), dtype=bool, count=len(lows))
    high_open = None
    if any(v is None for v in highs):
        high_open = np.fromiter(
            (v is None for v in highs), dtype=bool, count=len(highs)
        )
    return low_arr, high_arr, low_open, high_open


class CompiledHistogram:
    """Vectorized lookup state compiled from one value-aware histogram.

    All estimation answers derive from three aligned arrays (sorted codes,
    per-value approximations, and their prefix sums), so equality probes are
    one binary search, range probes are two, and joins are a sorted-domain
    intersection followed by a dot product.  Domains the float64 code space
    cannot represent faithfully (see the module docstring) answer through
    the exact dict fallback instead.
    """

    __slots__ = (
        "_by_value",
        "_sorted_values",
        "_codes",
        "_approx",
        "_prefix",
        "_tree",
        "_numeric",
        "_orderable",
    )

    def __init__(self, values: Sequence[Hashable], approximations: Sequence[float]):
        if len(values) != len(approximations):
            raise ValueError(
                f"values and approximations must align, got {len(values)} "
                f"values and {len(approximations)} approximations"
            )
        # Last write wins on duplicate values — the semantics of the legacy
        # per-call dict the compiled table replaces.
        by_value: dict[Hashable, float] = {}
        for value, approx in zip(values, approximations):
            by_value[value] = float(approx)
        self._by_value = by_value
        self._numeric = False
        self._codes = None
        self._tree = None
        approx_sorted: Optional[np.ndarray] = None
        if _is_numeric_domain(by_value) and _codes_are_lossless(by_value):
            try:
                codes = np.asarray(list(by_value), dtype=np.float64)
            except (TypeError, ValueError, OverflowError):
                # An int beyond the float64 range has no lossless code.
                codes = None
            if codes is not None:
                order = np.argsort(codes, kind="stable")
                sorted_codes = codes[order]
                if codes.size > 1 and bool(
                    np.any(sorted_codes[1:] == sorted_codes[:-1])
                ):
                    # Float64 collapse: two distinct domain values share a
                    # code (integers at/beyond 2**53).  The vectorized path
                    # would match probes to neighbours and violate the
                    # uniqueness contract of intersect1d in join_with —
                    # serve this table through the exact path instead.
                    codes = None
                else:
                    self._numeric = True
                    self._codes = sorted_codes
                    ordered = list(by_value.items())
                    self._sorted_values = [ordered[int(i)][0] for i in order]
                    approx_sorted = np.asarray(
                        [ordered[int(i)][1] for i in order], dtype=np.float64
                    )
                    self._orderable = True
                    if sorted_codes.size >= TREE_INDEX_MIN_SIZE:
                        self._tree = TreeBucketIndex(sorted_codes)
        if not self._numeric:
            try:
                self._sorted_values = sorted(by_value)
                self._orderable = True
            except TypeError:
                # Mixed, unorderable domain: equality and joins still work;
                # range probes raise.
                self._sorted_values = list(by_value)
                self._orderable = False
            approx_sorted = np.asarray(
                [by_value[v] for v in self._sorted_values], dtype=np.float64
            )
        self._approx = approx_sorted
        prefix = np.zeros(approx_sorted.size + 1, dtype=np.float64)
        np.cumsum(approx_sorted, dtype=np.float64, out=prefix[1:])
        self._prefix = prefix

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_histogram(cls, histogram: "Histogram") -> "CompiledHistogram":
        """Compile a value-aware histogram (value -> bucket average)."""
        if histogram.values is None:
            raise ValueError(
                "estimation by value requires a histogram built with domain values"
            )
        values: list[Hashable] = []
        approximations: list[float] = []
        for bucket in histogram.buckets:
            average = bucket.average
            for value in bucket.values:
                values.append(value)
                approximations.append(average)
        return cls(values, approximations)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def domain_size(self) -> int:
        """Number of distinct domain values recorded."""
        return len(self._by_value)

    @property
    def total(self) -> float:
        """Sum of all per-value approximations (the approximate |R|)."""
        return float(self._prefix[-1])

    @property
    def is_numeric(self) -> bool:
        """True when probes go through the vectorized float64 fast path.

        False for non-numeric domains *and* for numeric domains demoted at
        compile time because float64 codes would be lossy (the collapse /
        overflow rules in the module docstring).
        """
        return self._numeric

    @property
    def is_orderable(self) -> bool:
        """True when the domain is mutually comparable (ranges answerable)."""
        return self._orderable

    @property
    def bucket_index(self) -> Optional[TreeBucketIndex]:
        """The tree-like bucket index, when the domain is large enough."""
        return self._tree

    def as_mapping(self) -> dict[Hashable, float]:
        """A fresh ``value -> approximation`` dict (legacy-compatible view)."""
        return dict(self._by_value)

    def _positions(self, codes: np.ndarray, side: str) -> np.ndarray:
        """Sorted-code insertion positions, through the tree when built."""
        if self._tree is not None:
            return self._tree.searchsorted(codes, side=side)
        return np.searchsorted(self._codes, codes, side=side)

    # ------------------------------------------------------------------
    # Equality
    # ------------------------------------------------------------------

    def equality(self, value: Hashable) -> float:
        """Approximate frequency of one value (0 outside the domain).

        NaN probes are 0-mass by definition (NaN equals nothing) — without
        the guard a NaN could hit the dict through object identity while
        the batched ``searchsorted`` path always misses.
        """
        try:
            if value != value:  # NaN-like probe
                return 0.0
            return self._by_value.get(value, 0.0)
        except (TypeError, ValueError):  # unhashable or array-like probe
            return 0.0

    def _equality_codes(self, arr: np.ndarray) -> np.ndarray:
        """Fast-path equality answers for one numeric probe array."""
        codes = arr.astype(np.float64, copy=False)
        size = self._codes.size
        if size == 0:
            return np.zeros(codes.size, dtype=np.float64)
        pos = self._positions(codes, "left")
        clipped = np.minimum(pos, size - 1)
        hit = (pos < size) & (self._codes[clipped] == codes)
        out = np.where(hit, self._approx[clipped], 0.0)
        if arr.dtype.kind in "iu":
            # An integer probe at/beyond 2**53 may have rounded onto a
            # neighbouring domain value's code: re-check each such hit
            # exactly.  (A miss needs no check — an exact match would have
            # produced the very same code, hence a hit.)
            suspect = hit & (np.abs(codes) >= _TWO53)
            if suspect.any():
                by_value = self._by_value
                for index in np.nonzero(suspect)[0].tolist():
                    out[index] = by_value.get(arr[index].item(), 0.0)
        return out

    def equality_batch(self, values: Sequence[Hashable]) -> np.ndarray:
        """Approximate frequencies for many probe values in one pass."""
        if self._numeric:
            arr = probe_code_array(values)
            if arr is not None:
                return self._equality_codes(arr)
        return np.asarray([self.equality(v) for v in values], dtype=np.float64)

    def membership(self, values: Iterable[Hashable]) -> float:
        """Disjunctive-equality mass of the *distinct* probe values.

        Repeated probes are deduplicated (first occurrence wins the
        position), because ``a IN (c, c)`` selects each matching tuple once.
        Unhashable probe values contribute 0 mass — the same degradation
        contract as :meth:`equality` — instead of aborting the whole
        membership probe with a ``TypeError``.
        """
        distinct: list[Hashable] = []
        seen: set[Hashable] = set()
        for value in values:
            try:
                if value in seen:
                    continue
                seen.add(value)
            except TypeError:
                # Unhashable: nothing stored can match it (0 mass), and it
                # cannot be deduplicated — skip it entirely.
                continue
            distinct.append(value)
        if not distinct:
            return 0.0
        return float(np.sum(self.equality_batch(distinct), dtype=np.float64))

    def not_equal(self, value: Hashable) -> float:
        """Complement of the equality selection (Section 6)."""
        return float(self.total - self.equality(value))

    # ------------------------------------------------------------------
    # Ranges
    # ------------------------------------------------------------------

    def _bound_indices(
        self,
        low: Optional[Hashable],
        high: Optional[Hashable],
        include_low: bool,
        include_high: bool,
    ) -> tuple[int, int]:
        if not self._orderable:
            raise ValueError(
                "range estimation needs an orderable domain; this histogram's "
                "values are not mutually comparable"
            )
        if self._numeric:
            lo = (
                0
                if low is None
                else int(
                    np.searchsorted(
                        self._codes, low, side="left" if include_low else "right"
                    )
                )
            )
            hi = (
                self._codes.size
                if high is None
                else int(
                    np.searchsorted(
                        self._codes, high, side="right" if include_high else "left"
                    )
                )
            )
            return lo, hi
        lo = (
            0
            if low is None
            else (
                bisect_left(self._sorted_values, low)
                if include_low
                else bisect_right(self._sorted_values, low)
            )
        )
        hi = (
            len(self._sorted_values)
            if high is None
            else (
                bisect_right(self._sorted_values, high)
                if include_high
                else bisect_left(self._sorted_values, high)
            )
        )
        return lo, hi

    def range_sum(
        self,
        low: Optional[Hashable] = None,
        high: Optional[Hashable] = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> float:
        """Mass of a range selection: a prefix-sum difference."""
        lo, hi = self._bound_indices(low, high, include_low, include_high)
        if hi <= lo:
            return 0.0
        return float(self._prefix[hi] - self._prefix[lo])

    def range_batch(
        self,
        lows: Sequence[Optional[Hashable]],
        highs: Sequence[Optional[Hashable]],
        *,
        include_low: bool = True,
        include_high: bool = True,
        low_open: Optional[np.ndarray] = None,
        high_open: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Masses of many range selections sharing one inclusivity setting.

        ``lows``/``highs`` may be pre-converted float64 bound columns (open
        bounds already at ±inf, as produced by :func:`range_bound_arrays`);
        the conversion is then skipped entirely.  ``low_open``/``high_open``
        are that function's open-bound masks and must accompany
        pre-converted columns that contain any ``None`` bound.
        """
        if len(lows) != len(highs):
            raise ValueError(
                f"lows and highs must align, got {len(lows)} and {len(highs)}"
            )
        if self._numeric and self._orderable:
            if (
                isinstance(lows, np.ndarray)
                and isinstance(highs, np.ndarray)
                and lows.dtype == np.float64
                and highs.dtype == np.float64
            ):
                bounds = (lows, highs, low_open, high_open)
            else:
                bounds = range_bound_arrays(lows, highs)
            if bounds is not None:
                low_arr, high_arr, low_open, high_open = bounds
                lo = self._positions(low_arr, "left" if include_low else "right")
                hi = self._positions(high_arr, "right" if include_high else "left")
                # An open bound is the prefix endpoint itself — not the
                # ±inf searchsorted, which lands short of trailing NaN
                # (or, side-dependent, ±inf) codes.
                if low_open is not None:
                    lo[low_open] = 0
                if high_open is not None:
                    hi[high_open] = self._codes.size
                mass = self._prefix[hi] - self._prefix[lo]
                return np.where(hi > lo, mass, 0.0)
        return np.asarray(
            [
                self.range_sum(
                    low, high, include_low=include_low, include_high=include_high
                )
                for low, high in zip(lows, highs)
            ],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def join_with(self, other: "CompiledHistogram") -> float:
        """Two-way equality-join estimate against another compiled table.

        ``Σ_v f̂_left(v) · f̂_right(v)`` over the domain intersection —
        Theorem 2.1 applied to the two histogram matrices.  The vectorized
        intersection requires *both* code arrays to be collision-free,
        which the compile-time collapse check guarantees; demoted tables
        join through the exact dict path.
        """
        if not isinstance(other, CompiledHistogram):
            raise TypeError(
                f"join_with expects a CompiledHistogram, got {type(other).__name__}"
            )
        if self._numeric and other._numeric:
            _, mine, theirs = np.intersect1d(
                self._codes, other._codes, assume_unique=True, return_indices=True
            )
            return float(
                np.dot(self._approx[mine], other._approx[theirs])
            )
        small, big = (
            (self, other) if self.domain_size <= other.domain_size else (other, self)
        )
        total = 0.0
        for value, freq in small._by_value.items():
            if _is_nan_like(value):
                continue  # NaN joins nothing, mirroring the vectorized path
            match = big._by_value.get(value)
            if match is not None:
                total += freq * match
        return float(total)


class CompiledCompact:
    """Compiled form of the catalog's compact end-biased layout.

    Mirrors :class:`repro.engine.catalog.CompactEndBiased` semantics exactly
    — explicitly stored values answer with their exact frequency; any other
    probe falls into the implicit remainder bucket — but answers batches of
    probes through one vectorized pass when the domain is numeric.  The
    same fast-path domain rules as :class:`CompiledHistogram` apply: a
    domain whose float64 codes would be lossy is demoted to the exact dict
    path at compile time, and NaN probes are 0-mass (never the remainder —
    NaN is not a domain value).
    """

    __slots__ = (
        "_explicit",
        "_codes",
        "_freqs",
        "_tree",
        "_numeric",
        "remainder_count",
        "remainder_average",
    )

    def __init__(
        self,
        explicit: dict[Hashable, float],
        remainder_count: int,
        remainder_average: float,
    ):
        if remainder_count < 0:
            raise ValueError(
                f"remainder_count must be non-negative, got {remainder_count}"
            )
        self._explicit = {value: float(freq) for value, freq in explicit.items()}
        self.remainder_count = int(remainder_count)
        self.remainder_average = float(remainder_average)
        self._numeric = False
        self._codes = None
        self._freqs = None
        self._tree = None
        if (
            self._explicit
            and _is_numeric_domain(self._explicit)
            and _codes_are_lossless(self._explicit)
        ):
            try:
                codes = np.asarray(list(self._explicit), dtype=np.float64)
            except (TypeError, ValueError, OverflowError):
                codes = None
            if codes is not None:
                order = np.argsort(codes, kind="stable")
                sorted_codes = codes[order]
                if codes.size > 1 and bool(
                    np.any(sorted_codes[1:] == sorted_codes[:-1])
                ):
                    codes = None  # float64 collapse: exact path only
                else:
                    freqs = np.asarray(
                        list(self._explicit.values()), dtype=np.float64
                    )
                    self._numeric = True
                    self._codes = sorted_codes
                    self._freqs = freqs[order]
                    if sorted_codes.size >= TREE_INDEX_MIN_SIZE:
                        self._tree = TreeBucketIndex(sorted_codes)

    @classmethod
    def from_compact(cls, compact: "CompactEndBiased") -> "CompiledCompact":
        """Compile the stored catalog form."""
        return cls(
            dict(compact.explicit), compact.remainder_count, compact.remainder_average
        )

    @property
    def explicit_count(self) -> int:
        """Number of explicitly stored values."""
        return len(self._explicit)

    @property
    def is_numeric(self) -> bool:
        """True when probes go through the vectorized float64 fast path."""
        return self._numeric

    @property
    def total(self) -> float:
        """Total tuple count represented by the compiled statistics."""
        return float(
            sum(self._explicit.values())
            + self.remainder_count * self.remainder_average
        )

    def explicit_items(self) -> Iterable[tuple[Hashable, float]]:
        """The explicit (value, frequency) pairs in storage order."""
        return self._explicit.items()

    def has_explicit(self, value: Hashable) -> bool:
        """True when *value* is explicitly stored."""
        return value in self._explicit

    def frequency(self, value: Hashable, *, assume_in_domain: bool = True) -> float:
        """Approximate frequency of one value (the "missing bucket" rule).

        NaN probes return 0.0 unconditionally: NaN is not a domain value,
        so it gets neither an explicit frequency nor the remainder bucket —
        in the scalar *and* the batched path.
        """
        try:
            if value != value:  # NaN-like probe: 0-mass, never the remainder
                return 0.0
            found = self._explicit.get(value)
        except (TypeError, ValueError):  # unhashable or array-like probe
            found = None
        if found is not None:
            return found
        if assume_in_domain and self.remainder_count > 0:
            return self.remainder_average
        return 0.0

    def frequency_batch(
        self, values: Sequence[Hashable], *, assume_in_domain: bool = True
    ) -> np.ndarray:
        """Approximate frequencies for many probe values in one pass."""
        miss = (
            self.remainder_average
            if (assume_in_domain and self.remainder_count > 0)
            else 0.0
        )
        if self._numeric:
            arr = probe_code_array(values)
            if arr is not None:
                codes = arr.astype(np.float64, copy=False)
                size = self._codes.size
                pos = (
                    self._tree.searchsorted(codes, side="left")
                    if self._tree is not None
                    else np.searchsorted(self._codes, codes)
                )
                clipped = np.minimum(pos, size - 1)
                hit = (pos < size) & (self._codes[clipped] == codes)
                out = np.where(hit, self._freqs[clipped], miss)
                if arr.dtype.kind == "f":
                    nan_probes = np.isnan(codes)
                    if nan_probes.any():
                        out[nan_probes] = 0.0  # NaN: 0-mass, never remainder
                elif arr.dtype.kind in "iu":
                    suspect = hit & (np.abs(codes) >= _TWO53)
                    if suspect.any():
                        for index in np.nonzero(suspect)[0].tolist():
                            out[index] = self.frequency(
                                arr[index].item(),
                                assume_in_domain=assume_in_domain,
                            )
                return out
        return np.asarray(
            [self.frequency(v, assume_in_domain=assume_in_domain) for v in values],
            dtype=np.float64,
        )


def compile_histogram(histogram: "Histogram") -> CompiledHistogram:
    """Compile (and cache on the histogram) its vectorized lookup table.

    Histograms are immutable, so the compiled table is computed once per
    histogram and reused by every scalar estimator call and every service
    batch that touches it.
    """
    from repro.core.histogram import Histogram

    if not isinstance(histogram, Histogram):
        raise TypeError(
            f"expected a Histogram, got {type(histogram).__name__}"
        )
    cached = getattr(histogram, "_compiled", None)
    if cached is not None:
        return cached
    with span("serve.layout.compile", layout="histogram"):
        compiled = CompiledHistogram.from_histogram(histogram)
    histogram._compiled = compiled
    return compiled


def compile_compact(compact: "CompactEndBiased") -> CompiledCompact:
    """Compile a catalog compact layout into its batched lookup form."""
    from repro.engine.catalog import CompactEndBiased

    if not isinstance(compact, CompactEndBiased):
        raise TypeError(
            f"expected a CompactEndBiased, got {type(compact).__name__}"
        )
    with span("serve.layout.compile", layout="compact"):
        return CompiledCompact.from_compact(compact)
