"""Serving layer: compiled lookup tables and the batched estimation service.

The paper frames histograms as a balance between optimality and
*practicality* — the cost a system pays at lookup time (Section 4).  This
package is the reproduction's serving tier: catalog histograms are compiled
once into vectorized lookup tables, cached under the catalog's version
counters, and consulted through a batch-first API
(:meth:`EstimationService.estimate_batch`).  The optimizer, the SQL
planner, and the scalar helpers in :mod:`repro.core.estimator` all answer
through this layer, so every consumer sees the same compiled state —
and batched results are bit-identical to the scalar paths.
"""

from __future__ import annotations

from repro.serve.frame import ProbeFrame
from repro.serve.index import TreeBucketIndex
from repro.serve.metrics import LATENCY_BUCKET_BOUNDS, PROBE_KINDS, ServiceMetrics
from repro.serve.service import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_MAX_TABLES,
    DEFAULT_RANGE_SELECTIVITY,
    ON_ERROR_POLICIES,
    REASON_BACKPRESSURE,
    REASON_COMPILE_FAILED,
    REASON_QUARANTINED,
    REASON_QUOTA_EXCEEDED,
    REASON_REBUILD_IN_PROGRESS,
    AdmissionHook,
    EqualityProbe,
    EstimationService,
    JoinProbe,
    Probe,
    ProbeTrace,
    RangeProbe,
    TableCompileError,
)
from repro.serve.tables import (
    CompiledCompact,
    CompiledHistogram,
    compile_compact,
    compile_histogram,
)

__all__ = [
    "DEFAULT_EQ_SELECTIVITY",
    "DEFAULT_MAX_TABLES",
    "DEFAULT_RANGE_SELECTIVITY",
    "LATENCY_BUCKET_BOUNDS",
    "ON_ERROR_POLICIES",
    "PROBE_KINDS",
    "REASON_BACKPRESSURE",
    "REASON_COMPILE_FAILED",
    "REASON_QUARANTINED",
    "REASON_QUOTA_EXCEEDED",
    "REASON_REBUILD_IN_PROGRESS",
    "AdmissionHook",
    "CompiledCompact",
    "CompiledHistogram",
    "EqualityProbe",
    "EstimationService",
    "JoinProbe",
    "Probe",
    "ProbeFrame",
    "ProbeTrace",
    "RangeProbe",
    "ServiceMetrics",
    "TableCompileError",
    "TreeBucketIndex",
    "compile_compact",
    "compile_histogram",
]
