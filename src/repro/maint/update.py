"""Incremental maintenance of end-biased histograms.

The paper defers update-propagation schedules ("an issue beyond the scope of
this paper") while noting that stale histograms introduce additional error.
This module implements the natural policy for the end-biased layout the
paper recommends:

* inserts/deletes of *explicitly stored* values adjust their exact counts;
* updates hitting the implicit multivalued bucket adjust its total (and its
  count when a brand-new value appears or the last occurrence of a value
  disappears);
* a Space-Saving sketch watches the inserted values: when a value from the
  implicit bucket accumulates more mass than the smallest explicit one, the
  histogram has drifted out of its end-biased invariant and a rebuild is
  signalled — as is a configurable update-volume threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import AttributeDistribution
from repro.core.histogram import Histogram
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.journal import MaintenanceJournal
from repro.engine.sampling import SpaceSavingSketch
from repro.obs import runtime as obs
from repro.obs.tracing import span
from repro.util.validation import ensure_in_range, ensure_positive_int


@dataclass(frozen=True)
class MaintenancePolicy:
    """When to signal a rebuild.

    ``update_fraction`` triggers after that fraction of the relation has
    changed since the last build; ``watch_promotions`` additionally triggers
    when an implicitly-stored value provably outgrows an explicit one.
    """

    update_fraction: float = 0.10
    watch_promotions: bool = True
    sketch_capacity: int = 64

    def __post_init__(self):
        ensure_in_range(self.update_fraction, "update_fraction", low=0.0)
        ensure_positive_int(self.sketch_capacity, "sketch_capacity")


class MaintainedEndBiased:
    """An end-biased histogram that tracks inserts and deletes.

    Built from an exact frequency distribution; thereafter kept consistent
    under single-tuple updates.  ``track_values=True`` (default) remembers
    the value set of the implicit bucket so membership is exact;
    ``track_values=False`` stores only counters (the true catalog regime)
    and treats unseen values as new domain values.

    With a :class:`~repro.engine.journal.MaintenanceJournal` attached (via
    the constructor or :meth:`attach_journal`), every insert/delete is
    durably appended to the write-ahead log **before** the in-memory
    counters change — so a crash between snapshots loses no acknowledged
    delta; ``load_catalog(..., journal=...)`` replays the log.  Journaled
    values must be JSON scalars (str/int/float/bool).
    """

    def __init__(
        self,
        distribution: AttributeDistribution,
        buckets: int,
        *,
        policy: Optional[MaintenancePolicy] = None,
        track_values: bool = True,
        journal: Optional[MaintenanceJournal] = None,
        relation: Optional[str] = None,
        attribute: Optional[str] = None,
    ):
        self._buckets = ensure_positive_int(buckets, "buckets")
        self.policy = policy or MaintenancePolicy()
        self._track_values = track_values
        self._sketch = SpaceSavingSketch(self.policy.sketch_capacity)
        self._journal: Optional[MaintenanceJournal] = None
        self._journal_relation: Optional[str] = None
        self._journal_attribute: Optional[str] = None
        if journal is not None:
            if relation is None or attribute is None:
                raise ValueError(
                    "a journal needs the relation and attribute the deltas "
                    "belong to; pass relation= and attribute= as well"
                )
            self.attach_journal(journal, relation, attribute)
        self._rebuild_from(distribution)

    def attach_journal(
        self, journal: MaintenanceJournal, relation: str, attribute: str
    ) -> None:
        """Write-ahead log every future delta as *relation*.*attribute*."""
        if not isinstance(journal, MaintenanceJournal):
            raise TypeError(
                f"journal must be a MaintenanceJournal, got {type(journal).__name__}"
            )
        if not isinstance(relation, str) or not relation:
            raise TypeError(f"relation must be a non-empty str, got {relation!r}")
        if not isinstance(attribute, str) or not attribute:
            raise TypeError(f"attribute must be a non-empty str, got {attribute!r}")
        self._journal = journal
        self._journal_relation = relation
        self._journal_attribute = attribute

    @property
    def journal(self) -> Optional[MaintenanceJournal]:
        """The attached write-ahead journal, if any."""
        return self._journal

    def _rebuild_from(self, distribution: AttributeDistribution) -> None:
        buckets = min(self._buckets, distribution.domain_size)
        histogram = v_opt_bias_hist(
            distribution.frequencies, buckets, values=distribution.values
        )
        compact = CompactEndBiased.from_histogram(histogram)
        self.explicit: dict[Hashable, float] = dict(compact.explicit)
        self.remainder_count: int = compact.remainder_count
        self.remainder_total: float = compact.remainder_count * compact.remainder_average
        if self._track_values:
            explicit_values = set(self.explicit)
            self._remainder_values: Optional[set] = {
                v for v in distribution.values if v not in explicit_values
            }
        else:
            self._remainder_values = None
        self.updates_since_build = 0
        self.total_at_build = float(distribution.total)
        self._sketch = SpaceSavingSketch(self.policy.sketch_capacity)

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        """Current tuple count represented by the histogram."""
        return sum(self.explicit.values()) + self.remainder_total

    @property
    def distinct_count(self) -> int:
        return len(self.explicit) + self.remainder_count

    @property
    def remainder_average(self) -> float:
        if self.remainder_count == 0:
            return 0.0
        return self.remainder_total / self.remainder_count

    def estimate(self, value: Hashable) -> float:
        """Approximate frequency of *value* under the maintained state."""
        if value in self.explicit:
            return self.explicit[value]
        if self._remainder_values is not None and value not in self._remainder_values:
            return 0.0
        return self.remainder_average

    def self_join_estimate(self) -> float:
        """Formula (2) on the maintained state."""
        estimate = sum(f * f for f in self.explicit.values())
        if self.remainder_count > 0:
            estimate += self.remainder_total**2 / self.remainder_count
        return estimate

    def as_compact(self) -> CompactEndBiased:
        """Snapshot in catalog form."""
        return CompactEndBiased(
            explicit=dict(self.explicit),
            remainder_count=self.remainder_count,
            remainder_average=self.remainder_average,
        )

    def publish(
        self, catalog: StatsCatalog, relation: str, attribute: str
    ) -> CatalogEntry:
        """Publish the maintained state to *catalog* as a fresh entry.

        ``StatsCatalog.put`` bumps the catalog's monotonic version, so any
        :class:`repro.serve.EstimationService` over the catalog discards its
        compiled tables for this column and recompiles from the new snapshot
        on the next probe.

        When a journal is attached for this (relation, attribute), the entry
        is stamped with the journal's last acknowledged sequence number as
        its ``journal_seq`` fence: the published statistics already include
        every logged delta, so replay after a crash skips them.
        """
        with span("maint.publish", relation=relation, attribute=attribute):
            entry = CatalogEntry(
                relation=relation,
                attribute=attribute,
                kind="maintained-end-biased",
                histogram=None,
                compact=self.as_compact(),
                distinct_count=self.distinct_count,
                total_tuples=float(self.total),
            )
            if (
                self._journal is not None
                and self._journal_relation == relation
                and self._journal_attribute == attribute
            ):
                entry.journal_seq = self._journal.last_seq
            catalog.put(entry)
        obs.count("repro_maint_publishes_total")
        return entry

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _journal_delta(self, op: str, value: Hashable) -> None:
        """Write-ahead log the delta; raises (and applies nothing) on failure."""
        if self._journal is None:
            return
        if op == "insert":
            self._journal.append_insert(
                self._journal_relation, self._journal_attribute, value
            )
        else:
            self._journal.append_delete(
                self._journal_relation, self._journal_attribute, value
            )

    def insert(self, value: Hashable) -> None:
        """Propagate the insertion of one tuple with *value*.

        With a journal attached the delta is durably logged first; if the
        append fails (disk error, crash) the in-memory state is untouched —
        an unacknowledged update is a *rejected* update, never a silent one.
        """
        self._journal_delta("insert", value)
        obs.count("repro_maint_deltas_total", op="insert")
        self.updates_since_build += 1
        if value in self.explicit:
            self.explicit[value] += 1.0
            return
        self._sketch.update(value)
        if self._remainder_values is not None:
            if value not in self._remainder_values:
                self._remainder_values.add(value)
                self.remainder_count += 1
        elif self.remainder_count == 0:
            # Counter-only mode: a first unseen value creates the bucket.
            self.remainder_count = 1
        self.remainder_total += 1.0

    def delete(self, value: Hashable) -> None:
        """Propagate the deletion of one tuple with *value*.

        Validation runs before the write-ahead append, so an impossible
        delete raises without polluting the journal.
        """
        if value in self.explicit:
            if self.explicit[value] <= 0:
                raise ValueError(f"no tuples left with value {value!r}")
            self._journal_delta("delete", value)
            obs.count("repro_maint_deltas_total", op="delete")
            self.updates_since_build += 1
            self.explicit[value] -= 1.0
            return
        if self._remainder_values is not None and value not in self._remainder_values:
            raise ValueError(f"value {value!r} is not in the histogram's domain")
        if self.remainder_total <= 0:
            raise ValueError("implicit bucket is already empty")
        self._journal_delta("delete", value)
        obs.count("repro_maint_deltas_total", op="delete")
        self.updates_since_build += 1
        self.remainder_total -= 1.0

    # ------------------------------------------------------------------
    # Rebuild signalling
    # ------------------------------------------------------------------

    def needs_rebuild(self) -> bool:
        """True when the drift policy says the histogram went stale."""
        if self.total_at_build > 0:
            drift = self.updates_since_build / self.total_at_build
            if drift >= self.policy.update_fraction:
                return True
        if self.policy.watch_promotions and self.explicit:
            floor = min(self.explicit.values())
            for _, count, error in self._sketch.top(1):
                if count - error > floor:
                    return True
        return False

    def rebuild(self, distribution: AttributeDistribution) -> None:
        """Recompute the optimal end-biased histogram from fresh statistics."""
        with span("maint.rebuild"):
            self._rebuild_from(distribution)
        obs.count("repro_maint_rebuilds_total")
