"""Durable job queue for the maintenance agent.

The queue is an **event-sourced log** riding the same crash-safe
machinery as the maintenance WAL
(:class:`repro.engine.eventlog.ChecksummedLog`): every state transition
— enqueue, claim, lease renewal, ack, retry, dead-letter, requeue — is a
checksummed JSONL event, fsynced **before** the transition is
acknowledged to the caller.  In-memory state is nothing but the replay
of the log, so a crash at any moment (the chaos suite injects one at
every event type) leaves a queue that rebuilds to a consistent state on
restart: an acknowledged event is never lost, an unacknowledged one
never observed.

Delivery semantics are **at-least-once with lease fencing**:

* :meth:`DurableJobQueue.claim` grants a *lease* — the claim event's own
  sequence number is the lease token, and the lease expires at a
  wall-clock deadline unless renewed (:meth:`DurableJobQueue.renew`,
  the worker's heartbeat).
* A worker that dies mid-job stops renewing; once the lease expires the
  job is **reclaimed** by the next claimer.  Every lease-guarded
  operation (renew/ack/fail) checks its token against the job's current
  lease and raises :class:`LeaseLostError` on mismatch, so a zombie
  worker that wakes up after a reclaim cannot ack or fail a job it no
  longer owns.
* Job *effects* must therefore be idempotent — rebuilds republish a
  snapshot through the WAL, which is safe to repeat.  The queue
  guarantees each job reaches ``done`` exactly once (one winning ack);
  execution may run more than once across crashes.

Failures retry with **exponential backoff plus seeded jitter**
(decorrelating workers that fail in lockstep) until ``max_attempts``,
after which the job parks in the **dead-letter lane** for inspection and
manual :meth:`DurableJobQueue.requeue_dead`.

Idempotent enqueue: an enqueue carrying a ``dedupe_key`` that matches a
live (pending or claimed) job returns the existing job without logging a
new event — the drift auditor can enqueue ``rebuild R.a`` on every audit
pass without flooding the queue.

Clocks: leases need **wall-clock** time because they must survive a
process restart — a monotonic clock restarts with the process, which
would leave every pre-crash lease expiry meaningless.  The clock is
injectable for tests (``clock=fake``); an NTP step only shifts *when* a
lease expires, never correctness, because reclaimed work is idempotent
by contract.  This is the one sanctioned wall-clock use in the
maintenance layer.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from pathlib import Path

    import numpy as np

from repro.engine.durable import PathLike, canonical_json
from repro.engine.eventlog import ChecksummedLog, LogFormatError
from repro.obs import runtime as obs
from repro.obs import tracing
from repro.testing.faults import (
    POINT_QUEUE_ACK,
    POINT_QUEUE_CHECKPOINT,
    POINT_QUEUE_CLAIM,
    POINT_QUEUE_DEAD_LETTER,
    POINT_QUEUE_ENQUEUE,
    POINT_QUEUE_FLUSH,
    POINT_QUEUE_LEASE_RENEW,
    POINT_QUEUE_RETRY,
)
from repro.util.rng import RandomSource, derive_rng

#: The job kinds the maintenance agent executes.
JOB_KINDS: tuple[str, ...] = (
    "rebuild",
    "checkpoint",
    "quarantine-repair",
    "drift-audit",
)

#: The queue-log event types, in lifecycle order.
QUEUE_EVENTS: tuple[str, ...] = (
    "enqueue",
    "claim",
    "renew",
    "ack",
    "retry",
    "dead",
    "requeue",
)

#: Job statuses (the state machine's nodes).
STATUS_PENDING = "pending"
STATUS_CLAIMED = "claimed"
STATUS_DONE = "done"
STATUS_DEAD = "dead"
JOB_STATUSES: tuple[str, ...] = (
    STATUS_PENDING,
    STATUS_CLAIMED,
    STATUS_DONE,
    STATUS_DEAD,
)


class QueueFormatError(LogFormatError):
    """The queue log violates the event format (beyond a torn tail)."""


class LeaseLostError(RuntimeError):
    """A lease-guarded operation used a token that is no longer current.

    Raised when a worker renews, acks, or fails a job whose lease was
    reclaimed (or already resolved) — the worker must drop the job
    without applying further effects on its behalf.
    """


@dataclass(frozen=True)
class Job:
    """The immutable identity of one enqueued job."""

    #: ``job-<enqueue seq>`` — unique per queue log.
    id: str
    kind: str
    params: dict
    dedupe_key: Optional[str]
    #: Wall-clock enqueue time.
    enqueued_at: float
    #: Trace ID of the request whose activity caused this job ("" when
    #: unknown) — the agent re-joins this trace when it runs the job, so
    #: a drift-triggered rebuild's ``agent.job`` span links back to the
    #: probe batch that crossed the threshold.
    trace_id: str = ""


@dataclass
class JobState:
    """The mutable replay state of one job."""

    job: Job
    status: str = STATUS_PENDING
    #: Number of claims so far (attempt counter).
    attempts: int = 0
    owner: Optional[str] = None
    #: Current lease token (the claim event's seq), when claimed.
    lease: Optional[int] = None
    #: Wall-clock lease deadline, when claimed.
    lease_expires: float = 0.0
    #: Earliest wall-clock time the job is eligible to be claimed.
    not_before: float = 0.0
    last_error: Optional[str] = None

    def snapshot(self) -> dict:
        """A JSON-friendly view for status reporting."""
        return {
            "id": self.job.id,
            "kind": self.job.kind,
            "params": dict(self.job.params),
            "dedupe_key": self.job.dedupe_key,
            "trace_id": self.job.trace_id,
            "status": self.status,
            "attempts": self.attempts,
            "owner": self.owner,
            "lease_expires": self.lease_expires,
            "not_before": self.not_before,
            "last_error": self.last_error,
        }


@dataclass(frozen=True)
class JobLease:
    """A granted claim: the job plus the fencing token and deadline."""

    job: Job
    #: The claim event's seq — quote it on renew/ack/fail.
    token: int
    expires: float
    #: True when this claim took the job from an expired previous lease.
    reclaimed: bool = False


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for failed jobs.

    Delay before attempt *n*'s retry is
    ``min(cap, base * 2**(n-1)) * U[1-jitter, 1+jitter]`` — exponential
    growth, capped, decorrelated by seeded jitter.
    """

    base: float = 1.0
    cap: float = 300.0
    jitter: float = 0.25
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.base <= 0.0:
            raise ValueError(f"base must be > 0, got {self.base}")
        if self.cap < self.base:
            raise ValueError(f"cap must be >= base, got {self.cap} < {self.base}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be within [0, 1), got {self.jitter}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delay(self, attempts: int, rng: np.random.Generator) -> float:
        """The jittered backoff delay after the *attempts*-th failure."""
        raw = min(self.cap, self.base * (2.0 ** max(attempts - 1, 0)))
        spread = float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
        return raw * spread


def _validate_event(payload: dict) -> None:
    """Event-log validation hook: structural checks on one queue event."""
    event = payload.get("event")
    if event not in QUEUE_EVENTS:
        raise QueueFormatError(
            f"queue event must be one of {QUEUE_EVENTS}, got {event!r}"
        )
    if event == "enqueue":
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise QueueFormatError(
                f"queue job kind must be one of {JOB_KINDS}, got {kind!r}"
            )
        if not isinstance(payload.get("params"), dict):
            raise QueueFormatError("queue enqueue event lacks a params object")
        trace = payload.get("trace")
        if trace is not None and (not isinstance(trace, str) or not trace):
            raise QueueFormatError(
                f"queue enqueue trace must be a non-empty string, got {trace!r}"
            )
    else:
        job = payload.get("job")
        if not isinstance(job, str) or not job.startswith("job-"):
            raise QueueFormatError(
                f"queue event {event!r} must name a job id, got {job!r}"
            )
    if event in ("renew", "ack", "retry", "dead"):
        lease = payload.get("lease")
        if not isinstance(lease, int) or isinstance(lease, bool) or lease < 1:
            raise QueueFormatError(
                f"queue event {event!r} must carry a lease token, got "
                f"{payload.get('lease')!r}"
            )


class DurableJobQueue:
    """The crash-safe maintenance job queue (see the module docstring).

    Thread-safe: one lock guards the in-memory replay state and
    serializes log appends, so concurrent workers on one process see a
    linearizable queue; cross-process exclusion is out of scope (one
    agent process owns a queue file).
    """

    def __init__(
        self,
        path: PathLike,
        *,
        lease_duration: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        clock: Callable[[], float] = time.time,
        rng: RandomSource = None,
    ):
        if lease_duration <= 0.0:
            raise ValueError(f"lease_duration must be > 0, got {lease_duration}")
        self.lease_duration = float(lease_duration)
        self.retry = retry if retry is not None else RetryPolicy()
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )
        self._clock = clock
        self._rng = derive_rng(rng)
        self._lock = threading.Lock()
        #: job id -> JobState; insertion order is enqueue order (FIFO).
        self._jobs: dict[str, JobState] = {}
        #: live dedupe index: dedupe_key -> job id (pending/claimed only).
        self._dedupe: dict[str, str] = {}
        self._log = ChecksummedLog(path, fsync=True, validate=_validate_event)
        with self._lock:
            anomalies = 0
            for payload in self._log.payloads():
                anomalies += 0 if self._apply(payload) else 1
            self._refresh_gauges()
        if anomalies:
            obs.count("repro_queue_replay_anomalies_total", float(anomalies))

    # ------------------------------------------------------------------
    # Replay (the only writer of in-memory state)
    # ------------------------------------------------------------------

    def _apply(self, payload: dict) -> bool:
        """Apply one logged event to the replay state.

        Returns False for an event that is impossible against the state
        the log prefix built (it can only appear through manual log
        surgery — live appends are validated under the lock before they
        are written).  Impossible events are skipped, never fatal:
        recovery must always produce a servable queue.
        """
        event = payload["event"]
        if event == "enqueue":
            job = Job(
                id=f"job-{payload['seq']}",
                kind=payload["kind"],
                params=dict(payload["params"]),
                dedupe_key=payload.get("dedupe"),
                enqueued_at=float(payload.get("at", 0.0)),
                trace_id=payload.get("trace") or "",
            )
            if job.id in self._jobs:
                return False
            self._jobs[job.id] = JobState(job=job)
            if job.dedupe_key is not None:
                self._dedupe[job.dedupe_key] = job.id
            return True
        state = self._jobs.get(payload["job"])
        if state is None:
            return False
        if event == "claim":
            if state.status not in (STATUS_PENDING, STATUS_CLAIMED):
                return False
            state.status = STATUS_CLAIMED
            state.attempts += 1
            state.owner = payload.get("owner")
            state.lease = payload["seq"]
            state.lease_expires = float(payload.get("expires", 0.0))
            return True
        if event == "requeue":
            if state.status != STATUS_DEAD:
                return False
            state.status = STATUS_PENDING
            state.attempts = 0
            state.owner = None
            state.lease = None
            state.lease_expires = 0.0
            state.not_before = 0.0
            return True
        # The remaining events are lease-fenced.
        if state.status != STATUS_CLAIMED or state.lease != payload.get("lease"):
            return False
        if event == "renew":
            state.lease_expires = float(payload.get("expires", 0.0))
            return True
        if event == "ack":
            state.status = STATUS_DONE
            state.owner = None
            state.lease = None
            self._drop_dedupe(state)
            return True
        if event == "retry":
            state.status = STATUS_PENDING
            state.owner = None
            state.lease = None
            state.lease_expires = 0.0
            state.not_before = float(payload.get("not_before", 0.0))
            state.last_error = payload.get("error")
            return True
        if event == "dead":
            state.status = STATUS_DEAD
            state.owner = None
            state.lease = None
            state.lease_expires = 0.0
            state.last_error = payload.get("error")
            self._drop_dedupe(state)
            return True
        return False

    def _drop_dedupe(self, state: JobState) -> None:
        key = state.job.dedupe_key
        if key is not None and self._dedupe.get(key) == state.job.id:
            del self._dedupe[key]

    def _append(self, payload: dict, *, fault: str) -> dict:
        """Log one event durably, then apply it to the replay state.

        The apply happens only after the fsynced append returns — a crash
        inside the append leaves memory untouched, and the restart replay
        decides from the bytes that actually survived.
        """
        stamped = self._log.append(
            payload, fault_append=fault, fault_flush=POINT_QUEUE_FLUSH
        )
        applied = self._apply(stamped)
        assert applied, f"queue event validated but did not apply: {stamped!r}"
        obs.count("repro_queue_events_total", event=payload["event"])
        self._refresh_gauges()
        return stamped

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def enqueue(
        self,
        kind: str,
        params: Optional[dict] = None,
        *,
        dedupe_key: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> Job:
        """Durably add a job; idempotent under *dedupe_key*.

        If a live (pending or claimed) job already carries *dedupe_key*,
        that job is returned and nothing is logged.  Completed or
        dead-lettered jobs do not block a fresh enqueue.

        *trace_id* records the trace that caused the job, for end-to-end
        continuity; when omitted, the enqueueing thread's current trace
        context (if any) is captured automatically.
        """
        if kind not in JOB_KINDS:
            raise ValueError(f"job kind must be one of {JOB_KINDS}, got {kind!r}")
        params = {} if params is None else dict(params)
        canonical_json(params)  # reject non-JSON / non-finite params early
        if dedupe_key is not None and not isinstance(dedupe_key, str):
            raise TypeError(
                f"dedupe_key must be a str, got {type(dedupe_key).__name__}"
            )
        if trace_id is None:
            context = tracing.current_trace_context()
            trace_id = context.trace_id if context is not None else ""
        elif not isinstance(trace_id, str):
            raise TypeError(
                f"trace_id must be a str, got {type(trace_id).__name__}"
            )
        with self._lock:
            if dedupe_key is not None:
                existing = self._dedupe.get(dedupe_key)
                if existing is not None:
                    obs.count("repro_queue_dedupe_hits_total", kind=kind)
                    return self._jobs[existing].job
            payload = {
                "event": "enqueue",
                "kind": kind,
                "params": params,
                "at": float(self._clock()),
            }
            if dedupe_key is not None:
                payload["dedupe"] = dedupe_key
            if trace_id:
                payload["trace"] = trace_id
            stamped = self._append(payload, fault=POINT_QUEUE_ENQUEUE)
            return self._jobs[f"job-{stamped['seq']}"].job

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def claim(self, owner: str) -> Optional[JobLease]:
        """Claim the oldest eligible job for *owner*; None when idle.

        Eligible means pending with its backoff deadline passed, or
        claimed with an **expired lease** (the previous worker stopped
        heartbeating — the job is reclaimed and the old token fenced
        out).  The returned lease expires ``lease_duration`` from now
        unless renewed.
        """
        if not isinstance(owner, str) or not owner:
            raise TypeError(f"owner must be a non-empty str, got {owner!r}")
        with self._lock:
            now = float(self._clock())
            for state in self._jobs.values():
                if state.status == STATUS_PENDING and now >= state.not_before:
                    reclaimed = False
                elif state.status == STATUS_CLAIMED and now >= state.lease_expires:
                    reclaimed = True
                else:
                    continue
                expires = now + self.lease_duration
                stamped = self._append(
                    {
                        "event": "claim",
                        "job": state.job.id,
                        "owner": owner,
                        "expires": expires,
                        "at": now,
                    },
                    fault=POINT_QUEUE_CLAIM,
                )
                if reclaimed:
                    obs.count("repro_queue_reclaims_total", kind=state.job.kind)
                return JobLease(
                    job=state.job,
                    token=stamped["seq"],
                    expires=expires,
                    reclaimed=reclaimed,
                )
            return None

    def renew(self, lease: JobLease) -> JobLease:
        """Heartbeat: extend the lease; raises :class:`LeaseLostError`.

        Renewal is durable (logged) so a restart reconstructs the true
        deadline instead of reclaiming a job whose worker was healthily
        heartbeating moments before the crash.
        """
        with self._lock:
            state = self._check_lease(lease)
            now = float(self._clock())
            expires = now + self.lease_duration
            self._append(
                {
                    "event": "renew",
                    "job": state.job.id,
                    "lease": lease.token,
                    "expires": expires,
                },
                fault=POINT_QUEUE_LEASE_RENEW,
            )
            return JobLease(
                job=state.job,
                token=lease.token,
                expires=expires,
                reclaimed=lease.reclaimed,
            )

    def ack(self, lease: JobLease) -> None:
        """Mark the leased job done; raises :class:`LeaseLostError`."""
        with self._lock:
            state = self._check_lease(lease)
            self._append(
                {"event": "ack", "job": state.job.id, "lease": lease.token},
                fault=POINT_QUEUE_ACK,
            )
            obs.count(
                "repro_agent_jobs_total", kind=state.job.kind, outcome="done"
            )

    def fail(self, lease: JobLease, error: str) -> str:
        """Record a failed attempt: backoff-retry or dead-letter.

        Returns the job's new status (``pending`` for a scheduled retry,
        ``dead`` once ``max_attempts`` is exhausted).  Raises
        :class:`LeaseLostError` for a stale token.
        """
        if not isinstance(error, str):
            raise TypeError(f"error must be a str, got {type(error).__name__}")
        with self._lock:
            state = self._check_lease(lease)
            if state.attempts >= self.retry.max_attempts:
                self._append(
                    {
                        "event": "dead",
                        "job": state.job.id,
                        "lease": lease.token,
                        "error": error,
                    },
                    fault=POINT_QUEUE_DEAD_LETTER,
                )
                obs.count("repro_queue_dead_letters_total", kind=state.job.kind)
                obs.count(
                    "repro_agent_jobs_total", kind=state.job.kind, outcome="dead"
                )
                return STATUS_DEAD
            delay = self.retry.delay(state.attempts, self._rng)
            self._append(
                {
                    "event": "retry",
                    "job": state.job.id,
                    "lease": lease.token,
                    "error": error,
                    "not_before": float(self._clock()) + delay,
                },
                fault=POINT_QUEUE_RETRY,
            )
            obs.count("repro_queue_retries_total", kind=state.job.kind)
            return STATUS_PENDING

    def _check_lease(self, lease: JobLease) -> JobState:
        if not isinstance(lease, JobLease):
            raise TypeError(f"lease must be a JobLease, got {type(lease).__name__}")
        state = self._jobs.get(lease.job.id)
        if (
            state is None
            or state.status != STATUS_CLAIMED
            or state.lease != lease.token
        ):
            raise LeaseLostError(
                f"lease {lease.token} on {lease.job.id} is no longer current"
            )
        return state

    # ------------------------------------------------------------------
    # Dead-letter lane and maintenance
    # ------------------------------------------------------------------

    def requeue_dead(self, job_id: str) -> Job:
        """Return a dead-lettered job to the pending lane, attempts reset."""
        with self._lock:
            state = self._jobs.get(job_id)
            if state is None or state.status != STATUS_DEAD:
                raise ValueError(f"{job_id!r} is not in the dead-letter lane")
            self._append(
                {"event": "requeue", "job": job_id, "at": float(self._clock())},
                fault=POINT_QUEUE_ENQUEUE,
            )
            return state.job

    def checkpoint(self) -> int:
        """Compact the log: drop events of completed jobs; returns dropped.

        Live jobs (pending/claimed) and the dead-letter lane keep their
        full event history — attempts and lease fences replay exactly.
        The rewrite is atomic and the header preserves the sequence
        high-water mark, so job ids never collide after compaction.
        """
        with self._lock:
            payloads = self._log.payloads()
            done = {
                job_id
                for job_id, state in self._jobs.items()
                if state.status == STATUS_DONE
            }
            keep = []
            for payload in payloads:
                job_id = (
                    f"job-{payload['seq']}"
                    if payload["event"] == "enqueue"
                    else payload["job"]
                )
                if job_id not in done:
                    keep.append(payload)
            self._log.rewrite(keep, fault_rewrite=POINT_QUEUE_CHECKPOINT)
            for job_id in done:
                del self._jobs[job_id]
            dropped = len(payloads) - len(keep)
            obs.count("repro_queue_checkpoints_total")
            self._refresh_gauges()
        obs.emit_event(
            "queue.checkpoint",
            path=str(self.path),
            dropped=dropped,
            kept=len(keep),
        )
        return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        """Where the queue log lives."""
        # _log is bound once in __init__ and never reassigned; its path
        # is immutable, so this lock-free read is safe.
        return self._log.path  # repolint: disable=R009

    def jobs(self) -> list[dict]:
        """Snapshot of every tracked job, in enqueue order."""
        with self._lock:
            return [state.snapshot() for state in self._jobs.values()]

    def dead_letters(self) -> list[dict]:
        """Snapshot of the dead-letter lane."""
        with self._lock:
            return [
                state.snapshot()
                for state in self._jobs.values()
                if state.status == STATUS_DEAD
            ]

    def depth(self, status: Optional[str] = None) -> int:
        """Number of tracked jobs, optionally filtered by status."""
        if status is not None and status not in JOB_STATUSES:
            raise ValueError(
                f"status must be one of {JOB_STATUSES}, got {status!r}"
            )
        with self._lock:
            if status is None:
                return len(self._jobs)
            return sum(1 for s in self._jobs.values() if s.status == status)

    def oldest_pending_age(self) -> float:
        """Age in seconds of the oldest pending job (0.0 when none)."""
        with self._lock:
            now = float(self._clock())
            ages = [
                now - state.job.enqueued_at
                for state in self._jobs.values()
                if state.status == STATUS_PENDING
            ]
            return max(ages) if ages else 0.0

    def _refresh_gauges(self) -> None:
        """Export queue depth and age gauges (caller holds the lock)."""
        counts = dict.fromkeys(JOB_STATUSES, 0)
        for state in self._jobs.values():
            counts[state.status] += 1
        for status, value in counts.items():
            obs.set_gauge("repro_queue_depth", float(value), state=status)
        now = float(self._clock())
        ages = [
            now - state.job.enqueued_at
            for state in self._jobs.values()
            if state.status == STATUS_PENDING
        ]
        obs.set_gauge(
            "repro_queue_oldest_age_seconds", max(ages) if ages else 0.0
        )
