"""The long-running maintenance agent loop.

:class:`MaintenanceAgent` is the single worker a deployment runs next to
its serving processes: it claims jobs off the durable queue, executes
the matching handler from :mod:`repro.maint.agent.actions`, and resolves
each claim with exactly one ack / retry / dead-letter event.  The
crash-safety story lives in the queue — the agent is deliberately
stateless, so killing it at any instant loses nothing: its lease expires
and the next incarnation reclaims the job.

While a handler runs, a **heartbeat thread** renews the lease at a third
of the lease duration, so long rebuilds are not reclaimed out from under
a healthy worker.  If the heartbeat ever observes
:class:`~repro.maint.queue.LeaseLostError` — the agent stalled past its
lease and someone else took the job — the job's effects stop being ours
to report: the agent skips the ack and moves on (the effects themselves
are idempotent by the handler contract).

Shutdown is **graceful by construction**: :meth:`MaintenanceAgent.stop`
flips an event the main loop checks between jobs, so the in-flight job
always drains to a logged resolution before :meth:`run` returns.

A simulated power loss (:class:`~repro.testing.faults.InjectedCrash`)
propagates out of the loop un-handled — the chaos suite uses it to kill
the "process" at exact queue-event boundaries; treating it as a mere job
failure would retry the job inside a process that is supposed to be
dead.
"""

from __future__ import annotations

import threading
import time
from contextlib import ExitStack
from typing import Callable, Optional

from repro.maint.agent.actions import HANDLERS, AgentContext
from repro.maint.queue import Job, JobLease, LeaseLostError
from repro.obs import runtime as obs
from repro.obs import tracing
from repro.obs.tracing import TraceContext, span
from repro.testing.faults import InjectedCrash

#: Outcomes :meth:`MaintenanceAgent.run_once` can report for one job.
OUTCOME_DONE = "done"
OUTCOME_RETRY = "retry"
OUTCOME_DEAD = "dead"
OUTCOME_LOST = "lost"


class MaintenanceAgent:
    """One queue-consuming maintenance worker (see the module docstring)."""

    def __init__(
        self,
        context: AgentContext,
        *,
        name: str = "maintenance-agent",
        poll_interval: float = 0.05,
        handlers: Optional[dict[str, Callable[[AgentContext, Job], dict]]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not isinstance(context, AgentContext):
            raise TypeError(
                f"context must be an AgentContext, got {type(context).__name__}"
            )
        if not isinstance(name, str) or not name:
            raise TypeError(f"name must be a non-empty str, got {name!r}")
        if poll_interval <= 0.0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        self.context = context
        self.queue = context.queue
        self.name = name
        self.poll_interval = float(poll_interval)
        self.handlers = dict(HANDLERS) if handlers is None else dict(handlers)
        self._sleep = sleep
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Request a graceful shutdown: finish the in-flight job, claim no more."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def run(self, *, max_jobs: Optional[int] = None) -> int:
        """The agent main loop; returns the number of jobs resolved.

        Runs until :meth:`stop` is called (or *max_jobs* jobs resolved,
        for tests and one-shot CLI drains).  Idle polls sleep
        ``poll_interval`` between claims.
        """
        resolved = 0
        while not self._stop.is_set():
            if max_jobs is not None and resolved >= max_jobs:
                break
            outcome = self.run_once()
            if outcome is None:
                if max_jobs is not None:
                    break  # drain mode: an empty queue is completion
                self._sleep(self.poll_interval)
                continue
            resolved += 1
        return resolved

    def drain(self) -> int:
        """Resolve every currently-eligible job, then return the count."""
        with span("agent.drain"):
            drained = 0
            while not self._stop.is_set():
                if self.run_once() is None:
                    break
                drained += 1
            return drained

    # ------------------------------------------------------------------
    # One job
    # ------------------------------------------------------------------

    def run_once(self) -> Optional[str]:
        """Claim and resolve one job; ``None`` when nothing is eligible."""
        lease = self.queue.claim(self.name)
        if lease is None:
            return None
        return self._execute(lease)

    def _execute(self, lease: JobLease) -> str:
        job = lease.job
        handler = self.handlers.get(job.kind)
        # Re-join the trace that caused this job (recorded at enqueue
        # time), so the agent.job span — and anything the handler
        # enqueues in turn — links back to the originating request.  The
        # job runs inside tracing.scope: a fresh span stack under the
        # job's context, so the loop's own spans (agent.drain) cannot
        # graft the job into their trace.  The heartbeat thread below
        # captures the same context.
        context = (
            TraceContext(trace_id=job.trace_id, sampled=True)
            if job.trace_id
            else None
        )
        heartbeat = _Heartbeat(self.queue, lease, context=context)
        heartbeat.start()
        try:
            if handler is None:
                raise LookupError(f"no handler for job kind {job.kind!r}")
            with ExitStack() as stack:
                if context is not None:
                    stack.enter_context(tracing.scope(context))
                stack.enter_context(span("agent.job", kind=job.kind, job=job.id))
                result = handler(self.context, job)
            error: Optional[str] = None
        except InjectedCrash:
            raise  # simulated power loss: die here, the lease will expire
        except Exception as exc:  # noqa: BLE001 — the queue owns retry policy
            result = None
            error = f"{type(exc).__name__}: {exc}"
        finally:
            heartbeat.cancel()
        current = heartbeat.lease
        if heartbeat.lost:
            obs.count("repro_agent_jobs_total", kind=job.kind, outcome="lost")
            return OUTCOME_LOST
        if error is None:
            try:
                self.queue.ack(current)
            except LeaseLostError:
                obs.count("repro_agent_jobs_total", kind=job.kind, outcome="lost")
                return OUTCOME_LOST
            obs.emit_event("agent.job", job=job.id, kind=job.kind, result=result)
            return OUTCOME_DONE
        obs.count("repro_agent_job_failures_total", kind=job.kind)
        try:
            status = self.queue.fail(current, error)
        except LeaseLostError:
            obs.count("repro_agent_jobs_total", kind=job.kind, outcome="lost")
            return OUTCOME_LOST
        obs.emit_event("agent.job", job=job.id, kind=job.kind, error=error)
        return OUTCOME_DEAD if status == "dead" else OUTCOME_RETRY


class _Heartbeat:
    """Renews one lease from a helper thread until cancelled.

    Renewal interval is a third of the queue's lease duration — two
    missed beats of headroom before an expiry.  A failed renewal
    (:class:`LeaseLostError`, or any exception: the queue may be mid
    fault-injection) stops the thread; ``lost`` reports whether the lease
    is known to be gone so the worker can skip its ack.
    """

    def __init__(
        self, queue, lease: JobLease, *, context: Optional[TraceContext] = None
    ):
        self._queue = queue
        self._cancel = threading.Event()
        self._lock = threading.Lock()
        self._lease = lease
        self._lost = False
        #: The job's trace context, re-attached on the heartbeat thread so
        #: any spans its renewals emit stay inside the job's trace.
        self._context = context
        self._interval = max(queue.lease_duration / 3.0, 0.001)
        self._thread = threading.Thread(
            target=self._beat, name=f"heartbeat-{lease.job.id}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def cancel(self) -> None:
        self._cancel.set()
        self._thread.join()

    @property
    def lease(self) -> JobLease:
        with self._lock:
            return self._lease

    @property
    def lost(self) -> bool:
        with self._lock:
            return self._lost

    def _beat(self) -> None:
        token = tracing.attach(self._context) if self._context is not None else None
        try:
            while not self._cancel.wait(self._interval):
                try:
                    renewed = self._queue.renew(self.lease)
                except LeaseLostError:
                    with self._lock:
                        self._lost = True
                    return
                except Exception:  # noqa: BLE001 — e.g. an injected IO fault
                    return  # stop heartbeating; the ack path decides the outcome
                with self._lock:
                    self._lease = renewed
        finally:
            if self._context is not None:
                tracing.detach(token)
