"""The autonomous maintenance agent.

A long-running worker over the durable job queue
(:class:`repro.maint.queue.DurableJobQueue`): rebuilds drifted
histograms, lands checkpoints, repairs quarantined entries, and audits
observed estimation error — each as a crash-safe, lease-fenced job.  See
``docs/MAINTENANCE.md`` for the lifecycle state machine and operational
guidance.
"""

from __future__ import annotations

from repro.maint.agent.actions import (
    HANDLERS,
    AgentActionError,
    AgentContext,
    DriftPolicy,
    StatisticsSource,
    run_checkpoint,
    run_drift_audit,
    run_quarantine_repair,
    run_rebuild,
)
from repro.maint.agent.runner import (
    OUTCOME_DEAD,
    OUTCOME_DONE,
    OUTCOME_LOST,
    OUTCOME_RETRY,
    MaintenanceAgent,
)

__all__ = [
    "AgentActionError",
    "AgentContext",
    "DriftPolicy",
    "HANDLERS",
    "MaintenanceAgent",
    "OUTCOME_DEAD",
    "OUTCOME_DONE",
    "OUTCOME_LOST",
    "OUTCOME_RETRY",
    "StatisticsSource",
    "run_checkpoint",
    "run_drift_audit",
    "run_quarantine_repair",
    "run_rebuild",
]
