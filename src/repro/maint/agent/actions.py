"""The maintenance agent's job handlers.

One handler per :data:`repro.maint.queue.JOB_KINDS` entry, dispatched by
:class:`repro.maint.agent.runner.MaintenanceAgent` through
:data:`HANDLERS`.  Every handler takes the shared :class:`AgentContext`
plus the claimed :class:`~repro.maint.queue.Job` and returns a
JSON-friendly result dict (surfaced through ``repro agent`` and the
event log).

Handlers are written to be **idempotent**: the queue guarantees each job
is *resolved* exactly once, but a crash mid-execution means the work may
*run* more than once after a lease reclaim.  Rebuilds republish a full
snapshot through the catalog + WAL (re-publishing the same statistics is
a no-op for correctness), checkpoints re-checkpoint, audits re-audit.

The serving contract during a rebuild: :func:`run_rebuild` marks the
pair as rebuilding on the :class:`~repro.serve.EstimationService`, which
**only** refines the degradation reason of an *already quarantined* pair
to ``"rebuild-in-progress"`` — a healthy pair keeps serving the last
published snapshot untouched, and picks up the rebuilt entry through the
catalog version bump when ``put`` lands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.core.biased import v_opt_bias_hist
from repro.core.frequency import AttributeDistribution
from repro.engine.catalog import CatalogEntry, CompactEndBiased, StatsCatalog
from repro.engine.journal import MaintenanceJournal
from repro.engine.persist import save_catalog
from repro.maint.queue import DurableJobQueue, Job
from repro.obs import runtime as obs
from repro.obs.accuracy import AccuracyMonitor, get_monitor


class AgentActionError(RuntimeError):
    """A job cannot run as parameterized/configured (retryable)."""


#: Source of fresh statistics for a rebuild: ``(relation, attribute) ->``
#: :class:`~repro.core.frequency.AttributeDistribution`.  In production
#: this re-scans (or samples) the base table; tests inject fakes.
StatisticsSource = Callable[[str, str], AttributeDistribution]


@dataclass(frozen=True)
class DriftPolicy:
    """When observed estimation error warrants an autonomous rebuild.

    A ``(kind, relation, attribute)`` crosses the drift line when its
    :class:`~repro.obs.accuracy.ErrorStats` has seen at least
    ``min_observations`` probes **and** its mean relative error is at or
    above ``max_relative_error``.  Raise the threshold for workloads
    where estimates feed only coarse decisions; lower it (with a higher
    observation floor, to keep noise out) when plans are sensitive.
    """

    max_relative_error: float = 0.5
    min_observations: int = 20

    def __post_init__(self) -> None:
        if self.max_relative_error <= 0.0:
            raise ValueError(
                f"max_relative_error must be > 0, got {self.max_relative_error}"
            )
        if self.min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )


@dataclass
class AgentContext:
    """Everything the handlers share: the store, the loop, the knobs."""

    queue: DurableJobQueue
    catalog: StatsCatalog
    #: Where checkpoints/rebuilds republish the snapshot (optional: an
    #: in-memory catalog still rebuilds, it just is not durable).
    snapshot_path: Optional[Path] = None
    #: The WAL checkpointed alongside snapshot writes.
    journal: Optional[MaintenanceJournal] = None
    #: The serving front-end to annotate (quarantine/rebuilding marks).
    service: Optional[object] = None
    #: Fresh-statistics provider for rebuild jobs.
    source: Optional[StatisticsSource] = None
    #: Explicit-bucket budget for rebuilt end-biased histograms.
    buckets: int = 16
    drift: DriftPolicy = field(default_factory=DriftPolicy)
    #: Error stats feeding drift audits (default: the process monitor).
    monitor: Optional[AccuracyMonitor] = None

    def __post_init__(self) -> None:
        if not isinstance(self.queue, DurableJobQueue):
            raise TypeError(
                f"queue must be a DurableJobQueue, got {type(self.queue).__name__}"
            )
        if not isinstance(self.catalog, StatsCatalog):
            raise TypeError(
                f"catalog must be a StatsCatalog, got {type(self.catalog).__name__}"
            )
        if self.buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {self.buckets}")

    def accuracy_monitor(self) -> AccuracyMonitor:
        return self.monitor if self.monitor is not None else get_monitor()


def _job_target(job: Job) -> tuple[str, str]:
    relation = job.params.get("relation")
    attribute = job.params.get("attribute")
    if not isinstance(relation, str) or not relation:
        raise AgentActionError(f"{job.id} ({job.kind}) lacks a relation param")
    if not isinstance(attribute, str) or not attribute:
        raise AgentActionError(f"{job.id} ({job.kind}) lacks an attribute param")
    return relation, attribute


def run_rebuild(ctx: AgentContext, job: Job) -> dict:
    """Recompute one column's end-biased histogram and republish it.

    The republish path is the same WAL-coupled snapshot write the rest
    of the tree uses: ``catalog.put`` bumps the version (serving caches
    recompile lazily from the *new* entry; until then probes answer from
    the prior snapshot), then :func:`save_catalog` lands the snapshot
    atomically and checkpoints the journal.  Finishing a rebuild releases
    the pair's quarantine — the statistics are fresh by construction.
    """
    relation, attribute = _job_target(job)
    if ctx.source is None:
        raise AgentActionError(
            f"{job.id} needs a statistics source; construct the AgentContext "
            "with source="
        )
    service = ctx.service
    if service is not None:
        service.mark_rebuilding(relation, attribute)
    try:
        distribution = ctx.source(relation, attribute)
        if not isinstance(distribution, AttributeDistribution):
            raise AgentActionError(
                f"statistics source returned "
                f"{type(distribution).__name__}, expected AttributeDistribution"
            )
        buckets = min(ctx.buckets, distribution.domain_size)
        histogram = v_opt_bias_hist(
            distribution.frequencies, buckets, values=distribution.values
        )
        compact = CompactEndBiased.from_histogram(histogram)
        entry = CatalogEntry(
            relation=relation,
            attribute=attribute,
            kind="maintained-end-biased",
            histogram=None,
            compact=compact,
            distinct_count=len(compact.explicit) + compact.remainder_count,
            total_tuples=float(distribution.total),
        )
        if ctx.journal is not None:
            # The rebuilt statistics are current as of now: fence out every
            # already-acknowledged delta so replay cannot double-apply.
            entry.journal_seq = ctx.journal.last_seq
        ctx.catalog.put(entry)
        if ctx.snapshot_path is not None:
            save_catalog(ctx.catalog, ctx.snapshot_path, journal=ctx.journal)
        if service is not None:
            service.clear_quarantine(relation, attribute)
        obs.count("repro_agent_rebuilds_total")
        return {
            "relation": relation,
            "attribute": attribute,
            "total_tuples": float(distribution.total),
            "catalog_version": ctx.catalog.version,
        }
    finally:
        if service is not None:
            service.clear_rebuilding(relation, attribute)


def run_checkpoint(ctx: AgentContext, job: Job) -> dict:
    """Land a durable snapshot, checkpoint the WAL, compact the queue."""
    if ctx.snapshot_path is not None:
        save_catalog(ctx.catalog, ctx.snapshot_path, journal=ctx.journal)
    dropped = ctx.queue.checkpoint()
    return {
        "snapshot": None if ctx.snapshot_path is None else str(ctx.snapshot_path),
        "queue_events_dropped": dropped,
        "catalog_version": ctx.catalog.version,
    }


def run_quarantine_repair(ctx: AgentContext, job: Job) -> dict:
    """Fan the service's quarantine set out into rebuild jobs.

    Whole-relation holds (attribute ``None``) are first narrowed to
    per-attribute holds over the relation's cataloged attributes, so each
    finishing rebuild releases exactly its own column.  Enqueues are
    deduped — re-running the repair while rebuilds are pending adds
    nothing.
    """
    service = ctx.service
    if service is None:
        return {"enqueued": []}
    pairs: set[tuple[str, str]] = set()
    for relation, attribute in sorted(
        service.quarantined, key=lambda item: (item[0], item[1] or "")
    ):
        if attribute is not None:
            pairs.add((relation, attribute))
            continue
        attributes = [
            entry.attribute
            for entry in ctx.catalog.entries()
            if entry.relation == relation
        ]
        if not attributes:
            continue  # nothing cataloged to rebuild; keep the coarse hold
        for narrowed in attributes:
            service.quarantine(relation, narrowed)
            pairs.add((relation, narrowed))
        service.clear_quarantine(relation, None)
    enqueued = []
    for relation, attribute in sorted(pairs):
        enqueued.append(
            ctx.queue.enqueue(
                "rebuild",
                {"relation": relation, "attribute": attribute},
                dedupe_key=f"rebuild:{relation}.{attribute}",
            ).id
        )
    return {"enqueued": enqueued}


def run_drift_audit(ctx: AgentContext, job: Job) -> dict:
    """Close the accuracy feedback loop: high observed error → rebuild.

    Reads the per-(kind, relation, attribute) error stats from the
    accuracy monitor and enqueues a deduped ``rebuild`` for every
    cataloged column whose mean relative error crossed the drift line
    (``params["threshold"]`` overrides the context policy per audit).
    Join and self-join keys aggregate over column pairs, so they never
    map to one rebuild target and are skipped.
    """
    threshold = job.params.get("threshold", ctx.drift.max_relative_error)
    if not isinstance(threshold, (int, float)) or threshold <= 0.0:
        raise AgentActionError(
            f"{job.id} threshold must be a positive number, got {threshold!r}"
        )
    monitor = ctx.accuracy_monitor()
    enqueued: list[str] = []
    examined = 0
    for (kind, relation, attribute), stats in monitor.items():
        examined += 1
        if kind not in ("equality", "range"):
            continue
        if stats.count < ctx.drift.min_observations:
            continue
        if stats.mean_relative_error < float(threshold):
            continue
        if ctx.catalog.get(relation, attribute) is None:
            continue
        enqueued.append(
            ctx.queue.enqueue(
                "rebuild",
                {"relation": relation, "attribute": attribute},
                dedupe_key=f"rebuild:{relation}.{attribute}",
                # Link the rebuild back to the probe batch whose error
                # crossed the line (falls back to this audit's own trace
                # context when the monitor never saw a traced request).
                trace_id=stats.last_trace_id or None,
            ).id
        )
        obs.count(
            "repro_agent_drift_triggers_total",
            relation=relation,
            attribute=attribute,
        )
    return {
        "threshold": float(threshold),
        "examined": examined,
        "enqueued": enqueued,
    }


#: Job-kind dispatch used by the runner.
HANDLERS: dict[str, Callable[[AgentContext, Job], dict]] = {
    "rebuild": run_rebuild,
    "checkpoint": run_checkpoint,
    "quarantine-repair": run_quarantine_repair,
    "drift-audit": run_drift_audit,
}
