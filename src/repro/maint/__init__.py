"""Histogram maintenance under database updates (Section 2.3 discussion).

Two layers: :mod:`repro.maint.update` keeps one histogram consistent
under inline inserts/deletes, and :mod:`repro.maint.queue` +
:mod:`repro.maint.agent` run maintenance autonomously — a durable,
crash-safe job queue consumed by a long-lived agent that rebuilds,
checkpoints, repairs quarantines, and audits drift.
"""

from __future__ import annotations

from repro.maint.queue import (
    JOB_KINDS,
    JOB_STATUSES,
    DurableJobQueue,
    Job,
    JobLease,
    JobState,
    LeaseLostError,
    QueueFormatError,
    RetryPolicy,
)
from repro.maint.update import MaintainedEndBiased, MaintenancePolicy

__all__ = [
    "DurableJobQueue",
    "JOB_KINDS",
    "JOB_STATUSES",
    "Job",
    "JobLease",
    "JobState",
    "LeaseLostError",
    "MaintainedEndBiased",
    "MaintenancePolicy",
    "QueueFormatError",
    "RetryPolicy",
]
