"""Histogram maintenance under database updates (Section 2.3 discussion)."""

from __future__ import annotations

from repro.maint.update import MaintainedEndBiased, MaintenancePolicy

__all__ = ["MaintainedEndBiased", "MaintenancePolicy"]
