"""Abstract syntax for the supported SQL subset.

The grammar covers exactly the paper's query class: conjunctive selections
and equality/tree joins, plus the range and ``IN`` predicates Section 6
reduces to disjunctive equality selections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

#: Comparison operators in predicates.
COMPARISON_OPERATORS = ("=", "<>", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name predicates use to reference this table."""
        return self.alias or self.name


@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference."""

    column: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A constant: number (int/float) or string."""

    value: Union[int, float, str]


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` where either side may be a column or literal."""

    left: Union[ColumnRef, Literal]
    operator: str
    right: Union[ColumnRef, Literal]

    def __post_init__(self):
        if self.operator not in COMPARISON_OPERATORS:
            raise ValueError(f"unsupported operator {self.operator!r}")

    def is_join(self) -> bool:
        """True when both sides are column references."""
        return isinstance(self.left, ColumnRef) and isinstance(self.right, ColumnRef)


@dataclass(frozen=True)
class InPredicate:
    """``column [NOT] IN (literal, ...)``."""

    column: ColumnRef
    values: tuple[Literal, ...]
    negated: bool = False


@dataclass(frozen=True)
class BetweenPredicate:
    """``column BETWEEN low AND high`` (inclusive)."""

    column: ColumnRef
    low: Literal
    high: Literal


Predicate = Union[Comparison, InPredicate, BetweenPredicate]


@dataclass(frozen=True)
class SelectStatement:
    """``SELECT columns FROM tables [WHERE conjunction]``."""

    columns: tuple[ColumnRef, ...]  # empty tuple means SELECT *
    tables: tuple[TableRef, ...]
    predicates: tuple[Predicate, ...] = field(default_factory=tuple)
    count_star: bool = False  # SELECT [cols,] COUNT(*)
    group_by: tuple[ColumnRef, ...] = field(default_factory=tuple)

    @property
    def is_star(self) -> bool:
        return not self.columns and not self.count_star
