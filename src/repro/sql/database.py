"""The user-facing database object: relations + catalog + SQL execution.

:class:`Database` wires the whole reproduction together: relations are
registered, ``analyze()`` collects histogram statistics (the paper's
recommended end-biased form by default), and SQL SELECTs are planned with
histogram-backed estimates and executed with hash joins.  ``explain()``
returns the estimate and the join order without touching the data — what a
real optimizer does — so estimate quality can be audited query by query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.engine.analyze import analyze_relation
from repro.engine.catalog import StatsCatalog
from repro.engine.relation import Relation
from repro.engine.schema import Attribute, Schema
from repro.optimizer.joinorder import JoinGraph, _materialize
from repro.optimizer.plans import Plan
from repro.sql.ast import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    InPredicate,
    Literal,
    Predicate,
    SelectStatement,
)
from repro.sql.parser import parse_select
from repro.sql.planner import PlannedQuery, SqlPlanError, plan_query


@dataclass(frozen=True)
class Explanation:
    """``explain()`` output: the plan plus its headline numbers."""

    estimated_rows: float
    join_plan: Optional[Plan]
    selection_selectivities: dict[str, float]
    estimated_groups: Optional[float] = None

    def pretty(self) -> str:
        lines = [f"estimated rows: {self.estimated_rows:.1f}"]
        if self.estimated_groups is not None:
            lines.append(f"estimated groups: {self.estimated_groups:.1f}")
        for binding, selectivity in sorted(self.selection_selectivities.items()):
            if selectivity != 1.0:
                lines.append(f"  selection on {binding}: selectivity {selectivity:.4f}")
        if self.join_plan is not None:
            lines.append(self.join_plan.pretty(indent=2))
        return "\n".join(lines)


def _predicate_matches(pred: Predicate, row: tuple, schema) -> bool:
    """Evaluate one resolved selection predicate against a raw row."""

    def value_of(ref: ColumnRef):
        return row[schema.position(ref.column)]

    if isinstance(pred, Comparison):
        left = value_of(pred.left) if isinstance(pred.left, ColumnRef) else pred.left.value
        right = (
            value_of(pred.right) if isinstance(pred.right, ColumnRef) else pred.right.value
        )
        try:
            return {
                "=": left == right,
                "<>": left != right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[pred.operator]
        except TypeError:
            return False  # incomparable types never match, like SQL NULL logic
    if isinstance(pred, InPredicate):
        members = {literal.value for literal in pred.values}
        hit = value_of(pred.column) in members
        return (not hit) if pred.negated else hit
    if isinstance(pred, BetweenPredicate):
        value = value_of(pred.column)
        try:
            return pred.low.value <= value <= pred.high.value
        except TypeError:
            return False
    raise SqlPlanError(f"unsupported predicate {pred!r}")


class Database:
    """An in-memory database speaking the supported SQL subset."""

    def __init__(self):
        self._relations: dict[str, Relation] = {}
        self.catalog = StatsCatalog()

    # ------------------------------------------------------------------
    # Data definition
    # ------------------------------------------------------------------

    def add(self, relation: Relation) -> None:
        """Register *relation* under its name (replacing any previous one)."""
        self._relations[relation.name] = relation

    def create(self, name: str, columns: dict[str, Sequence]) -> Relation:
        """Create and register a relation from column data."""
        relation = Relation.from_columns(name, columns)
        self.add(relation)
        return relation

    def relation(self, name: str) -> Relation:
        if name not in self._relations:
            raise KeyError(f"unknown relation {name!r}")
        return self._relations[name]

    @property
    def relation_names(self) -> list[str]:
        return sorted(self._relations)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def analyze(
        self,
        names: Optional[Iterable[str]] = None,
        *,
        kind: str = "end-biased",
        buckets: int = 10,
    ) -> int:
        """Collect statistics (every attribute of the named relations)."""
        count = 0
        for name in names if names is not None else self.relation_names:
            relation = self.relation(name)
            for attribute in relation.schema.names:
                analyze_relation(
                    relation, attribute, self.catalog, kind=kind, buckets=buckets
                )
                count += 1
        return count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def plan(self, sql: str) -> PlannedQuery:
        """Parse and plan a SELECT without executing it."""
        statement = parse_select(sql)
        return plan_query(statement, self._relations, self.catalog)

    def explain(self, sql: str) -> Explanation:
        """Estimated cardinality and join order for *sql*."""
        planned = self.plan(sql)
        return Explanation(
            estimated_rows=planned.estimated_rows,
            join_plan=planned.join_plan,
            selection_selectivities=planned.selection_selectivities,
            estimated_groups=planned.estimated_groups,
        )

    def estimate(self, sql: str) -> float:
        """Histogram-based cardinality estimate of the result of *sql*.

        For grouped queries this is the estimated number of groups
        (distinct-value model); otherwise the estimated tuple count.
        """
        return self.plan(sql).estimated_output_rows

    def execute(self, sql: str) -> Relation:
        """Execute *sql* and return the result relation.

        ``SELECT COUNT(*)`` returns a one-row relation with the count, and
        ``GROUP BY`` returns one row per group (with its count when
        ``COUNT(*)`` is also selected) — exactly the quantities whose
        *estimates* the paper's histograms provide via :meth:`estimate`.
        """
        planned = self.plan(sql)
        if planned.group_by:
            return self._execute_grouped(planned)
        if planned.statement.count_star:
            inner = self._execute_planned(planned)
            return Relation(
                "result", Schema([Attribute("count")]), [(inner.cardinality,)]
            )
        return self._execute_planned(planned)

    def _execute_grouped(self, planned: PlannedQuery) -> Relation:
        """Evaluate a GROUP BY query: dedupe group keys, optionally count."""
        from collections import Counter

        group_rows = self._rows_for_refs(planned, list(planned.group_by))
        counts = Counter(group_rows)

        # Output order: explicitly selected columns (a subset of the group
        # keys, validated by the planner), then COUNT(*) when requested.
        refs = list(planned.output_columns) or list(planned.group_by)
        positions = [planned.group_by.index(ref) for ref in refs]
        names = self._output_names(refs, explicit=True)
        if planned.statement.count_star:
            names = names + ["count"]
        schema = Schema([Attribute(name) for name in names])
        rows = []
        for key in sorted(counts, key=repr):
            projected = tuple(key[p] for p in positions)
            if planned.statement.count_star:
                projected += (counts[key],)
            rows.append(projected)
        return Relation("result", schema, rows)

    def _rows_for_refs(
        self, planned: PlannedQuery, refs: list[ColumnRef]
    ) -> list[tuple]:
        """Evaluate the FROM/WHERE part, projected onto *refs* (as tuples)."""
        if planned.constant_false:
            return []
        filtered = self._filtered_bindings(planned)
        if len(filtered) == 1:
            ((_, relation),) = filtered.items()
            positions = [relation.schema.position(ref.column) for ref in refs]
            return [tuple(row[p] for p in positions) for row in relation.rows()]
        if planned.join_plan is None:
            return []
        graph = JoinGraph(list(filtered.values()), list(planned.join_edges))
        keys = [f"{ref.table}.{ref.column}" for ref in refs]
        return [
            tuple(row[key] for key in keys)
            for row in _materialize(planned.join_plan, graph)
        ]

    def _filtered_bindings(self, planned: PlannedQuery) -> dict[str, Relation]:
        """Apply each binding's selection predicates."""
        filtered: dict[str, Relation] = {}
        for binding, relation in planned.bindings.items():
            predicates = planned.selections.get(binding, ())
            if predicates:
                rows = [
                    row
                    for row in relation.rows()
                    if all(
                        _predicate_matches(p, row, relation.schema) for p in predicates
                    )
                ]
                filtered[binding] = Relation(binding, relation.schema, rows)
            else:
                filtered[binding] = relation
        return filtered

    def _execute_planned(self, planned: PlannedQuery) -> Relation:
        filtered = self._filtered_bindings(planned)
        if len(filtered) == 1:
            (binding, relation), = filtered.items()
            if planned.constant_false:
                relation = Relation(binding, relation.schema, [])
            return self._project_single(planned, binding, relation)

        if planned.join_plan is None:
            # Constant-false WHERE over a multi-table query: empty result.
            assert planned.constant_false
            refs = self._output_refs(planned)
            return Relation(
                "result", Schema([Attribute(str(ref)) for ref in refs]), []
            )
        graph = JoinGraph(list(filtered.values()), list(planned.join_edges))
        rows = _materialize(planned.join_plan, graph)
        return self._project_joined(planned, rows)

    # ------------------------------------------------------------------

    def _output_refs(self, planned: PlannedQuery) -> list[ColumnRef]:
        if planned.output_columns:
            return list(planned.output_columns)
        refs = []
        for table in planned.statement.tables:
            relation = planned.bindings[table.binding]
            refs.extend(
                ColumnRef(attribute, table=table.binding)
                for attribute in relation.schema.names
            )
        return refs

    @staticmethod
    def _output_names(refs: list[ColumnRef], *, explicit: bool) -> list[str]:
        """Result column names: bare when unambiguous, qualified otherwise.

        Explicitly projected columns use the SQL convention of keeping the
        bare column name unless two projected columns collide; ``SELECT *``
        over joins keeps qualified names (the merged schema may collide).
        """
        if explicit:
            bare = [ref.column for ref in refs]
            if len(set(bare)) == len(bare):
                return bare
        return [str(ref) for ref in refs]

    def _project_single(
        self, planned: PlannedQuery, binding: str, relation: Relation
    ) -> Relation:
        refs = self._output_refs(planned)
        explicit = bool(planned.output_columns)
        positions = [relation.schema.position(ref.column) for ref in refs]
        names = (
            self._output_names(refs, explicit=True)
            if explicit
            else [ref.column for ref in refs]
        )
        schema = Schema([Attribute(name) for name in names])
        rows = [tuple(row[p] for p in positions) for row in relation.rows()]
        return Relation("result", schema, rows)

    def _project_joined(self, planned: PlannedQuery, rows: list[dict]) -> Relation:
        refs = self._output_refs(planned)
        keys = [f"{ref.table}.{ref.column}" for ref in refs]
        names = self._output_names(refs, explicit=bool(planned.output_columns))
        schema = Schema([Attribute(name) for name in names])
        tuples = [tuple(row[key] for key in keys) for row in rows]
        return Relation("result", schema, tuples)
