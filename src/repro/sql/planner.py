"""Query planning: resolution, classification, estimation, join ordering.

The planner implements the optimizer pipeline the paper's histograms feed:

1. resolve table bindings and column references;
2. classify WHERE conjuncts into **selections** (column vs literal — the
   disjunctive-equality family of Section 6) and **equality joins**
   (column vs column across tables — the paper's query class);
3. estimate per-relation selection selectivities and per-edge join
   selectivities from the statistics catalog;
4. order the joins with the System-R dynamic program.

Non-equality joins across relations are rejected — they are outside the
paper's tree-equality-join class (its own "future work").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.engine.catalog import CatalogEntry, StatsCatalog
from repro.engine.relation import Relation
from repro.optimizer.cardinality import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    CardinalityEstimator,
)
from repro.optimizer.cost import CostModel
from repro.serve.frame import EqualityProbe, Probe, RangeProbe
from repro.serve.service import EstimationService
from repro.optimizer.joinorder import JoinEdge, JoinGraph, optimal_join_order
from repro.optimizer.plans import Plan
from repro.sql.ast import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    InPredicate,
    Literal,
    Predicate,
    SelectStatement,
)

class SqlPlanError(ValueError):
    """Raised when a statement cannot be planned against the database."""


@dataclass(frozen=True)
class PlannedQuery:
    """The planner's output: classified predicates plus estimates."""

    statement: SelectStatement
    bindings: dict[str, Relation]
    output_columns: tuple[ColumnRef, ...]
    selections: dict[str, tuple[Predicate, ...]]
    join_edges: tuple[JoinEdge, ...]
    selection_selectivities: dict[str, float]
    join_plan: Optional[Plan]
    estimated_rows: float
    group_by: tuple[ColumnRef, ...] = ()
    estimated_groups: Optional[float] = None
    #: True only when the WHERE clause is *provably* false (a constant
    #: literal comparison) — never inferred from zero estimates, which are
    #: approximations.
    constant_false: bool = False

    @property
    def estimated_output_rows(self) -> float:
        """Rows the query returns: groups when grouped, tuples otherwise."""
        if self.group_by:
            assert self.estimated_groups is not None
            return self.estimated_groups
        return self.estimated_rows


def _resolve_column(
    ref: ColumnRef, bindings: dict[str, Relation]
) -> ColumnRef:
    """Qualify *ref*, validating existence and ambiguity."""
    if ref.table is not None:
        if ref.table not in bindings:
            raise SqlPlanError(f"unknown table {ref.table!r} in {ref}")
        if ref.column not in bindings[ref.table].schema:
            raise SqlPlanError(
                f"table {ref.table!r} has no column {ref.column!r}"
            )
        return ref
    owners = [
        binding
        for binding, relation in bindings.items()
        if ref.column in relation.schema
    ]
    if not owners:
        raise SqlPlanError(f"unknown column {ref.column!r}")
    if len(owners) > 1:
        raise SqlPlanError(
            f"ambiguous column {ref.column!r}: present in {sorted(owners)}"
        )
    return ColumnRef(ref.column, table=owners[0])


def _resolve_predicate(pred: Predicate, bindings: dict[str, Relation]) -> Predicate:
    if isinstance(pred, Comparison):
        left = (
            _resolve_column(pred.left, bindings)
            if isinstance(pred.left, ColumnRef)
            else pred.left
        )
        right = (
            _resolve_column(pred.right, bindings)
            if isinstance(pred.right, ColumnRef)
            else pred.right
        )
        # Canonicalise literal-first comparisons to column-first.
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(
                pred.operator, pred.operator
            )
            return Comparison(right, flipped, left)
        return Comparison(left, pred.operator, right)
    if isinstance(pred, InPredicate):
        return InPredicate(
            _resolve_column(pred.column, bindings), pred.values, pred.negated
        )
    if isinstance(pred, BetweenPredicate):
        return BetweenPredicate(
            _resolve_column(pred.column, bindings), pred.low, pred.high
        )
    raise SqlPlanError(f"unsupported predicate {pred!r}")


def _rebind_catalog(
    catalog: StatsCatalog,
    bindings: dict[str, Relation],
    base_names: dict[str, str],
) -> StatsCatalog:
    """Re-key catalog entries from base-relation names to query bindings."""
    rebound = StatsCatalog()
    for binding, relation in bindings.items():
        for attribute in relation.schema.names:
            entry = catalog.get(base_names[binding], attribute)
            if entry is None:
                # No ANALYZE yet: synthesize a uniform-assumption entry so
                # planning degrades gracefully instead of failing — exactly
                # what a system without statistics does.
                entry = CatalogEntry(
                    relation=binding,
                    attribute=attribute,
                    kind="none",
                    histogram=None,
                    compact=None,
                    distinct_count=(
                        relation.distinct_count(attribute)
                        if relation.cardinality
                        else 0
                    ),
                    total_tuples=float(relation.cardinality),
                )
                rebound.put(entry)
                continue
            clone = CatalogEntry(
                relation=binding,
                attribute=attribute,
                kind=entry.kind,
                histogram=entry.histogram,
                compact=entry.compact,
                distinct_count=entry.distinct_count,
                total_tuples=entry.total_tuples,
            )
            rebound.put(clone)
    return rebound


#: How a deferred probe's mass becomes a selectivity factor.
_COMBINE_MASS = "mass"  # min(1, mass/total)
_COMBINE_NEGATED = "negated"  # max(0, 1 - mass/total)


def _combine_selectivity(combine: str, mass: float, total: float) -> float:
    if combine == _COMBINE_NEGATED:
        return max(0.0, 1.0 - mass / total)
    return min(1.0, mass / total)


def _selection_probe(
    pred: Predicate,
    binding: str,
    attribute: str,
    entry: Optional[CatalogEntry],
    service: EstimationService,
) -> tuple[Optional[float], Optional[tuple[Probe, str, float]]]:
    """Classify *pred* into an immediate selectivity or a deferred probe.

    Returns ``(selectivity, None)`` when the answer needs no histogram
    mass (magic-constant fallbacks, constant predicates) or is served by
    a scalar-only entry point (``IN`` membership, which dedups and clamps
    internally), and ``(None, (probe, combine, total))`` when the mass
    should be fetched through the service's batched probe interface —
    ``plan_query`` collects every deferred probe of a statement into
    **one** ``estimate_batch`` call.
    """
    if entry is None or entry.total_tuples <= 0:
        if isinstance(pred, Comparison) and pred.operator == "=":
            return DEFAULT_EQ_SELECTIVITY, None
        return DEFAULT_RANGE_SELECTIVITY, None
    total = entry.total_tuples
    has_histogram = entry.histogram is not None and entry.histogram.values is not None

    if isinstance(pred, Comparison):
        assert isinstance(pred.right, Literal)
        value = pred.right.value
        if pred.operator == "=":
            return None, (
                EqualityProbe(binding, attribute, value),
                _COMBINE_MASS,
                total,
            )
        if pred.operator in ("<>", "!="):
            return None, (
                EqualityProbe(binding, attribute, value),
                _COMBINE_NEGATED,
                total,
            )
        if not has_histogram:
            return DEFAULT_RANGE_SELECTIVITY, None
        bounds = {
            "<": dict(high=value, include_high=False),
            "<=": dict(high=value, include_high=True),
            ">": dict(low=value, include_low=False),
            ">=": dict(low=value, include_low=True),
        }[pred.operator]
        return None, (
            RangeProbe(binding, attribute, **bounds),
            _COMBINE_MASS,
            total,
        )
    if isinstance(pred, InPredicate):
        mass = service.estimate_membership(
            binding, attribute, [v.value for v in pred.values]
        )
        fraction = min(1.0, mass / total)
        return (max(0.0, 1.0 - fraction) if pred.negated else fraction), None
    if isinstance(pred, BetweenPredicate):
        if not has_histogram:
            return DEFAULT_RANGE_SELECTIVITY, None
        return None, (
            RangeProbe(binding, attribute, pred.low.value, pred.high.value),
            _COMBINE_MASS,
            total,
        )
    raise SqlPlanError(f"unsupported predicate {pred!r}")


def _selection_selectivity(
    pred: Predicate,
    binding: str,
    attribute: str,
    entry: Optional[CatalogEntry],
    service: EstimationService,
) -> float:
    """Estimated fraction of a relation's tuples satisfying *pred*.

    The scalar form of :func:`_selection_probe`: a deferred probe is
    answered through a one-element ``estimate_batch`` call, so this
    returns bit-identical floats to the batched planning path.
    """
    selectivity, deferred = _selection_probe(pred, binding, attribute, entry, service)
    if deferred is None:
        assert selectivity is not None
        return selectivity
    probe, combine, total = deferred
    mass = float(service.estimate_batch([probe])[0])
    return _combine_selectivity(combine, mass, total)


def plan_query(
    statement: SelectStatement,
    relations: dict[str, Relation],
    catalog: StatsCatalog,
    *,
    cost_model: Optional[CostModel] = None,
    on_error: Optional[str] = None,
) -> PlannedQuery:
    """Plan *statement* against *relations* using *catalog* statistics.

    ``on_error`` (``"fallback" | "nan" | "raise"``; ``None`` defers to the
    estimation-service default) is forwarded to the cardinality estimator —
    planning over a partially ANALYZEd catalog degrades per-probe instead
    of aborting, per the serving layer's fault-isolation contract.
    """
    bindings: dict[str, Relation] = {}
    base_names: dict[str, str] = {}
    for table in statement.tables:
        if table.name not in relations:
            raise SqlPlanError(f"unknown table {table.name!r}")
        base = relations[table.name]
        base_names[table.binding] = base.name
        if table.binding == base.name:
            bindings[table.binding] = base
        else:
            bindings[table.binding] = Relation(
                table.binding, base.schema, base.rows()
            )

    resolved = [_resolve_predicate(p, bindings) for p in statement.predicates]
    output_columns = tuple(
        _resolve_column(c, bindings) for c in statement.columns
    )
    group_by = tuple(_resolve_column(c, bindings) for c in statement.group_by)
    if group_by:
        missing = [str(c) for c in output_columns if c not in group_by]
        if missing:
            raise SqlPlanError(
                f"selected columns must appear in GROUP BY: {missing}"
            )

    selections: dict[str, list[Predicate]] = {b: [] for b in bindings}
    join_edges: list[JoinEdge] = []
    for pred in resolved:
        if isinstance(pred, Comparison) and pred.is_join():
            left, right = pred.left, pred.right
            if left.table == right.table:
                selections[left.table].append(pred)  # row-local comparison
                continue
            if pred.operator != "=":
                raise SqlPlanError(
                    f"non-equality join {left} {pred.operator} {right} is "
                    "outside the supported (tree equality-join) query class"
                )
            join_edges.append(
                JoinEdge(left.table, left.column, right.table, right.column)
            )
        elif isinstance(pred, Comparison) and isinstance(pred.left, Literal):
            # literal-vs-literal: constant predicate.
            selections.setdefault("", []).append(pred)
        else:
            binding = (
                pred.left.table if isinstance(pred, Comparison) else pred.column.table
            )
            selections[binding].append(pred)

    constant_preds = selections.pop("", [])
    for pred in constant_preds:
        if not _evaluate_literal_comparison(pred):
            # Constant-false WHERE: empty result regardless of data.
            return PlannedQuery(
                statement,
                bindings,
                output_columns,
                {b: tuple(p) for b, p in selections.items()},
                tuple(join_edges),
                {b: 0.0 for b in bindings},
                None,
                0.0,
                group_by,
                0.0 if group_by else None,
                constant_false=True,
            )

    rebound = _rebind_catalog(catalog, bindings, base_names)
    estimator = CardinalityEstimator(rebound, on_error=on_error)
    service = estimator.service

    # One pass classifies every selection predicate; the deferred
    # histogram probes of the whole statement are answered by a single
    # estimate_batch call, and the factors are then multiplied in the
    # original per-predicate order (so the floats match the scalar path
    # exactly).
    factor_sources: dict[str, list[Union[float, int]]] = {}
    deferred_probes: list[Probe] = []
    deferred_combines: list[tuple[str, float]] = []
    for binding, preds in selections.items():
        sources: list[Union[float, int]] = []
        for pred in preds:
            if isinstance(pred, Comparison) and pred.is_join():
                # Same-table column comparison: heuristic selectivity.
                if pred.operator == "=":
                    entry = rebound.get(binding, pred.left.column)
                    distinct = entry.distinct_count if entry else 10
                    sources.append(1.0 / max(distinct, 1))
                else:
                    sources.append(DEFAULT_RANGE_SELECTIVITY)
                continue
            attribute = (
                pred.left.column if isinstance(pred, Comparison) else pred.column.column
            )
            entry = rebound.get(binding, attribute)
            immediate, deferred = _selection_probe(
                pred, binding, attribute, entry, service
            )
            if deferred is None:
                assert immediate is not None
                sources.append(immediate)
            else:
                probe, combine, total = deferred
                sources.append(len(deferred_probes))
                deferred_probes.append(probe)
                deferred_combines.append((combine, total))
        factor_sources[binding] = sources

    masses = (
        service.estimate_batch(deferred_probes) if deferred_probes else None
    )
    selectivities: dict[str, float] = {}
    for binding, sources in factor_sources.items():
        selectivity = 1.0
        for source in sources:
            if isinstance(source, float):
                selectivity *= source
            else:
                combine, total = deferred_combines[source]
                selectivity *= _combine_selectivity(
                    combine, float(masses[source]), total
                )
        selectivities[binding] = selectivity

    join_plan: Optional[Plan] = None
    estimated = 1.0
    for binding, relation in bindings.items():
        estimated *= relation.cardinality * selectivities[binding]
    if len(bindings) > 1:
        try:
            graph = JoinGraph(list(bindings.values()), join_edges)
        except ValueError as error:
            raise SqlPlanError(
                f"join predicates must form a tree over the FROM tables: {error}"
            ) from error
        try:
            for edge in join_edges:
                estimated *= estimator.join_selectivity(
                    edge.left_relation,
                    edge.left_attribute,
                    edge.right_relation,
                    edge.right_attribute,
                )
            join_plan = optimal_join_order(graph, estimator, cost_model)
        except KeyError as error:
            raise SqlPlanError(
                f"missing statistics for join planning; run ANALYZE first ({error})"
            ) from error

    estimated_groups: Optional[float] = None
    if group_by:
        # Group-count estimate: the product of the grouping columns'
        # distinct counts (attribute independence), capped by the estimated
        # input cardinality — a classical distinct-value model.
        distinct_product = 1.0
        for ref in group_by:
            entry = rebound.get(ref.table, ref.column)
            distinct_product *= max(1, entry.distinct_count if entry else 10)
        estimated_groups = min(distinct_product, max(estimated, 0.0))

    return PlannedQuery(
        statement,
        bindings,
        output_columns,
        {b: tuple(p) for b, p in selections.items()},
        tuple(join_edges),
        selectivities,
        join_plan,
        estimated,
        group_by,
        estimated_groups,
    )


def _evaluate_literal_comparison(pred: Comparison) -> bool:
    left = pred.left.value
    right = pred.right.value
    return {
        "=": left == right,
        "<>": left != right,
        "!=": left != right,
        "<": left < right,
        "<=": left <= right,
        ">": left > right,
        ">=": left >= right,
    }[pred.operator]
